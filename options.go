package calgo

import (
	"context"
	"fmt"
	"time"

	"calgo/internal/check"
	"calgo/internal/sched"
	"calgo/internal/stream"
)

// Option configures the facade's entry points. One option vocabulary
// serves the engines: shared options (WithParallelism, WithMaxStates,
// WithTracer, WithMetrics, WithProgress) apply to the checkers and to
// the explorer alike, while engine-specific options (say WithElementCap,
// WithInvariant, or WithStreamWindow) apply to one of them. Passing an
// option to an entry point it does not apply to is an error, reported by
// that entry point — never silently ignored.
type Option struct {
	name   string
	check  check.Option
	sched  sched.Option
	stream func(*stream.Config)
}

// String returns the option's constructor name, for diagnostics.
func (o Option) String() string { return o.name }

// checkOptions projects opts onto the checker engine, rejecting options
// that do not apply to it.
func checkOptions(opts []Option) ([]check.Option, error) {
	out := make([]check.Option, 0, len(opts))
	for _, o := range opts {
		if o.check == nil {
			return nil, fmt.Errorf("calgo: option %s does not apply to checkers", o.name)
		}
		out = append(out, o.check)
	}
	return out, nil
}

// streamOptions projects opts onto a stream configuration. Stream-native
// options edit the Config directly; checker options configure the
// embedded fallback Checker (WithEngine excepted — a stream's engine is
// chosen with WithStreamEngine); anything else is rejected.
func streamOptions(opts []Option) (stream.Config, error) {
	var cfg stream.Config
	for _, o := range opts {
		switch {
		case o.stream != nil:
			o.stream(&cfg)
		case o.name == "WithEngine":
			return cfg, fmt.Errorf("calgo: option WithEngine does not apply to streams; use WithStreamEngine")
		case o.check != nil:
			cfg.CheckOptions = append(cfg.CheckOptions, o.check)
		default:
			return cfg, fmt.Errorf("calgo: option %s does not apply to streams", o.name)
		}
	}
	return cfg, nil
}

// schedOptions projects opts onto the explorer engine, rejecting options
// that do not apply to it.
func schedOptions(opts []Option) ([]sched.Option, error) {
	out := make([]sched.Option, 0, len(opts))
	for _, o := range opts {
		if o.sched == nil {
			return nil, fmt.Errorf("calgo: option %s does not apply to the explorer", o.name)
		}
		out = append(out, o.sched)
	}
	return out, nil
}

// Options shared by the checkers and the explorer.

// WithParallelism sets the worker count of CheckMany's pool and of the
// explorer; 0 (the default) means GOMAXPROCS.
func WithParallelism(n int) Option {
	return Option{name: "WithParallelism", check: check.WithParallelism(n), sched: sched.WithParallelism(n)}
}

// WithMaxStates bounds the number of distinct states visited: the
// checkers give up with VerdictUnknown (cause ErrCheckBound, default
// budget 4_000_000), the explorer returns ErrExploreMaxStates (default
// 1_000_000).
func WithMaxStates(n int) Option {
	return Option{name: "WithMaxStates", check: check.WithMaxStates(n), sched: sched.WithMaxStates(n)}
}

// WithTracer attaches span-style search hooks — SearchStart, NodeExpand,
// MemoHit, ElementAdmit, Backtrack, SearchEnd — to the checker search or
// the exploration. Combine with NewFlightRecorder (bounded in-memory
// ring, dumped post-mortem) or NewLogTracer (sampled JSON lines).
func WithTracer(t Tracer) Option {
	return Option{name: "WithTracer", check: check.WithTracer(t), sched: sched.WithTracer(t)}
}

// WithMetrics accumulates engine totals into the registry: check.* from
// the checkers, sched.* from the explorer, stream.* (plus the embedded
// fallback checker's check.*) from streams (see EXPERIMENTS.md, "Metrics
// schema"). One registry may be shared by all engines and exported with
// Metrics.MarshalJSON or Metrics.PublishExpvar.
func WithMetrics(m *Metrics) Option {
	return Option{
		name:  "WithMetrics",
		check: check.WithMetrics(m),
		sched: sched.WithMetrics(m),
		stream: func(c *stream.Config) {
			c.Metrics = m
			c.CheckOptions = append(c.CheckOptions, check.WithMetrics(m))
		},
	}
}

// WithProgress reports live progress (states, states/sec, ETA against
// the state budget) to fn every interval, from a dedicated goroutine; fn
// receives one final report when the run ends. ProgressPrinter is the
// ready-made fn for status lines on a terminal.
func WithProgress(every time.Duration, fn func(Progress)) Option {
	return Option{name: "WithProgress", check: check.WithProgress(every, fn), sched: sched.WithProgress(every, fn)}
}

// WithLive attaches the run to a LiveRun view: the live state count and
// per-worker utilization become pollable, which is how the embedded ops
// server's /statusz endpoint watches a running check or exploration.
func WithLive(l *LiveRun) Option {
	return Option{name: "WithLive", check: check.WithLive(l), sched: sched.WithLive(l)}
}

// Checker-only options.

// WithElementCap caps CA-element sizes below the specification's own
// bound. A cap of 1 yields classical linearizability.
func WithElementCap(n int) Option {
	return Option{name: "WithElementCap", check: check.WithElementCap(n)}
}

// WithMemoBudget bounds the byte footprint of the checker's memoization
// table; exceeding it yields VerdictUnknown (cause ErrCheckMemoBudget)
// instead of an OOM kill. 0 (the default) means unlimited.
func WithMemoBudget(bytes int) Option {
	return Option{name: "WithMemoBudget", check: check.WithMemoBudget(bytes)}
}

// WithoutMemo disables search memoization (for ablation benchmarks).
func WithoutMemo() Option {
	return Option{name: "WithoutMemo", check: check.WithoutMemo()}
}

// WithCompleteOnly rejects histories with pending invocations instead of
// exploring their completions.
func WithCompleteOnly() Option {
	return Option{name: "WithCompleteOnly", check: check.WithCompleteOnly()}
}

// WithEngine selects the checker's decision procedure: EngineDFS (the
// default) always runs the memoized search, EngineAuto routes eligible
// unambiguous collection histories to the O(n log n) specialized
// monitors with DFS fallback, EngineMonitor forces the monitor and
// yields VerdictUnknown (cause ErrMonitorIneligible) when it cannot
// decide. Verdicts never depend on the engine; only cost and the
// presence of a witness trace do.
func WithEngine(e Engine) Option {
	return Option{name: "WithEngine", check: check.WithEngine(e)}
}

// Stream-only options (NewStream).

// WithStreamWindow bounds the events buffered per object for windowed
// DFS (re-)checking and for falling back from a monitor that leaves its
// unambiguous fragment mid-stream. A stream that outgrows the window
// sheds the buffer and degrades honestly rather than weakening later
// verdicts. Default 65536.
func WithStreamWindow(n int) Option {
	return Option{name: "WithStreamWindow", stream: func(c *stream.Config) { c.Window = n }}
}

// WithStreamCheckEvery sets the fallback re-check cadence: buffered
// events between DFS re-checks, and completed operations between the
// replay steppers' batch re-checks. Default 4096.
func WithStreamCheckEvery(n int) Option {
	return Option{name: "WithStreamCheckEvery", stream: func(c *stream.Config) { c.CheckEvery = n }}
}

// WithStreamEngine selects the per-object streaming decision path:
// StreamEngineAuto (the default) runs incremental monitors with DFS
// fallback, StreamEngineDFS forces windowed re-checking, and
// StreamEngineMonitor forces monitors and degrades instead of falling
// back.
func WithStreamEngine(e StreamEngine) Option {
	return Option{name: "WithStreamEngine", stream: func(c *stream.Config) { c.Engine = e }}
}

// WithStreamContext parents the stream's internal context: cancelling
// ctx degrades in-flight and future fallback re-checks instead of
// blocking Close.
func WithStreamContext(ctx context.Context) Option {
	return Option{name: "WithStreamContext", stream: func(c *stream.Config) { c.Context = ctx }}
}

// Explorer-only options.

// WithInvariant checks fn once on every reached model state.
func WithInvariant(fn func(ModelState) error) Option {
	return Option{name: "WithInvariant", sched: sched.WithInvariant(fn)}
}

// WithTransition checks fn on every explored transition; use it for
// rely/guarantee action justification.
func WithTransition(fn func(from ModelState, s ModelSucc) error) Option {
	return Option{name: "WithTransition", sched: sched.WithTransition(fn)}
}

// WithTerminal checks fn on every terminal model state.
func WithTerminal(fn func(ModelState) error) Option {
	return Option{name: "WithTerminal", sched: sched.WithTerminal(fn)}
}

// WithDeadlockAllowed suppresses the explorer's deadlock error for
// non-terminal states without successors (bounded-retry models).
func WithDeadlockAllowed() Option {
	return Option{name: "WithDeadlockAllowed", sched: sched.WithDeadlockAllowed()}
}
