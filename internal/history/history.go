package history

import (
	"fmt"
	"sort"
	"strings"
)

// History is a finite sequence of invocations and responses (Definition 2).
type History []Event

// ByThread returns H|t, the subsequence of actions of thread t.
func (h History) ByThread(t ThreadID) History {
	var out History
	for _, e := range h {
		if e.Thread == t {
			out = append(out, e)
		}
	}
	return out
}

// ByObject returns H|o, the subsequence of actions on object o.
func (h History) ByObject(o ObjectID) History {
	var out History
	for _, e := range h {
		if e.Object == o {
			out = append(out, e)
		}
	}
	return out
}

// Threads returns the distinct thread identifiers appearing in h, in order
// of first appearance.
func (h History) Threads() []ThreadID {
	seen := make(map[ThreadID]bool)
	var out []ThreadID
	for _, e := range h {
		if !seen[e.Thread] {
			seen[e.Thread] = true
			out = append(out, e.Thread)
		}
	}
	return out
}

// Objects returns the distinct object identifiers appearing in h, in order
// of first appearance.
func (h History) Objects() []ObjectID {
	seen := make(map[ObjectID]bool)
	var out []ObjectID
	for _, e := range h {
		if !seen[e.Object] {
			seen[e.Object] = true
			out = append(out, e.Object)
		}
	}
	return out
}

// IsSequential reports whether h is an alternation of invocations and
// responses starting with an invocation, where each response matches the
// invocation immediately preceding it (Definition 2).
func (h History) IsSequential() bool {
	for i, e := range h {
		if i%2 == 0 {
			if !e.IsInv() {
				return false
			}
		} else {
			if !h[i-1].Matches(e) {
				return false
			}
		}
	}
	return true
}

// IsWellFormed reports whether for every thread t, h|t is sequential
// (Definition 2).
func (h History) IsWellFormed() bool {
	// last[t] is the index into h of the last action of t, or -1.
	pending := make(map[ThreadID]*Event)
	for i := range h {
		e := h[i]
		switch e.Kind {
		case Invoke:
			if pending[e.Thread] != nil {
				return false // invocation while a call is outstanding
			}
			pending[e.Thread] = &h[i]
		case Respond:
			p := pending[e.Thread]
			if p == nil || !p.Matches(e) {
				return false // response with no matching invocation
			}
			pending[e.Thread] = nil
		default:
			return false
		}
	}
	return true
}

// IsComplete reports whether h is well-formed and every invocation has a
// matching response (Definition 2).
func (h History) IsComplete() bool {
	if !h.IsWellFormed() {
		return false
	}
	pending := make(map[ThreadID]bool)
	for _, e := range h {
		if e.IsInv() {
			pending[e.Thread] = true
		} else {
			pending[e.Thread] = false
		}
	}
	for _, p := range pending {
		if p {
			return false
		}
	}
	return true
}

// PendingThreads returns the threads with an outstanding invocation in the
// well-formed history h, in order of their pending invocations.
func (h History) PendingThreads() []ThreadID {
	outstanding := make(map[ThreadID]int) // thread -> inv index of open call
	for i, e := range h {
		if e.IsInv() {
			outstanding[e.Thread] = i
		} else {
			delete(outstanding, e.Thread)
		}
	}
	out := make([]ThreadID, 0, len(outstanding))
	for t := range outstanding {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return outstanding[out[i]] < outstanding[out[j]] })
	return out
}

// DropPending returns the history obtained from the well-formed history h by
// removing every invocation that has no matching response. This is the
// "removing some invocation actions" half of completion (Definition 2).
func (h History) DropPending() History {
	resSeen := make([]bool, len(h))
	// Mark invocations that have a matching response.
	outstanding := make(map[ThreadID]int) // thread -> index of pending inv
	for i, e := range h {
		switch e.Kind {
		case Invoke:
			outstanding[e.Thread] = i
		case Respond:
			if j, ok := outstanding[e.Thread]; ok {
				resSeen[j] = true
				delete(outstanding, e.Thread)
			}
		}
	}
	out := make(History, 0, len(h))
	for i, e := range h {
		if e.IsInv() && !resSeen[i] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Extend returns h with response actions appended, one per entry of rets;
// each entry maps a pending thread to the return value used to complete its
// outstanding invocation. Threads absent from rets keep their invocations
// pending. This is the "extending H with some response actions" half of
// completion (Definition 2).
func (h History) Extend(rets map[ThreadID]Value) (History, error) {
	out := append(History(nil), h...)
	pend := make(map[ThreadID]Event)
	for _, e := range h {
		if e.IsInv() {
			pend[e.Thread] = e
		} else {
			delete(pend, e.Thread)
		}
	}
	for t, v := range rets {
		inv, ok := pend[t]
		if !ok {
			return nil, fmt.Errorf("history: thread %s has no pending invocation to complete", t)
		}
		out = append(out, Res(t, inv.Object, inv.Method, v))
	}
	return out, nil
}

// Append returns h extended with the given events. It does not mutate h.
func (h History) Append(events ...Event) History {
	out := make(History, 0, len(h)+len(events))
	out = append(out, h...)
	return append(out, events...)
}

// String renders the history one action per line.
func (h History) String() string {
	var b strings.Builder
	for i, e := range h {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}
