// Package history implements the history model of Hemed, Rinetzky and
// Vafeiadis: object actions (invocations and responses), well-formed
// histories, completions, and the real-time order (Definitions 1-3 of the
// paper). Histories record the interaction between a client program and an
// object system at the interface level.
package history

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the payload of a Value.
type ValueKind uint8

// The kinds of values exchanged across object interfaces. The paper's
// objects only traffic in unit, booleans, integers and (bool, int) pairs, so
// a small closed universe keeps Values comparable (usable as map keys) and
// cheap to hash, which the checkers rely on.
const (
	KindUnit ValueKind = iota + 1
	KindBool
	KindInt
	KindPair // a (bool, int) pair, e.g. the result of exchange or pop
)

// Value is an immutable, comparable argument or return value. The zero
// Value is invalid; use the constructors.
type Value struct {
	Kind ValueKind
	B    bool
	N    int64
}

// Unit returns the unit value (used for methods with no argument or result).
func Unit() Value { return Value{Kind: KindUnit} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Int returns an integer value.
func Int(n int64) Value { return Value{Kind: KindInt, N: n} }

// Pair returns a (bool, int) pair, the shape returned by exchange and pop.
func Pair(ok bool, n int64) Value { return Value{Kind: KindPair, B: ok, N: n} }

// IsZero reports whether v is the invalid zero Value.
func (v Value) IsZero() bool { return v.Kind == 0 }

// String renders the value in the paper's notation: (), true, 7, (true,4).
func (v Value) String() string {
	switch v.Kind {
	case KindUnit:
		return "()"
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindInt:
		return strconv.FormatInt(v.N, 10)
	case KindPair:
		return "(" + strconv.FormatBool(v.B) + "," + strconv.FormatInt(v.N, 10) + ")"
	default:
		return "<invalid>"
	}
}

// ParseValue parses the notation produced by Value.String.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "()":
		return Unit(), nil
	case s == "true" || s == "false":
		return Bool(s == "true"), nil
	case strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")"):
		body := s[1 : len(s)-1]
		parts := strings.SplitN(body, ",", 2)
		if len(parts) != 2 {
			return Value{}, fmt.Errorf("history: malformed pair %q", s)
		}
		bs := strings.TrimSpace(parts[0])
		if bs != "true" && bs != "false" {
			return Value{}, fmt.Errorf("history: malformed pair bool %q", s)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("history: malformed pair int %q: %w", s, err)
		}
		return Pair(bs == "true", n), nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("history: malformed value %q: %w", s, err)
		}
		return Int(n), nil
	}
}
