package history

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseFileDiagnostics(t *testing.T) {
	src := "inv t1 E.exchange 3\nres t1 E.exchange wibble\n"
	_, err := ParseFile("h.txt", src)
	if err == nil {
		t.Fatal("malformed value should fail")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error should be a *SyntaxError, got %T: %v", err, err)
	}
	if se.File != "h.txt" || se.Line != 2 {
		t.Errorf("SyntaxError position = %s:%d, want h.txt:2", se.File, se.Line)
	}
	if !strings.HasPrefix(err.Error(), "h.txt:2: ") {
		t.Errorf("error should render file:line: prefix, got %q", err.Error())
	}
}

func TestParseRejectsSignedThreadIDs(t *testing.T) {
	for _, src := range []string{
		"inv t-1 E.exchange 3",
		"inv t+1 E.exchange 3",
		"inv t1x E.exchange 3",
		"inv t E.exchange 3",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// FuzzParseHistory asserts the parser's robustness contract: it never
// panics on arbitrary (including truncated) input, and any input it
// accepts round-trips through Format and back unchanged. The limited
// parser must uphold the same contract — every rejection a *SyntaxError,
// never a panic — under limits small enough that the seeds trip them.
func FuzzParseHistory(f *testing.F) {
	f.Add("inv t1 E.exchange 3\nres t1 E.exchange (true,4)\n")
	f.Add("# comment\n\ninv t2 AR.E[3].exchange 5\n")
	f.Add("res t9 S.pop (false,0)")
	f.Add("inv t1 E.exchange")   // truncated line
	f.Add("inv t1 E.exchange (") // truncated value
	f.Add("zap\x00zap")
	f.Add(strings.Repeat("inv t1 E.exchange 3\n", 100))
	// Regression seeds for the limit path: an event-count overflow whose
	// offending line follows comments and blanks (the reported line must
	// be the event's, not the comment's), and an over-byte-limit input.
	f.Add("# prelude\n\ninv t1 E.exchange 1\nres t1 E.exchange (true,2)\ninv t2 E.exchange 2\n")
	f.Add(strings.Repeat("#", 4<<10))
	f.Fuzz(func(t *testing.T, src string) {
		if _, lerr := ParseFileLimited("fuzz", src, Limits{MaxBytes: 256, MaxEvents: 2}); lerr != nil {
			var se *SyntaxError
			if !errors.As(lerr, &se) {
				t.Fatalf("ParseFileLimited error is %T, want *SyntaxError: %v", lerr, lerr)
			}
		}
		h, err := Parse(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse error is %T, want *SyntaxError: %v", err, err)
			}
			return
		}
		again, err := Parse(Format(h))
		if err != nil {
			t.Fatalf("re-parsing formatted history: %v", err)
		}
		if len(h) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(again, h) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", again, h)
		}
	})
}
