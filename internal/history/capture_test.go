package history

import (
	"sync"
	"testing"
)

func TestCaptureSequential(t *testing.T) {
	var c Capture
	c.Inv(1, objE, exch, Int(3))
	c.Res(1, objE, exch, Pair(false, 3))
	h := c.History()
	if len(h) != 2 || !h.IsComplete() {
		t.Fatalf("captured %v", h)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear capture")
	}
}

func TestCaptureHistoryIsCopy(t *testing.T) {
	var c Capture
	c.Inv(1, objE, exch, Int(3))
	h := c.History()
	c.Res(1, objE, exch, Pair(false, 3))
	if len(h) != 1 {
		t.Error("History() must return a snapshot copy")
	}
}

func TestCaptureConcurrentWellFormed(t *testing.T) {
	var c Capture
	const workers = 8
	const opsPer = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid ThreadID) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				c.Inv(tid, objE, exch, Int(int64(i)))
				c.Res(tid, objE, exch, Pair(false, int64(i)))
			}
		}(ThreadID(w + 1))
	}
	wg.Wait()
	h := c.History()
	if len(h) != 2*workers*opsPer {
		t.Fatalf("captured %d actions, want %d", len(h), 2*workers*opsPer)
	}
	if !h.IsWellFormed() {
		t.Error("concurrent capture must be well-formed when each goroutine is sequential")
	}
	if !h.IsComplete() {
		t.Error("all calls returned; capture must be complete")
	}
}
