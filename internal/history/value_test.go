package history

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want string
	}{
		{"unit", Unit(), "()"},
		{"true", Bool(true), "true"},
		{"false", Bool(false), "false"},
		{"int", Int(7), "7"},
		{"negative int", Int(-42), "-42"},
		{"zero int", Int(0), "0"},
		{"pair ok", Pair(true, 4), "(true,4)"},
		{"pair fail", Pair(false, 7), "(false,7)"},
		{"pair negative", Pair(true, -1), "(true,-1)"},
		{"invalid zero", Value{}, "<invalid>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseValue(t *testing.T) {
	tests := []struct {
		in      string
		want    Value
		wantErr bool
	}{
		{in: "()", want: Unit()},
		{in: "true", want: Bool(true)},
		{in: "false", want: Bool(false)},
		{in: "17", want: Int(17)},
		{in: "-3", want: Int(-3)},
		{in: "(true,4)", want: Pair(true, 4)},
		{in: "(false,0)", want: Pair(false, 0)},
		{in: "( true , 12 )", want: Pair(true, 12)},
		{in: "  42  ", want: Int(42)},
		{in: "garbage", wantErr: true},
		{in: "(true)", wantErr: true},
		{in: "(maybe,1)", wantErr: true},
		{in: "(true,x)", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseValue(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseValue(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseValue(%q) unexpected error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("ParseValue(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// TestValueRoundTrip_Quick checks ParseValue ∘ String = id over the whole
// value universe.
func TestValueRoundTrip_Quick(t *testing.T) {
	f := func(kindSel uint8, b bool, n int64) bool {
		var v Value
		switch kindSel % 4 {
		case 0:
			v = Unit()
		case 1:
			v = Bool(b)
		case 2:
			v = Int(n)
		case 3:
			v = Pair(b, n)
		}
		got, err := ParseValue(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueRoundTripExtremes(t *testing.T) {
	for _, v := range []Value{Int(math.MaxInt64), Int(math.MinInt64), Pair(true, math.MaxInt64), Pair(false, math.MinInt64)} {
		got, err := ParseValue(v.String())
		if err != nil || got != v {
			t.Errorf("round trip of %v failed: got %v, err %v", v, got, err)
		}
	}
}

func TestValueComparable(t *testing.T) {
	// Values must be usable as map keys; identical constructions collide.
	m := map[Value]int{}
	m[Pair(true, 4)]++
	m[Pair(true, 4)]++
	m[Pair(false, 4)]++
	if m[Pair(true, 4)] != 2 || m[Pair(false, 4)] != 1 {
		t.Errorf("value map semantics broken: %v", m)
	}
}

func TestValueIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero Value should report IsZero")
	}
	for _, v := range []Value{Unit(), Bool(false), Int(0), Pair(false, 0)} {
		if v.IsZero() {
			t.Errorf("%v should not report IsZero", v)
		}
	}
}
