package history

import "sync"

// Capture is a thread-safe recorder of the observable history of a run.
// Client code brackets each object call with Inv and Res; the resulting
// History is well-formed provided each goroutine uses a fixed ThreadID and
// calls objects sequentially (the ownership discipline of §2).
//
// The zero Capture is ready to use.
type Capture struct {
	mu sync.Mutex
	h  History
}

// Inv records an invocation action.
func (c *Capture) Inv(t ThreadID, o ObjectID, f Method, arg Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.h = append(c.h, Inv(t, o, f, arg))
}

// Res records a response action.
func (c *Capture) Res(t ThreadID, o ObjectID, f Method, ret Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.h = append(c.h, Res(t, o, f, ret))
}

// History returns a copy of the captured history so far.
func (c *Capture) History() History {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(History(nil), c.h...)
}

// Len returns the number of captured actions.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.h)
}

// Reset discards all captured actions.
func (c *Capture) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.h = nil
}
