package history

import (
	"reflect"
	"strings"
	"testing"
)

func TestFormatParse(t *testing.T) {
	for _, h := range []History{fig3H1(), fig3H2(), fig3H3(), {}} {
		src := Format(h)
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(Format(h)): %v", err)
		}
		if len(h) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, h) {
			t.Errorf("round trip mismatch:\n got %v\nwant %v", got, h)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# history H2 of Figure 3
inv t1 E.exchange 3
inv t2 E.exchange 4

res t1 E.exchange (true,4)
res t2 E.exchange (true,3)
# trailing comment
`
	h, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(h) != 4 || !h.IsComplete() {
		t.Errorf("parsed %d events, want 4 complete: %v", len(h), h)
	}
}

func TestParseDottedObjectNames(t *testing.T) {
	// Nested object ids like AR.E[3] are kept intact; the method is the
	// segment after the last dot.
	h, err := Parse("inv t1 AR.E[3].exchange 5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h[0].Object != "AR.E[3]" || h[0].Method != "exchange" {
		t.Errorf("got object %q method %q", h[0].Object, h[0].Method)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"inv t1 E.exchange",              // missing value
		"zap t1 E.exchange 3",            // bad kind
		"inv x1 E.exchange 3",            // bad thread
		"inv tX E.exchange 3",            // bad thread number
		"inv t1 Eexchange 3",             // no dot
		"inv t1 .exchange 3",             // empty object
		"inv t1 E. 3",                    // empty method
		"inv t1 E.exchange (wibble)",     // bad value
		"inv t1 E.exchange 3 extra junk", // too many fields
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Parse(%q) error should cite line 1: %v", src, err)
		}
	}
}
