package history

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestOperations(t *testing.T) {
	h := fig3H1()
	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("got %d operations, want 3", len(ops))
	}
	want0 := Op{Thread: 1, Object: objE, Method: exch, Arg: Int(3), Ret: Pair(true, 4), InvIndex: 0, ResIndex: 3}
	if ops[0] != want0 {
		t.Errorf("ops[0] = %+v, want %+v", ops[0], want0)
	}
	for _, op := range ops {
		if op.Pending {
			t.Errorf("complete history produced pending op %v", op)
		}
	}
}

func TestOperationsPending(t *testing.T) {
	h := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(2, objE, exch, Pair(true, 3)),
	}
	ops := h.Operations()
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if !ops[0].Pending || ops[0].ResIndex != -1 {
		t.Errorf("t1's op should be pending: %+v", ops[0])
	}
	if ops[1].Pending {
		t.Errorf("t2's op should be complete: %+v", ops[1])
	}
}

func TestPrecedesRTAndConcurrent(t *testing.T) {
	// H2: t1, t2 overlap; t3 runs strictly after both.
	ops := fig3H2().Operations()
	t1op, t2op, t3op := ops[0], ops[1], ops[2]
	if !Concurrent(t1op, t2op) {
		t.Error("t1 and t2 should be concurrent in H2")
	}
	if !PrecedesRT(t1op, t3op) || !PrecedesRT(t2op, t3op) {
		t.Error("t1 and t2 should precede t3 in H2")
	}
	if PrecedesRT(t3op, t1op) {
		t.Error("t3 must not precede t1")
	}
	// H1: everything overlaps.
	ops1 := fig3H1().Operations()
	for i := range ops1 {
		for j := range ops1 {
			if i != j && !Concurrent(ops1[i], ops1[j]) {
				t.Errorf("ops %d and %d should be concurrent in H1", i, j)
			}
		}
	}
	// H3: total order.
	ops3 := fig3H3().Operations()
	if !PrecedesRT(ops3[0], ops3[1]) || !PrecedesRT(ops3[1], ops3[2]) || !PrecedesRT(ops3[0], ops3[2]) {
		t.Error("H3 should be totally ordered")
	}
}

func TestPendingNeverPrecedes(t *testing.T) {
	h := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(2, objE, exch, Pair(false, 4)),
		Inv(3, objE, exch, Int(5)),
	}
	ops := h.Operations()
	pending1 := ops[0]
	done2 := ops[1]
	pending3 := ops[2]
	if PrecedesRT(pending1, done2) || PrecedesRT(pending1, pending3) {
		t.Error("pending operations must not precede anything")
	}
	if !PrecedesRT(done2, pending3) {
		t.Error("completed op must precede a later pending op")
	}
}

func TestRTOrderMatrix(t *testing.T) {
	ops := fig3H2().Operations()
	m := RTOrder(ops)
	want := [][]bool{
		{false, false, true},
		{false, false, true},
		{false, false, false},
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("RTOrder = %v, want %v", m, want)
	}
}

func TestRTOrderIsIrreflexivePartialOrder_Quick(t *testing.T) {
	// Generate random well-formed histories and check ≺H is an irreflexive
	// partial order (transitive via interval semantics).
	f := func(seed int64) bool {
		h := randomHistory(seed, 4, 8)
		ops := h.Operations()
		m := RTOrder(ops)
		n := len(ops)
		for i := 0; i < n; i++ {
			if m[i][i] {
				return false
			}
			for j := 0; j < n; j++ {
				if m[i][j] && m[j][i] {
					return false // antisymmetry
				}
				for k := 0; k < n; k++ {
					if m[i][j] && m[j][k] && !m[i][k] {
						return false // transitivity
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomHistory builds a pseudo-random well-formed history with up to
// maxThreads threads and maxOps operations, derived deterministically from
// seed. Used by several property tests.
func randomHistory(seed int64, maxThreads, maxOps int) History {
	rng := seed
	next := func(n int) int {
		// xorshift-ish deterministic stream; quality is irrelevant.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		v := int(rng % int64(n))
		if v < 0 {
			v = -v
		}
		return v
	}
	var h History
	busy := make(map[ThreadID]Event)
	nOps := next(maxOps) + 1
	for len(h) < 2*nOps {
		t := ThreadID(next(maxThreads) + 1)
		if inv, ok := busy[t]; ok {
			// Half the time, respond.
			if next(2) == 0 {
				h = append(h, Res(t, inv.Object, inv.Method, Pair(true, int64(next(10)))))
				delete(busy, t)
				continue
			}
		}
		if _, ok := busy[t]; !ok {
			e := Inv(t, objE, exch, Int(int64(next(10))))
			busy[t] = e
			h = append(h, e)
		}
	}
	// Close remaining calls to make the history complete.
	for t, inv := range busy {
		h = append(h, Res(t, inv.Object, inv.Method, Pair(false, inv.Arg.N)))
	}
	return h
}

func TestRandomHistoryIsWellFormed(t *testing.T) {
	for seed := int64(1); seed < 200; seed++ {
		h := randomHistory(seed, 5, 12)
		if !h.IsWellFormed() {
			t.Fatalf("seed %d: random history ill-formed:\n%v", seed, h)
		}
		if !h.IsComplete() {
			t.Fatalf("seed %d: random history incomplete", seed)
		}
	}
}

func TestFromOpsRoundTrip(t *testing.T) {
	for seed := int64(1); seed < 100; seed++ {
		h := randomHistory(seed, 4, 10)
		ops := h.Operations()
		back, err := FromOps(ops)
		if err != nil {
			t.Fatalf("seed %d: FromOps: %v", seed, err)
		}
		if !reflect.DeepEqual(back, h) {
			t.Fatalf("seed %d: round trip mismatch:\n got %v\nwant %v", seed, back, h)
		}
	}
}

func TestFromOpsErrors(t *testing.T) {
	if _, err := FromOps([]Op{{Thread: 1, Object: objE, Method: exch, InvIndex: 2, ResIndex: 1}}); err == nil {
		t.Error("ResIndex <= InvIndex should error")
	}
	if _, err := FromOps([]Op{
		{Thread: 1, Object: objE, Method: exch, InvIndex: 0, ResIndex: 1},
		{Thread: 2, Object: objE, Method: exch, InvIndex: 1, ResIndex: 2},
	}); err == nil {
		t.Error("overlapping indices should error")
	}
}
