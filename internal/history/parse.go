package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders h in the line-oriented interchange format accepted by
// Parse:
//
//	inv t1 E.exchange 3
//	res t1 E.exchange (true,4)
//
// Blank lines and lines starting with '#' are ignored by Parse.
func Format(h History) string {
	var b strings.Builder
	for _, e := range h {
		switch e.Kind {
		case Invoke:
			fmt.Fprintf(&b, "inv %s %s.%s %s\n", e.Thread, e.Object, e.Method, e.Arg)
		case Respond:
			fmt.Fprintf(&b, "res %s %s.%s %s\n", e.Thread, e.Object, e.Method, e.Ret)
		}
	}
	return b.String()
}

// Parse reads the interchange format produced by Format.
func Parse(src string) (History, error) {
	var h History
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("history: line %d: %w", ln+1, err)
		}
		h = append(h, e)
	}
	return h, nil
}

func parseLine(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("want 4 fields %q, got %d", "kind thread obj.method value", len(fields))
	}
	var kind EventKind
	switch fields[0] {
	case "inv":
		kind = Invoke
	case "res":
		kind = Respond
	default:
		return Event{}, fmt.Errorf("unknown action kind %q", fields[0])
	}
	t, err := parseThread(fields[1])
	if err != nil {
		return Event{}, err
	}
	dot := strings.LastIndexByte(fields[2], '.')
	if dot <= 0 || dot == len(fields[2])-1 {
		return Event{}, fmt.Errorf("malformed target %q, want obj.method", fields[2])
	}
	o, f := ObjectID(fields[2][:dot]), Method(fields[2][dot+1:])
	v, err := ParseValue(fields[3])
	if err != nil {
		return Event{}, err
	}
	if kind == Invoke {
		return Inv(t, o, f, v), nil
	}
	return Res(t, o, f, v), nil
}

func parseThread(s string) (ThreadID, error) {
	if !strings.HasPrefix(s, "t") {
		return 0, fmt.Errorf("malformed thread id %q, want tN", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("malformed thread id %q: %w", s, err)
	}
	return ThreadID(n), nil
}
