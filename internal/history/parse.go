package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders h in the line-oriented interchange format accepted by
// Parse:
//
//	inv t1 E.exchange 3
//	res t1 E.exchange (true,4)
//
// Blank lines and lines starting with '#' are ignored by Parse.
func Format(h History) string {
	var b strings.Builder
	for _, e := range h {
		switch e.Kind {
		case Invoke:
			fmt.Fprintf(&b, "inv %s %s.%s %s\n", e.Thread, e.Object, e.Method, e.Arg)
		case Respond:
			fmt.Fprintf(&b, "res %s %s.%s %s\n", e.Thread, e.Object, e.Method, e.Ret)
		}
	}
	return b.String()
}

// SyntaxError reports a malformed history line with its position. File is
// empty when the source had no name (e.g. a string literal or stdin).
type SyntaxError struct {
	File string
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("history: line %d: %s", e.Line, e.Msg)
	}
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Parse reads the interchange format produced by Format. Errors are
// *SyntaxError values citing the offending line; Parse never panics,
// whatever the input.
func Parse(src string) (History, error) {
	return ParseFile("", src)
}

// ParseFile is Parse with a source name for diagnostics: errors render as
// name:line: message, the convention editors and CI log scrapers follow.
func ParseFile(name, src string) (History, error) {
	return ParseFileLimited(name, src, Limits{})
}

// Limits bounds what ParseFileLimited accepts, so a service can reject
// hostile or oversized uploads with a precise diagnostic instead of
// parsing (and allocating for) them. A zero field means unlimited.
type Limits struct {
	// MaxBytes rejects the input before parsing when the source exceeds
	// this many bytes.
	MaxBytes int
	// MaxEvents rejects the input at the first event line past this
	// count (each inv/res line is one event).
	MaxEvents int
}

// ParseFileLimited is ParseFile under input limits. Violations are
// *SyntaxError values like any other parse failure: an oversized source
// is reported at line 1, an event-count overflow at the offending line,
// both naming the limit so the submitter knows what to shrink.
func ParseFileLimited(name, src string, lim Limits) (History, error) {
	if lim.MaxBytes > 0 && len(src) > lim.MaxBytes {
		return nil, &SyntaxError{File: name, Line: 1,
			Msg: fmt.Sprintf("input is %d bytes, limit is %d", len(src), lim.MaxBytes)}
	}
	var h History
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lim.MaxEvents > 0 && len(h) >= lim.MaxEvents {
			return nil, &SyntaxError{File: name, Line: ln + 1,
				Msg: fmt.Sprintf("history exceeds %d events", lim.MaxEvents)}
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, &SyntaxError{File: name, Line: ln + 1, Msg: err.Error()}
		}
		h = append(h, e)
	}
	return h, nil
}

func parseLine(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("want 4 fields %q, got %d", "kind thread obj.method value", len(fields))
	}
	var kind EventKind
	switch fields[0] {
	case "inv":
		kind = Invoke
	case "res":
		kind = Respond
	default:
		return Event{}, fmt.Errorf("unknown action kind %q", fields[0])
	}
	t, err := parseThread(fields[1])
	if err != nil {
		return Event{}, err
	}
	dot := strings.LastIndexByte(fields[2], '.')
	if dot <= 0 || dot == len(fields[2])-1 {
		return Event{}, fmt.Errorf("malformed target %q, want obj.method", fields[2])
	}
	o, f := ObjectID(fields[2][:dot]), Method(fields[2][dot+1:])
	v, err := ParseValue(fields[3])
	if err != nil {
		return Event{}, err
	}
	if kind == Invoke {
		return Inv(t, o, f, v), nil
	}
	return Res(t, o, f, v), nil
}

func parseThread(s string) (ThreadID, error) {
	// Insist on t followed by decimal digits only: no signs, no spaces, so
	// every accepted id round-trips through ThreadID.String.
	if len(s) < 2 || s[0] != 't' {
		return 0, fmt.Errorf("malformed thread id %q, want tN", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("malformed thread id %q, want tN", s)
		}
	}
	n, err := strconv.ParseInt(s[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed thread id %q: %w", s, err)
	}
	return ThreadID(n), nil
}
