package history

import (
	"crypto/sha256"
	"encoding/hex"
)

// Canonical returns h with thread identifiers renumbered by order of
// first appearance (t0, t1, ...). CAL, linearizability and
// set-linearizability are all invariant under renaming threads — a
// thread id only ties an invocation to its response — so two histories
// with the same Canonical form have the same verdict against any
// specification. Object ids, methods and values are preserved: those
// the specifications do observe.
func Canonical(h History) History {
	rename := make(map[ThreadID]ThreadID, 8)
	out := make(History, len(h))
	for i, e := range h {
		t, ok := rename[e.Thread]
		if !ok {
			t = ThreadID(len(rename))
			rename[e.Thread] = t
		}
		e.Thread = t
		out[i] = e
	}
	return out
}

// Fingerprint returns a collision-resistant hex digest of h's canonical
// rendering: equal fingerprints mean the histories are identical up to
// thread renaming, so a verdict computed for one is valid for the other.
// This is the key of the cald verdict cache — replayed production
// traffic hashes to the same fingerprint and never re-pays the search.
func Fingerprint(h History) string {
	sum := sha256.Sum256([]byte(Format(Canonical(h))))
	return hex.EncodeToString(sum[:])
}
