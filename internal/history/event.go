package history

import (
	"fmt"
	"strconv"
)

// ThreadID identifies a client thread (t in the paper).
type ThreadID int

// String renders the thread id as in the paper's examples: t1, t2, ...
func (t ThreadID) String() string { return "t" + strconv.Itoa(int(t)) }

// ObjectID identifies a concurrent object (o in the paper).
type ObjectID string

// Method names a method of a concurrent object (f in the paper).
type Method string

// EventKind discriminates invocation and response actions.
type EventKind uint8

// The two kinds of object actions (Definition 1).
const (
	Invoke EventKind = iota + 1
	Respond
)

// Event is an object action: either an invocation (t, inv o.f(n)) or a
// response (t, res o.f ▷ n) (Definition 1).
type Event struct {
	Kind   EventKind
	Thread ThreadID
	Object ObjectID
	Method Method
	// Arg is the invocation argument; meaningful only when Kind == Invoke.
	Arg Value
	// Ret is the response value; meaningful only when Kind == Respond.
	Ret Value
}

// Inv constructs an invocation action.
func Inv(t ThreadID, o ObjectID, f Method, arg Value) Event {
	return Event{Kind: Invoke, Thread: t, Object: o, Method: f, Arg: arg}
}

// Res constructs a response action.
func Res(t ThreadID, o ObjectID, f Method, ret Value) Event {
	return Event{Kind: Respond, Thread: t, Object: o, Method: f, Ret: ret}
}

// IsInv reports whether the event is an invocation.
func (e Event) IsInv() bool { return e.Kind == Invoke }

// IsRes reports whether the event is a response.
func (e Event) IsRes() bool { return e.Kind == Respond }

// Matches reports whether r is a response matching invocation e: same
// thread, object and method. (Per-thread sequentiality makes this pairing
// unambiguous within a well-formed history.)
func (e Event) Matches(r Event) bool {
	return e.Kind == Invoke && r.Kind == Respond &&
		e.Thread == r.Thread && e.Object == r.Object && e.Method == r.Method
}

// String renders the action in the paper's notation, e.g.
// "t1: inv E.exchange(3)" or "t1: res E.exchange ▷ (true,4)".
func (e Event) String() string {
	switch e.Kind {
	case Invoke:
		return fmt.Sprintf("%s: inv %s.%s(%s)", e.Thread, e.Object, e.Method, e.Arg)
	case Respond:
		return fmt.Sprintf("%s: res %s.%s ▷ %s", e.Thread, e.Object, e.Method, e.Ret)
	default:
		return "<invalid event>"
	}
}
