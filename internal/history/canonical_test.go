package history

import (
	"strings"
	"testing"
)

func TestCanonicalRenumbersByFirstAppearance(t *testing.T) {
	h, err := Parse("inv t7 E.exchange 3\ninv t2 E.exchange 4\nres t7 E.exchange (true,4)\nres t2 E.exchange (true,3)")
	if err != nil {
		t.Fatal(err)
	}
	c := Canonical(h)
	want := "inv t0 E.exchange 3\ninv t1 E.exchange 4\nres t0 E.exchange (true,4)\nres t1 E.exchange (true,3)\n"
	if Format(c) != want {
		t.Errorf("Canonical =\n%s\nwant\n%s", Format(c), want)
	}
	// Canonical must not mutate its input.
	if h[0].Thread != ThreadID(7) {
		t.Errorf("Canonical mutated its input: thread = %v", h[0].Thread)
	}
}

func TestFingerprintInvariantUnderThreadRenaming(t *testing.T) {
	a, err := Parse("inv t1 E.exchange 3\ninv t2 E.exchange 4\nres t1 E.exchange (true,4)\nres t2 E.exchange (true,3)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("inv t40 E.exchange 3\ninv t9 E.exchange 4\nres t40 E.exchange (true,4)\nres t9 E.exchange (true,3)")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprints should agree up to thread renaming")
	}
	// Changing a value must change the fingerprint.
	c, err := Parse("inv t1 E.exchange 5\ninv t2 E.exchange 4\nres t1 E.exchange (true,4)\nres t2 E.exchange (true,5)")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different histories should not collide")
	}
}

func TestParseFileLimitedBounds(t *testing.T) {
	src := "# header\ninv t1 E.exchange 3\nres t1 E.exchange (true,4)\ninv t2 E.exchange 4\n"
	if _, err := ParseFileLimited("h.txt", src, Limits{MaxEvents: 2}); err == nil {
		t.Fatal("event limit should reject the third event")
	} else if !strings.HasPrefix(err.Error(), "h.txt:4: ") {
		t.Errorf("event-limit error should cite the offending line, got %q", err)
	}
	if _, err := ParseFileLimited("h.txt", src, Limits{MaxBytes: 10}); err == nil {
		t.Fatal("byte limit should reject the input")
	} else if !strings.Contains(err.Error(), "limit is 10") {
		t.Errorf("byte-limit error should name the limit, got %q", err)
	}
	h, err := ParseFileLimited("h.txt", src, Limits{MaxBytes: len(src), MaxEvents: 3})
	if err != nil || len(h) != 3 {
		t.Fatalf("limits at the boundary should accept: %v (len %d)", err, len(h))
	}
}
