package history

import (
	"reflect"
	"testing"
)

const (
	objE ObjectID = "E"
	objS ObjectID = "S"
	exch Method   = "exchange"
	push Method   = "push"
	pop  Method   = "pop"
)

// fig3H1 is history H1 of the paper's Figure 3: three overlapping
// exchange operations; t1 and t2 swap 3 and 4, t3 fails.
func fig3H1() History {
	return History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Inv(3, objE, exch, Int(7)),
		Res(1, objE, exch, Pair(true, 4)),
		Res(2, objE, exch, Pair(true, 3)),
		Res(3, objE, exch, Pair(false, 7)),
	}
}

// fig3H2 is history H2 of Figure 3: the swap pair overlaps, t3's failed
// exchange runs entirely after them.
func fig3H2() History {
	return History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(1, objE, exch, Pair(true, 4)),
		Res(2, objE, exch, Pair(true, 3)),
		Inv(3, objE, exch, Int(7)),
		Res(3, objE, exch, Pair(false, 7)),
	}
}

// fig3H3 is the sequential history H3 of Figure 3: the undesired
// "explanation" of H1 in which operations are serialized.
func fig3H3() History {
	return History{
		Inv(1, objE, exch, Int(3)),
		Res(1, objE, exch, Pair(true, 4)),
		Inv(2, objE, exch, Int(4)),
		Res(2, objE, exch, Pair(true, 3)),
		Inv(3, objE, exch, Int(7)),
		Res(3, objE, exch, Pair(false, 7)),
	}
}

func TestIsSequential(t *testing.T) {
	tests := []struct {
		name string
		h    History
		want bool
	}{
		{"empty", History{}, true},
		{"H3 sequential", fig3H3(), true},
		{"H1 concurrent", fig3H1(), false},
		{"H2 partly concurrent", fig3H2(), false},
		{"starts with response", History{Res(1, objE, exch, Int(1))}, false},
		// A trailing pending invocation is a valid alternation prefix
		// (Definition 2), as in Herlihy-Wing.
		{"lone invocation", History{Inv(1, objE, exch, Int(1))}, true},
		{"mismatched response thread", History{
			Inv(1, objE, exch, Int(1)),
			Res(2, objE, exch, Int(1)),
		}, false},
		{"mismatched response method", History{
			Inv(1, objS, push, Int(1)),
			Res(1, objS, pop, Bool(true)),
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.IsSequential(); got != tt.want {
				t.Errorf("IsSequential() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsWellFormed(t *testing.T) {
	tests := []struct {
		name string
		h    History
		want bool
	}{
		{"empty", History{}, true},
		{"H1", fig3H1(), true},
		{"H2", fig3H2(), true},
		{"H3", fig3H3(), true},
		{"pending ok", History{Inv(1, objE, exch, Int(3))}, true},
		{"double invocation same thread", History{
			Inv(1, objE, exch, Int(3)),
			Inv(1, objE, exch, Int(4)),
		}, false},
		{"response without invocation", History{
			Res(1, objE, exch, Pair(true, 4)),
		}, false},
		{"response mismatch", History{
			Inv(1, objE, exch, Int(3)),
			Res(1, objS, push, Bool(true)),
		}, false},
		{"interleaved distinct threads", History{
			Inv(1, objE, exch, Int(3)),
			Inv(2, objE, exch, Int(4)),
			Res(2, objE, exch, Pair(true, 3)),
			Res(1, objE, exch, Pair(true, 4)),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.IsWellFormed(); got != tt.want {
				t.Errorf("IsWellFormed() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsComplete(t *testing.T) {
	if !fig3H1().IsComplete() {
		t.Error("H1 should be complete")
	}
	pending := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(1, objE, exch, Pair(true, 4)),
	}
	if pending.IsComplete() {
		t.Error("history with pending t2 should not be complete")
	}
	illFormed := History{Res(1, objE, exch, Int(1))}
	if illFormed.IsComplete() {
		t.Error("ill-formed history should not be complete")
	}
}

func TestPendingThreads(t *testing.T) {
	h := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(1, objE, exch, Pair(true, 4)),
		Inv(3, objE, exch, Int(5)),
		Inv(1, objE, exch, Int(9)),
	}
	got := h.PendingThreads()
	want := []ThreadID{2, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PendingThreads() = %v, want %v", got, want)
	}
	if n := len(fig3H1().PendingThreads()); n != 0 {
		t.Errorf("complete history has %d pending threads, want 0", n)
	}
}

func TestDropPending(t *testing.T) {
	h := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
		Res(1, objE, exch, Pair(true, 4)),
	}
	got := h.DropPending()
	want := History{
		Inv(1, objE, exch, Int(3)),
		Res(1, objE, exch, Pair(true, 4)),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DropPending() = %v, want %v", got, want)
	}
	if !got.IsComplete() {
		t.Error("DropPending result should be complete")
	}
	// Dropping from a complete history is the identity.
	if !reflect.DeepEqual(fig3H1().DropPending(), fig3H1()) {
		t.Error("DropPending on complete history should be identity")
	}
	// A re-invocation after a completed call survives.
	h2 := History{
		Inv(1, objE, exch, Int(3)),
		Res(1, objE, exch, Pair(false, 3)),
		Inv(1, objE, exch, Int(5)),
	}
	got2 := h2.DropPending()
	if len(got2) != 2 || !got2.IsComplete() {
		t.Errorf("DropPending() = %v, want first op only", got2)
	}
}

func TestExtend(t *testing.T) {
	h := History{
		Inv(1, objE, exch, Int(3)),
		Inv(2, objE, exch, Int(4)),
	}
	got, err := h.Extend(map[ThreadID]Value{1: Pair(true, 4)})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if len(got) != 3 || !got[2].IsRes() || got[2].Thread != 1 || got[2].Ret != Pair(true, 4) {
		t.Errorf("Extend() = %v", got)
	}
	if got.IsComplete() {
		t.Error("t2 still pending; must not be complete")
	}
	if _, err := h.Extend(map[ThreadID]Value{9: Unit()}); err == nil {
		t.Error("Extend with unknown thread should error")
	}
	// Original history unchanged.
	if len(h) != 2 {
		t.Error("Extend must not mutate receiver")
	}
}

func TestProjections(t *testing.T) {
	h := fig3H1()
	h1 := h.ByThread(1)
	if len(h1) != 2 || !h1.IsSequential() {
		t.Errorf("H|t1 = %v, want sequential pair", h1)
	}
	if got := len(h.ByObject(objE)); got != 6 {
		t.Errorf("|H|E| = %d, want 6", got)
	}
	if got := len(h.ByObject(objS)); got != 0 {
		t.Errorf("|H|S| = %d, want 0", got)
	}
	mixed := h.Append(Inv(4, objS, push, Int(9)))
	if got := len(mixed.ByObject(objS)); got != 1 {
		t.Errorf("|H'|S| = %d, want 1", got)
	}
}

func TestThreadsObjects(t *testing.T) {
	h := fig3H1().Append(Inv(9, objS, push, Int(1)))
	if got := h.Threads(); !reflect.DeepEqual(got, []ThreadID{1, 2, 3, 9}) {
		t.Errorf("Threads() = %v", got)
	}
	if got := h.Objects(); !reflect.DeepEqual(got, []ObjectID{objE, objS}) {
		t.Errorf("Objects() = %v", got)
	}
}

func TestWellFormedProjectionsAreSequential(t *testing.T) {
	// Definition 2: H is well-formed iff every H|t is sequential.
	for _, h := range []History{fig3H1(), fig3H2(), fig3H3()} {
		for _, tid := range h.Threads() {
			if !h.ByThread(tid).IsSequential() {
				t.Errorf("projection of well-formed history to %v is not sequential", tid)
			}
		}
	}
}

func TestAppendDoesNotAlias(t *testing.T) {
	h := make(History, 0, 8)
	h = append(h, Inv(1, objE, exch, Int(1)))
	a := h.Append(Res(1, objE, exch, Pair(false, 1)))
	b := h.Append(Res(1, objE, exch, Pair(true, 2)))
	if a[1].Ret == b[1].Ret {
		t.Error("Append aliased backing arrays")
	}
}
