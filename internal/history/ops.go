package history

import "fmt"

// Op is an operation of a concurrent object: an invocation paired with its
// matching response (Definition 4's OP(H, i)). A pending operation (an
// invocation with no response) has Pending == true and a zero Ret.
type Op struct {
	Thread ThreadID
	Object ObjectID
	Method Method
	Arg    Value
	Ret    Value
	// InvIndex and ResIndex locate the operation's actions within the
	// history it was extracted from; ResIndex is -1 for pending operations.
	InvIndex int
	ResIndex int
	Pending  bool
}

// String renders the operation in the paper's notation (t, f(n) ▷ n').
func (op Op) String() string {
	if op.Pending {
		return fmt.Sprintf("(%s, %s.%s(%s) ▷ ?)", op.Thread, op.Object, op.Method, op.Arg)
	}
	return fmt.Sprintf("(%s, %s.%s(%s) ▷ %s)", op.Thread, op.Object, op.Method, op.Arg, op.Ret)
}

// Operations extracts the operations of the well-formed history h, in order
// of invocation. Pending invocations yield operations with Pending set.
func (h History) Operations() []Op {
	var ops []Op
	open := make(map[ThreadID]int) // thread -> index into ops
	for i, e := range h {
		switch e.Kind {
		case Invoke:
			open[e.Thread] = len(ops)
			ops = append(ops, Op{
				Thread:   e.Thread,
				Object:   e.Object,
				Method:   e.Method,
				Arg:      e.Arg,
				InvIndex: i,
				ResIndex: -1,
				Pending:  true,
			})
		case Respond:
			if j, ok := open[e.Thread]; ok {
				ops[j].Ret = e.Ret
				ops[j].ResIndex = i
				ops[j].Pending = false
				delete(open, e.Thread)
			}
		}
	}
	return ops
}

// PrecedesRT reports whether operation a really precedes operation b in the
// real-time order ≺H (Definition 3): a's response occurs before b's
// invocation. A pending operation never precedes anything; every operation
// whose response precedes a pending operation's invocation precedes it.
func PrecedesRT(a, b Op) bool {
	if a.Pending {
		return false
	}
	return a.ResIndex < b.InvIndex
}

// Concurrent reports whether operations a and b overlap (neither really
// precedes the other).
func Concurrent(a, b Op) bool {
	return !PrecedesRT(a, b) && !PrecedesRT(b, a)
}

// RTOrder computes the real-time order over the given operations as an
// adjacency matrix: order[i][j] is true iff ops[i] ≺H ops[j].
func RTOrder(ops []Op) [][]bool {
	n := len(ops)
	order := make([][]bool, n)
	for i := range order {
		order[i] = make([]bool, n)
		for j := range order[i] {
			if i != j {
				order[i][j] = PrecedesRT(ops[i], ops[j])
			}
		}
	}
	return order
}

// FromOps reconstructs a complete history from operations laid out so that
// each operation's actions appear at its recorded indices. It is the inverse
// of Operations for complete histories and is mainly useful for building
// test fixtures: pass operations with fresh InvIndex/ResIndex positions and
// the events are placed accordingly.
func FromOps(ops []Op) (History, error) {
	max := -1
	for _, op := range ops {
		if op.Pending {
			if op.InvIndex > max {
				max = op.InvIndex
			}
			continue
		}
		if op.ResIndex <= op.InvIndex {
			return nil, fmt.Errorf("history: op %v has ResIndex <= InvIndex", op)
		}
		if op.ResIndex > max {
			max = op.ResIndex
		}
	}
	slots := make([]*Event, max+1)
	place := func(i int, e Event) error {
		if i < 0 || i >= len(slots) {
			return fmt.Errorf("history: index %d out of range", i)
		}
		if slots[i] != nil {
			return fmt.Errorf("history: index %d used twice", i)
		}
		slots[i] = &e
		return nil
	}
	for _, op := range ops {
		if err := place(op.InvIndex, Inv(op.Thread, op.Object, op.Method, op.Arg)); err != nil {
			return nil, err
		}
		if !op.Pending {
			if err := place(op.ResIndex, Res(op.Thread, op.Object, op.Method, op.Ret)); err != nil {
				return nil, err
			}
		}
	}
	var h History
	for _, s := range slots {
		if s != nil {
			h = append(h, *s)
		}
	}
	if !h.IsWellFormed() {
		return nil, fmt.Errorf("history: FromOps produced an ill-formed history")
	}
	return h, nil
}
