// Package sched is an exhaustive interleaving explorer for finite-state
// concurrent programs. The models in calgo/internal/model encode the
// paper's algorithms as fine-grained atomic step machines; this package
// enumerates every schedule, checking user-supplied invariants on every
// state, justifying every transition (rely/guarantee checking), and
// running a terminal-state check (CAL verification of the produced history
// against the recorded auxiliary trace) on every maximal execution.
//
// The search is a depth-first traversal with a visited set keyed on
// canonical state encodings, so confluent interleavings and retry cycles
// are each explored once.
package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// State is a node of the transition system. Implementations must be
// immutable: Successors returns fresh states.
type State interface {
	// Key is a canonical encoding of the state; two states are identified
	// iff their keys are equal.
	Key() string
	// Successors enumerates every atomic step any thread can take.
	Successors() []Succ
	// Done reports whether the state is terminal by completion (every
	// thread finished its program). States with no successors that are
	// not Done are deadlocks and reported as errors.
	Done() bool
}

// Succ is one outgoing transition.
type Succ struct {
	// Thread is the index of the stepping thread.
	Thread int
	// Label names the action taken, e.g. "INIT", "XCHG", "tau". Labels
	// appear in counterexample traces and are passed to the Transition
	// hook.
	Label string
	// Next is the successor state.
	Next State
}

// Options configures an exploration.
type Options struct {
	// Invariant, if set, is checked on every reached state.
	Invariant func(State) error
	// Transition, if set, is checked on every explored transition; use it
	// for rely/guarantee action justification.
	Transition func(from State, s Succ) error
	// Terminal, if set, is checked on every Done state.
	Terminal func(State) error
	// MaxStates bounds the number of distinct states visited
	// (default 1_000_000).
	MaxStates int
	// AllowDeadlock suppresses the deadlock error for non-Done states
	// without successors. Bounded-retry models use it: a thread that
	// exhausted its retry budget halts without completing its program.
	AllowDeadlock bool
	// Context, if set, cancels the exploration cooperatively: the search
	// polls it periodically and returns ErrInterrupted (wrapping the
	// context's error) with partial Stats. Nil means never cancelled.
	Context context.Context
}

// Stats summarizes an exploration.
type Stats struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of transitions explored.
	Transitions int
	// Terminals is the number of terminal (Done or halted) states reached.
	Terminals int
	// MaxDepth is the deepest schedule explored.
	MaxDepth int
}

// ErrMaxStates is returned when the exploration exceeds its state budget.
var ErrMaxStates = errors.New("sched: state budget exceeded")

// ErrInterrupted is returned when Options.Context is cancelled or its
// deadline expires mid-exploration; errors.Is also matches the context's
// own error (context.Canceled or context.DeadlineExceeded) via wrapping.
var ErrInterrupted = errors.New("sched: exploration interrupted")

// ViolationError describes a check failure together with the schedule that
// reached it.
type ViolationError struct {
	// Kind is "invariant", "transition", "terminal" or "deadlock".
	Kind string
	// Err is the underlying check failure.
	Err error
	// Schedule is the sequence of "t0:LABEL" steps from the initial state.
	Schedule []string
}

// Error implements error.
func (v *ViolationError) Error() string {
	return fmt.Sprintf("sched: %s violation: %v\nschedule: %s",
		v.Kind, v.Err, strings.Join(v.Schedule, " "))
}

// Unwrap exposes the underlying failure.
func (v *ViolationError) Unwrap() error { return v.Err }

// Explore exhaustively explores the transition system rooted at init.
func Explore(init State, opts Options) (Stats, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = 1_000_000
	}
	e := &explorer{opts: opts, visited: make(map[string]bool)}
	if err := e.check("invariant", opts.Invariant, init); err != nil {
		return e.stats, err
	}
	err := e.dfs(init, 0)
	return e.stats, err
}

type explorer struct {
	opts     Options
	visited  map[string]bool
	stats    Stats
	schedule []string
	work     int // transitions since the last context poll
}

// poll checks the cancellation context every 256 transitions; branching in
// these models is narrow, so a few hundred transitions pass in microseconds
// and cancellation latency stays far below any useful deadline.
func (e *explorer) poll() error {
	if e.opts.Context == nil {
		return nil
	}
	e.work++
	if e.work&255 != 0 {
		return nil
	}
	if err := e.opts.Context.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, err)
	}
	return nil
}

func (e *explorer) check(kind string, fn func(State) error, s State) error {
	if fn == nil {
		return nil
	}
	if err := fn(s); err != nil {
		return &ViolationError{Kind: kind, Err: err, Schedule: append([]string(nil), e.schedule...)}
	}
	return nil
}

func (e *explorer) dfs(s State, depth int) error {
	key := s.Key()
	if e.visited[key] {
		return nil
	}
	e.visited[key] = true
	e.stats.States++
	if e.stats.States > e.opts.MaxStates {
		return fmt.Errorf("%w (limit %d)", ErrMaxStates, e.opts.MaxStates)
	}
	if depth > e.stats.MaxDepth {
		e.stats.MaxDepth = depth
	}

	succs := s.Successors()
	if len(succs) == 0 {
		e.stats.Terminals++
		if !s.Done() && !e.opts.AllowDeadlock {
			return &ViolationError{
				Kind:     "deadlock",
				Err:      errors.New("state has no successors but threads are unfinished"),
				Schedule: append([]string(nil), e.schedule...),
			}
		}
		return e.check("terminal", e.opts.Terminal, s)
	}
	for _, succ := range succs {
		if err := e.poll(); err != nil {
			return err
		}
		e.schedule = append(e.schedule, fmt.Sprintf("t%d:%s", succ.Thread, succ.Label))
		e.stats.Transitions++
		if e.opts.Transition != nil {
			if err := e.opts.Transition(s, succ); err != nil {
				verr := &ViolationError{Kind: "transition", Err: err, Schedule: append([]string(nil), e.schedule...)}
				e.schedule = e.schedule[:len(e.schedule)-1]
				return verr
			}
		}
		if err := e.check("invariant", e.opts.Invariant, succ.Next); err != nil {
			e.schedule = e.schedule[:len(e.schedule)-1]
			return err
		}
		err := e.dfs(succ.Next, depth+1)
		e.schedule = e.schedule[:len(e.schedule)-1]
		if err != nil {
			return err
		}
	}
	return nil
}
