// Package sched is an exhaustive interleaving explorer for finite-state
// concurrent programs. The models in calgo/internal/model encode the
// paper's algorithms as fine-grained atomic step machines; this package
// enumerates every schedule, checking user-supplied invariants on every
// state, justifying every transition (rely/guarantee checking), and
// running a terminal-state check (CAL verification of the produced history
// against the recorded auxiliary trace) on every maximal execution.
//
// The search is a frontier exploration over a visited set keyed on
// canonical state encodings, so confluent interleavings and retry cycles
// are each explored once. It runs on a pool of work-stealing workers
// (Options.Parallelism, default GOMAXPROCS): each worker owns a LIFO deque
// — giving depth-first locality — and steals the oldest (shallowest)
// frontier nodes from its peers when its own deque drains. The visited set
// is sharded by key hash so workers do not serialize on one lock, and
// counterexample schedules are reconstructed lazily from parent pointers,
// so no per-transition bookkeeping is materialized on the happy path.
//
// Every state is expanded exactly once regardless of worker count, so
// Stats.States, Stats.Transitions and Stats.Terminals are identical for
// every Parallelism value on a given model. Traversal order is not fixed
// above one worker: MaxDepth (the depth at which states happen to be
// claimed first) and, when several violations exist, which one is reported
// may vary from run to run.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calgo/internal/obs"
)

// State is a node of the transition system. Implementations must be
// immutable: Successors returns fresh states. Immutability is also what
// makes states safe to hand across exploration workers.
type State interface {
	// Key is a canonical encoding of the state; two states are identified
	// iff their keys are equal.
	Key() string
	// Successors enumerates every atomic step any thread can take.
	Successors() []Succ
	// Done reports whether the state is terminal by completion (every
	// thread finished its program). States with no successors that are
	// not Done are deadlocks and reported as errors.
	Done() bool
}

// Succ is one outgoing transition.
type Succ struct {
	// Thread is the index of the stepping thread.
	Thread int
	// Label names the action taken, e.g. "INIT", "XCHG", "tau". Labels
	// appear in counterexample traces and are passed to the Transition
	// hook.
	Label string
	// Next is the successor state.
	Next State
}

// Options configures an exploration. The Invariant, Transition and
// Terminal hooks run concurrently on the worker pool and must be safe for
// concurrent use; hooks that only read the (immutable) states they are
// given are safe by construction.
type Options struct {
	// Invariant, if set, is checked once on every reached state.
	Invariant func(State) error
	// Transition, if set, is checked on every explored transition; use it
	// for rely/guarantee action justification.
	Transition func(from State, s Succ) error
	// Terminal, if set, is checked on every Done state.
	Terminal func(State) error
	// MaxStates bounds the number of distinct states visited
	// (default 1_000_000).
	MaxStates int
	// AllowDeadlock suppresses the deadlock error for non-Done states
	// without successors. Bounded-retry models use it: a thread that
	// exhausted its retry budget halts without completing its program.
	AllowDeadlock bool
	// Parallelism is the number of exploration workers; 0 (the default)
	// means GOMAXPROCS. States, Transitions and Terminals do not depend
	// on it.
	Parallelism int

	// Observability sinks, set through WithTracer, WithMetrics,
	// WithProgress and WithLive; all disabled (nil/zero) by default.
	// Every hook site nil-checks, so the disabled hot path costs one
	// branch.
	tracer        obs.Tracer
	metrics       *obs.Metrics
	progressEvery time.Duration
	progressFn    func(obs.Progress)
	live          *obs.LiveRun
}

// Option configures an exploration; see Explore.
type Option func(*Options)

// WithInvariant checks fn once on every reached state.
func WithInvariant(fn func(State) error) Option { return func(o *Options) { o.Invariant = fn } }

// WithTransition checks fn on every explored transition; use it for
// rely/guarantee action justification.
func WithTransition(fn func(from State, s Succ) error) Option {
	return func(o *Options) { o.Transition = fn }
}

// WithTerminal checks fn on every Done state.
func WithTerminal(fn func(State) error) Option { return func(o *Options) { o.Terminal = fn } }

// WithMaxStates bounds the number of distinct states visited before the
// exploration gives up with ErrMaxStates (default 1_000_000).
func WithMaxStates(n int) Option { return func(o *Options) { o.MaxStates = n } }

// WithDeadlockAllowed suppresses the deadlock error for non-Done states
// without successors; bounded-retry models halt threads that exhausted
// their budget.
func WithDeadlockAllowed() Option { return func(o *Options) { o.AllowDeadlock = true } }

// WithParallelism sets the number of exploration workers; 0 (the
// default) means GOMAXPROCS. It is the same option name the check
// package uses for its batch pool, so the facade can re-export one
// spelling for both.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithTracer attaches search hooks to the exploration: SearchStart
// (argument: worker count), NodeExpand on every expanded state, MemoHit
// on every visited-set suppression, SearchEnd. ElementAdmit/Backtrack
// never fire — the frontier exploration does not backtrack. The tracer
// is shared by all workers and must be safe for concurrent use (the obs
// implementations are).
func WithTracer(t obs.Tracer) Option { return func(o *Options) { o.tracer = t } }

// WithMetrics accumulates exploration totals into the registry: the
// sched.* counters and max-depth gauge (see EXPERIMENTS.md, "Metrics
// schema"). Workers keep private counters; totals are merged into the
// registry once, after the pool drains.
func WithMetrics(m *obs.Metrics) Option { return func(o *Options) { o.metrics = m } }

// WithProgress reports exploration progress (states claimed, states/sec,
// ETA against the state budget) to fn every interval, from a dedicated
// goroutine. The live count is read from the budget counter the
// exploration already maintains, so enabling progress adds no hot-path
// work.
func WithProgress(every time.Duration, fn func(obs.Progress)) Option {
	return func(o *Options) { o.progressEvery, o.progressFn = every, fn }
}

// WithLive attaches the exploration to a LiveRun view: the state counter
// and per-worker claim/steal counters become pollable (the ops server's
// /statusz reads them). Pull-based — nothing is pushed, so enabling it
// adds two atomic increments per expanded state and nothing else.
func WithLive(l *obs.LiveRun) Option { return func(o *Options) { o.live = l } }

// Stats summarizes an exploration.
type Stats struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of transitions explored.
	Transitions int
	// Terminals is the number of terminal (Done or halted) states reached.
	Terminals int
	// MaxDepth is the deepest schedule explored. Unlike the counts above
	// it depends on traversal order and may vary across worker counts.
	MaxDepth int
	// Steals is the number of frontier nodes taken from another worker's
	// deque. Like MaxDepth it is schedule-dependent: zero with one worker,
	// and run-to-run variable above that.
	Steals int
}

// ErrMaxStates is returned when the exploration exceeds its state budget.
var ErrMaxStates = errors.New("sched: state budget exceeded")

// ErrInterrupted is returned when Options.Context is cancelled or its
// deadline expires mid-exploration; errors.Is also matches the context's
// own error (context.Canceled or context.DeadlineExceeded) via wrapping.
var ErrInterrupted = errors.New("sched: exploration interrupted")

// Step is one step of a counterexample schedule: thread Thread took the
// transition labeled Label.
type Step struct {
	// Thread is the index of the stepping thread.
	Thread int `json:"thread"`
	// Label names the action taken, e.g. "INIT", "XCHG", "tau".
	Label string `json:"label"`
}

// String renders the step in the traditional "t0:LABEL" form.
func (s Step) String() string { return "t" + strconv.Itoa(s.Thread) + ":" + s.Label }

// ViolationError describes a check failure together with the schedule that
// reached it.
type ViolationError struct {
	// Kind is "invariant", "transition", "terminal" or "deadlock".
	Kind string
	// Err is the underlying check failure.
	Err error
	// Schedule is the sequence of steps from the initial state to the
	// violating one.
	Schedule []Step
}

// ScheduleStrings renders the schedule in the former "t0:LABEL" string
// form, kept for callers that log or diff schedules textually.
func (v *ViolationError) ScheduleStrings() []string {
	out := make([]string, len(v.Schedule))
	for i, s := range v.Schedule {
		out[i] = s.String()
	}
	return out
}

// Error implements error.
func (v *ViolationError) Error() string {
	return fmt.Sprintf("sched: %s violation: %v\nschedule: %s",
		v.Kind, v.Err, strings.Join(v.ScheduleStrings(), " "))
}

// Unwrap exposes the underlying failure.
func (v *ViolationError) Unwrap() error { return v.Err }

// node is one claimed state of the frontier. The parent chain records how
// the state was first reached; a schedule is only materialized from it
// when a violation needs reporting, so the exploration hot path performs
// no string formatting. Drained subtrees become unreachable and are
// reclaimed by the garbage collector.
type node struct {
	state  State
	parent *node
	thread int
	label  string
	depth  int
}

// schedule walks the parent chain and materializes the step list from
// the initial state to this node.
func (n *node) schedule() []Step {
	depth := 0
	for m := n; m.parent != nil; m = m.parent {
		depth++
	}
	out := make([]Step, depth)
	for m := n; m.parent != nil; m = m.parent {
		depth--
		out[depth] = Step{Thread: m.thread, Label: m.label}
	}
	return out
}

// visitedShards is the shard count of the visited set; a power of two so
// shard selection is a mask. 64 shards keep contention negligible for any
// plausible worker count.
const visitedShards = 64

// fnv64 is FNV-1a over the key string; allocation-free.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// visitedSet is a sharded string set. Claim is the only operation:
// insert-if-absent, reporting whether the caller won the insertion.
type visitedSet struct {
	shards [visitedShards]struct {
		mu sync.Mutex
		m  map[string]struct{}
		_  [40]byte // pad to a cache line; shards are hammered by all workers
	}
}

func (v *visitedSet) init() {
	for i := range v.shards {
		v.shards[i].m = make(map[string]struct{})
	}
}

// claim records key as visited and reports whether it was new.
func (v *visitedSet) claim(key string) bool {
	sh := &v.shards[fnv64(key)&(visitedShards-1)]
	sh.mu.Lock()
	_, seen := sh.m[key]
	if !seen {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	return !seen
}

// deque is a worker's work queue: the owner pushes and pops at the tail
// (depth-first), thieves take from the head (the shallowest, and therefore
// largest, pending subtrees).
type deque struct {
	mu   sync.Mutex
	buf  []*node
	head int
}

func (d *deque) push(n *node) {
	d.mu.Lock()
	d.buf = append(d.buf, n)
	d.mu.Unlock()
}

func (d *deque) pop() *node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
		return nil
	}
	n := d.buf[len(d.buf)-1]
	d.buf[len(d.buf)-1] = nil
	d.buf = d.buf[:len(d.buf)-1]
	return n
}

func (d *deque) steal() *node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return nil
	}
	n := d.buf[d.head]
	d.buf[d.head] = nil
	d.head++
	return n
}

// worker is the per-worker state: its deque, privately accumulated Stats
// (merged once at the end), scratch space, and the context poll counter.
type worker struct {
	deque deque
	stats Stats
	kids  []*node
	work  int
	_     [64]byte // keep workers off each other's cache lines
}

type engine struct {
	ctx     context.Context // cancels the exploration; nil means never
	opts    Options
	visited visitedSet
	workers []worker
	pending atomic.Int64 // claimed nodes not yet fully expanded
	states  atomic.Int64 // global claim count, for the MaxStates budget
	stop    atomic.Bool
	errMu   sync.Mutex
	err     error
}

// fail records the first failure and stops the exploration. Above one
// worker "first" is the first to be recorded, not a fixed traversal order.
func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.stop.Store(true)
}

func (e *engine) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Explore exhaustively explores the transition system rooted at init.
// The context cancels the exploration cooperatively: cancellation and
// deadline expiry return ErrInterrupted (wrapping the context's error)
// with partial Stats. Nil means never cancelled.
func Explore(ctx context.Context, init State, opts ...Option) (Stats, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return explore(ctx, init, o)
}

func explore(ctx context.Context, init State, opts Options) (Stats, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = 1_000_000
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := &engine{ctx: ctx, opts: opts, workers: make([]worker, par)}
	e.visited.init()

	// The initial state is checked inline (empty schedule) before the
	// pool starts; workers check the invariant once on every state they
	// claim after that.
	if opts.Invariant != nil {
		if err := opts.Invariant(init); err != nil {
			return Stats{}, &ViolationError{Kind: "invariant", Err: err}
		}
	}
	e.visited.claim(init.Key())
	w0 := &e.workers[0]
	w0.stats.States = 1
	e.states.Store(1)
	if opts.MaxStates < 1 {
		return w0.stats, fmt.Errorf("%w (limit %d)", ErrMaxStates, opts.MaxStates)
	}
	w0.deque.push(&node{state: init})
	e.pending.Store(1)

	if opts.tracer != nil {
		opts.tracer.SearchStart(par)
	}
	if opts.progressEvery > 0 && opts.progressFn != nil {
		// The budget counter the exploration already maintains doubles as
		// the live progress count; no extra hot-path work.
		stop := obs.StartProgress(opts.progressEvery, int64(opts.MaxStates), e.states.Load, opts.progressFn)
		defer stop()
	}
	// The same counter backs the live /statusz view when one is attached.
	opts.live.StartSearch("explore", int64(opts.MaxStates), e.states.Load, par)
	defer opts.live.EndSearch()

	// Workers run under pprof labels so CPU profiles attribute time per
	// worker and phase.
	labelCtx := ctx
	if labelCtx == nil {
		labelCtx = context.Background()
	}
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pprof.Do(labelCtx, pprof.Labels(
				"calgo_worker", strconv.Itoa(id),
				"calgo_phase", "explore",
			), func(context.Context) { e.run(id) })
		}(i)
	}
	wg.Wait()

	var stats Stats
	for i := range e.workers {
		ws := &e.workers[i].stats
		stats.States += ws.States
		stats.Transitions += ws.Transitions
		stats.Terminals += ws.Terminals
		stats.Steals += ws.Steals
		if ws.MaxDepth > stats.MaxDepth {
			stats.MaxDepth = ws.MaxDepth
		}
	}
	err := e.firstErr()
	if m := opts.metrics; m != nil {
		m.Counter("sched.explorations").Inc()
		m.Counter("sched.states").Add(int64(stats.States))
		m.Counter("sched.transitions").Add(int64(stats.Transitions))
		m.Counter("sched.terminals").Add(int64(stats.Terminals))
		m.Counter("sched.steals").Add(int64(stats.Steals))
		m.Gauge("sched.max_depth").SetMax(int64(stats.MaxDepth))
	}
	if opts.tracer != nil {
		opts.tracer.SearchEnd(exploreVerdict(err), int64(stats.States))
	}
	return stats, err
}

// exploreVerdict maps an exploration outcome onto the tracer's verdict
// vocabulary: OK, Violation, or Unknown for budget/cancellation aborts.
func exploreVerdict(err error) string {
	switch {
	case err == nil:
		return "OK"
	case errors.As(err, new(*ViolationError)):
		return "Violation"
	default:
		return "Unknown"
	}
}

// run is a worker's main loop: drain the own deque depth-first, steal when
// empty, exit when the exploration stopped or no work remains anywhere.
func (e *engine) run(id int) {
	w := &e.workers[id]
	wl := e.opts.live.Worker(id) // nil when no LiveRun is attached
	for {
		if e.stop.Load() {
			return
		}
		n := w.deque.pop()
		if n == nil {
			if n = e.steal(id); n != nil {
				w.stats.Steals++
				if wl != nil {
					wl.Steals.Add(1)
				}
			}
		}
		if n == nil {
			if e.pending.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		if wl != nil {
			wl.Claimed.Add(1)
		}
		e.process(w, n)
		e.pending.Add(-1)
	}
}

// steal scans the other workers round-robin for a shallow frontier node.
func (e *engine) steal(id int) *node {
	for i := 1; i < len(e.workers); i++ {
		if n := e.workers[(id+i)%len(e.workers)].deque.steal(); n != nil {
			return n
		}
	}
	return nil
}

// poll checks the cancellation context every 256 transitions; branching in
// these models is narrow, so a few hundred transitions pass in microseconds
// and cancellation latency stays far below any useful deadline.
func (e *engine) poll(w *worker) error {
	if e.ctx == nil {
		return nil
	}
	w.work++
	if w.work&255 != 0 {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, err)
	}
	return nil
}

// process expands one claimed state: invariant, terminal/deadlock checks,
// then every outgoing transition. Newly claimed successors are pushed in
// reverse so the owner pops them in successor order — with one worker this
// reproduces the sequential depth-first traversal.
func (e *engine) process(w *worker, n *node) {
	if n.parent != nil && e.opts.Invariant != nil {
		if err := e.opts.Invariant(n.state); err != nil {
			e.fail(&ViolationError{Kind: "invariant", Err: err, Schedule: n.schedule()})
			return
		}
	}
	if n.depth > w.stats.MaxDepth {
		w.stats.MaxDepth = n.depth
	}
	if e.opts.tracer != nil {
		e.opts.tracer.NodeExpand(n.depth, e.states.Load())
	}
	succs := n.state.Successors()
	if len(succs) == 0 {
		w.stats.Terminals++
		if !n.state.Done() && !e.opts.AllowDeadlock {
			e.fail(&ViolationError{
				Kind:     "deadlock",
				Err:      errors.New("state has no successors but threads are unfinished"),
				Schedule: n.schedule(),
			})
			return
		}
		if e.opts.Terminal != nil {
			if err := e.opts.Terminal(n.state); err != nil {
				e.fail(&ViolationError{Kind: "terminal", Err: err, Schedule: n.schedule()})
			}
		}
		return
	}

	kids := w.kids[:0]
	for _, succ := range succs {
		if err := e.poll(w); err != nil {
			e.fail(err)
			return
		}
		w.stats.Transitions++
		if e.opts.Transition != nil {
			if err := e.opts.Transition(n.state, succ); err != nil {
				e.fail(&ViolationError{
					Kind:     "transition",
					Err:      err,
					Schedule: append(n.schedule(), Step{Thread: succ.Thread, Label: succ.Label}),
				})
				return
			}
		}
		if !e.visited.claim(succ.Next.Key()) {
			if e.opts.tracer != nil {
				e.opts.tracer.MemoHit(n.depth + 1)
			}
			continue
		}
		w.stats.States++
		if total := e.states.Add(1); total > int64(e.opts.MaxStates) {
			e.fail(fmt.Errorf("%w (limit %d)", ErrMaxStates, e.opts.MaxStates))
			return
		}
		kids = append(kids, &node{
			state:  succ.Next,
			parent: n,
			thread: succ.Thread,
			label:  succ.Label,
			depth:  n.depth + 1,
		})
	}
	e.pending.Add(int64(len(kids)))
	for i := len(kids) - 1; i >= 0; i-- {
		w.deque.push(kids[i])
	}
	w.kids = kids[:0]
}
