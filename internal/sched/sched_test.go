package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// counterState is a toy machine: n threads each increment a shared counter
// k times; one atomic step per increment.
type counterState struct {
	remaining []int
	total     int
	stuck     bool // when set, threads refuse to step (deadlock fixture)
}

func (s counterState) Key() string {
	return fmt.Sprintf("%v|%d|%t", s.remaining, s.total, s.stuck)
}

func (s counterState) Done() bool {
	for _, r := range s.remaining {
		if r > 0 {
			return false
		}
	}
	return true
}

func (s counterState) Successors() []Succ {
	if s.stuck {
		return nil
	}
	var out []Succ
	for t, r := range s.remaining {
		if r == 0 {
			continue
		}
		next := counterState{remaining: append([]int(nil), s.remaining...), total: s.total + 1}
		next.remaining[t]--
		out = append(out, Succ{Thread: t, Label: "inc", Next: next})
	}
	return out
}

func TestExploreCountsStates(t *testing.T) {
	// 2 threads x 2 increments: states form the grid (2-r1, 2-r2) and the
	// total is determined by position, so states = 3*3 = 9.
	stats, err := Explore(context.Background(), counterState{remaining: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.States != 9 {
		t.Errorf("States = %d, want 9", stats.States)
	}
	if stats.Terminals != 1 {
		t.Errorf("Terminals = %d, want 1 (confluent)", stats.Terminals)
	}
	if stats.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", stats.MaxDepth)
	}
}

func TestExploreInvariantViolation(t *testing.T) {
	_, err := Explore(context.Background(),
		counterState{remaining: []int{1, 1}},
		WithInvariant(func(s State) error {
			if s.(counterState).total >= 2 {
				return errors.New("counter reached 2")
			}
			return nil
		}))
	var verr *ViolationError
	if !errors.As(err, &verr) || verr.Kind != "invariant" {
		t.Fatalf("err = %v, want invariant violation", err)
	}
	if len(verr.Schedule) != 2 {
		t.Errorf("schedule = %v, want two steps", verr.Schedule)
	}
	if !strings.Contains(verr.Error(), "schedule:") {
		t.Errorf("Error() should include the schedule: %s", verr)
	}
	if !errors.Is(err, verr.Err) {
		t.Error("Unwrap should expose the underlying error")
	}
}

func TestExploreTransitionHook(t *testing.T) {
	var labels []string
	_, err := Explore(context.Background(),
		counterState{remaining: []int{1}},
		WithTransition(func(from State, s Succ) error {
			labels = append(labels, fmt.Sprintf("t%d:%s", s.Thread, s.Label))
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0] != "t0:inc" {
		t.Errorf("labels = %v", labels)
	}
	// A failing transition hook aborts with the schedule.
	_, err = Explore(context.Background(),
		counterState{remaining: []int{1}},
		WithTransition(func(State, Succ) error { return errors.New("nope") }))
	var verr *ViolationError
	if !errors.As(err, &verr) || verr.Kind != "transition" {
		t.Fatalf("err = %v, want transition violation", err)
	}
}

func TestExploreTerminalHook(t *testing.T) {
	calls := 0
	_, err := Explore(context.Background(),
		counterState{remaining: []int{1, 1}},
		WithTerminal(func(s State) error {
			calls++
			if got := s.(counterState).total; got != 2 {
				return fmt.Errorf("terminal total = %d", got)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("terminal hook ran %d times, want 1", calls)
	}
}

func TestExploreDeadlock(t *testing.T) {
	init := counterState{remaining: []int{1}, stuck: true}
	_, err := Explore(context.Background(), init)
	var verr *ViolationError
	if !errors.As(err, &verr) || verr.Kind != "deadlock" {
		t.Fatalf("err = %v, want deadlock violation", err)
	}
	// AllowDeadlock turns it into a terminal.
	stats, err := Explore(context.Background(), init, WithDeadlockAllowed())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Terminals != 1 {
		t.Errorf("Terminals = %d, want 1", stats.Terminals)
	}
}

func TestExploreMaxStatesBound(t *testing.T) {
	_, err := Explore(context.Background(), counterState{remaining: []int{5, 5}}, WithMaxStates(3))
	if !errors.Is(err, ErrMaxStates) {
		t.Fatalf("err = %v, want ErrMaxStates", err)
	}
}

func TestExploreInitialInvariant(t *testing.T) {
	_, err := Explore(context.Background(),
		counterState{remaining: []int{1}},
		WithInvariant(func(s State) error {
			if s.(counterState).total == 0 {
				return errors.New("bad initial state")
			}
			return nil
		}))
	var verr *ViolationError
	if !errors.As(err, &verr) || len(verr.Schedule) != 0 {
		t.Fatalf("initial-state violation should carry an empty schedule: %v", err)
	}
}

func TestExploreRevisitsPruned(t *testing.T) {
	// Transitions into an already-visited state are counted but not
	// re-expanded: with 2x1 increments there are 4 transitions, 5 states.
	stats, err := Explore(context.Background(), counterState{remaining: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transitions != 4 {
		t.Errorf("Transitions = %d, want 4", stats.Transitions)
	}
	if stats.States != 4 {
		t.Errorf("States = %d, want 4 (diamond)", stats.States)
	}
}

func TestExploreContextCancel(t *testing.T) {
	// 6 threads x 6 increments is ~10^5 states — enough transitions that
	// the 256-transition poll interval fires many times.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Explore(ctx,
		counterState{remaining: []int{6, 6, 6, 6, 6, 6}},
		WithMaxStates(10_000_000))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, should wrap context.Canceled", err)
	}
	if stats.States == 0 {
		t.Error("partial stats should survive interruption")
	}
}

func TestExploreContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Explore(ctx,
		counterState{remaining: []int{9, 9, 9, 9, 9, 9, 9, 9}},
		WithMaxStates(1<<30))
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrInterrupted wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("took %v to honour a 20ms deadline", elapsed)
	}
}
