package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestExploreParallelMatchesSequential pins the semantics contract of the
// work-stealing engine: States, Transitions and Terminals are properties
// of the state graph, not the traversal, so every worker count must
// report the same numbers.
func TestExploreParallelMatchesSequential(t *testing.T) {
	init := counterState{remaining: []int{4, 4, 4}}
	want, err := Explore(context.Background(), init, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got, err := Explore(context.Background(), init, WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got.States != want.States || got.Transitions != want.Transitions || got.Terminals != want.Terminals {
			t.Errorf("parallelism %d: stats %+v, want %+v", par, got, want)
		}
	}
}

// TestInvariantRunsOncePerState pins the satellite fix: the invariant is
// evaluated when a state is claimed (expanded), not on every incoming
// edge, so on the 2x2 increment grid (9 states, 12 transitions) it must
// run exactly 9 times.
func TestInvariantRunsOncePerState(t *testing.T) {
	for _, par := range []int{1, 4} {
		var calls atomic.Int64
		stats, err := Explore(context.Background(),
			counterState{remaining: []int{2, 2}},
			WithParallelism(par),
			WithInvariant(func(State) error {
				calls.Add(1)
				return nil
			}))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got := calls.Load(); got != int64(stats.States) {
			t.Errorf("parallelism %d: invariant ran %d times for %d states", par, got, stats.States)
		}
	}
}

// TestExploreParallelFirstViolationSchedule checks that a violation found
// by any worker carries a schedule that replays to the violating state.
func TestExploreParallelFirstViolationSchedule(t *testing.T) {
	_, err := Explore(context.Background(),
		counterState{remaining: []int{3, 3}},
		WithParallelism(4),
		WithInvariant(func(s State) error {
			if s.(counterState).total >= 4 {
				return errors.New("counter reached 4")
			}
			return nil
		}))
	var verr *ViolationError
	if !errors.As(err, &verr) || verr.Kind != "invariant" {
		t.Fatalf("err = %v, want invariant violation", err)
	}
	if len(verr.Schedule) != 4 {
		t.Errorf("schedule %v, want 4 steps to the violating state", verr.Schedule)
	}
	// Replay: the schedule must be a valid path from the initial state.
	st := State(counterState{remaining: []int{3, 3}})
	for i, step := range verr.Schedule {
		found := false
		for _, succ := range st.Successors() {
			if succ.Thread == step.Thread && succ.Label == step.Label {
				st, found = succ.Next, true
				break
			}
		}
		if !found {
			t.Fatalf("schedule step %d (%s) does not match any successor", i, step)
		}
	}
	if st.(counterState).total != 4 {
		t.Errorf("replayed schedule ends at total %d, want 4", st.(counterState).total)
	}
}

// TestVisitedSetClaimOnce stress-tests the sharded visited set under the
// race detector: many goroutines claiming overlapping key sets must
// produce exactly one winner per key.
func TestVisitedSetClaimOnce(t *testing.T) {
	const (
		goroutines = 8
		keys       = 10_000
	)
	var v visitedSet
	v.init()
	var won atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the keys from a different offset so
			// claims collide at staggered times.
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("state-%d", (i+g*keys/goroutines)%keys)
				if v.claim(k) {
					won.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := won.Load(); got != keys {
		t.Errorf("%d successful claims for %d distinct keys", got, keys)
	}
}

// TestVisitedSetShardSpread sanity-checks that the shard hash does not
// degenerate: sequential keys must land in more than one shard.
func TestVisitedSetShardSpread(t *testing.T) {
	used := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		used[fnv64(fmt.Sprintf("state-%d", i))%visitedShards] = true
	}
	if len(used) < visitedShards/2 {
		t.Errorf("1000 keys hit only %d of %d shards", len(used), visitedShards)
	}
}
