// Package recorder implements the paper's auxiliary history variable 𝒯
// (§4): a single global, thread-safe CA-trace that instrumented objects
// append to at their linearization points, together with per-object view
// functions F_o and their recursive composition F̂_o over the object nesting
// structure.
//
// An object o that encapsulates subobjects o1..on registers a view function
// F_o translating CA-elements of its immediate subobjects into CA-traces of
// its own operations. The view T_o of the global trace according to o is
// obtained by recursively applying the subobjects' compositions, then F_o,
// then projecting to o — so clients of o reason purely in terms of o's
// operations without peeking into its implementation. This is what makes
// the verification compositional.
package recorder

import (
	"fmt"
	"sync"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/trace"
)

// ViewFunc is the paper's F_o: a partial function from CA-elements (of o's
// immediate subobjects) to CA-traces containing only operations of o.
// Return ok == false where F_o is undefined; the total extension F̂_o then
// passes the element through unchanged. Returning (nil, true) erases the
// element (F_o(a) = ε).
type ViewFunc func(trace.Element) (trace.Trace, bool)

type objectInfo struct {
	children []history.ObjectID
	fn       ViewFunc
}

// OverflowError reports that a bounded recorder ran out of capacity and
// dropped elements. A trace with dropped elements is useless as evidence —
// any verification over it must be abandoned, not trusted — so the error
// carries enough to size the retry.
type OverflowError struct {
	// Capacity is the bound the recorder was created with.
	Capacity int
	// Dropped counts elements discarded after the trace filled up.
	Dropped int
}

// Error implements error.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("recorder: trace overflowed capacity %d (%d elements dropped)", e.Capacity, e.Dropped)
}

// Recorder is the global auxiliary trace 𝒯 plus the registry of object view
// functions. All methods are safe for concurrent use.
//
// The zero Recorder is ready to use and unbounded.
type Recorder struct {
	mu       sync.Mutex
	t        trace.Trace
	capacity int // 0 = unbounded
	dropped  int
	objects  map[history.ObjectID]*objectInfo
	parent   map[history.ObjectID]history.ObjectID

	// Cached instruments from Instrument; nil when uninstrumented, so the
	// append path pays only a nil check.
	cElements *obs.Counter
	cDropped  *obs.Counter
}

// New returns an empty, unbounded Recorder.
func New() *Recorder { return &Recorder{} }

// NewBounded returns a Recorder that holds at most capacity elements.
// Further appends are dropped (never blocked — instrumented linearization
// points must stay wait-free) and counted; Err reports the overflow.
// capacity < 1 panics: a recorder that can hold nothing is a bug at the
// call site, not a runtime condition.
func NewBounded(capacity int) *Recorder {
	if capacity < 1 {
		panic(fmt.Sprintf("recorder: NewBounded capacity %d < 1", capacity))
	}
	return &Recorder{capacity: capacity}
}

// Err returns nil if the trace is intact, or an *OverflowError if a bounded
// recorder dropped elements. Callers must check it before using Snapshot's
// result as verification evidence: a truncated 𝒯 proves nothing.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dropped == 0 {
		return nil
	}
	return &OverflowError{Capacity: r.capacity, Dropped: r.dropped}
}

// Instrument publishes the recorder's activity into m: the
// "recorder.elements" counter counts appended CA-elements and
// "recorder.dropped" counts elements discarded by a full bounded
// recorder. A nil m detaches the instruments.
func (r *Recorder) Instrument(m *obs.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cElements = m.Counter("recorder.elements")
	r.cDropped = m.Counter("recorder.dropped")
}

// append adds el to 𝒯 or counts it as dropped; callers hold r.mu.
func (r *Recorder) append(el trace.Element) {
	if r.capacity > 0 && len(r.t) >= r.capacity {
		r.dropped++
		if r.cDropped != nil {
			r.cDropped.Inc()
		}
		return
	}
	r.t = append(r.t, el)
	if r.cElements != nil {
		r.cElements.Inc()
	}
}

// Register declares object o with its immediate subobjects and view
// function F_o. Registration is bottom-up: children must be registered (or
// be leaves registered implicitly by passing nil info) before parents, each
// object may have at most one owner (the strict ownership discipline of
// §2), and o must not already be registered. fn may be nil for objects like
// the exchanger that encapsulate no subobjects (F_o completely undefined).
func (r *Recorder) Register(o history.ObjectID, children []history.ObjectID, fn ViewFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.objects == nil {
		r.objects = make(map[history.ObjectID]*objectInfo)
		r.parent = make(map[history.ObjectID]history.ObjectID)
	}
	if _, dup := r.objects[o]; dup {
		return fmt.Errorf("recorder: object %s already registered", o)
	}
	for _, c := range children {
		if c == o {
			return fmt.Errorf("recorder: object %s cannot contain itself", o)
		}
		if p, owned := r.parent[c]; owned {
			return fmt.Errorf("recorder: object %s already owned by %s", c, p)
		}
	}
	r.objects[o] = &objectInfo{children: append([]history.ObjectID(nil), children...), fn: fn}
	for _, c := range children {
		r.parent[c] = o
	}
	return nil
}

// Append atomically appends one CA-element to 𝒯. Appending an element with
// several operations is the paper's mechanism for letting "a single atomic
// action [be treated] as a sequence of operations by different threads":
// the pair of a successful exchange is logged in one step by the thread
// whose CAS took effect.
func (r *Recorder) Append(el trace.Element) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.append(el)
}

// Do runs fn while holding the trace lock; fn may append CA-elements
// through the provided log callback. This implements the paper's
// instrumented atomic actions (§5): a shared-state update (e.g. the XCHG
// CAS) and its auxiliary assignment to 𝒯 execute as one step, so no other
// thread can interpose an element between the update taking effect and it
// being logged. fn must not call other Recorder methods.
func (r *Recorder) Do(fn func(log func(trace.Element))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(func(el trace.Element) {
		r.append(el)
	})
}

// AppendOps builds a canonical CA-element from ops and appends it.
func (r *Recorder) AppendOps(ops ...trace.Operation) error {
	el, err := trace.NewElement(ops...)
	if err != nil {
		return err
	}
	r.Append(el)
	return nil
}

// Snapshot returns a copy of the raw global trace 𝒯.
func (r *Recorder) Snapshot() trace.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(trace.Trace(nil), r.t...)
}

// Len returns the current number of elements in 𝒯.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.t)
}

// Reset clears the trace and any overflow state but keeps object
// registrations and the capacity bound.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.t = nil
	r.dropped = 0
}

// View returns T_o: the global trace rewritten by F̂_o — the recursive
// application of the view functions of o's encapsulated objects followed by
// o's own — and projected to the CA-elements of o.
func (r *Recorder) View(o history.ObjectID) trace.Trace {
	r.mu.Lock()
	snap := append(trace.Trace(nil), r.t...)
	r.mu.Unlock()
	return r.RewriteTrace(o, snap).ByObject(o)
}

// RewriteTrace applies F̂_o to an arbitrary trace without projecting.
//
// F_o is "a function from the CA-elements of [o's] immediate subobjects"
// (§4), so the recorder restricts fn's domain structurally: it is consulted
// only for elements whose object is one of o's registered children;
// elements of other objects pass through unchanged. This makes F̂_o
// idempotent by construction and makes the total extensions of disjoint
// objects commute — both properties the paper relies on, and both
// property-tested.
func (r *Recorder) RewriteTrace(o history.ObjectID, tr trace.Trace) trace.Trace {
	r.mu.Lock()
	info := r.objects[o]
	var children []history.ObjectID
	var fn ViewFunc
	if info != nil {
		children = info.children
		fn = info.fn
	}
	r.mu.Unlock()

	out := tr
	for _, c := range children {
		out = r.RewriteTrace(c, out)
	}
	if fn == nil {
		return out
	}
	childSet := make(map[history.ObjectID]bool, len(children))
	for _, c := range children {
		childSet[c] = true
	}
	rewritten := make(trace.Trace, 0, len(out))
	for _, el := range out {
		if !childSet[el.Object] {
			rewritten = append(rewritten, el)
			continue
		}
		if repl, ok := fn(el); ok {
			rewritten = append(rewritten, repl...)
		} else {
			rewritten = append(rewritten, el)
		}
	}
	return rewritten
}
