package recorder

import (
	"errors"
	"sync"
	"testing"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

func pushEl(tid history.ThreadID, v int64) trace.Element {
	return spec.PushElement("S", tid, v, true)
}

func TestBoundedRecorderOverflow(t *testing.T) {
	r := NewBounded(3)
	for i := int64(0); i < 5; i++ {
		r.Append(pushEl(1, i))
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	err := r.Err()
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("Err = %v, want *OverflowError", err)
	}
	if oe.Capacity != 3 || oe.Dropped != 2 {
		t.Errorf("overflow = %+v, want capacity 3, dropped 2", oe)
	}
	// The retained prefix is intact and in order.
	snap := r.Snapshot()
	for i, el := range snap {
		if el.Ops[0].Arg != history.Int(int64(i)) {
			t.Errorf("element %d = %s, prefix must be preserved", i, el)
		}
	}
}

func TestBoundedRecorderNoOverflow(t *testing.T) {
	r := NewBounded(4)
	r.Append(pushEl(1, 1))
	r.Do(func(log func(trace.Element)) { log(pushEl(2, 2)) })
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v, want nil below capacity", err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestBoundedRecorderDoOverflow(t *testing.T) {
	r := NewBounded(1)
	r.Do(func(log func(trace.Element)) {
		log(pushEl(1, 1))
		log(pushEl(1, 2)) // dropped mid-Do
	})
	if err := r.Err(); err == nil {
		t.Error("overflow inside Do must be detected")
	}
}

func TestBoundedRecorderResetClearsOverflow(t *testing.T) {
	r := NewBounded(1)
	r.Append(pushEl(1, 1))
	r.Append(pushEl(1, 2))
	if r.Err() == nil {
		t.Fatal("expected overflow")
	}
	r.Reset()
	if err := r.Err(); err != nil {
		t.Errorf("Reset must clear overflow state: %v", err)
	}
	// The bound survives the reset.
	r.Append(pushEl(1, 3))
	r.Append(pushEl(1, 4))
	if r.Err() == nil {
		t.Error("capacity must survive Reset")
	}
}

func TestBoundedRecorderConcurrent(t *testing.T) {
	const (
		threads = 8
		each    = 100
		bound   = 50
	)
	r := NewBounded(bound)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid history.ThreadID) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Append(pushEl(tid, int64(j)))
			}
		}(history.ThreadID(i))
	}
	wg.Wait()
	if r.Len() != bound {
		t.Errorf("Len = %d, want %d", r.Len(), bound)
	}
	var oe *OverflowError
	if !errors.As(r.Err(), &oe) || oe.Dropped != threads*each-bound {
		t.Errorf("Err = %v, want %d dropped", r.Err(), threads*each-bound)
	}
}

func TestNewBoundedRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBounded(0) must panic")
		}
	}()
	NewBounded(0)
}

func TestUnboundedRecorderNeverErrs(t *testing.T) {
	r := New()
	for i := int64(0); i < 1000; i++ {
		r.Append(pushEl(1, i))
	}
	if err := r.Err(); err != nil {
		t.Errorf("unbounded recorder Err = %v", err)
	}
}

func TestInstrumentCountsElementsAndDrops(t *testing.T) {
	m := obs.NewMetrics()
	r := NewBounded(2)
	r.Instrument(m)
	for i := int64(0); i < 5; i++ {
		r.Append(pushEl(1, i))
	}
	if got := m.Counter("recorder.elements").Value(); got != 2 {
		t.Errorf("recorder.elements = %d, want 2", got)
	}
	if got := m.Counter("recorder.dropped").Value(); got != 3 {
		t.Errorf("recorder.dropped = %d, want 3", got)
	}
	// Detaching stops the counting but not the recording.
	r.Instrument(nil)
	r.Reset()
	r.Append(pushEl(1, 9))
	if r.Len() != 1 {
		t.Errorf("Len = %d after detach, want 1", r.Len())
	}
	if got := m.Counter("recorder.elements").Value(); got != 2 {
		t.Errorf("recorder.elements = %d after detach, want 2", got)
	}
}
