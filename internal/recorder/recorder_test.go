package recorder

import (
	"fmt"
	"sync"
	"testing"

	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const (
	objAR history.ObjectID = "AR"
	objES history.ObjectID = "ES"
	objS  history.ObjectID = "S"
)

func exchObj(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("AR.E[%d]", i))
}

// relabel builds the elimination array's F_AR: an exchange on any E[i]
// becomes an exchange on AR.
func relabel(to history.ObjectID) ViewFunc {
	return func(el trace.Element) (trace.Trace, bool) {
		ops := make([]trace.Operation, len(el.Ops))
		for i, op := range el.Ops {
			op.Object = to
			ops[i] = op
		}
		return trace.Trace{trace.MustElement(ops...)}, true
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register(objAR, []history.ObjectID{exchObj(0)}, relabel(objAR)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(objAR, nil, nil); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := r.Register("X", []history.ObjectID{"X"}, nil); err == nil {
		t.Error("self-containment must fail")
	}
	if err := r.Register("Y", []history.ObjectID{exchObj(0)}, nil); err == nil {
		t.Error("double ownership must fail (strict ownership discipline)")
	}
}

func TestAppendSnapshotReset(t *testing.T) {
	r := New()
	el := spec.FailElement("E", 1, 7)
	r.Append(el)
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	snap := r.Snapshot()
	r.Append(el)
	if len(snap) != 1 {
		t.Error("Snapshot must be a copy")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset must clear the trace")
	}
}

func TestAppendOpsValidates(t *testing.T) {
	var r Recorder
	err := r.AppendOps() // empty element
	if err == nil {
		t.Error("empty element must be rejected")
	}
	if err := r.AppendOps(trace.Operation{
		Thread: 1, Object: "E", Method: spec.MethodExchange,
		Arg: history.Int(1), Ret: history.Pair(false, 1),
	}); err != nil {
		t.Errorf("AppendOps: %v", err)
	}
	if r.Len() != 1 {
		t.Error("valid element not appended")
	}
}

func TestViewElimArrayRelabeling(t *testing.T) {
	// The elimination array's view: F_AR(E[i].S) = AR.S (§5).
	r := New()
	children := []history.ObjectID{exchObj(0), exchObj(1)}
	if err := r.Register(objAR, children, relabel(objAR)); err != nil {
		t.Fatal(err)
	}
	r.Append(spec.SwapElement(exchObj(0), 1, 3, 2, 4))
	r.Append(spec.FailElement(exchObj(1), 3, 7))

	got := r.View(objAR)
	want := trace.Trace{
		spec.SwapElement(objAR, 1, 3, 2, 4),
		spec.FailElement(objAR, 3, 7),
	}
	if !got.Equal(want) {
		t.Errorf("View(AR) = %s, want %s", got, want)
	}
	// The relabeled trace satisfies the exchanger spec for object AR —
	// "the elimination array exposes the same specification as a single
	// exchanger".
	if _, err := spec.Accepts(spec.NewElimArray(objAR), got); err != nil {
		t.Errorf("View(AR) not admitted by elim-array spec: %v", err)
	}
}

// elimStackView is the paper's F_ES (§5): successful central-stack pushes
// and pops become elimination-stack operations; an AR swap of (n, ∞) with
// n ≠ ∞ becomes push(n) linearized immediately before a pop returning n;
// everything else is erased.
func elimStackView(sentinel int64) ViewFunc {
	return func(el trace.Element) (trace.Trace, bool) {
		switch el.Object {
		case objS:
			op := el.Ops[0]
			switch {
			case op.Method == spec.MethodPush && op.Ret.B:
				return trace.Trace{spec.PushElement(objES, op.Thread, op.Arg.N, true)}, true
			case op.Method == spec.MethodPop && op.Ret.B:
				return trace.Trace{spec.PopElement(objES, op.Thread, true, op.Ret.N)}, true
			default:
				return nil, true // failed central-stack op: erased
			}
		case objAR:
			if len(el.Ops) == 2 {
				a, b := el.Ops[0], el.Ops[1]
				if a.Arg.N == sentinel && b.Arg.N != sentinel {
					a, b = b, a
				}
				if a.Arg.N != sentinel && b.Arg.N == sentinel && a.Ret.B && b.Ret.B {
					return trace.Trace{
						spec.PushElement(objES, a.Thread, a.Arg.N, true),
						spec.PopElement(objES, b.Thread, true, a.Arg.N),
					}, true
				}
			}
			return nil, true // failed or same-operation exchange: erased
		default:
			return nil, false
		}
	}
}

func TestViewElimStackComposition(t *testing.T) {
	const sentinel = int64(1 << 40)
	r := New()
	if err := r.Register(objAR, []history.ObjectID{exchObj(0), exchObj(1)}, relabel(objAR)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(objS, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(objES, []history.ObjectID{objS, objAR}, elimStackView(sentinel)); err != nil {
		t.Fatal(err)
	}

	// A run: t1 pushes 5 on the central stack; t2's push(6) is eliminated
	// by t3's pop through exchanger E[1]; t4's central pop takes the 5;
	// t5's exchange fails; t6's failed central push is erased.
	r.Append(spec.PushElement(objS, 1, 5, true))
	r.Append(spec.SwapElement(exchObj(1), 2, 6, 3, sentinel))
	r.Append(spec.PopElement(objS, 4, true, 5))
	r.Append(spec.FailElement(exchObj(0), 5, 9))
	r.Append(spec.PushElement(objS, 6, 7, false))

	got := r.View(objES)
	want := trace.Trace{
		spec.PushElement(objES, 1, 5, true),
		spec.PushElement(objES, 2, 6, true),
		spec.PopElement(objES, 3, true, 6),
		spec.PopElement(objES, 4, true, 5),
	}
	if !got.Equal(want) {
		t.Errorf("View(ES) = %s\nwant %s", got, want)
	}
	// The derived trace is a valid sequential stack trace: the elimination
	// stack is linearizable w.r.t. the ordinary stack specification.
	if _, err := spec.Accepts(spec.NewStack(objES), got); err != nil {
		t.Errorf("View(ES) not admitted by stack spec: %v", err)
	}
	// Subobject views remain available and disjoint.
	if n := len(r.View(objS)); n != 3 {
		t.Errorf("|View(S)| = %d, want 3", n)
	}
	if n := len(r.View(objAR)); n != 2 {
		t.Errorf("|View(AR)| = %d, want 2", n)
	}
}

func TestViewUnregisteredObjectIsProjection(t *testing.T) {
	// For an object with no registered view (F_o completely undefined, as
	// for the exchanger), T_o = 𝒯|o.
	var r Recorder
	r.Append(spec.FailElement("E", 1, 7))
	r.Append(spec.PushElement(objS, 2, 5, true))
	got := r.View("E")
	if len(got) != 1 || got[0].Object != "E" {
		t.Errorf("View(E) = %s, want the projection 𝒯|E", got)
	}
}

// TestCompositionOrderIrrelevant checks the paper's claim that for disjoint
// objects o and o', F̂_o ∘ F̂_o' = F̂_o' ∘ F̂_o.
func TestCompositionOrderIrrelevant(t *testing.T) {
	mk := func(order []history.ObjectID) trace.Trace {
		r := New()
		for _, o := range order {
			var err error
			switch o {
			case objAR:
				err = r.Register(objAR, []history.ObjectID{exchObj(0)}, relabel(objAR))
			case "AR2":
				err = r.Register("AR2", []history.ObjectID{exchObj(1)}, relabel("AR2"))
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		r.Append(spec.SwapElement(exchObj(0), 1, 3, 2, 4))
		r.Append(spec.SwapElement(exchObj(1), 3, 5, 4, 6))
		tr := r.Snapshot()
		for _, o := range order {
			tr = r.RewriteTrace(o, tr)
		}
		return tr
	}
	a := mk([]history.ObjectID{objAR, "AR2"})
	b := mk([]history.ObjectID{"AR2", objAR})
	if !a.Equal(b) {
		t.Errorf("composition order changed the rewritten trace:\n%s\nvs\n%s", a, b)
	}
}

// TestRewriteIdempotent checks F̂_o ∘ F̂_o = F̂_o on rewritten traces: once an
// element has been translated to o's operations, F_o is undefined on it.
func TestRewriteIdempotent(t *testing.T) {
	r := New()
	if err := r.Register(objAR, []history.ObjectID{exchObj(0)}, func(el trace.Element) (trace.Trace, bool) {
		if el.Object != exchObj(0) {
			return nil, false
		}
		return relabel(objAR)(el)
	}); err != nil {
		t.Fatal(err)
	}
	r.Append(spec.SwapElement(exchObj(0), 1, 3, 2, 4))
	once := r.RewriteTrace(objAR, r.Snapshot())
	twice := r.RewriteTrace(objAR, once)
	if !once.Equal(twice) {
		t.Errorf("rewrite not idempotent: %s vs %s", once, twice)
	}
}

func TestConcurrentAppends(t *testing.T) {
	var r Recorder
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Append(spec.FailElement("E", history.ThreadID(base+1), int64(i)))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*per {
		t.Errorf("Len = %d, want %d", r.Len(), workers*per)
	}
	// The trace must still be per-object admissible.
	if _, err := spec.Accepts(spec.NewExchanger("E"), r.Snapshot()); err != nil {
		t.Errorf("concurrent appends produced invalid trace: %v", err)
	}
}
