package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler returns the stream API, mountable on the ops mux (cald mounts
// it at /streams):
//
//	POST /streams             open a stream; 201 + stream doc, 400 bad
//	                          request, 429 + Retry-After at the
//	                          open-stream bound or rate limit, 503 when
//	                          draining
//	GET  /streams             list all known streams
//	GET  /streams/{id}        current verdict frame; ?watch=1 streams a
//	                          frame per ingested batch as Server-Sent
//	                          Events until the stream closes
//	POST /streams/{id}/events feed a batch (line-oriented history
//	                          interchange format in the body); responds
//	                          with the updated verdict frame
//	POST /streams/{id}/close  run end-of-stream checks; final frame
//	POST /streams/{id}/cancel abort fallback re-checks and close
func (m *StreamManager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /streams", m.handleOpen)
	mux.HandleFunc("GET /streams", m.handleList)
	mux.HandleFunc("GET /streams/{id}", m.handleGet)
	mux.HandleFunc("POST /streams/{id}/events", m.handleEvents)
	mux.HandleFunc("POST /streams/{id}/close", m.handleClose)
	mux.HandleFunc("POST /streams/{id}/cancel", m.handleCancel)
	return mux
}

func writeStreamDoc(w http.ResponseWriter, status int, d StreamDoc) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(d) //nolint:errcheck // client gone
}

// streamError maps the manager's error taxonomy onto HTTP statuses,
// mirroring the job API exactly.
func streamError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	var over *OverloadError
	switch {
	case errors.As(err, &reqErr):
		http.Error(w, reqErr.Error(), http.StatusBadRequest)
	case errors.As(err, &over):
		w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
		http.Error(w, over.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "daemon is draining; re-open the stream against the restarted instance", http.StatusServiceUnavailable)
	case errors.Is(err, ErrNotFound):
		http.Error(w, "no such stream", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (m *StreamManager) handleOpen(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<10)
	var req StreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	doc, err := m.Open(clientID(r), req)
	if err != nil {
		streamError(w, err)
		return
	}
	writeStreamDoc(w, http.StatusCreated, doc)
}

func (m *StreamManager) handleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.List()) //nolint:errcheck // client gone
}

func (m *StreamManager) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("watch") != "" {
		m.watchStream(w, r, id)
		return
	}
	doc, ok := m.Get(id)
	if !ok {
		http.Error(w, "no such stream", http.StatusNotFound)
		return
	}
	writeStreamDoc(w, http.StatusOK, doc)
}

func (m *StreamManager) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, int64(m.cfg.MaxBatchBytes)+4<<10)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("event batch exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	doc, err := m.Feed(id, string(body))
	if err != nil {
		// A mid-batch transport error still fed a prefix; report the
		// error but include the document so the client sees how far the
		// stream advanced.
		if doc.ID != "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Error string `json:"error"`
				StreamDoc
			}{Error: err.Error(), StreamDoc: doc}) //nolint:errcheck // client gone
			return
		}
		streamError(w, err)
		return
	}
	writeStreamDoc(w, http.StatusOK, doc)
}

func (m *StreamManager) handleClose(w http.ResponseWriter, r *http.Request) {
	doc, err := m.Close(r.PathValue("id"))
	if err != nil {
		streamError(w, err)
		return
	}
	writeStreamDoc(w, http.StatusOK, doc)
}

func (m *StreamManager) handleCancel(w http.ResponseWriter, r *http.Request) {
	doc, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		streamError(w, err)
		return
	}
	writeStreamDoc(w, http.StatusOK, doc)
}

// watchStream streams verdict frames as SSE (the same plumbing contract
// as /jobs/{id}?watch=1 and /statusz?watch=1): an immediate snapshot,
// one frame per ingested batch, then end-of-stream after the terminal
// frame. A drain ends the stream early with an explicit drain event.
func (m *StreamManager) watchStream(w http.ResponseWriter, r *http.Request, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	snap, updates, stop, err := m.Watch(id)
	if err != nil {
		http.Error(w, "no such stream", http.StatusNotFound)
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	emit := func(d StreamDoc) bool {
		b, err := json.Marshal(d)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit(snap) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-m.Stopping():
			fmt.Fprint(w, "event: drain\ndata: {}\n\n")
			fl.Flush()
			return
		case d, open := <-updates:
			if !open {
				return // terminal frame already delivered
			}
			if !emit(d) {
				return
			}
		}
	}
}
