package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"calgo/internal/obs"
)

// satHistory is a complete, CAL-satisfiable exchange of a and b.
func satHistory(a, b int) string {
	return fmt.Sprintf(`inv t1 E.exchange %d
inv t2 E.exchange %d
res t1 E.exchange (true,%d)
res t2 E.exchange (true,%d)
`, a, b, b, a)
}

// unsatHistory is a lone successful exchange — no partner can justify it.
const unsatHistory = `inv t1 E.exchange 3
res t1 E.exchange (true,4)
`

func waitTerminal(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Drain(ctx)
}

func TestSubmitVerdicts(t *testing.T) {
	m, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	ok, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, m, ok.ID); j.Verdict != "OK" {
		t.Errorf("satisfiable history: verdict %q detail %q, want OK", j.Verdict, j.Detail)
	}

	bad, err := m.Submit("c", Request{Spec: "exchanger", History: unsatHistory})
	if err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, m, bad.ID); j.Verdict != "VIOLATION" {
		t.Errorf("lone success: verdict %q, want VIOLATION", j.Verdict)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	m, err := New(Config{Workers: 1, MaxHistoryBytes: 128, MaxHistoryEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	var reqErr *RequestError
	for name, req := range map[string]Request{
		"unknown spec":   {Spec: "nope", History: satHistory(1, 2)},
		"unknown mode":   {Spec: "exchanger", Mode: "zap", History: satHistory(1, 2)},
		"syntax error":   {Spec: "exchanger", History: "zap t1 E.exchange 3\n"},
		"not wellformed": {Spec: "exchanger", History: "res t1 E.exchange (true,4)\n"},
		"too many bytes": {Spec: "exchanger", History: strings.Repeat("#", 256) + "\n"},
		"too many events": {Spec: "exchanger",
			History: satHistory(1, 2) + "inv t3 E.exchange 9\nres t3 E.exchange (false,9)\n"},
	} {
		if _, err := m.Submit("c", req); !errors.As(err, &reqErr) {
			t.Errorf("%s: err = %v, want *RequestError", name, err)
		}
	}
}

// TestBudgetClampAndUnknown pins graceful degradation: budgets above the
// server maxima are clamped to them, the job document records the
// effective values, and an exhausted budget is an UNKNOWN verdict, not a
// hung or failed request.
func TestBudgetClampAndUnknown(t *testing.T) {
	m, err := New(Config{Workers: 1, MaxStates: 1, MaxTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	// Two exchange pairs need two explored states — one over the budget.
	twoPairs := satHistory(3, 4) + strings.NewReplacer("t1", "t3", "t2", "t4").Replace(satHistory(5, 6))
	snap, err := m.Submit("c", Request{Spec: "exchanger", History: twoPairs,
		MaxStates: 1 << 30, TimeoutMS: 3_600_000})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Request.MaxStates != 1 || snap.Request.TimeoutMS != 1000 {
		t.Errorf("budgets not clamped: states %d timeout %dms", snap.Request.MaxStates, snap.Request.TimeoutMS)
	}
	if j := waitTerminal(t, m, snap.ID); j.Verdict != "UNKNOWN" {
		t.Errorf("1-state budget: verdict %q detail %q, want UNKNOWN", j.Verdict, j.Detail)
	}
}

// blockingManager starts a manager whose single worker blocks in OnDone
// after finishing each job, giving tests a deterministic window in which
// queued jobs cannot be picked up. Returns the manager and the release
// channel (send one value per job to let the worker continue).
func blockingManager(t *testing.T, cfg Config) (*Manager, chan struct{}) {
	t.Helper()
	release := make(chan struct{}, 64)
	cfg.Workers = 1
	cfg.CacheEntries = -1
	cfg.OnDone = func(Job) { <-release }
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, release
}

func TestQueueFullSheds(t *testing.T) {
	m, release := blockingManager(t, Config{QueueDepth: 1})
	defer drain(t, m)
	defer close(release)

	// Occupy the worker: job 1 finishes, then its OnDone blocks.
	j1, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, j1.ID)

	// The queue (depth 1) now absorbs exactly one more job.
	if _, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)}); err != nil {
		t.Fatalf("second submission should queue: %v", err)
	}
	var over *OverloadError
	_, err = m.Submit("c", Request{Spec: "exchanger", History: satHistory(5, 6)})
	if !errors.As(err, &over) {
		t.Fatalf("third submission: err = %v, want *OverloadError", err)
	}
	if over.Cause != "queue full" || over.RetryAfter <= 0 {
		t.Errorf("shed error = %+v, want queue-full with a positive Retry-After", over)
	}
	if got := m.cShed.Value(); got != 1 {
		t.Errorf("jobs.shed = %d, want 1", got)
	}
}

func TestCancelPendingAndUnknownID(t *testing.T) {
	m, release := blockingManager(t, Config{QueueDepth: 4})
	defer drain(t, m)
	defer close(release)

	j1, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, j1.ID) // worker now blocked in OnDone

	j2, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, m, j2.ID); j.State != StateCanceled {
		t.Errorf("canceled pending job state = %s, want canceled", j.State)
	}
	if err := m.Cancel(j2.ID); err != nil {
		t.Errorf("canceling a terminal job = %v, want nil", err)
	}
	if err := m.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("canceling unknown id = %v, want ErrNotFound", err)
	}
	release <- struct{}{} // let the (skipped) j2 slot drain
}

func TestVerdictCacheHit(t *testing.T) {
	mtr := obs.NewMetrics()
	m, err := New(Config{Workers: 1, Metrics: mtr})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	first, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, first.ID)

	// Same history under renamed threads: the canonical fingerprint makes
	// it the same cache entry.
	renamed := strings.NewReplacer("t1", "t7", "t2", "t9").Replace(satHistory(3, 4))
	again, err := m.Submit("c", Request{Spec: "exchanger", History: renamed})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != StateDone || again.Verdict != "OK" {
		t.Errorf("resubmission = %+v, want an immediate cached OK", again)
	}
	if hits := mtr.Counter("jobs.cache_hits").Value(); hits != 1 {
		t.Errorf("jobs.cache_hits = %d, want 1", hits)
	}
	// A different history misses.
	other, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("distinct history must not hit the cache")
	}
	waitTerminal(t, m, other.ID)
}

func TestRateLimiting(t *testing.T) {
	m, err := New(Config{Workers: 1, Rate: 0.001, Burst: 2, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	for i := 0; i < 2; i++ {
		if _, err := m.Submit("alice", Request{Spec: "exchanger", History: satHistory(i, i+10)}); err != nil {
			t.Fatalf("submission %d within burst: %v", i, err)
		}
	}
	var over *OverloadError
	_, err = m.Submit("alice", Request{Spec: "exchanger", History: satHistory(20, 30)})
	if !errors.As(err, &over) || over.Cause != "rate limited" || over.RetryAfter <= 0 {
		t.Fatalf("over-burst submission: err = %v, want rate-limited *OverloadError", err)
	}
	// A different client has its own bucket.
	if _, err := m.Submit("bob", Request{Spec: "exchanger", History: satHistory(40, 50)}); err != nil {
		t.Errorf("other client rate-limited too: %v", err)
	}
	if got := m.cRateLimited.Value(); got != 1 {
		t.Errorf("jobs.rate_limited = %d, want 1", got)
	}
}

// TestDrainLeavesQueuedJobsPending pins the drain guarantee the ci.sh
// smoke relies on: once draining begins, a worker finishing its current
// job must not pick up a queued one — that job stays pending (and
// journaled) for the next instance to resume. Before the worker's
// draining check this was a select race: stop signal and queued job
// both ready, either could win.
func TestDrainLeavesQueuedJobsPending(t *testing.T) {
	m, release := blockingManager(t, Config{QueueDepth: 4})

	a, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, a.ID) // state finalizes first; worker parks in OnDone

	b, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}

	pendingCh := make(chan int, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired: cancel running jobs immediately
		pendingCh <- m.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never marked the manager draining")
		}
		time.Sleep(time.Millisecond)
	}
	release <- struct{}{} // un-park the worker: it must exit, not run b

	if pending := <-pendingCh; pending != 1 {
		t.Fatalf("Drain left %d pending jobs, want 1", pending)
	}
	got, ok := m.Get(b.ID)
	if !ok || got.State != StatePending {
		t.Fatalf("queued job after drain = %+v (ok=%v), want pending", got, ok)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if _, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)}); !errors.Is(err, ErrDraining) {
		t.Errorf("submission to drained manager = %v, want ErrDraining", err)
	}
}

// TestJournalCrashResume simulates a crash: a manager with a blocked
// worker admits jobs it never finishes, the process "dies" (no Drain),
// and a fresh manager on the same journal resumes and completes them.
func TestJournalCrashResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cald.journal")
	m1, release := blockingManager(t, Config{QueueDepth: 8, JournalPath: path})

	done, err := m1.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, done.ID) // worker blocked in OnDone from here on

	var admitted []string
	for i := 0; i < 2; i++ {
		j, err := m1.Submit("c", Request{Spec: "exchanger", History: satHistory(10+i, 20+i)})
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, j.ID)
	}
	// Crash: no Drain, no journal close. The admitted-but-unfinished jobs
	// are on disk because Submit fsyncs before acknowledging.

	m2, err := New(Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range admitted {
		j := waitTerminal(t, m2, id)
		if !j.Resumed || j.Verdict != "OK" {
			t.Errorf("resumed job %s = resumed %v verdict %q, want resumed OK", id, j.Resumed, j.Verdict)
		}
	}
	if got := m2.cResumed.Value(); got != 2 {
		t.Errorf("jobs.resumed = %d, want 2", got)
	}
	// New ids must not collide with journaled ones.
	j, err := m2.Submit("c", Request{Spec: "exchanger", History: satHistory(77, 88)})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range admitted {
		if j.ID == id {
			t.Errorf("fresh id %s collides with a resumed job", j.ID)
		}
	}
	waitTerminal(t, m2, j.ID)
	drain(t, m2)

	// Release the crashed instance's worker so the test leaks nothing.
	close(release)
	drain(t, m1)

	// A third instance sees a fully-compacted journal: nothing pending.
	m3, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m3.List()); n != 0 {
		t.Errorf("third instance resumed %d jobs, want 0", n)
	}
	drain(t, m3)
}

// TestJournalSkipsCorruptLines pins torn-write tolerance: garbage lines
// (a crash mid-append) contribute nothing and replay continues.
func TestJournalSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cald.journal")
	rec := fmt.Sprintf(`{"op":"submit","job":{"schema":%q,"id":"j-000007","state":"pending","request":{"spec":"exchanger","history":%q,"timeout_ms":1000,"max_states":1000}}}`,
		Schema, satHistory(1, 2))
	content := "not json at all\n" + rec + "\n" + `{"op":"done","id":"j-missing"}` + "\n" + `{"op":"sub` // torn tail
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)
	j := waitTerminal(t, m, "j-000007")
	if !j.Resumed || j.Verdict != "OK" {
		t.Errorf("job from dirty journal = resumed %v verdict %q, want resumed OK", j.Resumed, j.Verdict)
	}
}

// TestSubmitCancelShedRaces hammers the admission path from many
// goroutines while others cancel random ids — the -race run of this test
// is the package's data-race gate. Every job must end terminal and every
// submission must either succeed or fail with a typed admission error.
func TestSubmitCancelShedRaces(t *testing.T) {
	m, err := New(Config{Workers: 4, QueueDepth: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 8
	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				j, err := m.Submit(fmt.Sprintf("c%d", g), Request{
					Spec: "exchanger", History: satHistory(g*100+i, g*100+i+1000),
				})
				switch {
				case err == nil:
					mu.Lock()
					ids = append(ids, j.ID)
					mu.Unlock()
				default:
					var over *OverloadError
					if !errors.As(err, &over) {
						t.Errorf("submit: unexpected error %v", err)
						return
					}
				}
				if rng.Intn(3) == 0 {
					mu.Lock()
					var victim string
					if len(ids) > 0 {
						victim = ids[rng.Intn(len(ids))]
					}
					mu.Unlock()
					if victim != "" {
						if err := m.Cancel(victim); err != nil && !errors.Is(err, ErrNotFound) {
							t.Errorf("cancel %s: %v", victim, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	drain(t, m)
	for _, j := range m.List() {
		if !j.State.Terminal() {
			t.Errorf("job %s left in state %s after drain", j.ID, j.State)
		}
	}
}

// TestWatchDeliversTerminalFrame pins the watcher contract: the channel
// carries snapshots and closes after the terminal one.
func TestWatchDeliversTerminalFrame(t *testing.T) {
	m, release := blockingManager(t, Config{QueueDepth: 4})
	defer drain(t, m)
	defer close(release)

	j1, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, j1.ID) // block the worker

	j2, err := m.Submit("c", Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	snap, updates, stop, err := m.Watch(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if snap.State != StatePending {
		t.Fatalf("watch snapshot state = %s, want pending", snap.State)
	}
	release <- struct{}{} // unblock: worker picks up j2
	release <- struct{}{} // and may block again after it

	var last Job
	for j := range updates {
		last = j
	}
	if !last.State.Terminal() || last.Verdict != "OK" {
		t.Errorf("last watched frame = state %s verdict %q, want terminal OK", last.State, last.Verdict)
	}

	// Watching an already-terminal job: snapshot plus a closed channel.
	snap, updates, stop, err = m.Watch(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if !snap.State.Terminal() {
		t.Errorf("terminal watch snapshot state = %s", snap.State)
	}
	if _, open := <-updates; open {
		t.Error("terminal watch channel must be closed")
	}
}
