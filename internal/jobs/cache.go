package jobs

import (
	"container/list"
	"fmt"
	"sync"

	"calgo/internal/history"
)

// verdict is what the cache stores: the definitive outcome of one
// (canonical history, spec, mode) key. Only Sat/Unsat land here —
// Unknown depends on the budgets of the run that produced it, so a
// cached Unknown could mask a decidable answer.
type verdict struct {
	Verdict  string
	Detail   string
	States   int
	MemoHits int
}

// cache is a fixed-capacity LRU verdict cache. The key is the
// canonicalized-history fingerprint joined with the spec selection, so
// replayed traffic — identical histories resubmitted by log replay or
// retry storms — is answered in O(1) instead of re-paying the DFS.
type cache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	v   verdict
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil // disabled
	}
	return &cache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// cacheKey derives the verdict-cache key for a parsed history and its
// effective spec selection. Budgets are deliberately excluded: Sat and
// Unsat are budget-independent (a witness is a witness; an exhausted
// search space stays exhausted). The engine is included: verdicts agree
// across engines, but the detail and counters do not (a monitor answer
// has no search statistics), and a forced-monitor job may answer UNKNOWN
// where the DFS decides — so answers must not leak across engines.
func cacheKey(h history.History, req Request) string {
	threads := req.Threads
	if req.Spec != "snapshot" {
		threads = 0 // only snapshot observes the participant bound
	}
	return fmt.Sprintf("%s|%s|%d|%s|%s|%s", req.Spec, req.Object, threads, req.Mode, req.Engine, history.Fingerprint(h))
}

// get returns the cached verdict for key, if any, marking it recently
// used.
func (c *cache) get(key string) (verdict, bool) {
	if c == nil {
		return verdict{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return verdict{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

// put stores a definitive verdict, evicting the least recently used
// entry past capacity.
func (c *cache) put(key string, v verdict) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).v = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, v: v})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached verdicts.
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
