package jobs

import (
	"testing"

	"calgo/internal/history"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", verdict{Verdict: "OK"})
	c.put("b", verdict{Verdict: "OK"})
	if _, ok := c.get("a"); !ok { // refresh a: b is now least recent
		t.Fatal("a missing before eviction")
	}
	c.put("c", verdict{Verdict: "OK"})
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("fresh c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Overwriting updates in place, no growth.
	c.put("c", verdict{Verdict: "VIOLATION", Detail: "new"})
	if v, _ := c.get("c"); v.Verdict != "VIOLATION" {
		t.Errorf("overwrite lost: %+v", v)
	}
	if c.len() != 2 {
		t.Errorf("len after overwrite = %d, want 2", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0)
	c.put("a", verdict{Verdict: "OK"}) // must not panic
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("disabled cache has nonzero len")
	}
}

// TestCacheKeySelectivity pins what the key must and must not
// distinguish: spec, object, mode and (for snapshot) threads matter;
// budgets and thread naming do not.
func TestCacheKeySelectivity(t *testing.T) {
	h1, err := history.Parse(satHistory(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	renamed := "inv t9 E.exchange 3\ninv t4 E.exchange 4\nres t9 E.exchange (true,4)\nres t4 E.exchange (true,3)\n"
	h2, err := history.Parse(renamed)
	if err != nil {
		t.Fatal(err)
	}
	base := Request{Spec: "exchanger", Object: "E", Mode: "cal"}

	if cacheKey(h1, base) != cacheKey(h2, base) {
		t.Error("thread renaming changed the key")
	}
	budgeted := base
	budgeted.MaxStates, budgeted.TimeoutMS = 17, 99
	if cacheKey(h1, base) != cacheKey(h1, budgeted) {
		t.Error("budgets leaked into the key")
	}
	lin := base
	lin.Mode = "lin"
	if cacheKey(h1, base) == cacheKey(h1, lin) {
		t.Error("mode must distinguish keys")
	}
	otherSpec := base
	otherSpec.Spec = "stack"
	if cacheKey(h1, base) == cacheKey(h1, otherSpec) {
		t.Error("spec must distinguish keys")
	}
	// Threads only matters for snapshot.
	threaded := base
	threaded.Threads = 8
	if cacheKey(h1, base) != cacheKey(h1, threaded) {
		t.Error("threads leaked into a non-snapshot key")
	}
	snapA := Request{Spec: "snapshot", Object: "S", Mode: "cal", Threads: 2}
	snapB := snapA
	snapB.Threads = 3
	if cacheKey(h1, snapA) == cacheKey(h1, snapB) {
		t.Error("snapshot participant bound must distinguish keys")
	}
	// The engine must distinguish keys: a forced-monitor job can answer
	// UNKNOWN where the DFS decides, and the detail/counters differ even
	// when the verdicts agree.
	monitored := base
	monitored.Engine = "monitor"
	if cacheKey(h1, base) == cacheKey(h1, monitored) {
		t.Error("engine must distinguish keys")
	}
	auto := base
	auto.Engine = "auto"
	if cacheKey(h1, monitored) == cacheKey(h1, auto) {
		t.Error("distinct engines must yield distinct keys")
	}
}
