package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"
)

// Handler returns the job API, mountable on the ops mux (cald mounts it
// at /jobs via serve.Server.Mount):
//
//	POST /jobs             submit; 202 + job doc (200 when answered from
//	                       the verdict cache), 400 bad request, 429 +
//	                       Retry-After when shed or rate-limited, 503
//	                       when draining
//	GET  /jobs             list all known jobs
//	GET  /jobs/{id}        poll one job; ?watch=1 streams state changes
//	                       as Server-Sent Events until the job finishes
//	POST /jobs/{id}/cancel cancel a pending or running job
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", m.handleCancel)
	return mux
}

// ClientHeader names the submitter for rate limiting; absent, the peer
// address (without port) is the client identity.
const ClientHeader = "X-Calgo-Client"

func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second syntax).
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

func writeJob(w http.ResponseWriter, status int, j Job) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j) //nolint:errcheck // client gone
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Reject oversized bodies before buffering them: the history limit
	// plus headroom for the JSON envelope.
	r.Body = http.MaxBytesReader(w, r.Body, int64(m.cfg.MaxHistoryBytes)+64<<10)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, err := m.Submit(clientID(r), req)
	if err != nil {
		var reqErr *RequestError
		var over *OverloadError
		switch {
		case errors.As(err, &reqErr):
			http.Error(w, reqErr.Error(), http.StatusBadRequest)
		case errors.As(err, &over):
			w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
			http.Error(w, over.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "daemon is draining; retry against the restarted instance", http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	status := http.StatusAccepted
	if job.State.Terminal() {
		status = http.StatusOK // answered from the verdict cache
	}
	writeJob(w, status, job)
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.List()) //nolint:errcheck // client gone
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("watch") != "" {
		m.watchJob(w, r, id)
		return
	}
	job, ok := m.Get(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJob(w, http.StatusOK, job)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := m.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, "no such job", http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	job, _ := m.Get(id)
	writeJob(w, http.StatusOK, job)
}

// watchJob streams a job's state changes as SSE frames (the same
// plumbing contract as /statusz?watch=1): an immediate snapshot, one
// frame per transition, then end-of-stream after the terminal frame. A
// drain ends the stream early with an explicit drain event so clients
// know to re-poll the restarted daemon.
func (m *Manager) watchJob(w http.ResponseWriter, r *http.Request, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	snap, updates, stop, err := m.Watch(id)
	if err != nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	emit := func(j Job) bool {
		b, err := json.Marshal(j)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit(snap) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-m.Stopping():
			fmt.Fprint(w, "event: drain\ndata: {}\n\n")
			fl.Flush()
			return
		case j, open := <-updates:
			if !open {
				return // terminal frame already delivered
			}
			if !emit(j) {
				return
			}
		}
	}
}
