package jobs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/render"
)

// Config sizes and wires a Manager. Zero values get production-sane
// defaults (see New).
type Config struct {
	// Workers is the checker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending queue; a full queue sheds new
	// submissions with 429 + Retry-After (default 64).
	QueueDepth int
	// Rate is the per-client sustained admission rate in jobs/second
	// (0 = unlimited); Burst is the token-bucket depth (default 8).
	Rate  float64
	Burst int
	// CacheEntries bounds the verdict cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// JournalPath enables the crash-safe job journal ("" = volatile).
	JournalPath string
	// MaxHistoryBytes / MaxHistoryEvents reject oversized uploads before
	// parsing (defaults 1 MiB / 65536 events).
	MaxHistoryBytes  int
	MaxHistoryEvents int
	// MaxTimeout clamps (and defaults) the per-job wall-clock deadline
	// (default 30s).
	MaxTimeout time.Duration
	// MaxStates clamps (and defaults) the per-job state budget (default
	// 4e6). MemoBudget clamps the per-job memo budget (0 = unlimited).
	MaxStates  int
	MemoBudget int
	// Metrics receives the jobs.* counters and gauges (default: a
	// private registry).
	Metrics *obs.Metrics
	// Logger receives admission and lifecycle diagnostics (default:
	// silent).
	Logger *slog.Logger
	// OnDone, when set, observes every executed (non-cached) job as it
	// reaches a terminal state — cald publishes these on /runsz.
	OnDone func(Job)
}

// Manager owns the job table, the bounded queue and the worker pool.
// All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	log     *slog.Logger
	limits  history.Limits
	cache   *cache
	limiter *limiter
	journal *journal

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	watchers map[string][]chan Job
	cancels  map[string]context.CancelFunc
	nextID   int

	queue    chan string
	stopCtx  context.Context
	stopFn   context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool

	cSubmitted, cCompleted, cShed, cRateLimited *obs.Counter
	cRejected, cCanceled, cResumed              *obs.Counter
	cCacheHits, cCacheMisses                    *obs.Counter
	gQueueDepth, gRunning                       *obs.Gauge
}

// New builds a Manager, replays the journal (resuming any jobs a
// previous instance admitted but never finished) and starts the worker
// pool. Callers must Drain it before process exit.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.MaxHistoryBytes <= 0 {
		cfg.MaxHistoryBytes = 1 << 20
	}
	if cfg.MaxHistoryEvents <= 0 {
		cfg.MaxHistoryEvents = 1 << 16
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4_000_000
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	m := &Manager{
		cfg:      cfg,
		log:      cfg.Logger,
		limits:   history.Limits{MaxBytes: cfg.MaxHistoryBytes, MaxEvents: cfg.MaxHistoryEvents},
		cache:    newCache(cfg.CacheEntries),
		limiter:  newLimiter(cfg.Rate, cfg.Burst),
		jobs:     make(map[string]*Job),
		watchers: make(map[string][]chan Job),
		cancels:  make(map[string]context.CancelFunc),
	}
	m.stopCtx, m.stopFn = context.WithCancel(context.Background())

	mtr := cfg.Metrics
	m.cSubmitted = mtr.Counter("jobs.submitted")
	m.cCompleted = mtr.Counter("jobs.completed")
	m.cShed = mtr.Counter("jobs.shed")
	m.cRateLimited = mtr.Counter("jobs.rate_limited")
	m.cRejected = mtr.Counter("jobs.rejected")
	m.cCanceled = mtr.Counter("jobs.canceled")
	m.cResumed = mtr.Counter("jobs.resumed")
	m.cCacheHits = mtr.Counter("jobs.cache_hits")
	m.cCacheMisses = mtr.Counter("jobs.cache_misses")
	m.gQueueDepth = mtr.Gauge("jobs.queue_depth")
	m.gRunning = mtr.Gauge("jobs.running")

	var pending []*Job
	if cfg.JournalPath != "" {
		var err error
		m.journal, pending, err = openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	// The queue must hold every resumed job on top of the configured
	// depth, or replay would deadlock before the workers start.
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	m.queue = make(chan string, depth)

	for _, j := range pending {
		h, err := history.ParseFileLimited("journal:"+j.ID, j.Request.History, m.limits)
		if err != nil {
			// The history was admitted by a previous instance but fails
			// this one's limits or parser: close it out rather than loop.
			m.log.Warn("journaled job no longer parses; dropping", "job", j.ID, "err", err)
			_ = m.journal.cancel(j.ID)
			continue
		}
		j.Schema = Schema
		j.State = StatePending
		j.Resumed = true
		j.parsed = h
		if n := idNumber(j.ID); n > m.nextID {
			m.nextID = n
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.queue <- j.ID
		m.cResumed.Inc()
		m.log.Info("resuming journaled job", "job", j.ID, "spec", j.Request.Spec)
	}
	m.gQueueDepth.Set(int64(len(m.queue)))

	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates, rate-limits and admits one job. The returned Job is
// a snapshot: an already-cached verdict comes back in StateDone with
// Cached set. Errors are *RequestError (bad input, don't retry),
// *OverloadError (shed or rate-limited, retry after the hint) or
// ErrDraining.
func (m *Manager) Submit(client string, req Request) (Job, error) {
	if m.draining.Load() {
		return Job{}, ErrDraining
	}
	if ok, wait := m.limiter.allow(client, time.Now()); !ok {
		m.cRateLimited.Inc()
		return Job{}, &OverloadError{Cause: "rate limited", RetryAfter: wait}
	}

	if req.Mode == "" {
		req.Mode = "cal"
	}
	switch req.Mode {
	case "cal", "lin", "setlin":
	default:
		m.cRejected.Inc()
		return Job{}, &RequestError{fmt.Errorf("unknown mode %q (want cal, lin or setlin)", req.Mode)}
	}
	if req.Object == "" {
		req.Object = "E"
	}
	if req.Engine == "" {
		req.Engine = check.EngineDFS.String()
	}
	if _, err := check.ParseEngine(req.Engine); err != nil {
		m.cRejected.Inc()
		return Job{}, &RequestError{err}
	}
	if _, err := SpecByName(req.Spec, req.Object, req.Threads); err != nil {
		m.cRejected.Inc()
		return Job{}, &RequestError{err}
	}
	h, err := history.ParseFileLimited("history", req.History, m.limits)
	if err != nil {
		m.cRejected.Inc()
		return Job{}, &RequestError{err}
	}
	if !h.IsWellFormed() {
		m.cRejected.Inc()
		return Job{}, &RequestError{fmt.Errorf("history is not well-formed (some thread's actions do not alternate inv/res)")}
	}

	// Graceful degradation: budgets are clamped by the server-wide
	// limits, and the clamped values are what the job document records.
	req.TimeoutMS = clamp64(req.TimeoutMS, m.cfg.MaxTimeout.Milliseconds())
	req.MaxStates = clampInt(req.MaxStates, m.cfg.MaxStates)
	if m.cfg.MemoBudget > 0 {
		req.MemoBudget = clampInt(req.MemoBudget, m.cfg.MemoBudget)
	}

	now := time.Now().UnixNano()
	key := cacheKey(h, req)
	if v, ok := m.cache.get(key); ok {
		m.cCacheHits.Inc()
		job := Job{
			Schema: Schema, Client: client, State: StateDone, Request: req,
			SubmittedNS: now, FinishedNS: now,
			Verdict: v.Verdict, Detail: v.Detail, States: v.States, MemoHits: v.MemoHits,
			Cached: true,
		}
		m.mu.Lock()
		m.nextID++
		job.ID = fmt.Sprintf("j-%06d", m.nextID)
		m.jobs[job.ID] = &job
		m.order = append(m.order, job.ID)
		snap := job
		m.mu.Unlock()
		return snap, nil
	}
	m.cCacheMisses.Inc()

	m.mu.Lock()
	// Admission control: the queue length is read under the same lock
	// every submitter holds, and workers only drain it, so a reservation
	// made here cannot block on the send below.
	if len(m.queue) >= cap(m.queue) {
		m.mu.Unlock()
		m.cShed.Inc()
		return Job{}, &OverloadError{Cause: "queue full", RetryAfter: time.Second}
	}
	m.nextID++
	job := &Job{
		Schema: Schema, ID: fmt.Sprintf("j-%06d", m.nextID),
		Client: client, State: StatePending, Request: req,
		SubmittedNS: now, parsed: h,
	}
	if err := m.journal.submit(job); err != nil {
		m.mu.Unlock()
		return Job{}, err
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.queue <- job.ID
	m.gQueueDepth.Set(int64(len(m.queue)))
	snap := *job
	m.mu.Unlock()
	m.cSubmitted.Inc()
	return snap, nil
}

// clamp64 returns v bounded to (0, max]: non-positive v inherits max.
func clamp64(v, max int64) int64 {
	if v <= 0 || v > max {
		return max
	}
	return v
}

func clampInt(v, max int) int {
	if v <= 0 || v > max {
		return max
	}
	return v
}

// Get returns a snapshot of the job, if known.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every known job in submission order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, *m.jobs[id])
	}
	return out
}

// Cancel requests cancellation: a pending job is finalized immediately,
// a running job's search is interrupted and finalized by its worker.
// Returns ErrNotFound for unknown ids; canceling a terminal job is a
// no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	switch j.State {
	case StatePending:
		j.State = StateCanceled
		j.FinishedNS = time.Now().UnixNano()
		err := m.journal.cancel(id)
		m.cCanceled.Inc()
		m.notifyLocked(j)
		m.mu.Unlock()
		return err
	case StateRunning:
		j.cancelRequested = true
		cancel := m.cancels[id]
		err := m.journal.cancel(id)
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return err
	default:
		m.mu.Unlock()
		return nil
	}
}

// Watch subscribes to a job's state changes: it returns the job's
// current snapshot plus a channel carrying subsequent snapshots, closed
// after the terminal one (immediately if the job is already terminal).
// The stop function must be called to release the subscription.
func (m *Manager) Watch(id string) (Job, <-chan Job, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, nil, nil, ErrNotFound
	}
	ch := make(chan Job, 16)
	if j.State.Terminal() {
		close(ch)
		return *j, ch, func() {}, nil
	}
	m.watchers[id] = append(m.watchers[id], ch)
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		ws := m.watchers[id]
		for i, w := range ws {
			if w == ch {
				m.watchers[id] = append(ws[:i], ws[i+1:]...)
				return
			}
		}
	}
	return *j, ch, stop, nil
}

// notifyLocked fans a job snapshot out to its watchers (never blocking:
// a slow watcher misses intermediate frames, not the terminal one,
// because terminal notification closes the channel after a buffered
// send). Callers hold m.mu.
func (m *Manager) notifyLocked(j *Job) {
	ws := m.watchers[j.ID]
	if len(ws) == 0 {
		return
	}
	snap := *j
	for _, ch := range ws {
		select {
		case ch <- snap:
		default:
		}
	}
	if j.State.Terminal() {
		for _, ch := range ws {
			close(ch)
		}
		delete(m.watchers, j.ID)
	}
}

// Stopping returns a channel closed when the manager begins draining,
// so long-lived HTTP streams can end promptly on shutdown.
func (m *Manager) Stopping() <-chan struct{} { return m.stopCtx.Done() }

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool { return m.draining.Load() }

// QueueLen returns the number of queued (not yet running) jobs.
func (m *Manager) QueueLen() int { return len(m.queue) }

// Drain shuts the manager down gracefully: new submissions are refused
// (ErrDraining), workers finish the jobs they are running now but pick
// up no more, watchers of unfinished jobs are released, and the journal
// — still holding every admitted-but-unfinished job — is closed for the
// next instance to resume. ctx bounds the wait for in-flight jobs; on
// expiry the remaining running jobs are cancelled and Drain waits for
// the workers to acknowledge. Returns the number of jobs left pending.
func (m *Manager) Drain(ctx context.Context) int {
	m.draining.Store(true)
	m.stopFn()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: interrupt the running searches (they finalize as
		// canceled/unknown via their contexts) and wait them out.
		m.mu.Lock()
		for _, cancel := range m.cancels {
			cancel()
		}
		m.mu.Unlock()
		<-done
	}

	m.mu.Lock()
	pending := 0
	for _, j := range m.jobs {
		if !j.State.Terminal() {
			pending++
		}
	}
	for id, ws := range m.watchers {
		for _, ch := range ws {
			close(ch)
		}
		delete(m.watchers, id)
	}
	m.mu.Unlock()
	if err := m.journal.close(); err != nil {
		m.log.Warn("closing journal", "err", err)
	}
	return pending
}

// worker pulls queued jobs until the manager drains.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCtx.Done():
			return
		case id := <-m.queue:
			m.gQueueDepth.Set(int64(len(m.queue)))
			// Drain may race the dequeue (both select cases ready):
			// once draining, never start new work — the job is still
			// journaled as pending and resumes in the next instance.
			if m.draining.Load() {
				return
			}
			m.runJob(id)
		}
	}
}

// runJob executes one queued job end to end.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.State != StatePending {
		// Canceled while queued: already finalized.
		m.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.StartedNS = time.Now().UnixNano()
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(j.Request.TimeoutMS)*time.Millisecond)
	m.cancels[id] = cancel
	h := j.parsed
	req := j.Request
	m.notifyLocked(j)
	m.mu.Unlock()
	m.gRunning.Add(1)
	defer m.gRunning.Add(-1)
	defer cancel()

	verdictWord, detail, states, memoHits, runErr := m.decide(ctx, h, req)

	m.mu.Lock()
	delete(m.cancels, id)
	j.FinishedNS = time.Now().UnixNano()
	if j.cancelRequested {
		j.State = StateCanceled
		j.Detail = "canceled while running"
		m.cCanceled.Inc()
	} else {
		j.State = StateDone
		j.Verdict, j.Detail, j.States, j.MemoHits = verdictWord, detail, states, memoHits
		if runErr == nil && (verdictWord == "OK" || verdictWord == "VIOLATION") {
			m.cache.put(cacheKey(h, req), verdict{Verdict: verdictWord, Detail: detail, States: states, MemoHits: memoHits})
		}
	}
	if err := m.journal.done(j); err != nil {
		m.log.Warn("journaling completion", "job", id, "err", err)
	}
	m.cCompleted.Inc()
	m.notifyLocked(j)
	snap := *j
	m.mu.Unlock()
	m.log.Info("job finished", "job", id, "state", snap.State, "verdict", snap.Verdict, "states", snap.States)
	if m.cfg.OnDone != nil {
		m.cfg.OnDone(snap)
	}
}

// decide runs the checker for one job under its clamped budgets.
func (m *Manager) decide(ctx context.Context, h history.History, req Request) (word, detail string, states, memoHits int, err error) {
	sp, err := SpecByName(req.Spec, req.Object, req.Threads)
	if err != nil {
		return "ERROR", err.Error(), 0, 0, err
	}
	opts := []check.Option{
		check.WithMaxStates(req.MaxStates),
		check.WithMetrics(m.cfg.Metrics),
	}
	if req.MemoBudget > 0 {
		opts = append(opts, check.WithMemoBudget(req.MemoBudget))
	}
	if req.Mode == "lin" {
		opts = append(opts, check.WithElementCap(1))
	}
	if req.Engine != "" {
		eng, perr := check.ParseEngine(req.Engine)
		if perr != nil {
			return "ERROR", perr.Error(), 0, 0, perr
		}
		opts = append(opts, check.WithEngine(eng))
	}
	c, err := check.NewChecker(sp, opts...)
	if err != nil {
		return "ERROR", err.Error(), 0, 0, err
	}
	res, err := c.Check(ctx, h)
	if err != nil {
		return "ERROR", err.Error(), 0, 0, err
	}
	switch res.Verdict {
	case check.Sat:
		detail = fmt.Sprintf("states explored: %d (memo hits %d)", res.States, res.MemoHits)
	case check.Unsat:
		detail = res.Reason
	case check.Unknown:
		detail = fmt.Sprintf("cause: %s; frontier: %s", res.Unknown.Reason, res.Unknown.Frontier)
	}
	return render.VerdictWord(res.Verdict), detail, res.States, res.MemoHits, nil
}
