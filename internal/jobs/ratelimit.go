package jobs

import (
	"sync"
	"time"
)

// maxBuckets bounds the limiter's memory against client-id churn (a
// hostile submitter minting a fresh id per request): past the bound,
// idle full buckets are pruned, and if every bucket is active the
// newest stranger is simply charged against a fresh bucket that
// replaces the oldest-idle one.
const maxBuckets = 4096

// limiter is a per-client token-bucket rate limiter: each client id
// accrues rate tokens/second up to burst, and one admission costs one
// token. It deliberately avoids background goroutines — refill happens
// lazily on each probe — so an idle limiter costs nothing.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter returns a limiter admitting rate requests/second with the
// given burst per client; rate <= 0 means unlimited (allow always).
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow reports whether the client may submit now; on refusal it
// returns how long until one token will have accrued — the Retry-After
// hint.
func (l *limiter) allow(client string, now time.Time) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// prune drops buckets that have been idle long enough to refill
// completely — forgetting them loses no information, since a fresh
// bucket starts full. Called with l.mu held.
func (l *limiter) prune(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	var oldest string
	var oldestAt time.Time
	for id, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, id)
		} else if oldest == "" || b.last.Before(oldestAt) {
			oldest, oldestAt = id, b.last
		}
	}
	if len(l.buckets) >= maxBuckets && oldest != "" {
		delete(l.buckets, oldest)
	}
}
