package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// journalRecord is one line of the append-only job journal. A job's
// life is a "submit" record, optionally followed by exactly one
// terminal record ("done" or "cancel"); a submit with no terminal
// record is a job the previous process never finished — the resume set.
type journalRecord struct {
	Op  string `json:"op"` // submit | done | cancel
	Job *Job   `json:"job,omitempty"`
	// Terminal-record fields (op done/cancel).
	ID         string `json:"id,omitempty"`
	State      State  `json:"state,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	Detail     string `json:"detail,omitempty"`
	States     int    `json:"states,omitempty"`
	MemoHits   int    `json:"memo_hits,omitempty"`
	FinishedNS int64  `json:"finished_unix_ns,omitempty"`
}

// journal is the crash-safe append-only record of admitted jobs. Every
// append is fsynced before the admission (or completion) is
// acknowledged, so a SIGKILL between acknowledgment and completion
// loses no admitted work: openJournal replays the tail on restart.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	path string
}

// openJournal opens (creating if absent) the journal at path, replays
// it, compacts it down to the still-pending submissions, and returns
// the journal ready for appending plus the pending jobs in submission
// order. Corrupt trailing lines — the torn write of a crash — are
// ignored; corrupt interior lines are skipped with the same logic
// (a record either parses or contributes nothing).
func openJournal(path string) (*journal, []*Job, error) {
	pending, maxID, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite the journal as just the pending submissions, via
	// temp file + rename so a crash mid-compaction leaves the old
	// journal intact.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, j := range pending {
		if err := enc.Encode(journalRecord{Op: "submit", Job: j}); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobs: compacting journal: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, nil, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	_ = maxID // folded into pending job ids; the manager derives nextID
	return &journal{f: af, enc: json.NewEncoder(af), path: path}, pending, nil
}

// replayJournal reads the journal and returns the pending jobs (in
// submission order) and the highest numeric job id seen.
func replayJournal(path string) ([]*Job, int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: replaying journal: %w", err)
	}
	defer f.Close()
	jobs := make(map[string]*Job)
	var order []string
	maxID := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn or corrupt line: contributes nothing
		}
		switch rec.Op {
		case "submit":
			if rec.Job == nil || rec.Job.ID == "" {
				continue
			}
			if _, dup := jobs[rec.Job.ID]; !dup {
				order = append(order, rec.Job.ID)
			}
			jobs[rec.Job.ID] = rec.Job
			if n := idNumber(rec.Job.ID); n > maxID {
				maxID = n
			}
		case "done", "cancel":
			delete(jobs, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jobs: replaying journal: %w", err)
	}
	var pending []*Job
	for _, id := range order {
		if j, ok := jobs[id]; ok {
			pending = append(pending, j)
		}
	}
	return pending, maxID, nil
}

// idNumber extracts the numeric suffix of a "j-<n>" job id, 0 otherwise.
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0
	}
	return n
}

// submit durably records an admitted job. The append is fsynced before
// returning: once the submitter has its job id, a crash cannot lose the
// job.
func (j *journal) submit(job *Job) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Op: "submit", Job: job})
}

// done durably records a job's terminal verdict.
func (j *journal) done(job *Job) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{
		Op: "done", ID: job.ID, State: job.State,
		Verdict: job.Verdict, Detail: job.Detail,
		States: job.States, MemoHits: job.MemoHits, FinishedNS: job.FinishedNS,
	})
}

// cancel durably records a cancellation, so a canceled-while-pending job
// is not resurrected by replay.
func (j *journal) cancel(id string) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Op: "cancel", ID: id})
}

func (j *journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("jobs: journal closed")
	}
	if err := j.enc.Encode(rec); err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal sync: %w", err)
	}
	return nil
}

// close releases the journal file. Pending submissions stay on disk for
// the next instance to resume.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
