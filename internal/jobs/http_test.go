package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"calgo/internal/obs/serve"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		drain(t, m)
	})
	return m, srv
}

func postJob(t *testing.T, url string, req Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decoding job: %v", err)
	}
	return j
}

func TestHTTPSubmitPollLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp := postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.Schema != Schema || job.ID == "" {
		t.Fatalf("submitted job document = %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", r.StatusCode)
		}
		job = decodeJob(t, r)
		if job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.Verdict != "OK" {
		t.Errorf("verdict = %q detail %q, want OK", job.Verdict, job.Detail)
	}

	// The cached resubmission answers 200 immediately.
	resp = postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cached resubmit status = %d, want 200", resp.StatusCode)
	}
	if again := decodeJob(t, resp); !again.Cached || again.Verdict != "OK" {
		t.Errorf("cached resubmit = %+v, want cached OK", again)
	}

	// The list shows both jobs.
	r, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var all []Job
	if err := json.NewDecoder(r.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("list has %d jobs, want 2", len(all))
	}
}

func TestHTTPRequestErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, MaxHistoryBytes: 512})

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", resp.StatusCode)
	}

	resp = postJob(t, srv.URL, Request{Spec: "no-such-spec", History: satHistory(1, 2)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown spec status = %d, want 400", resp.StatusCode)
	}

	resp = postJob(t, srv.URL, Request{Spec: "exchanger", History: strings.Repeat("#", 1<<20)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/jobs/j-404404")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Rate: 0.5, Burst: 1, CacheEntries: -1})

	resp := postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", resp.StatusCode)
	}
	resp = postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}

	// A distinct client identity is admitted despite the first one's debt.
	body, _ := json.Marshal(Request{Spec: "exchanger", History: satHistory(5, 6)})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set(ClientHeader, "someone-else")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Errorf("other client status = %d, want 202", r2.StatusCode)
	}
}

func TestHTTPDraining503(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1})
	drain(t, m)
	resp := postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 must carry Retry-After")
	}
}

func TestHTTPCancel(t *testing.T) {
	release := make(chan struct{}, 8)
	m, srv := newTestServer(t, Config{QueueDepth: 4, Workers: 1, CacheEntries: -1,
		OnDone: func(Job) { <-release }})
	t.Cleanup(func() { close(release) })

	first := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)}))
	waitTerminal(t, m, first.ID) // worker now blocked in OnDone

	queued := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)}))
	resp, err := http.Post(srv.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	if j := decodeJob(t, resp); j.State != StateCanceled {
		t.Errorf("canceled job state = %s", j.State)
	}

	resp, err = http.Post(srv.URL+"/jobs/j-404404/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown status = %d, want 404", resp.StatusCode)
	}
	release <- struct{}{}
}

// sseLines reads SSE lines, forwarding each non-blank line.
func sseLines(r *bufio.Scanner, out chan<- string) {
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line != "" {
			out <- line
		}
	}
	close(out)
}

// TestHTTPWatchSSE pins the streaming contract: an immediate snapshot
// frame, frames per transition, then end-of-stream after the terminal
// frame.
func TestHTTPWatchSSE(t *testing.T) {
	release := make(chan struct{}, 8)
	m, srv := newTestServer(t, Config{QueueDepth: 4, Workers: 1, CacheEntries: -1,
		OnDone: func(Job) { <-release }})
	t.Cleanup(func() { close(release) })

	first := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)}))
	waitTerminal(t, m, first.ID) // block the worker
	queued := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)}))

	resp, err := http.Get(srv.URL + "/jobs/" + queued.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	lines := make(chan string, 64)
	go sseLines(bufio.NewScanner(resp.Body), lines)

	// Snapshot frame first: the job is still pending.
	var snap Job
	firstLine := <-lines
	if !strings.HasPrefix(firstLine, "data: ") {
		t.Fatalf("first frame = %q, want data frame", firstLine)
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(firstLine, "data: ")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != StatePending {
		t.Fatalf("snapshot state = %s, want pending", snap.State)
	}

	release <- struct{}{} // unblock: the watched job runs
	release <- struct{}{}

	var last Job
	for line := range lines { // stream ends after the terminal frame
		if strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !last.State.Terminal() || last.Verdict != "OK" {
		t.Errorf("terminal frame = state %s verdict %q, want done OK", last.State, last.Verdict)
	}
}

// TestHTTPWatchClientDisconnect pins that a watcher who goes away
// mid-stream releases its subscription instead of leaking it.
func TestHTTPWatchClientDisconnect(t *testing.T) {
	release := make(chan struct{}, 8)
	m, srv := newTestServer(t, Config{QueueDepth: 4, Workers: 1, CacheEntries: -1,
		OnDone: func(Job) { <-release }})
	t.Cleanup(func() { close(release) })

	first := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)}))
	waitTerminal(t, m, first.ID)
	queued := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)}))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/jobs/"+queued.ID+"?watch=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the snapshot frame, then hang up.
	br := bufio.NewScanner(resp.Body)
	if !br.Scan() {
		t.Fatal("no snapshot frame before disconnect")
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		n := len(m.watchers[queued.ID])
		m.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnected watcher still subscribed (%d)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	release <- struct{}{}
	release <- struct{}{}
}

// TestHTTPWatchDrainEvent pins that draining ends watch streams with an
// explicit drain event instead of silently hanging up.
func TestHTTPWatchDrainEvent(t *testing.T) {
	release := make(chan struct{}, 8)
	m, err := New(Config{QueueDepth: 4, Workers: 1, CacheEntries: -1,
		OnDone: func(Job) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	defer close(release)

	first := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(1, 2)}))
	waitTerminal(t, m, first.ID)
	queued := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)}))

	resp, err := http.Get(srv.URL + "/jobs/" + queued.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 64)
	go sseLines(bufio.NewScanner(resp.Body), lines)
	<-lines // snapshot frame

	// Drain with the worker still parked in OnDone: the stream must end
	// via the stop signal, not via the watched job finishing.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()

	sawDrain := false
	for line := range lines {
		if line == "event: drain" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Error("watch stream ended without the drain event")
	}
}

// TestHTTPMetricsIntegration pins the obs wiring end to end: the
// manager's counters land in the shared registry under the names the CI
// smoke scrapes from /metrics.
func TestHTTPMetricsIntegration(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1})
	job := decodeJob(t, postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)}))
	waitTerminal(t, m, job.ID)
	resp := postJob(t, srv.URL, Request{Spec: "exchanger", History: satHistory(3, 4)})
	resp.Body.Close()

	var buf bytes.Buffer
	if err := serve.WritePrometheus(&buf, m.cfg.Metrics.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"calgo_jobs_submitted_total 1", "calgo_jobs_cache_hits_total 1", "calgo_jobs_completed_total 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
}
