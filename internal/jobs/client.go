package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a cald job API with production manners: submissions
// that hit 429/503/5xx (or the wire) are retried with jittered
// exponential backoff, honouring the server's Retry-After when it is
// the longer wait; 4xx request errors are surfaced immediately — a bad
// history does not get better with retries.
type Client struct {
	// Base is the daemon's base URL (e.g. http://127.0.0.1:8419).
	Base string
	// HTTP is the transport (default: a client with a 30s timeout).
	HTTP *http.Client
	// Retries bounds the submission attempts (default 8).
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// PollInterval paces Wait's verdict polling (default 100ms).
	PollInterval time.Duration
	// ClientID is sent as X-Calgo-Client for per-client rate limiting.
	ClientID string
	// OnRetry, when set, observes each backoff (attempt counts from 1) —
	// the CLI logs these so a throttled run explains its pauses.
	OnRetry func(attempt int, wait time.Duration, cause string)
}

// NewClient returns a Client for the daemon at base with the default
// retry policy.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// StatusError is a non-2xx daemon response outside the retry budget.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("daemon answered %d: %s", e.Code, strings.TrimSpace(e.Body))
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 8
}

// backoff computes the attempt'th jittered exponential delay, raised to
// the server's Retry-After hint when that is longer.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter on the halved window: d/2 + rand(0, d/2], so
	// synchronized clients desynchronize instead of retrying in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Submit posts one job, retrying transient failures. The returned Job
// may already be terminal (a verdict-cache hit).
func (c *Client) Submit(ctx context.Context, req Request) (Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Job{}, err
	}
	var lastErr error
	for attempt := 0; attempt < c.retries(); attempt++ {
		job, retryAfter, err := c.post(ctx, body)
		if err == nil {
			return job, nil
		}
		lastErr = err
		var se *StatusError
		if asStatus(err, &se) && se.Code < 500 && se.Code != http.StatusTooManyRequests {
			return Job{}, err // permanent: bad request, not found, ...
		}
		wait := c.backoff(attempt, retryAfter)
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, wait, err.Error())
		}
		select {
		case <-ctx.Done():
			return Job{}, ctx.Err()
		case <-time.After(wait):
		}
	}
	return Job{}, fmt.Errorf("jobs: submission failed after %d attempts: %w", c.retries(), lastErr)
}

func asStatus(err error, target **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*target = se
	}
	return ok
}

// post performs one submission attempt, extracting Retry-After on 429/503.
func (c *Client) post(ctx context.Context, body []byte) (Job, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return Job{}, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		hreq.Header.Set(ClientHeader, c.ClientID)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return Job{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		var retryAfter time.Duration
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			retryAfter = time.Duration(s) * time.Second
		}
		return Job{}, retryAfter, &StatusError{Code: resp.StatusCode, Body: string(b)}
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return Job{}, 0, fmt.Errorf("decoding job document: %w", err)
	}
	return job, 0, nil
}

// Get fetches one job's current document.
func (c *Client) Get(ctx context.Context, id string) (Job, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id, nil)
	if err != nil {
		return Job{}, err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return Job{}, &StatusError{Code: resp.StatusCode, Body: string(b)}
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return Job{}, fmt.Errorf("decoding job document: %w", err)
	}
	return job, nil
}

// Wait polls until the job reaches a terminal state. Transient poll
// failures (the daemon restarting mid-drain, say) are retried with the
// same backoff as submissions.
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	failures := 0
	for {
		job, err := c.Get(ctx, id)
		switch {
		case err == nil:
			failures = 0
			if job.State.Terminal() {
				return job, nil
			}
		default:
			var se *StatusError
			if asStatus(err, &se) && se.Code < 500 && se.Code != http.StatusTooManyRequests {
				return Job{}, err
			}
			failures++
			if failures >= c.retries() {
				return Job{}, fmt.Errorf("jobs: polling %s failed after %d attempts: %w", id, failures, err)
			}
		}
		select {
		case <-ctx.Done():
			return Job{}, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Check submits a job and waits for its verdict — the remote
// counterpart of a local calgo.CAL call.
func (c *Client) Check(ctx context.Context, req Request) (Job, error) {
	job, err := c.Submit(ctx, req)
	if err != nil {
		return Job{}, err
	}
	if job.State.Terminal() {
		return job, nil
	}
	return c.Wait(ctx, job.ID)
}
