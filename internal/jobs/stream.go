package jobs

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/stream"
)

// StreamSchema versions the stream JSON document served by the /streams
// API; the verdict payload inside it is a calgo.stream/v1 verdict frame
// (see EXPERIMENTS.md, "Streaming checking").
const StreamSchema = "calgo.stream/v1"

// StreamStates.
const (
	// StreamOpen: the stream accepts events.
	StreamOpen = "open"
	// StreamClosed: terminal; end-of-stream checks have run and the
	// verdict is final. Closed streams stay queryable until evicted.
	StreamClosed = "closed"
)

// StreamRequest opens a stream: the specification vocabulary is the one
// the job API uses (SpecByName), plus streaming knobs.
type StreamRequest struct {
	// Spec/Object/Threads select the specification, as in Request.
	Spec    string `json:"spec"`
	Object  string `json:"object,omitempty"`
	Threads int    `json:"threads,omitempty"`
	// Engine selects the streaming decision path: auto (default), dfs,
	// monitor.
	Engine string `json:"engine,omitempty"`
	// Window and CheckEvery override the server defaults; both are
	// clamped by the server-wide maxima, never raised.
	Window     int `json:"window,omitempty"`
	CheckEvery int `json:"check_every,omitempty"`
}

// StreamDoc is one stream's served document: identity, lifecycle state
// and the current verdict frame.
type StreamDoc struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	// Client identifies the opener (the X-Calgo-Client header, or the
	// peer address), for admission control and diagnostics.
	Client string `json:"client,omitempty"`
	// State is "open" or "closed".
	State string `json:"state"`
	// Request holds the effective parameters after server-side clamping.
	Request   StreamRequest  `json:"request"`
	CreatedNS int64          `json:"created_unix_ns"`
	ClosedNS  int64          `json:"closed_unix_ns,omitempty"`
	Verdict   stream.Verdict `json:"verdict"`
}

// StreamConfig configures a StreamManager. The zero value is usable.
type StreamConfig struct {
	// MaxStreams bounds concurrently open streams; at the bound new
	// opens are shed with 429 + Retry-After (default 16).
	MaxStreams int
	// Rate is the per-client sustained stream-open rate per second
	// (0 = unlimited); Burst is the token-bucket depth (default 4).
	Rate  float64
	Burst int
	// MaxBatchBytes bounds one POSTed event batch (default 1 MiB);
	// MaxBatchEvents bounds its event count (default 65536). Streams
	// themselves are unbounded — that is the point — but each ingest
	// must fit in memory.
	MaxBatchBytes  int
	MaxBatchEvents int
	// Window and CheckEvery default (and clamp) the per-stream knobs
	// (defaults stream.DefaultWindow / stream.DefaultCheckEvery).
	Window     int
	CheckEvery int
	// IdleTimeout closes streams that have not seen an event for this
	// long — the final verdict is computed and kept, the resident state
	// released (default 5m; negative disables).
	IdleTimeout time.Duration
	// MaxClosed bounds retained closed streams, evicted oldest-first
	// (default 64).
	MaxClosed int
	// Metrics receives the stream.* counters and gauges; one registry
	// may be shared with the job manager (default: a private registry).
	Metrics *obs.Metrics
	// Logger receives lifecycle diagnostics (default: silent).
	Logger *slog.Logger
	// OnClose, when set, observes every stream as it closes — cald
	// publishes the final verdicts on /runsz.
	OnClose func(StreamDoc)
}

// StreamManager owns the stream table: admission-controlled opens,
// per-stream ingestion, verdict watching and idle reaping. All methods
// are safe for concurrent use.
type StreamManager struct {
	cfg     StreamConfig
	log     *slog.Logger
	limiter *limiter

	mu       sync.Mutex
	streams  map[string]*servedStream
	order    []string
	nClosed  int
	nextID   int
	stopped  bool
	draining atomic.Bool
	stopCh   chan struct{}

	cOpened, cClosed, cShed, cRateLimited, cEvents *obs.Counter
	gOpen                                          *obs.Gauge
}

type servedStream struct {
	doc      StreamDoc
	s        *stream.Stream
	watchers []chan StreamDoc
	idle     *time.Timer
}

// NewStreamManager builds the stream service.
func NewStreamManager(cfg StreamConfig) *StreamManager {
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 16
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 4
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	if cfg.MaxBatchEvents <= 0 {
		cfg.MaxBatchEvents = 1 << 16
	}
	if cfg.Window <= 0 {
		cfg.Window = stream.DefaultWindow
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = stream.DefaultCheckEvery
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.MaxClosed <= 0 {
		cfg.MaxClosed = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &StreamManager{
		cfg:          cfg,
		log:          cfg.Logger,
		limiter:      newLimiter(cfg.Rate, cfg.Burst),
		streams:      make(map[string]*servedStream),
		stopCh:       make(chan struct{}),
		cOpened:      cfg.Metrics.Counter("streams.opened"),
		cClosed:      cfg.Metrics.Counter("streams.closed"),
		cShed:        cfg.Metrics.Counter("streams.shed"),
		cRateLimited: cfg.Metrics.Counter("streams.rate_limited"),
		cEvents:      cfg.Metrics.Counter("streams.events"),
		gOpen:        cfg.Metrics.Gauge("streams.open"),
	}
	return m
}

// Open admits and creates a stream. Transient refusals (at the open-
// stream bound, over the client's rate) are *OverloadError values;
// permanently-bad requests are *RequestError values; ErrDraining
// reports shutdown.
func (m *StreamManager) Open(client string, req StreamRequest) (StreamDoc, error) {
	if m.draining.Load() {
		return StreamDoc{}, ErrDraining
	}
	if ok, wait := m.limiter.allow(client, time.Now()); !ok {
		m.cRateLimited.Inc()
		return StreamDoc{}, &OverloadError{Cause: "rate limited", RetryAfter: wait}
	}
	sp, err := SpecByName(req.Spec, req.Object, req.Threads)
	if err != nil {
		return StreamDoc{}, &RequestError{Err: err}
	}
	eng, err := stream.ParseEngine(req.Engine)
	if err != nil {
		return StreamDoc{}, &RequestError{Err: err}
	}
	req.Engine = eng.String()
	if req.Object == "" {
		req.Object = "E"
	}
	if req.Window <= 0 || req.Window > m.cfg.Window {
		req.Window = m.cfg.Window
	}
	if req.CheckEvery <= 0 || req.CheckEvery > m.cfg.CheckEvery {
		req.CheckEvery = m.cfg.CheckEvery
	}
	s, err := stream.New(sp, stream.Config{
		Window:     req.Window,
		CheckEvery: req.CheckEvery,
		Engine:     eng,
		Metrics:    m.cfg.Metrics,
	})
	if err != nil {
		return StreamDoc{}, &RequestError{Err: err}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		s.Close()
		return StreamDoc{}, ErrDraining
	}
	if len(m.streams)-m.nClosed >= m.cfg.MaxStreams {
		s.Close()
		m.cShed.Inc()
		return StreamDoc{}, &OverloadError{Cause: "open-stream bound reached", RetryAfter: time.Second}
	}
	m.nextID++
	id := fmt.Sprintf("s%06d", m.nextID)
	ss := &servedStream{
		doc: StreamDoc{
			Schema:    StreamSchema,
			ID:        id,
			Client:    client,
			State:     StreamOpen,
			Request:   req,
			CreatedNS: time.Now().UnixNano(),
			Verdict:   s.Verdict(),
		},
		s: s,
	}
	if m.cfg.IdleTimeout > 0 {
		ss.idle = time.AfterFunc(m.cfg.IdleTimeout, func() { m.reapIdle(id) })
	}
	m.streams[id] = ss
	m.order = append(m.order, id)
	m.cOpened.Inc()
	m.gOpen.Set(int64(len(m.streams) - m.nClosed))
	m.log.Info("stream opened", "id", id, "client", client,
		"spec", req.Spec, "engine", req.Engine, "window", req.Window)
	return ss.doc, nil
}

// Feed parses one batch of events (the line-oriented history
// interchange format) and feeds it to the stream in order. The first
// ill-formed event stops the batch with a *RequestError; prior events
// in the batch stay fed — exactly the semantics of observing a live
// system up to a corrupt record.
func (m *StreamManager) Feed(id, batch string) (StreamDoc, error) {
	h, err := history.ParseFileLimited("batch", batch, history.Limits{
		MaxBytes:  m.cfg.MaxBatchBytes,
		MaxEvents: m.cfg.MaxBatchEvents,
	})
	if err != nil {
		return StreamDoc{}, &RequestError{Err: err}
	}
	m.mu.Lock()
	ss, ok := m.streams[id]
	if !ok {
		m.mu.Unlock()
		return StreamDoc{}, ErrNotFound
	}
	if ss.doc.State != StreamOpen {
		m.mu.Unlock()
		return ss.doc, &RequestError{Err: errors.New("stream is closed")}
	}
	if ss.idle != nil {
		ss.idle.Reset(m.cfg.IdleTimeout)
	}
	var feedErr error
	fed := 0
	for _, ev := range h {
		if err := ss.s.Feed(ev); err != nil {
			feedErr = &RequestError{Err: fmt.Errorf("event %d of batch: %w", fed, err)}
			break
		}
		fed++
	}
	m.cEvents.Add(int64(fed))
	ss.doc.Verdict = ss.s.Verdict()
	doc := ss.doc
	m.notifyLocked(ss)
	m.mu.Unlock()
	return doc, feedErr
}

// Close runs the stream's end-of-stream checks and returns the final
// document. Idempotent per stream.
func (m *StreamManager) Close(id string) (StreamDoc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss, ok := m.streams[id]
	if !ok {
		return StreamDoc{}, ErrNotFound
	}
	return m.closeLocked(ss, "closed by client"), nil
}

// closeLocked finalizes one stream: Close the checker, mark the doc
// terminal, notify watchers, publish, and evict old closed docs.
func (m *StreamManager) closeLocked(ss *servedStream, why string) StreamDoc {
	if ss.doc.State != StreamOpen {
		return ss.doc
	}
	if ss.idle != nil {
		ss.idle.Stop()
	}
	ss.doc.Verdict = ss.s.Close()
	ss.doc.State = StreamClosed
	ss.doc.ClosedNS = time.Now().UnixNano()
	m.nClosed++
	m.cClosed.Inc()
	m.gOpen.Set(int64(len(m.streams) - m.nClosed))
	m.log.Info("stream closed", "id", ss.doc.ID, "why", why,
		"verdict", ss.doc.Verdict.String(), "events", ss.doc.Verdict.Events)
	m.notifyLocked(ss)
	for _, ch := range ss.watchers {
		close(ch)
	}
	ss.watchers = nil
	if m.cfg.OnClose != nil {
		go m.cfg.OnClose(ss.doc)
	}
	m.evictClosedLocked()
	return ss.doc
}

// evictClosedLocked drops the oldest closed streams past MaxClosed.
func (m *StreamManager) evictClosedLocked() {
	if m.nClosed <= m.cfg.MaxClosed {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		ss := m.streams[id]
		if m.nClosed > m.cfg.MaxClosed && ss.doc.State == StreamClosed {
			delete(m.streams, id)
			m.nClosed--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// reapIdle closes a stream that outlived IdleTimeout without events.
func (m *StreamManager) reapIdle(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ss, ok := m.streams[id]; ok {
		m.closeLocked(ss, "idle timeout")
	}
}

// Cancel aborts a stream's in-flight fallback re-checks and closes it;
// the final verdict degrades rather than blocks.
func (m *StreamManager) Cancel(id string) (StreamDoc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss, ok := m.streams[id]
	if !ok {
		return StreamDoc{}, ErrNotFound
	}
	ss.s.Cancel()
	return m.closeLocked(ss, "canceled by client"), nil
}

// Get returns one stream document.
func (m *StreamManager) Get(id string) (StreamDoc, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss, ok := m.streams[id]
	if !ok {
		return StreamDoc{}, false
	}
	ss.doc.Verdict = ss.s.Verdict()
	return ss.doc, true
}

// List returns every known stream document, oldest first.
func (m *StreamManager) List() []StreamDoc {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StreamDoc, 0, len(m.order))
	for _, id := range m.order {
		ss := m.streams[id]
		if ss.doc.State == StreamOpen {
			ss.doc.Verdict = ss.s.Verdict()
		}
		out = append(out, ss.doc)
	}
	return out
}

// Watch returns the current document, a channel of subsequent frames
// (one per ingested batch and one terminal frame; closed after the
// terminal frame), and a stop function the caller must invoke.
func (m *StreamManager) Watch(id string) (StreamDoc, <-chan StreamDoc, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss, ok := m.streams[id]
	if !ok {
		return StreamDoc{}, nil, nil, ErrNotFound
	}
	if ss.doc.State == StreamOpen {
		ss.doc.Verdict = ss.s.Verdict()
	}
	snap := ss.doc
	ch := make(chan StreamDoc, 16)
	if snap.State != StreamOpen {
		close(ch)
		return snap, ch, func() {}, nil
	}
	ss.watchers = append(ss.watchers, ch)
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, w := range ss.watchers {
			if w == ch {
				ss.watchers = append(ss.watchers[:i], ss.watchers[i+1:]...)
				return
			}
		}
	}
	return snap, ch, stop, nil
}

// notifyLocked delivers the current document to every watcher; slow
// watchers lose intermediate frames, never the terminal one (the
// channel close after closeLocked is the terminal signal).
func (m *StreamManager) notifyLocked(ss *servedStream) {
	for _, ch := range ss.watchers {
		select {
		case ch <- ss.doc:
		default:
		}
	}
}

// Stopping is closed when Drain begins; SSE watchers use it to end
// their streams with a drain event.
func (m *StreamManager) Stopping() <-chan struct{} { return m.stopCh }

// Drain refuses new opens and closes every open stream, computing final
// verdicts. Unlike jobs, streams are connection-era state: they are not
// journaled, and clients of a restarted daemon re-open and re-feed.
func (m *StreamManager) Drain() {
	if !m.draining.CompareAndSwap(false, true) {
		return
	}
	close(m.stopCh)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	for _, id := range m.order {
		m.closeLocked(m.streams[id], "daemon draining")
	}
}
