package jobs

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientBackoffBounds(t *testing.T) {
	c := &Client{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		d := c.backoff(attempt, 0)
		// Full jitter on the halved window: [base<<n / 2, base<<n], capped.
		win := 100 * time.Millisecond << uint(attempt)
		if win > time.Second || win <= 0 {
			win = time.Second
		}
		if d < win/2 || d > win {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, win/2, win)
		}
	}
	// The server's Retry-After hint wins when it is longer.
	if d := c.backoff(0, 3*time.Second); d != 3*time.Second {
		t.Errorf("backoff with Retry-After 3s = %v", d)
	}
}

// TestClientRetriesThrottledSubmission pins the 429 contract end to end:
// a rate-limited submission is retried with backoff until admitted.
func TestClientRetriesThrottledSubmission(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Rate: 20, Burst: 1, CacheEntries: -1})

	c := NewClient(srv.URL)
	c.ClientID = "retrier"
	c.BaseDelay = 20 * time.Millisecond
	var retries atomic.Int64
	c.OnRetry = func(attempt int, wait time.Duration, cause string) { retries.Add(1) }

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Burst 1: the first submission drains the bucket, the second must
	// absorb at least one 429 before the 20/s refill admits it.
	if _, err := c.Submit(ctx, Request{Spec: "exchanger", History: satHistory(1, 2)}); err != nil {
		t.Fatal(err)
	}
	job, err := c.Check(ctx, Request{Spec: "exchanger", History: satHistory(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if job.Verdict != "OK" {
		t.Errorf("verdict = %q, want OK", job.Verdict)
	}
	if retries.Load() == 0 {
		t.Error("expected at least one observed 429 retry")
	}
}

// TestClientPermanentErrorsDontRetry pins that 4xx request errors fail
// fast: a bad history does not get better with retries.
func TestClientPermanentErrorsDontRetry(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	c := NewClient(srv.URL)
	var retries atomic.Int64
	c.OnRetry = func(int, time.Duration, string) { retries.Add(1) }

	_, err := c.Submit(context.Background(), Request{Spec: "no-such-spec", History: satHistory(1, 2)})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
	if retries.Load() != 0 {
		t.Errorf("permanent 400 was retried %d times", retries.Load())
	}
}

// TestClientRetriesTransportAndServerErrors pins transient handling: wire
// errors and 5xx are retried up to the budget, then surfaced.
func TestClientRetriesTransportAndServerErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = 3
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 2 * time.Millisecond
	_, err := c.Submit(context.Background(), Request{Spec: "exchanger", History: satHistory(1, 2)})
	if err == nil {
		t.Fatal("exhausted retries must surface an error")
	}
	if hits.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3", hits.Load())
	}
}

func TestClientWaitAndGet(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	c := NewClient(srv.URL)

	job, err := c.Submit(context.Background(), Request{Spec: "exchanger", History: unsatHistory})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Verdict != "VIOLATION" {
		t.Errorf("verdict = %q, want VIOLATION", final.Verdict)
	}
	got, err := c.Get(context.Background(), job.ID)
	if err != nil || got.ID != job.ID {
		t.Errorf("Get = %+v, %v", got, err)
	}
	if _, err := c.Get(context.Background(), "j-404404"); err == nil {
		t.Error("Get of unknown id must fail")
	}
}

func TestClientHonorsContextCancellation(t *testing.T) {
	// A server that always sheds: the client would retry forever without
	// the context.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, Request{Spec: "exchanger", History: satHistory(1, 2)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation took far longer than the context allowed")
	}
}
