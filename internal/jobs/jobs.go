// Package jobs is the checking-as-a-service core behind cmd/cald: a
// bounded, journaled job queue that accepts histories over HTTP, fans
// them across a checker worker pool, and serves three-valued verdicts.
//
// The package is built for hostile production traffic:
//
//   - Admission control: the queue is bounded; a full queue sheds load
//     with 429 + Retry-After instead of buffering without limit.
//   - Rate limiting: per-client token buckets bound each submitter's
//     sustained rate independently of the queue.
//   - Verdict cache: jobs are keyed by the canonicalized-history
//     fingerprint, so replayed traffic is answered without re-running
//     the search (Sat/Unsat only — Unknown depends on budgets).
//   - Graceful degradation: per-job deadlines and state/memo budgets are
//     clamped by server-wide limits; an exhausted budget surfaces as an
//     UNKNOWN verdict, never a hung request.
//   - Crash safety: an append-only journal records every admitted job
//     and its completion; a restarted manager replays the journal and
//     resumes the jobs that never finished.
package jobs

import (
	"fmt"
	"time"

	"calgo/internal/history"
	"calgo/internal/spec"
)

// Schema versions the job JSON document served by the /jobs API and
// stored in the journal; the shape is specified in EXPERIMENTS.md
// ("Checking as a service").
const Schema = "calgo.job/v1"

// State is a job's position in its lifecycle.
type State string

const (
	// StatePending: admitted and queued, not yet picked up by a worker.
	StatePending State = "pending"
	// StateRunning: a worker is deciding the history now.
	StateRunning State = "running"
	// StateDone: terminal; Verdict, Detail and the search counters are
	// final.
	StateDone State = "done"
	// StateCanceled: terminal; the job was canceled while pending or
	// running and has no verdict.
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool { return s == StateDone || s == StateCanceled }

// Request is the client's half of a job: what to check and under which
// (clamped) budgets. Zero budget fields inherit the server's defaults;
// non-zero ones are clamped to the server's maxima, never raised.
type Request struct {
	// Spec names the specification: exchanger, elimarray, stack,
	// central-stack, dual-stack, queue, set, pqueue, syncqueue, register,
	// snapshot.
	Spec string `json:"spec"`
	// Object is the object identifier the spec constrains (default "E").
	Object string `json:"object,omitempty"`
	// Threads is the participant bound for spec "snapshot" (default 4).
	Threads int `json:"threads,omitempty"`
	// Mode selects the property: cal (default), lin, setlin.
	Mode string `json:"mode,omitempty"`
	// Engine selects the checker's decision procedure: dfs (default),
	// auto, monitor. Submit normalizes the empty string to "dfs", so the
	// job document always records the effective engine.
	Engine string `json:"engine,omitempty"`
	// History is the line-oriented interchange format accepted by
	// calcheck (inv/res lines).
	History string `json:"history"`
	// TimeoutMS is the per-job wall-clock deadline in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxStates bounds the search-state budget.
	MaxStates int `json:"max_states,omitempty"`
	// MemoBudget bounds the memoization-table bytes.
	MemoBudget int `json:"memo_budget,omitempty"`
}

// Job is one unit of checking work and its outcome — the document the
// /jobs API serves and the journal persists.
type Job struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	// Client identifies the submitter (the X-Calgo-Client header, or the
	// peer address), for rate-limiting and diagnostics.
	Client string `json:"client,omitempty"`
	State  State  `json:"state"`
	// Request holds the *effective* parameters: budgets after server-side
	// clamping, so the document records what was actually enforced.
	Request     Request `json:"request"`
	SubmittedNS int64   `json:"submitted_unix_ns"`
	StartedNS   int64   `json:"started_unix_ns,omitempty"`
	FinishedNS  int64   `json:"finished_unix_ns,omitempty"`
	// Verdict is the CLI vocabulary: OK, VIOLATION or UNKNOWN.
	Verdict string `json:"verdict,omitempty"`
	// Detail explains the verdict (reason, frontier, or cache note).
	Detail   string `json:"detail,omitempty"`
	States   int    `json:"states,omitempty"`
	MemoHits int    `json:"memo_hits,omitempty"`
	// Cached is true when the verdict was answered from the verdict cache
	// without running the search.
	Cached bool `json:"cached,omitempty"`
	// Resumed is true when the job was recovered from the journal by a
	// restarted daemon.
	Resumed bool `json:"resumed,omitempty"`

	// parsed is the validated history; not serialized (the journal
	// re-parses Request.History on replay).
	parsed history.History
	// cancelRequested marks a running job whose context has been
	// cancelled by Cancel; the worker finalizes it as StateCanceled.
	cancelRequested bool
}

// RequestError is a permanently-bad submission (unknown spec, malformed
// history, over-limit input): the HTTP layer answers 400 and clients
// must not retry.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// OverloadError is a transient admission failure — the queue is full or
// the client is over its rate — carrying the server's backoff hint. The
// HTTP layer answers 429 with a Retry-After header; well-behaved clients
// retry with jittered exponential backoff (jobs.Client does).
type OverloadError struct {
	// Cause distinguishes "queue full" from "rate limited".
	Cause string
	// RetryAfter is the server's earliest-useful-retry hint.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded (%s), retry after %v", e.Cause, e.RetryAfter)
}

// ErrDraining rejects submissions while the manager drains for
// shutdown; the HTTP layer answers 503. Pending jobs are journaled and
// resumed by the next daemon instance.
var ErrDraining = fmt.Errorf("jobs: manager is draining")

// ErrNotFound reports an unknown job id.
var ErrNotFound = fmt.Errorf("jobs: no such job")

// SpecByName resolves the specification vocabulary shared by calcheck
// and the job API. Threads only matters for "snapshot" (0 = default 4).
func SpecByName(name, object string, threads int) (spec.Spec, error) {
	if object == "" {
		object = "E"
	}
	o := history.ObjectID(object)
	switch name {
	case "exchanger":
		return spec.NewExchanger(o), nil
	case "elimarray":
		return spec.NewElimArray(o), nil
	case "stack":
		return spec.NewStack(o), nil
	case "central-stack":
		return spec.NewCentralStack(o), nil
	case "dual-stack":
		return spec.NewDualStack(o), nil
	case "queue":
		return spec.NewQueue(o), nil
	case "set":
		return spec.NewSet(o), nil
	case "pqueue":
		return spec.NewPQueue(o), nil
	case "syncqueue":
		return spec.NewSyncQueue(o), nil
	case "register":
		return spec.NewRegister(o), nil
	case "snapshot":
		if threads <= 0 {
			threads = 4
		}
		return spec.NewSnapshot(o, threads), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}
