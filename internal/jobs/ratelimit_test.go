package jobs

import (
	"fmt"
	"testing"
	"time"
)

func TestLimiterBurstThenRefill(t *testing.T) {
	l := newLimiter(2, 3) // 2 tokens/sec, burst 3
	now := time.Unix(1000, 0)

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("c", now); !ok {
			t.Fatalf("probe %d within burst refused", i)
		}
	}
	ok, wait := l.allow("c", now)
	if ok {
		t.Fatal("fourth probe at the same instant must be refused")
	}
	// One token accrues in 1/rate = 500ms.
	if wait < 400*time.Millisecond || wait > 600*time.Millisecond {
		t.Errorf("Retry-After hint = %v, want ~500ms", wait)
	}

	// After the hinted wait, exactly one more probe passes.
	now = now.Add(wait)
	if ok, _ := l.allow("c", now); !ok {
		t.Error("probe after the hinted wait refused")
	}
	if ok, _ := l.allow("c", now); ok {
		t.Error("second probe after a single-token refill admitted")
	}

	// Tokens cap at burst regardless of idle time.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("c", now); !ok {
			t.Fatalf("probe %d after long idle refused", i)
		}
	}
	if ok, _ := l.allow("c", now); ok {
		t.Error("burst must not exceed its cap after idling")
	}
}

func TestLimiterPerClientIsolation(t *testing.T) {
	l := newLimiter(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := l.allow("a", now); !ok {
		t.Fatal("first client refused")
	}
	if ok, _ := l.allow("a", now); ok {
		t.Fatal("first client's second probe admitted")
	}
	if ok, _ := l.allow("b", now); !ok {
		t.Error("second client must have its own bucket")
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := newLimiter(0, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("c", now); !ok {
			t.Fatal("rate 0 means unlimited")
		}
	}
}

// TestLimiterBoundsMemory pins that client-id churn cannot grow the
// bucket table without bound: idle-refilled buckets are pruned.
func TestLimiterBoundsMemory(t *testing.T) {
	l := newLimiter(1000, 1) // refills in 1ms: every bucket is prunable fast
	now := time.Unix(1000, 0)
	for i := 0; i < 3*maxBuckets; i++ {
		l.allow(fmt.Sprintf("hostile-%d", i), now)
		now = now.Add(time.Millisecond)
	}
	if n := len(l.buckets); n > maxBuckets {
		t.Errorf("bucket table grew to %d, bound is %d", n, maxBuckets)
	}
}
