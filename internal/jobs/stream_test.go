package jobs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// streamFrame is the calgo.stream/v1 wire shape the tests pin: a stream
// document whose verdict payload carries the status/display pair emitted
// by stream.Verdict.MarshalJSON.
type streamFrame struct {
	Schema  string        `json:"schema"`
	ID      string        `json:"id"`
	State   string        `json:"state"`
	Request StreamRequest `json:"request"`
	Verdict struct {
		Status    string `json:"status"`
		Display   string `json:"display"`
		AtEvent   int64  `json:"at_event"`
		Events    int64  `json:"events"`
		Shed      int64  `json:"shed"`
		HighWater int64  `json:"high_water"`
		Engine    string `json:"engine"`
		Final     bool   `json:"final"`
	} `json:"verdict"`
}

func newStreamServer(t *testing.T, cfg StreamConfig) (*StreamManager, *httptest.Server) {
	t.Helper()
	m := NewStreamManager(cfg)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Drain()
	})
	return m, srv
}

func openStream(t *testing.T, url string, req StreamRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/streams", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeFrame(t *testing.T, resp *http.Response) streamFrame {
	t.Helper()
	defer resp.Body.Close()
	var f streamFrame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatalf("decoding stream frame: %v", err)
	}
	return f
}

func postBatch(t *testing.T, url, id, batch string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/streams/"+id+"/events", "text/plain", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// queueViolationBatch: enq(1) then deq -> 7; event 3 (the deq response)
// makes the prefix non-linearizable.
const queueViolationBatch = `inv t1 E.enq 1
res t1 E.enq true
inv t1 E.deq ()
res t1 E.deq (true,7)
`

// TestStreamHTTPLifecycle: open -> feed a violating batch -> the verdict
// frame reports VIOLATION-at-event-3 -> close is terminal and final.
func TestStreamHTTPLifecycle(t *testing.T) {
	_, srv := newStreamServer(t, StreamConfig{})

	resp := openStream(t, srv.URL, StreamRequest{Spec: "queue"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status = %d, want 201", resp.StatusCode)
	}
	f := decodeFrame(t, resp)
	if f.Schema != StreamSchema || f.ID == "" || f.State != StreamOpen {
		t.Fatalf("opened stream frame = %+v", f)
	}
	if f.Verdict.Status != "sat-so-far" || f.Request.Engine != "auto" {
		t.Fatalf("fresh stream verdict = %+v", f.Verdict)
	}

	resp = postBatch(t, srv.URL, f.ID, queueViolationBatch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed status = %d, want 200", resp.StatusCode)
	}
	f = decodeFrame(t, resp)
	if f.Verdict.Status != "violation" || f.Verdict.AtEvent != 3 {
		t.Fatalf("after violating batch: %+v", f.Verdict)
	}
	if !strings.HasPrefix(f.Verdict.Display, "VIOLATION-at-event-3") {
		t.Fatalf("display = %q", f.Verdict.Display)
	}

	resp, err := http.Post(srv.URL+"/streams/"+f.ID+"/close", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	f = decodeFrame(t, resp)
	if f.State != StreamClosed || !f.Verdict.Final || f.Verdict.Status != "violation" {
		t.Fatalf("closed frame = %+v", f)
	}

	// Feeding a closed stream is a 400, and the list still shows it.
	resp = postBatch(t, srv.URL, f.ID, queueViolationBatch)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("feed after close status = %d, want 400", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var all []streamFrame
	if err := json.NewDecoder(r.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].State != StreamClosed {
		t.Errorf("list = %+v, want one closed stream", all)
	}
}

// TestStreamHTTPWatchSSE: a watcher sees the violation frame pushed per
// ingested batch, then the channel terminates after close.
func TestStreamHTTPWatchSSE(t *testing.T) {
	_, srv := newStreamServer(t, StreamConfig{})
	f := decodeFrame(t, openStream(t, srv.URL, StreamRequest{Spec: "queue"}))

	watch, err := http.Get(srv.URL + "/streams/" + f.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	if ct := watch.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}

	frames := make(chan streamFrame, 8)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(watch.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var fr streamFrame
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &fr) == nil {
				frames <- fr
			}
		}
	}()

	// First SSE frame is the immediate snapshot.
	select {
	case fr := <-frames:
		if fr.Verdict.Status != "sat-so-far" {
			t.Fatalf("snapshot frame = %+v", fr.Verdict)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no snapshot frame")
	}

	postBatch(t, srv.URL, f.ID, queueViolationBatch).Body.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case fr, ok := <-frames:
			if !ok {
				t.Fatal("watch ended before the violation frame")
			}
			if fr.Verdict.Status == "violation" {
				if fr.Verdict.AtEvent != 3 {
					t.Fatalf("violation frame at_event = %d, want 3", fr.Verdict.AtEvent)
				}
				// Close ends the SSE stream after the terminal frame.
				resp, err := http.Post(srv.URL+"/streams/"+f.ID+"/close", "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				for {
					select {
					case _, ok := <-frames:
						if !ok {
							return
						}
					case <-deadline:
						t.Fatal("watch did not terminate after close")
					}
				}
			}
		case <-deadline:
			t.Fatal("violation frame never arrived")
		}
	}
}

// TestStreamHTTPOpenBound: the MaxStreams admission bound sheds with
// 429 + Retry-After; closing a stream frees the slot.
func TestStreamHTTPOpenBound(t *testing.T) {
	m, srv := newStreamServer(t, StreamConfig{MaxStreams: 1})
	f := decodeFrame(t, openStream(t, srv.URL, StreamRequest{Spec: "queue"}))

	resp := openStream(t, srv.URL, StreamRequest{Spec: "stack"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("open past bound status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if m.cShed.Value() != 1 {
		t.Errorf("streams.shed = %d, want 1", m.cShed.Value())
	}

	if _, err := m.Close(f.ID); err != nil {
		t.Fatal(err)
	}
	resp = openStream(t, srv.URL, StreamRequest{Spec: "stack"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open after close status = %d, want 201", resp.StatusCode)
	}
}

// TestStreamHTTPRequestErrors: bad spec / engine / batch are 400s,
// unknown streams are 404s, and draining is a 503.
func TestStreamHTTPRequestErrors(t *testing.T) {
	m, srv := newStreamServer(t, StreamConfig{})

	for _, req := range []StreamRequest{
		{Spec: "no-such-spec"},
		{Spec: "queue", Engine: "warp"},
	} {
		resp := openStream(t, srv.URL, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("open %+v status = %d, want 400", req, resp.StatusCode)
		}
	}

	f := decodeFrame(t, openStream(t, srv.URL, StreamRequest{Spec: "queue"}))
	resp := postBatch(t, srv.URL, f.ID, "inv t1 E.enq not-a-value garbage here\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch status = %d, want 400", resp.StatusCode)
	}

	resp = postBatch(t, srv.URL, "s999999", queueViolationBatch)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("feed unknown stream status = %d, want 404", resp.StatusCode)
	}

	m.Drain()
	resp = openStream(t, srv.URL, StreamRequest{Spec: "queue"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open while draining status = %d, want 503", resp.StatusCode)
	}
}

// TestStreamHTTPPartialBatch: a batch whose tail event is ill-formed
// feeds its well-formed prefix and reports both the error and the
// advanced document.
func TestStreamHTTPPartialBatch(t *testing.T) {
	_, srv := newStreamServer(t, StreamConfig{})
	f := decodeFrame(t, openStream(t, srv.URL, StreamRequest{Spec: "queue"}))

	// Second res has no matching open invocation on t2: parseable, but
	// rejected by stream well-formedness validation mid-batch.
	batch := "inv t1 E.enq 1\nres t1 E.enq true\nres t2 E.deq (true,1)\n"
	resp := postBatch(t, srv.URL, f.ID, batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial batch status = %d, want 400", resp.StatusCode)
	}
	var out struct {
		Error string `json:"error"`
		streamFrame
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" || out.Verdict.Events != 2 {
		t.Fatalf("partial batch response = %+v, want error + 2 fed events", out)
	}
}

// TestStreamIdleReap: a stream with no traffic is closed by the idle
// timer, its final verdict retained.
func TestStreamIdleReap(t *testing.T) {
	m, srv := newStreamServer(t, StreamConfig{IdleTimeout: 30 * time.Millisecond})
	f := decodeFrame(t, openStream(t, srv.URL, StreamRequest{Spec: "queue"}))

	deadline := time.Now().Add(5 * time.Second)
	for {
		doc, ok := m.Get(f.ID)
		if !ok {
			t.Fatal("stream evicted instead of closed")
		}
		if doc.State == StreamClosed {
			if !doc.Verdict.Final {
				t.Fatalf("idle-reaped verdict not final: %+v", doc.Verdict)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("idle stream never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
