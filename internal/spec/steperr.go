package spec

import "calgo/internal/trace"

// rejection is a Step error that renders the offending CA-element lazily.
// The checker's subset enumeration probes Step with speculative elements
// and discards almost every rejection unread, so eagerly formatting the
// element (fmt.Errorf with %s) would dominate the search's allocation
// profile for nothing.
type rejection struct {
	msg string
	el  trace.Element
}

func (r *rejection) Error() string { return r.msg + ": " + r.el.String() }

// reject builds a lazily-formatted Step rejection for el.
func reject(msg string, el trace.Element) error { return &rejection{msg: msg, el: el} }
