package spec

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the synchronous queue interface.
const (
	MethodPut  history.Method = "put"
	MethodTake history.Method = "take"
)

// SyncQueue is the CA-specification of a synchronous (hand-off) queue, the
// second exchanger client discussed by the paper ([9], [22]): a put and a
// take must "seem to take effect simultaneously". Admitted elements are
//
//   - a hand-off Q.{(t, put(v) ▷ true), (t', take(()) ▷ (true,v))}, t ≠ t',
//   - a failed (timed-out) put singleton Q.{(t, put(v) ▷ false)}, and
//   - a failed take singleton Q.{(t, take(()) ▷ (false,0))}.
//
// Like the exchanger, a successful operation can never stand alone — which
// is exactly why the object has no useful sequential specification.
type SyncQueue struct {
	Obj history.ObjectID
}

var (
	_ Spec            = SyncQueue{}
	_ PendingResolver = SyncQueue{}
)

// NewSyncQueue returns the synchronous queue specification for object o.
func NewSyncQueue(o history.ObjectID) SyncQueue { return SyncQueue{Obj: o} }

// Name implements Spec.
func (q SyncQueue) Name() string { return "syncqueue(" + string(q.Obj) + ")" }

// Object implements Spec.
func (q SyncQueue) Object() history.ObjectID { return q.Obj }

// Init implements Spec.
func (q SyncQueue) Init() State { return Empty() }

// MaxElementSize implements Spec.
func (q SyncQueue) MaxElementSize() int { return 2 }

// Step implements Spec.
func (q SyncQueue) Step(s State, el trace.Element) (State, error) {
	if el.Object != q.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, q.Obj)
	}
	switch len(el.Ops) {
	case 1:
		op := el.Ops[0]
		switch op.Method {
		case MethodPut:
			if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool {
				return nil, fmt.Errorf("put must be int ▷ bool, got %s ▷ %s", op.Arg, op.Ret)
			}
			if op.Ret.B {
				return nil, reject("a successful put cannot stand alone", el)
			}
			return s, nil
		case MethodTake:
			if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
				return nil, fmt.Errorf("take must be () ▷ (bool,int), got %s ▷ %s", op.Arg, op.Ret)
			}
			if op.Ret.B {
				return nil, reject("a successful take cannot stand alone", el)
			}
			if op.Ret.N != 0 {
				return nil, fmt.Errorf("failed take must return (false,0): %s", el)
			}
			return s, nil
		default:
			return nil, fmt.Errorf("unknown method %s", op.Method)
		}
	case 2:
		put, take := el.Ops[0], el.Ops[1]
		if put.Method != MethodPut {
			put, take = take, put
		}
		if put.Method != MethodPut || take.Method != MethodTake {
			return nil, fmt.Errorf("a hand-off pairs one put with one take: %s", el)
		}
		if put.Arg.Kind != history.KindInt || put.Ret != history.Bool(true) {
			return nil, fmt.Errorf("hand-off put must be int ▷ true: %s", el)
		}
		if take.Ret != history.Pair(true, put.Arg.N) {
			return nil, fmt.Errorf("take must receive the put value %d: %s", put.Arg.N, el)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("synchronous queue elements have one or two operations, got %d", len(el.Ops))
	}
}

// ResolveReturns implements PendingResolver.
func (q SyncQueue) ResolveReturns(_ State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	switch len(ops) {
	case 1:
		op := ops[0]
		if op.Method == MethodPut {
			return [][]history.Value{{history.Bool(false)}}
		}
		return [][]history.Value{{history.Pair(false, 0)}}
	case 2:
		var putArg history.Value
		for _, op := range ops {
			if op.Method == MethodPut {
				putArg = op.Arg
			}
		}
		if putArg.IsZero() {
			return nil
		}
		rets := make([]history.Value, 0, len(pendingIdx))
		for _, i := range pendingIdx {
			if ops[i].Method == MethodPut {
				rets = append(rets, history.Bool(true))
			} else {
				rets = append(rets, history.Pair(true, putArg.N))
			}
		}
		return [][]history.Value{rets}
	default:
		return nil
	}
}

// HandOffElement builds the pair element of a successful put/take rendezvous.
func HandOffElement(o history.ObjectID, putter history.ThreadID, v int64, taker history.ThreadID) trace.Element {
	return trace.MustElement(
		trace.Operation{Thread: putter, Object: o, Method: MethodPut, Arg: history.Int(v), Ret: history.Bool(true)},
		trace.Operation{Thread: taker, Object: o, Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(true, v)},
	)
}
