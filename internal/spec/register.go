package spec

import (
	"fmt"
	"strconv"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the register interface.
const (
	MethodRead  history.Method = "read"
	MethodWrite history.Method = "write"
)

// registerState is the current register value.
type registerState struct {
	v int64
}

func (r registerState) Key() string { return strconv.FormatInt(r.v, 10) }

// Register is the sequential atomic register specification: write(v) ▷ ()
// stores v and read(()) ▷ v returns the last written value (initially 0).
// It is the classic baseline for validating linearizability checkers.
type Register struct {
	Obj history.ObjectID
}

var (
	_ Spec            = Register{}
	_ PendingResolver = Register{}
)

// NewRegister returns the register specification for object o.
func NewRegister(o history.ObjectID) Register { return Register{Obj: o} }

// Name implements Spec.
func (r Register) Name() string { return "register(" + string(r.Obj) + ")" }

// Object implements Spec.
func (r Register) Object() history.ObjectID { return r.Obj }

// Init implements Spec.
func (r Register) Init() State { return registerState{} }

// MaxElementSize implements Spec.
func (r Register) MaxElementSize() int { return 1 }

// Step implements Spec.
func (r Register) Step(s State, el trace.Element) (State, error) {
	if el.Object != r.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, r.Obj)
	}
	if len(el.Ops) != 1 {
		return nil, fmt.Errorf("register elements are singletons, got %d operations", len(el.Ops))
	}
	rs, ok := s.(registerState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	op := el.Ops[0]
	switch op.Method {
	case MethodWrite:
		if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindUnit {
			return nil, fmt.Errorf("write must be int ▷ (), got %s ▷ %s", op.Arg, op.Ret)
		}
		return registerState{v: op.Arg.N}, nil
	case MethodRead:
		if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindInt {
			return nil, fmt.Errorf("read must be () ▷ int, got %s ▷ %s", op.Arg, op.Ret)
		}
		if op.Ret.N != rs.v {
			return nil, fmt.Errorf("read returned %d but register holds %d", op.Ret.N, rs.v)
		}
		return rs, nil
	default:
		return nil, fmt.Errorf("unknown method %s", op.Method)
	}
}

// ResolveReturns implements PendingResolver.
func (r Register) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) != 1 || len(pendingIdx) != 1 {
		return nil
	}
	rs, ok := s.(registerState)
	if !ok {
		return nil
	}
	switch ops[0].Method {
	case MethodWrite:
		return [][]history.Value{{history.Unit()}}
	case MethodRead:
		return [][]history.Value{{history.Int(rs.v)}}
	}
	return nil
}
