package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// MethodUpdate is the single method of the immediate snapshot interface.
const MethodUpdate history.Method = "update"

// Snapshot is the CA-specification of the one-shot immediate atomic
// snapshot object of Borowsky and Gafni — the example Neiger used to
// motivate set-linearizability, discussed in the paper's related work
// (§6). Each participating thread calls update(v) once; operations are
// grouped into "blocks" that seem to take effect simultaneously, and every
// operation returns the view containing the values of all blocks up to and
// including its own:
//
//   - containment: views of consecutive blocks grow monotonically;
//   - self-inclusion: each operation's own value is in its view;
//   - immediacy: operations of the same block return the SAME view.
//
// A CA-element is a block: a set of update operations that take effect
// simultaneously. Unlike the exchanger, blocks may have any size up to the
// number of threads, which exercises the checker's wide-element search.
//
// Histories record each operation's view by its CARDINALITY: update(v) ▷
// (true, |view|). Because every thread writes exactly once, the
// cardinality bookkeeping over ordered blocks captures containment and
// immediacy at the history level (an op's cardinality must equal the
// cumulative operation count through its own block); the value-level view
// properties are checked directly against the implementation's full views
// by its tests, out of band of the small history value universe.
type Snapshot struct {
	Obj history.ObjectID
	// Threads bounds the number of participants (and hence the maximal
	// block size).
	Threads int
}

var _ Spec = Snapshot{}

// NewSnapshot returns the immediate snapshot specification for object o
// with at most n participating threads.
func NewSnapshot(o history.ObjectID, n int) Snapshot {
	return Snapshot{Obj: o, Threads: n}
}

// snapshotState is the set of values written so far, canonically encoded,
// plus the set of threads that already updated (one-shot).
type snapshotState struct {
	values  string // sorted comma-joined values
	threads string // sorted comma-joined thread ids
	count   int    // number of values written
}

func (s snapshotState) Key() string { return s.values + "|" + s.threads }

func encodeSorted(ns []int64) string {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.FormatInt(n, 10)
	}
	return strings.Join(parts, ",")
}

// Name implements Spec.
func (sp Snapshot) Name() string { return "snapshot(" + string(sp.Obj) + ")" }

// Object implements Spec.
func (sp Snapshot) Object() history.ObjectID { return sp.Obj }

// Init implements Spec.
func (sp Snapshot) Init() State { return snapshotState{} }

// MaxElementSize implements Spec: a block can contain every thread.
func (sp Snapshot) MaxElementSize() int {
	if sp.Threads < 1 {
		return 1
	}
	return sp.Threads
}

// Step implements Spec. The element is a block; every operation must be a
// first-time update whose returned view cardinality equals the state's
// count plus the block size (containment + immediacy + self-inclusion all
// follow from cardinality bookkeeping because each thread writes once).
func (sp Snapshot) Step(s State, el trace.Element) (State, error) {
	if el.Object != sp.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, sp.Obj)
	}
	ss, ok := s.(snapshotState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	if len(el.Ops) > sp.MaxElementSize() {
		return nil, fmt.Errorf("block of %d operations exceeds %d threads", len(el.Ops), sp.Threads)
	}
	seen := map[history.ThreadID]bool{}
	for _, t := range strings.Split(ss.threads, ",") {
		if t == "" {
			continue
		}
		n, err := strconv.Atoi(t)
		if err != nil {
			return nil, fmt.Errorf("corrupt state %q", ss.threads)
		}
		seen[history.ThreadID(n)] = true
	}
	newCard := ss.count + len(el.Ops)
	var newVals []int64
	var newThreads []int64
	for _, t := range strings.Split(ss.values, ",") {
		if t == "" {
			continue
		}
		n, _ := strconv.ParseInt(t, 10, 64)
		newVals = append(newVals, n)
	}
	for t := range seen {
		newThreads = append(newThreads, int64(t))
	}
	for _, op := range el.Ops {
		if op.Method != MethodUpdate {
			return nil, fmt.Errorf("unknown method %s", op.Method)
		}
		if op.Arg.Kind != history.KindInt {
			return nil, fmt.Errorf("update argument must be an int, got %s", op.Arg)
		}
		if seen[op.Thread] {
			return nil, fmt.Errorf("thread %s updated twice (one-shot object)", op.Thread)
		}
		seen[op.Thread] = true
		if op.Ret != history.Pair(true, int64(newCard)) {
			return nil, fmt.Errorf("operation %s returned view of cardinality %s, block requires %d (immediacy)",
				op, op.Ret, newCard)
		}
		newVals = append(newVals, op.Arg.N)
		newThreads = append(newThreads, int64(op.Thread))
	}
	return snapshotState{
		values:  encodeSorted(newVals),
		threads: encodeSorted(newThreads),
		count:   newCard,
	}, nil
}

// BlockElement builds a snapshot block element: ops[i] = (thread, value);
// every operation returns (true, prior+len(ops)).
func BlockElement(o history.ObjectID, prior int, pairs ...[2]int64) trace.Element {
	card := int64(prior + len(pairs))
	ops := make([]trace.Operation, len(pairs))
	for i, p := range pairs {
		ops[i] = trace.Operation{
			Thread: history.ThreadID(p[0]), Object: o, Method: MethodUpdate,
			Arg: history.Int(p[1]), Ret: history.Pair(true, card),
		}
	}
	return trace.MustElement(ops...)
}
