package spec

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/trace"
)

const objIS history.ObjectID = "IS"

func TestSnapshotBlocks(t *testing.T) {
	sp := NewSnapshot(objIS, 4)
	// Block of {t1,t2} then block of {t3} then block of {t4}: cardinalities
	// 2, 3, 4.
	tr := trace.Trace{
		BlockElement(objIS, 0, [2]int64{1, 10}, [2]int64{2, 20}),
		BlockElement(objIS, 2, [2]int64{3, 30}),
		BlockElement(objIS, 3, [2]int64{4, 40}),
	}
	if _, err := Accepts(sp, tr); err != nil {
		t.Fatalf("valid block trace rejected: %v", err)
	}
	// One big simultaneous block.
	all := trace.Trace{BlockElement(objIS, 0,
		[2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30}, [2]int64{4, 40})}
	if _, err := Accepts(sp, all); err != nil {
		t.Fatalf("maximal block rejected: %v", err)
	}
}

func TestSnapshotRejections(t *testing.T) {
	sp := NewSnapshot(objIS, 3)
	tests := []struct {
		name    string
		tr      trace.Trace
		wantErr string
	}{
		{"wrong cardinality", trace.Trace{
			BlockElement(objIS, 1, [2]int64{1, 10}), // claims prior=1 on empty state
		}, "immediacy"},
		{"double update", trace.Trace{
			BlockElement(objIS, 0, [2]int64{1, 10}),
			BlockElement(objIS, 1, [2]int64{1, 11}),
		}, "twice"},
		{"oversized block", trace.Trace{
			BlockElement(objIS, 0, [2]int64{1, 1}, [2]int64{2, 2}, [2]int64{3, 3}, [2]int64{4, 4}),
		}, "exceeds"},
		{"wrong object", trace.Trace{BlockElement("X", 0, [2]int64{1, 1})}, "constrains"},
		{"immediacy violated across block", trace.Trace{
			func() trace.Element {
				// Two ops in one block with different cardinalities.
				return trace.MustElement(
					trace.Operation{Thread: 1, Object: objIS, Method: MethodUpdate, Arg: history.Int(1), Ret: history.Pair(true, 2)},
					trace.Operation{Thread: 2, Object: objIS, Method: MethodUpdate, Arg: history.Int(2), Ret: history.Pair(true, 1)},
				)
			}(),
		}, "immediacy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Accepts(sp, tt.tr)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Accepts error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestSnapshotMeta(t *testing.T) {
	sp := NewSnapshot(objIS, 5)
	if sp.MaxElementSize() != 5 {
		t.Errorf("MaxElementSize = %d", sp.MaxElementSize())
	}
	if NewSnapshot(objIS, 0).MaxElementSize() != 1 {
		t.Error("degenerate thread bound should cap at 1")
	}
	if sp.Object() != objIS || !strings.Contains(sp.Name(), "snapshot") {
		t.Error("meta accessors wrong")
	}
}

func TestDualStackSpec(t *testing.T) {
	d := NewDualStack(objS)
	tr := trace.Trace{
		PushElement(objS, 1, 5, true),    // ordinary push
		FulfilmentElement(objS, 2, 7, 3), // push(7) fulfils t3's waiting pop
		PopElement(objS, 4, true, 5),     // ordinary pop takes the 5
		FulfilmentElement(objS, 1, 9, 4), // another fulfilment on empty stack
		PopElement(objS, 2, false, 0),    // empty
	}
	if _, err := Accepts(d, tr); err != nil {
		t.Fatalf("valid dual-stack trace rejected: %v", err)
	}

	rejects := []struct {
		name string
		el   trace.Element
	}{
		{"value mismatch", trace.MustElement(
			trace.Operation{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(7), Ret: history.Bool(true)},
			trace.Operation{Thread: 2, Object: objS, Method: MethodPop, Arg: history.Unit(), Ret: history.Pair(true, 8)},
		)},
		{"two pushes", trace.MustElement(
			trace.Operation{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(7), Ret: history.Bool(true)},
			trace.Operation{Thread: 2, Object: objS, Method: MethodPush, Arg: history.Int(8), Ret: history.Bool(true)},
		)},
		{"failed push in pair", trace.MustElement(
			trace.Operation{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(7), Ret: history.Bool(false)},
			trace.Operation{Thread: 2, Object: objS, Method: MethodPop, Arg: history.Unit(), Ret: history.Pair(true, 7)},
		)},
	}
	for _, tt := range rejects {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := d.Step(d.Init(), tt.el); err == nil {
				t.Errorf("Step(%s) should fail", tt.el)
			}
		})
	}

	// Fulfilment leaves the state unchanged.
	s1, err := d.Step(d.Init(), PushElement(objS, 1, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.Step(s1, FulfilmentElement(objS, 2, 7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Key() != s2.Key() {
		t.Errorf("fulfilment changed state: %q -> %q", s1.Key(), s2.Key())
	}
}

func TestDualQueueSpec(t *testing.T) {
	d := NewDualQueue(objQ)
	enq := func(t history.ThreadID, v int64) trace.Element {
		return trace.Singleton(trace.Operation{Thread: t, Object: objQ, Method: MethodEnq, Arg: history.Int(v), Ret: history.Bool(true)})
	}
	deq := func(t history.ThreadID, ok bool, v int64) trace.Element {
		return trace.Singleton(trace.Operation{Thread: t, Object: objQ, Method: MethodDeq, Arg: history.Unit(), Ret: history.Pair(ok, v)})
	}
	good := trace.Trace{
		QFulfilmentElement(objQ, 1, 10, 2), // fulfilment on empty queue
		enq(1, 5),
		enq(3, 6),
		deq(2, true, 5),
		deq(2, true, 6),
		QFulfilmentElement(objQ, 3, 11, 4), // empty again
		deq(1, false, 0),
	}
	if _, err := Accepts(d, good); err != nil {
		t.Fatalf("valid dual-queue trace rejected: %v", err)
	}

	// The FIFO-specific constraint: fulfilment on a NON-empty queue is
	// rejected (a waiting deq must have taken the older head value).
	bad := trace.Trace{enq(1, 5), QFulfilmentElement(objQ, 2, 9, 3)}
	if _, err := Accepts(d, bad); err == nil {
		t.Error("fulfilment on non-empty queue must be rejected")
	}
	// Value mismatch within the pair.
	if _, err := d.Step(d.Init(), trace.MustElement(
		trace.Operation{Thread: 1, Object: objQ, Method: MethodEnq, Arg: history.Int(7), Ret: history.Bool(true)},
		trace.Operation{Thread: 2, Object: objQ, Method: MethodDeq, Arg: history.Unit(), Ret: history.Pair(true, 8)},
	)); err == nil {
		t.Error("value mismatch must be rejected")
	}
	// Two enqs paired.
	if _, err := d.Step(d.Init(), trace.MustElement(
		trace.Operation{Thread: 1, Object: objQ, Method: MethodEnq, Arg: history.Int(7), Ret: history.Bool(true)},
		trace.Operation{Thread: 2, Object: objQ, Method: MethodEnq, Arg: history.Int(8), Ret: history.Bool(true)},
	)); err == nil {
		t.Error("enq/enq pair must be rejected")
	}
	if d.MaxElementSize() != 2 || d.Object() != objQ {
		t.Error("meta accessors wrong")
	}
}

func TestDualQueueResolveReturns(t *testing.T) {
	d := NewDualQueue(objQ)
	enq := trace.Operation{Thread: 1, Object: objQ, Method: MethodEnq, Arg: history.Int(5)}
	deq := trace.Operation{Thread: 2, Object: objQ, Method: MethodDeq, Arg: history.Unit()}
	got := d.ResolveReturns(d.Init(), []trace.Operation{enq, deq}, []int{0, 1})
	if len(got) != 1 || got[0][0] != history.Bool(true) || got[0][1] != history.Pair(true, 5) {
		t.Errorf("fulfilment resolution = %v", got)
	}
	if got := d.ResolveReturns(d.Init(), []trace.Operation{deq, deq}, []int{0, 1}); got != nil {
		t.Errorf("deq/deq resolution = %v, want nil", got)
	}
	got = d.ResolveReturns(d.Init(), []trace.Operation{enq}, []int{0})
	if len(got) != 1 || got[0][0] != history.Bool(true) {
		t.Errorf("singleton resolution = %v", got)
	}
}

func TestDualStackResolveReturns(t *testing.T) {
	d := NewDualStack(objS)
	push := trace.Operation{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(5)}
	pop := trace.Operation{Thread: 2, Object: objS, Method: MethodPop, Arg: history.Unit()}
	got := d.ResolveReturns(d.Init(), []trace.Operation{push, pop}, []int{0, 1})
	if len(got) != 1 || got[0][0] != history.Bool(true) || got[0][1] != history.Pair(true, 5) {
		t.Errorf("fulfilment resolution = %v", got)
	}
	// Singleton falls back to stack resolution.
	got = d.ResolveReturns(d.Init(), []trace.Operation{push}, []int{0})
	if len(got) != 1 || got[0][0] != history.Bool(true) {
		t.Errorf("singleton resolution = %v", got)
	}
}
