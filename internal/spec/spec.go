// Package spec defines concurrency-aware specifications: prefix-closed sets
// of CA-traces (Definition 6 of the paper), represented as state machines
// over CA-elements. Classical sequential specifications are the special case
// in which every admitted element is a singleton.
//
// The package provides the specifications used in the paper — the exchanger
// (§4), the elimination array (§5), the stack specification WFS (§4), and
// the synchronous queue client ([9], [22]) — plus a FIFO queue and an atomic
// register for cross-validation of the checkers, and a product combinator
// for histories spanning several independent objects.
package spec

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// State is an immutable specification state. Key must be canonical: two
// states are interchangeable if and only if their keys are equal. The
// checkers use keys for memoization.
type State interface {
	Key() string
}

// Spec is a concurrency-aware specification: the set of CA-traces accepted
// by running Step from Init over the trace's elements. Prefix closure holds
// by construction.
type Spec interface {
	// Name identifies the specification in diagnostics.
	Name() string
	// Object is the object constrained by this specification. Product
	// specifications return the empty ObjectID.
	Object() history.ObjectID
	// Init returns the initial state.
	Init() State
	// Step validates appending element e in state s, returning the
	// successor state, or an error describing why e is not admitted.
	Step(s State, e trace.Element) (State, error)
	// MaxElementSize bounds the number of operations in any admitted
	// CA-element. Sequential specifications return 1; the exchanger
	// returns 2.
	MaxElementSize() int
}

// PendingResolver is implemented by specifications that can propose return
// values for pending operations, enabling the checker to explore the
// "extend with responses" half of completion (Definition 2). Given the
// operations of a candidate CA-element, some of which have unknown (zero)
// returns, ResolveReturns proposes complete return assignments for the
// unknown positions; each proposal is a slice parallel to pendingIdx.
type PendingResolver interface {
	ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value
}

// Accepts reports whether the full trace tr is admitted by sp, returning
// the final state on success.
func Accepts(sp Spec, tr trace.Trace) (State, error) {
	s := sp.Init()
	for i, e := range tr {
		next, err := sp.Step(s, e)
		if err != nil {
			return nil, fmt.Errorf("spec %s: element %d (%s): %w", sp.Name(), i+1, e, err)
		}
		s = next
	}
	return s, nil
}

// emptyState is the state of stateless specifications.
type emptyState struct{}

func (emptyState) Key() string { return "" }

// Empty returns the canonical stateless State.
func Empty() State { return emptyState{} }
