package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the priority-queue interface.
const (
	MethodInsert     history.Method = "insert"
	MethodExtractMin history.Method = "extractmin"
)

// pqueueState is an immutable min-priority queue of integers with a
// canonical sorted encoding; the first encoded element is the minimum.
type pqueueState struct {
	items string // sorted canonical encoding, e.g. "1,2,3"
}

func (p pqueueState) Key() string { return p.items }

func (p pqueueState) slice() []int64 {
	if p.items == "" {
		return nil
	}
	parts := strings.Split(p.items, ",")
	out := make([]int64, len(parts))
	for i, s := range parts {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			panic("spec: corrupt pqueue state " + p.items)
		}
		out[i] = n
	}
	return out
}

func encodePQueue(items []int64) pqueueState {
	if len(items) == 0 {
		return pqueueState{}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	parts := make([]string, len(items))
	for i, v := range items {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return pqueueState{items: strings.Join(parts, ",")}
}

func (p pqueueState) insert(v int64) pqueueState { return encodePQueue(append(p.slice(), v)) }

func (p pqueueState) extractMin() (pqueueState, int64, bool) {
	items := p.slice()
	if len(items) == 0 {
		return p, 0, false
	}
	return encodePQueue(items[1:]), items[0], true
}

// PQueue is the sequential min-priority-queue specification: insert(v) ▷
// true inserts, extractmin() ▷ (true,v) removes and returns the minimum,
// extractmin() ▷ (false,0) is admitted only on the empty queue. Every
// element is a singleton. Unambiguous priority-queue histories (distinct
// inserted values) admit the log-linear specialized monitor in
// calgo/internal/monitor.
type PQueue struct {
	Obj history.ObjectID
}

var (
	_ Spec            = PQueue{}
	_ PendingResolver = PQueue{}
)

// NewPQueue returns the min-priority-queue specification for object o.
func NewPQueue(o history.ObjectID) PQueue { return PQueue{Obj: o} }

// Name implements Spec.
func (p PQueue) Name() string { return "pqueue(" + string(p.Obj) + ")" }

// Object implements Spec.
func (p PQueue) Object() history.ObjectID { return p.Obj }

// Init implements Spec.
func (p PQueue) Init() State { return pqueueState{} }

// MaxElementSize implements Spec: the priority-queue spec is sequential.
func (p PQueue) MaxElementSize() int { return 1 }

// Step implements Spec.
func (p PQueue) Step(s State, el trace.Element) (State, error) {
	if el.Object != p.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, p.Obj)
	}
	if len(el.Ops) != 1 {
		return nil, fmt.Errorf("pqueue elements are singletons, got %d operations", len(el.Ops))
	}
	ps, ok := s.(pqueueState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	op := el.Ops[0]
	switch op.Method {
	case MethodInsert:
		if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool || !op.Ret.B {
			return nil, fmt.Errorf("insert must be int ▷ true, got %s ▷ %s", op.Arg, op.Ret)
		}
		return ps.insert(op.Arg.N), nil
	case MethodExtractMin:
		if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
			return nil, fmt.Errorf("extractmin must be () ▷ (bool,int), got %s ▷ %s", op.Arg, op.Ret)
		}
		if !op.Ret.B {
			if op.Ret.N != 0 {
				return nil, fmt.Errorf("failed extractmin must return (false,0): %s", el)
			}
			if ps.items != "" {
				return nil, fmt.Errorf("extractmin may fail only on the empty queue, state [%s]", ps.items)
			}
			return ps, nil
		}
		next, v, nonEmpty := ps.extractMin()
		if !nonEmpty {
			return nil, fmt.Errorf("successful extractmin on empty queue: %s", el)
		}
		if v != op.Ret.N {
			return nil, fmt.Errorf("extractmin returned %d but minimum is %d", op.Ret.N, v)
		}
		return next, nil
	default:
		return nil, fmt.Errorf("unknown method %s", op.Method)
	}
}

// ResolveReturns implements PendingResolver.
func (p PQueue) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) != 1 || len(pendingIdx) != 1 {
		return nil
	}
	ps, ok := s.(pqueueState)
	if !ok {
		return nil
	}
	switch ops[0].Method {
	case MethodInsert:
		return [][]history.Value{{history.Bool(true)}}
	case MethodExtractMin:
		if _, v, nonEmpty := ps.extractMin(); nonEmpty {
			return [][]history.Value{{history.Pair(true, v)}}
		}
		return [][]history.Value{{history.Pair(false, 0)}}
	}
	return nil
}
