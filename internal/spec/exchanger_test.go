package spec

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/trace"
)

const objE history.ObjectID = "E"

func exOp(t history.ThreadID, arg int64, ok bool, ret int64) trace.Operation {
	return trace.Operation{Thread: t, Object: objE, Method: MethodExchange, Arg: history.Int(arg), Ret: history.Pair(ok, ret)}
}

func TestExchangerAcceptsPaperTraces(t *testing.T) {
	e := NewExchanger(objE)
	traces := []trace.Trace{
		{},
		{FailElement(objE, 3, 7)},
		{SwapElement(objE, 1, 3, 2, 4)},
		{SwapElement(objE, 1, 3, 2, 4), FailElement(objE, 3, 7)},
		{FailElement(objE, 3, 7), SwapElement(objE, 1, 3, 2, 4), SwapElement(objE, 5, 10, 6, 20)},
	}
	for _, tr := range traces {
		if _, err := Accepts(e, tr); err != nil {
			t.Errorf("exchanger should accept %s: %v", tr, err)
		}
	}
}

func TestExchangerRejections(t *testing.T) {
	e := NewExchanger(objE)
	tests := []struct {
		name    string
		el      trace.Element
		wantErr string
	}{
		{"lone success", trace.Singleton(exOp(1, 3, true, 4)), "cannot stand alone"},
		{"fail returns wrong value", trace.Singleton(exOp(1, 3, false, 9)), "own value"},
		{"swap values do not cross", trace.MustElement(exOp(1, 3, true, 9), exOp(2, 4, true, 3)), "cross"},
		{"half-failed pair", trace.MustElement(exOp(1, 3, false, 3), exOp(2, 4, true, 3)), "succeed"},
		{"wrong object", FailElement("X", 1, 1), "constrains"},
		{"wrong method", trace.Singleton(trace.Operation{Thread: 1, Object: objE, Method: "frob", Arg: history.Int(1), Ret: history.Pair(false, 1)}), "unknown method"},
		{"bad arg kind", trace.Singleton(trace.Operation{Thread: 1, Object: objE, Method: MethodExchange, Arg: history.Unit(), Ret: history.Pair(false, 1)}), "int"},
		{"bad ret kind", trace.Singleton(trace.Operation{Thread: 1, Object: objE, Method: MethodExchange, Arg: history.Int(1), Ret: history.Bool(false)}), "pair"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := e.Step(e.Init(), tt.el)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Step(%s) error = %v, want containing %q", tt.el, err, tt.wantErr)
			}
		})
	}
}

func TestExchangerSelfSwapImpossible(t *testing.T) {
	// trace.NewElement already rejects two operations of the same thread,
	// which is what makes t ≠ t' in E.swap structural.
	if _, err := trace.NewElement(exOp(1, 3, true, 4), exOp(1, 4, true, 3)); err == nil {
		t.Error("an element pairing one thread with itself must be invalid")
	}
}

func TestExchangerResolveReturns(t *testing.T) {
	e := NewExchanger(objE)
	// Lone pending exchange: only failure.
	got := e.ResolveReturns(Empty(), []trace.Operation{{Thread: 1, Object: objE, Method: MethodExchange, Arg: history.Int(5)}}, []int{0})
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != history.Pair(false, 5) {
		t.Errorf("lone pending resolution = %v", got)
	}
	// Pair with one pending: forced to partner's argument.
	ops := []trace.Operation{exOp(1, 3, true, 4), {Thread: 2, Object: objE, Method: MethodExchange, Arg: history.Int(4)}}
	got = e.ResolveReturns(Empty(), ops, []int{1})
	if len(got) != 1 || got[0][0] != history.Pair(true, 3) {
		t.Errorf("pair resolution = %v", got)
	}
	// Both pending.
	ops = []trace.Operation{
		{Thread: 1, Object: objE, Method: MethodExchange, Arg: history.Int(3)},
		{Thread: 2, Object: objE, Method: MethodExchange, Arg: history.Int(4)},
	}
	got = e.ResolveReturns(Empty(), ops, []int{0, 1})
	if len(got) != 1 || got[0][0] != history.Pair(true, 4) || got[0][1] != history.Pair(true, 3) {
		t.Errorf("double-pending resolution = %v", got)
	}
	// Oversized sets resolve to nothing.
	if got := e.ResolveReturns(Empty(), make([]trace.Operation, 3), []int{0}); got != nil {
		t.Errorf("3-op resolution = %v, want nil", got)
	}
}

func TestExchangerMeta(t *testing.T) {
	e := NewExchanger(objE)
	if e.MaxElementSize() != 2 {
		t.Errorf("MaxElementSize = %d, want 2", e.MaxElementSize())
	}
	if e.Object() != objE {
		t.Errorf("Object = %s", e.Object())
	}
	if !strings.Contains(e.Name(), "exchanger") {
		t.Errorf("Name = %s", e.Name())
	}
	ar := NewElimArray("AR")
	if ar.Object() != "AR" {
		t.Errorf("elim array object = %s", ar.Object())
	}
}

func TestAcceptsReportsElementIndex(t *testing.T) {
	e := NewExchanger(objE)
	tr := trace.Trace{FailElement(objE, 1, 1), trace.Singleton(exOp(2, 3, true, 4))}
	_, err := Accepts(e, tr)
	if err == nil || !strings.Contains(err.Error(), "element 2") {
		t.Errorf("Accepts error = %v, want element index 2", err)
	}
}
