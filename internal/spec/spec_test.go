package spec

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/trace"
)

const (
	objQ  history.ObjectID = "Q"
	objR  history.ObjectID = "R"
	objSQ history.ObjectID = "SQ"
)

func enqElem(t history.ThreadID, v int64) trace.Element {
	return trace.Singleton(trace.Operation{Thread: t, Object: objQ, Method: MethodEnq, Arg: history.Int(v), Ret: history.Bool(true)})
}

func deqElem(t history.ThreadID, ok bool, v int64) trace.Element {
	return trace.Singleton(trace.Operation{Thread: t, Object: objQ, Method: MethodDeq, Arg: history.Unit(), Ret: history.Pair(ok, v)})
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(objQ)
	tr := trace.Trace{
		enqElem(1, 10), enqElem(2, 20),
		deqElem(1, true, 10), deqElem(2, true, 20),
		deqElem(1, false, 0),
	}
	if _, err := Accepts(q, tr); err != nil {
		t.Fatalf("FIFO trace rejected: %v", err)
	}
	// LIFO order must be rejected.
	bad := trace.Trace{enqElem(1, 10), enqElem(2, 20), deqElem(1, true, 20)}
	if _, err := Accepts(q, bad); err == nil {
		t.Error("queue must reject LIFO order")
	}
	if _, err := Accepts(q, trace.Trace{deqElem(1, true, 5)}); err == nil {
		t.Error("deq on empty queue must fail")
	}
	if _, err := Accepts(q, trace.Trace{enqElem(1, 1), deqElem(1, false, 0)}); err == nil {
		t.Error("failed deq on non-empty queue must be rejected")
	}
}

func TestQueueResolveReturns(t *testing.T) {
	q := NewQueue(objQ)
	s, _ := q.Step(q.Init(), enqElem(1, 9))
	pendDeq := []trace.Operation{{Thread: 2, Object: objQ, Method: MethodDeq, Arg: history.Unit()}}
	got := q.ResolveReturns(s, pendDeq, []int{0})
	if len(got) != 1 || got[0][0] != history.Pair(true, 9) {
		t.Errorf("pending deq = %v", got)
	}
	got = q.ResolveReturns(q.Init(), pendDeq, []int{0})
	if len(got) != 1 || got[0][0] != history.Pair(false, 0) {
		t.Errorf("pending deq on empty = %v", got)
	}
}

func TestSyncQueueSpec(t *testing.T) {
	sq := NewSyncQueue(objSQ)
	good := trace.Trace{
		HandOffElement(objSQ, 1, 42, 2),
		trace.Singleton(trace.Operation{Thread: 3, Object: objSQ, Method: MethodPut, Arg: history.Int(7), Ret: history.Bool(false)}),
		trace.Singleton(trace.Operation{Thread: 4, Object: objSQ, Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(false, 0)}),
	}
	if _, err := Accepts(sq, good); err != nil {
		t.Fatalf("valid sync-queue trace rejected: %v", err)
	}

	rejects := []struct {
		name string
		el   trace.Element
	}{
		{"lone successful put", trace.Singleton(trace.Operation{Thread: 1, Object: objSQ, Method: MethodPut, Arg: history.Int(1), Ret: history.Bool(true)})},
		{"lone successful take", trace.Singleton(trace.Operation{Thread: 1, Object: objSQ, Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(true, 3)})},
		{"two puts paired", trace.MustElement(
			trace.Operation{Thread: 1, Object: objSQ, Method: MethodPut, Arg: history.Int(1), Ret: history.Bool(true)},
			trace.Operation{Thread: 2, Object: objSQ, Method: MethodPut, Arg: history.Int(2), Ret: history.Bool(true)},
		)},
		{"value mismatch", trace.MustElement(
			trace.Operation{Thread: 1, Object: objSQ, Method: MethodPut, Arg: history.Int(1), Ret: history.Bool(true)},
			trace.Operation{Thread: 2, Object: objSQ, Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(true, 99)},
		)},
	}
	for _, tt := range rejects {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := sq.Step(sq.Init(), tt.el); err == nil {
				t.Errorf("Step(%s) should fail", tt.el)
			}
		})
	}
}

func TestSyncQueueResolveReturns(t *testing.T) {
	sq := NewSyncQueue(objSQ)
	put := trace.Operation{Thread: 1, Object: objSQ, Method: MethodPut, Arg: history.Int(5)}
	take := trace.Operation{Thread: 2, Object: objSQ, Method: MethodTake, Arg: history.Unit()}
	got := sq.ResolveReturns(Empty(), []trace.Operation{put, take}, []int{0, 1})
	if len(got) != 1 || got[0][0] != history.Bool(true) || got[0][1] != history.Pair(true, 5) {
		t.Errorf("hand-off resolution = %v", got)
	}
	got = sq.ResolveReturns(Empty(), []trace.Operation{put}, []int{0})
	if len(got) != 1 || got[0][0] != history.Bool(false) {
		t.Errorf("lone put resolution = %v", got)
	}
}

func TestRegisterSpec(t *testing.T) {
	r := NewRegister(objR)
	w := func(t history.ThreadID, v int64) trace.Element {
		return trace.Singleton(trace.Operation{Thread: t, Object: objR, Method: MethodWrite, Arg: history.Int(v), Ret: history.Unit()})
	}
	rd := func(t history.ThreadID, v int64) trace.Element {
		return trace.Singleton(trace.Operation{Thread: t, Object: objR, Method: MethodRead, Arg: history.Unit(), Ret: history.Int(v)})
	}
	if _, err := Accepts(r, trace.Trace{rd(1, 0), w(1, 5), rd(2, 5), w(2, 9), rd(1, 9)}); err != nil {
		t.Fatalf("valid register trace rejected: %v", err)
	}
	if _, err := Accepts(r, trace.Trace{w(1, 5), rd(2, 6)}); err == nil {
		t.Error("stale read must be rejected")
	}
	got := r.ResolveReturns(r.Init(), []trace.Operation{{Thread: 1, Object: objR, Method: MethodRead, Arg: history.Unit()}}, []int{0})
	if len(got) != 1 || got[0][0] != history.Int(0) {
		t.Errorf("pending read resolution = %v", got)
	}
}

func TestProduct(t *testing.T) {
	p := MustProduct(NewStack(objS), NewExchanger(objE))
	tr := trace.Trace{
		PushElement(objS, 1, 10, true),
		SwapElement(objE, 2, 3, 3, 4),
		PopElement(objS, 1, true, 10),
		FailElement(objE, 1, 9),
	}
	if _, err := Accepts(p, tr); err != nil {
		t.Fatalf("product trace rejected: %v", err)
	}
	// Component violation propagates.
	if _, err := Accepts(p, trace.Trace{PopElement(objS, 1, true, 10)}); err == nil {
		t.Error("product must reject component violations")
	}
	// Unknown object.
	if _, err := Accepts(p, trace.Trace{PushElement("Z", 1, 1, true)}); err == nil {
		t.Error("product must reject unknown objects")
	}
	if p.MaxElementSize() != 2 {
		t.Errorf("MaxElementSize = %d, want 2", p.MaxElementSize())
	}
	if p.Object() != "" {
		t.Errorf("Object = %q, want empty", p.Object())
	}
}

func TestProductStateIndependence(t *testing.T) {
	// Stepping one component must not disturb the other.
	p := MustProduct(NewStack(objS), NewQueue(objQ))
	s, err := p.Step(p.Init(), PushElement(objS, 1, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	s, err = p.Step(s, enqElem(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step(s, PopElement(objS, 1, true, 5)); err != nil {
		t.Errorf("stack component disturbed: %v", err)
	}
	if _, err := p.Step(s, deqElem(2, true, 7)); err != nil {
		t.Errorf("queue component disturbed: %v", err)
	}
}

func TestProductConstruction(t *testing.T) {
	if _, err := NewProduct(NewStack(objS), NewStack(objS)); err == nil {
		t.Error("duplicate objects must be rejected")
	}
	inner := MustProduct(NewStack(objS))
	if _, err := NewProduct(inner); err == nil {
		t.Error("nesting products (empty object id) must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustProduct should panic on error")
		}
	}()
	MustProduct(NewStack(objS), NewStack(objS))
}

func TestProductResolveDispatch(t *testing.T) {
	p := MustProduct(NewStack(objS), NewExchanger(objE))
	pend := []trace.Operation{{Thread: 1, Object: objE, Method: MethodExchange, Arg: history.Int(5)}}
	got := p.ResolveReturns(p.Init(), pend, []int{0})
	if len(got) != 1 || got[0][0] != history.Pair(false, 5) {
		t.Errorf("dispatched resolution = %v", got)
	}
	unknown := []trace.Operation{{Thread: 1, Object: "Z", Method: MethodExchange, Arg: history.Int(5)}}
	if got := p.ResolveReturns(p.Init(), unknown, []int{0}); got != nil {
		t.Errorf("unknown object resolution = %v, want nil", got)
	}
}

func TestEmptyStateKey(t *testing.T) {
	if Empty().Key() != "" {
		t.Error("empty state key must be empty")
	}
	if !strings.Contains(MustProduct(NewStack(objS)).Name(), "stack") {
		t.Error("product name should include components")
	}
}
