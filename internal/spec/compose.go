package spec

import (
	"fmt"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Product composes specifications of disjoint objects into one: a trace is
// admitted iff, for each component object, the projection of the trace to
// that object is admitted by its component specification. This mirrors the
// paper's strict separation between objects (§2): disjoint objects never
// constrain each other.
type Product struct {
	order []history.ObjectID
	specs map[history.ObjectID]Spec
}

var (
	_ Spec            = (*Product)(nil)
	_ PendingResolver = (*Product)(nil)
)

// NewProduct composes the given specifications. Component objects must be
// distinct and non-empty.
func NewProduct(specs ...Spec) (*Product, error) {
	p := &Product{specs: make(map[history.ObjectID]Spec, len(specs))}
	for _, sp := range specs {
		o := sp.Object()
		if o == "" {
			return nil, fmt.Errorf("spec: product components must constrain a single object (%s does not)", sp.Name())
		}
		if _, dup := p.specs[o]; dup {
			return nil, fmt.Errorf("spec: two product components constrain object %s", o)
		}
		p.specs[o] = sp
		p.order = append(p.order, o)
	}
	return p, nil
}

// Components returns the component specifications in composition order.
// Streaming checkers use it to demultiplex a multi-object event stream
// into one incremental engine per component object.
func (p *Product) Components() []Spec {
	out := make([]Spec, len(p.order))
	for i, o := range p.order {
		out[i] = p.specs[o]
	}
	return out
}

// MustProduct is NewProduct that panics on error; for tests and literals.
func MustProduct(specs ...Spec) *Product {
	p, err := NewProduct(specs...)
	if err != nil {
		panic(err)
	}
	return p
}

// productState carries one component state per object, in p.order.
type productState struct {
	parts []State
	key   string
}

func (s productState) Key() string { return s.key }

func (p *Product) makeState(parts []State) productState {
	var b strings.Builder
	for i, part := range parts {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(string(p.order[i]))
		b.WriteByte('=')
		b.WriteString(part.Key())
	}
	return productState{parts: parts, key: b.String()}
}

// Name implements Spec.
func (p *Product) Name() string {
	names := make([]string, 0, len(p.order))
	for _, o := range p.order {
		names = append(names, p.specs[o].Name())
	}
	return "product(" + strings.Join(names, ", ") + ")"
}

// Object implements Spec; a product constrains several objects, so it
// returns the empty ObjectID.
func (p *Product) Object() history.ObjectID { return "" }

// Init implements Spec.
func (p *Product) Init() State {
	parts := make([]State, len(p.order))
	for i, o := range p.order {
		parts[i] = p.specs[o].Init()
	}
	return p.makeState(parts)
}

// MaxElementSize implements Spec.
func (p *Product) MaxElementSize() int {
	max := 1
	for _, sp := range p.specs {
		if sp.MaxElementSize() > max {
			max = sp.MaxElementSize()
		}
	}
	return max
}

// Step implements Spec, dispatching on the element's object.
func (p *Product) Step(s State, el trace.Element) (State, error) {
	ps, ok := s.(productState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	for i, o := range p.order {
		if o != el.Object {
			continue
		}
		next, err := p.specs[o].Step(ps.parts[i], el)
		if err != nil {
			return nil, err
		}
		parts := make([]State, len(ps.parts))
		copy(parts, ps.parts)
		parts[i] = next
		return p.makeState(parts), nil
	}
	return nil, fmt.Errorf("no component specification for object %s", el.Object)
}

// ResolveReturns implements PendingResolver by dispatching to the component
// that owns the element's object, when that component can resolve.
func (p *Product) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) == 0 {
		return nil
	}
	ps, ok := s.(productState)
	if !ok {
		return nil
	}
	for i, o := range p.order {
		if o != ops[0].Object {
			continue
		}
		pr, ok := p.specs[o].(PendingResolver)
		if !ok {
			return nil
		}
		return pr.ResolveReturns(ps.parts[i], ops, pendingIdx)
	}
	return nil
}
