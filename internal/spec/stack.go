package spec

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the stack interface.
const (
	MethodPush history.Method = "push"
	MethodPop  history.Method = "pop"
)

// stackState is an immutable LIFO stack of integers. The last slice element
// is the top of the stack.
type stackState struct {
	items string // canonical encoding, e.g. "1,2,3"
}

func (s stackState) Key() string { return s.items }

func (s stackState) push(v int64) stackState {
	enc := strconv.FormatInt(v, 10)
	if s.items == "" {
		return stackState{items: enc}
	}
	return stackState{items: s.items + "," + enc}
}

func (s stackState) top() (int64, bool) {
	if s.items == "" {
		return 0, false
	}
	i := strings.LastIndexByte(s.items, ',')
	n, err := strconv.ParseInt(s.items[i+1:], 10, 64)
	if err != nil {
		panic("spec: corrupt stack state " + s.items)
	}
	return n, true
}

func (s stackState) pop() (stackState, int64, bool) {
	v, ok := s.top()
	if !ok {
		return s, 0, false
	}
	i := strings.LastIndexByte(s.items, ',')
	if i < 0 {
		return stackState{}, v, true
	}
	return stackState{items: s.items[:i]}, v, true
}

// Stack is the sequential stack specification of §4: a history is admitted
// iff it is a well-defined sequential history over the empty initial stack
// (the paper's WFS). Every element is a singleton.
//
// With AllowContention set, the specification describes the *central* stack
// of Figure 2, whose one-shot operations may also fail under contention:
// push(v) ▷ false and pop() ▷ (false,0) are then admitted in any state as
// no-ops. Without it, pop() ▷ (false,0) is admitted only on the empty stack
// and push always succeeds — the client-facing elimination stack spec.
type Stack struct {
	Obj history.ObjectID
	// AllowContention admits failed push/pop singletons in any state.
	AllowContention bool
}

var (
	_ Spec            = Stack{}
	_ PendingResolver = Stack{}
)

// NewStack returns the LIFO stack specification for object o.
func NewStack(o history.ObjectID) Stack { return Stack{Obj: o} }

// NewCentralStack returns the specification of Figure 2's one-shot central
// stack, whose operations may fail under contention.
func NewCentralStack(o history.ObjectID) Stack {
	return Stack{Obj: o, AllowContention: true}
}

// Name implements Spec.
func (st Stack) Name() string {
	if st.AllowContention {
		return "central-stack(" + string(st.Obj) + ")"
	}
	return "stack(" + string(st.Obj) + ")"
}

// Object implements Spec.
func (st Stack) Object() history.ObjectID { return st.Obj }

// Init implements Spec.
func (st Stack) Init() State { return stackState{} }

// MaxElementSize implements Spec: the stack specification is sequential.
func (st Stack) MaxElementSize() int { return 1 }

// Step implements Spec.
func (st Stack) Step(s State, el trace.Element) (State, error) {
	if el.Object != st.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, st.Obj)
	}
	if len(el.Ops) != 1 {
		return nil, fmt.Errorf("stack elements are singletons, got %d operations", len(el.Ops))
	}
	ss, ok := s.(stackState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	op := el.Ops[0]
	switch op.Method {
	case MethodPush:
		if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool {
			return nil, fmt.Errorf("push must be int ▷ bool, got %s ▷ %s", op.Arg, op.Ret)
		}
		if !op.Ret.B {
			if !st.AllowContention {
				return nil, fmt.Errorf("push cannot fail in the abstract stack: %s", el)
			}
			return ss, nil // contention failure: no-op
		}
		return ss.push(op.Arg.N), nil
	case MethodPop:
		if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
			return nil, fmt.Errorf("pop must be () ▷ (bool,int), got %s ▷ %s", op.Arg, op.Ret)
		}
		if !op.Ret.B {
			if op.Ret.N != 0 {
				return nil, fmt.Errorf("failed pop must return (false,0): %s", el)
			}
			if st.AllowContention {
				return ss, nil // empty or contention: no-op
			}
			if _, nonEmpty := ss.top(); nonEmpty {
				return nil, fmt.Errorf("pop may fail only on the empty stack, state [%s]", ss.items)
			}
			return ss, nil
		}
		next, v, nonEmpty := ss.pop()
		if !nonEmpty {
			return nil, fmt.Errorf("successful pop on empty stack: %s", el)
		}
		if v != op.Ret.N {
			return nil, fmt.Errorf("pop returned %d but top is %d", op.Ret.N, v)
		}
		return next, nil
	default:
		return nil, fmt.Errorf("unknown method %s", op.Method)
	}
}

// ResolveReturns implements PendingResolver: a pending push may complete
// with true (or false under contention); a pending pop with the current top
// (or a failure when admitted).
func (st Stack) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) != 1 || len(pendingIdx) != 1 {
		return nil
	}
	ss, ok := s.(stackState)
	if !ok {
		return nil
	}
	var candidates []history.Value
	switch ops[0].Method {
	case MethodPush:
		candidates = append(candidates, history.Bool(true))
		if st.AllowContention {
			candidates = append(candidates, history.Bool(false))
		}
	case MethodPop:
		if v, nonEmpty := ss.top(); nonEmpty {
			candidates = append(candidates, history.Pair(true, v))
			if st.AllowContention {
				candidates = append(candidates, history.Pair(false, 0))
			}
		} else {
			candidates = append(candidates, history.Pair(false, 0))
		}
	}
	out := make([][]history.Value, len(candidates))
	for i, c := range candidates {
		out[i] = []history.Value{c}
	}
	return out
}

// PushElement builds the singleton S.{(t, push(v) ▷ ok)}.
func PushElement(o history.ObjectID, t history.ThreadID, v int64, ok bool) trace.Element {
	return trace.Singleton(trace.Operation{
		Thread: t, Object: o, Method: MethodPush,
		Arg: history.Int(v), Ret: history.Bool(ok),
	})
}

// PopElement builds the singleton S.{(t, pop() ▷ (ok,v))}.
func PopElement(o history.ObjectID, t history.ThreadID, ok bool, v int64) trace.Element {
	return trace.Singleton(trace.Operation{
		Thread: t, Object: o, Method: MethodPop,
		Arg: history.Unit(), Ret: history.Pair(ok, v),
	})
}
