package spec

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// DualQueue is the concurrency-aware specification of a dual FIFO queue
// (Scherer & Scott): a queue whose deq operations wait for a value instead
// of failing on empty. An enq fulfilling a waiting deq forms the single
// CA-element
//
//	Q.{(t, enq(v) ▷ true), (t', deq() ▷ (true,v))}
//
// Unlike the dual *stack*, where a push immediately popped is valid in any
// state, FIFO order makes the fulfilment pair valid ONLY on the empty
// queue: a deq must take the head, so enq(v)·deq▷v adjacent requires no
// older data. (The implementation guarantees this structurally: it
// fulfils reservations only while the queue holds reservations, i.e. no
// data.) Singleton elements follow the ordinary FIFO queue specification.
type DualQueue struct {
	Obj history.ObjectID
}

var (
	_ Spec            = DualQueue{}
	_ PendingResolver = DualQueue{}
)

// NewDualQueue returns the dual queue specification for object o.
func NewDualQueue(o history.ObjectID) DualQueue { return DualQueue{Obj: o} }

// Name implements Spec.
func (d DualQueue) Name() string { return "dual-queue(" + string(d.Obj) + ")" }

// Object implements Spec.
func (d DualQueue) Object() history.ObjectID { return d.Obj }

// Init implements Spec.
func (d DualQueue) Init() State { return queueState{} }

// MaxElementSize implements Spec.
func (d DualQueue) MaxElementSize() int { return 2 }

// Step implements Spec.
func (d DualQueue) Step(s State, el trace.Element) (State, error) {
	if el.Object != d.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, d.Obj)
	}
	switch len(el.Ops) {
	case 1:
		return Queue{Obj: d.Obj}.Step(s, el)
	case 2:
		qs, ok := s.(queueState)
		if !ok {
			return nil, fmt.Errorf("foreign state %T", s)
		}
		enq, deq := el.Ops[0], el.Ops[1]
		if enq.Method != MethodEnq {
			enq, deq = deq, enq
		}
		if enq.Method != MethodEnq || deq.Method != MethodDeq {
			return nil, fmt.Errorf("a fulfilment pairs one enq with one deq: %s", el)
		}
		if enq.Arg.Kind != history.KindInt || enq.Ret != history.Bool(true) {
			return nil, fmt.Errorf("fulfilment enq must be int ▷ true: %s", el)
		}
		if deq.Ret != history.Pair(true, enq.Arg.N) {
			return nil, fmt.Errorf("fulfilled deq must return the enqueued value %d: %s", enq.Arg.N, el)
		}
		if qs.items != "" {
			return nil, fmt.Errorf("fulfilment requires the empty queue (FIFO), state [%s]: %s", qs.items, el)
		}
		return qs, nil
	default:
		return nil, fmt.Errorf("dual queue elements have one or two operations, got %d", len(el.Ops))
	}
}

// ResolveReturns implements PendingResolver.
func (d DualQueue) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	switch len(ops) {
	case 1:
		return Queue{Obj: d.Obj}.ResolveReturns(s, ops, pendingIdx)
	case 2:
		var enqArg history.Value
		for _, op := range ops {
			if op.Method == MethodEnq {
				enqArg = op.Arg
			}
		}
		if enqArg.IsZero() {
			return nil
		}
		rets := make([]history.Value, 0, len(pendingIdx))
		for _, i := range pendingIdx {
			if ops[i].Method == MethodEnq {
				rets = append(rets, history.Bool(true))
			} else {
				rets = append(rets, history.Pair(true, enqArg.N))
			}
		}
		return [][]history.Value{rets}
	default:
		return nil
	}
}

// QFulfilmentElement builds the pair element of an enq fulfilling a
// waiting deq.
func QFulfilmentElement(o history.ObjectID, enqer history.ThreadID, v int64, deqer history.ThreadID) trace.Element {
	return trace.MustElement(
		trace.Operation{Thread: enqer, Object: o, Method: MethodEnq, Arg: history.Int(v), Ret: history.Bool(true)},
		trace.Operation{Thread: deqer, Object: o, Method: MethodDeq, Arg: history.Unit(), Ret: history.Pair(true, v)},
	)
}
