package spec

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// DualStack is the concurrency-aware specification of a dual stack
// (Scherer & Scott's dual data structures, discussed in §6): a stack whose
// pop operations wait for a value instead of failing on empty. The paper
// observes that CA-traces streamline dual-structure specifications by
// removing the need for separate "request" and "follow-up" linearization
// points: a push fulfilling a waiting pop forms a single CA-element
//
//	S.{(t, push(v) ▷ true), (t', pop() ▷ (true,v))}
//
// which leaves the stack state unchanged (the push is immediately popped),
// while non-waiting operations remain ordinary singleton stack elements.
type DualStack struct {
	Obj history.ObjectID
}

var (
	_ Spec            = DualStack{}
	_ PendingResolver = DualStack{}
)

// NewDualStack returns the dual stack specification for object o.
func NewDualStack(o history.ObjectID) DualStack { return DualStack{Obj: o} }

// Name implements Spec.
func (d DualStack) Name() string { return "dual-stack(" + string(d.Obj) + ")" }

// Object implements Spec.
func (d DualStack) Object() history.ObjectID { return d.Obj }

// Init implements Spec.
func (d DualStack) Init() State { return stackState{} }

// MaxElementSize implements Spec: fulfilment pairs a push with a pop.
func (d DualStack) MaxElementSize() int { return 2 }

// Step implements Spec.
func (d DualStack) Step(s State, el trace.Element) (State, error) {
	if el.Object != d.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, d.Obj)
	}
	switch len(el.Ops) {
	case 1:
		return Stack{Obj: d.Obj}.Step(s, el)
	case 2:
		push, pop := el.Ops[0], el.Ops[1]
		if push.Method != MethodPush {
			push, pop = pop, push
		}
		if push.Method != MethodPush || pop.Method != MethodPop {
			return nil, fmt.Errorf("a fulfilment pairs one push with one pop: %s", el)
		}
		if push.Arg.Kind != history.KindInt || push.Ret != history.Bool(true) {
			return nil, fmt.Errorf("fulfilment push must be int ▷ true: %s", el)
		}
		if pop.Ret != history.Pair(true, push.Arg.N) {
			return nil, fmt.Errorf("fulfilled pop must return the pushed value %d: %s", push.Arg.N, el)
		}
		return s, nil // push immediately popped: state unchanged
	default:
		return nil, fmt.Errorf("dual stack elements have one or two operations, got %d", len(el.Ops))
	}
}

// ResolveReturns implements PendingResolver.
func (d DualStack) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	switch len(ops) {
	case 1:
		return Stack{Obj: d.Obj}.ResolveReturns(s, ops, pendingIdx)
	case 2:
		var pushArg history.Value
		for _, op := range ops {
			if op.Method == MethodPush {
				pushArg = op.Arg
			}
		}
		if pushArg.IsZero() {
			return nil
		}
		rets := make([]history.Value, 0, len(pendingIdx))
		for _, i := range pendingIdx {
			if ops[i].Method == MethodPush {
				rets = append(rets, history.Bool(true))
			} else {
				rets = append(rets, history.Pair(true, pushArg.N))
			}
		}
		return [][]history.Value{rets}
	default:
		return nil
	}
}

// FulfilmentElement builds the pair element of a push fulfilling a
// waiting pop.
func FulfilmentElement(o history.ObjectID, pusher history.ThreadID, v int64, popper history.ThreadID) trace.Element {
	return trace.MustElement(
		trace.Operation{Thread: pusher, Object: o, Method: MethodPush, Arg: history.Int(v), Ret: history.Bool(true)},
		trace.Operation{Thread: popper, Object: o, Method: MethodPop, Arg: history.Unit(), Ret: history.Pair(true, v)},
	)
}
