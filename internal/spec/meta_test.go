package spec

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// TestSpecMetaContract checks the Spec interface contract uniformly for
// every specification: Name is informative, Object matches, element sizes
// are sane, Init().Key() is stable, and Step rejects foreign states and
// wrong objects.
func TestSpecMetaContract(t *testing.T) {
	specs := []struct {
		sp       Spec
		obj      history.ObjectID
		nameFrag string
		maxElem  int
		// el is a valid first element for the spec.
		el trace.Element
	}{
		{NewExchanger("E"), "E", "exchanger", 2, FailElement("E", 1, 7)},
		{NewElimArray("AR"), "AR", "exchanger", 2, FailElement("AR", 1, 7)},
		{NewStack("S"), "S", "stack", 1, PushElement("S", 1, 5, true)},
		{NewCentralStack("S"), "S", "central-stack", 1, PushElement("S", 1, 5, false)},
		{NewDualStack("DS"), "DS", "dual-stack", 2, FulfilmentElement("DS", 1, 5, 2)},
		{NewQueue("Q"), "Q", "queue", 1, trace.Singleton(trace.Operation{
			Thread: 1, Object: "Q", Method: MethodEnq, Arg: history.Int(1), Ret: history.Bool(true)})},
		{NewSyncQueue("SQ"), "SQ", "syncqueue", 2, HandOffElement("SQ", 1, 5, 2)},
		{NewRegister("R"), "R", "register", 1, trace.Singleton(trace.Operation{
			Thread: 1, Object: "R", Method: MethodWrite, Arg: history.Int(1), Ret: history.Unit()})},
		{NewSnapshot("IS", 3), "IS", "snapshot", 3, BlockElement("IS", 0, [2]int64{1, 5})},
		{NewSet("ST"), "ST", "set", 1, trace.Singleton(trace.Operation{
			Thread: 1, Object: "ST", Method: MethodAdd, Arg: history.Int(1), Ret: history.Bool(true)})},
		{NewPQueue("PQ"), "PQ", "pqueue", 1, trace.Singleton(trace.Operation{
			Thread: 1, Object: "PQ", Method: MethodInsert, Arg: history.Int(1), Ret: history.Bool(true)})},
	}
	for _, tt := range specs {
		t.Run(tt.sp.Name(), func(t *testing.T) {
			if !strings.Contains(tt.sp.Name(), tt.nameFrag) {
				t.Errorf("Name() = %q, want containing %q", tt.sp.Name(), tt.nameFrag)
			}
			if tt.sp.Object() != tt.obj {
				t.Errorf("Object() = %q, want %q", tt.sp.Object(), tt.obj)
			}
			if got := tt.sp.MaxElementSize(); got != tt.maxElem {
				t.Errorf("MaxElementSize() = %d, want %d", got, tt.maxElem)
			}
			init := tt.sp.Init()
			if init.Key() != tt.sp.Init().Key() {
				t.Error("Init().Key() must be deterministic")
			}
			// Foreign state must be rejected (the stateless exchanger and
			// sync queue legitimately ignore the state).
			if _, err := tt.sp.Step(init, tt.el); err != nil {
				t.Errorf("valid first element rejected: %v", err)
			}
			bad := tt.el
			bad.Object = "ZZZ"
			for i := range bad.Ops {
				bad.Ops[i].Object = "ZZZ"
			}
			if _, err := tt.sp.Step(init, bad); err == nil {
				t.Error("element on a foreign object must be rejected")
			}
		})
	}
}

// TestStatefulSpecsRejectForeignStates: stateful specs must not accept
// another spec's state value.
func TestStatefulSpecsRejectForeignStates(t *testing.T) {
	type stepper interface {
		Step(State, trace.Element) (State, error)
	}
	cases := []struct {
		name string
		sp   stepper
		el   trace.Element
	}{
		{"stack", NewStack("S"), PushElement("S", 1, 1, true)},
		{"queue", NewQueue("Q"), trace.Singleton(trace.Operation{
			Thread: 1, Object: "Q", Method: MethodEnq, Arg: history.Int(1), Ret: history.Bool(true)})},
		{"register", NewRegister("R"), trace.Singleton(trace.Operation{
			Thread: 1, Object: "R", Method: MethodRead, Arg: history.Unit(), Ret: history.Int(0)})},
		{"snapshot", NewSnapshot("IS", 2), BlockElement("IS", 0, [2]int64{1, 1})},
		{"product", MustProduct(NewStack("S")), PushElement("S", 1, 1, true)},
		{"set", NewSet("ST"), trace.Singleton(trace.Operation{
			Thread: 1, Object: "ST", Method: MethodContains, Arg: history.Int(1), Ret: history.Bool(false)})},
		{"pqueue", NewPQueue("PQ"), trace.Singleton(trace.Operation{
			Thread: 1, Object: "PQ", Method: MethodInsert, Arg: history.Int(1), Ret: history.Bool(true)})},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.sp.Step(Empty(), tt.el); err == nil {
				t.Error("foreign state must be rejected")
			}
		})
	}
}

func TestResolveReturnsDegenerateInputs(t *testing.T) {
	// Resolvers must return nil (not panic) on shapes they cannot handle.
	reg := NewRegister("R")
	if got := reg.ResolveReturns(reg.Init(), make([]trace.Operation, 2), []int{0, 1}); got != nil {
		t.Errorf("register pair resolution = %v, want nil", got)
	}
	if got := reg.ResolveReturns(Empty(), make([]trace.Operation, 1), []int{0}); got != nil {
		t.Errorf("register foreign-state resolution = %v, want nil", got)
	}
	q := NewQueue("Q")
	if got := q.ResolveReturns(Empty(), make([]trace.Operation, 1), []int{0}); got != nil {
		t.Errorf("queue foreign-state resolution = %v, want nil", got)
	}
	st := NewStack("S")
	if got := st.ResolveReturns(Empty(), make([]trace.Operation, 1), []int{0}); got != nil {
		t.Errorf("stack foreign-state resolution = %v, want nil", got)
	}
	sq := NewSyncQueue("SQ")
	if got := sq.ResolveReturns(Empty(), make([]trace.Operation, 3), []int{0}); got != nil {
		t.Errorf("syncqueue 3-op resolution = %v, want nil", got)
	}
	// Two takes pending: no put argument to hand over.
	takes := []trace.Operation{
		{Thread: 1, Object: "SQ", Method: MethodTake, Arg: history.Unit()},
		{Thread: 2, Object: "SQ", Method: MethodTake, Arg: history.Unit()},
	}
	if got := sq.ResolveReturns(Empty(), takes, []int{0, 1}); got != nil {
		t.Errorf("take/take resolution = %v, want nil", got)
	}
	ds := NewDualStack("DS")
	pops := []trace.Operation{
		{Thread: 1, Object: "DS", Method: MethodPop, Arg: history.Unit()},
		{Thread: 2, Object: "DS", Method: MethodPop, Arg: history.Unit()},
	}
	if got := ds.ResolveReturns(ds.Init(), pops, []int{0, 1}); got != nil {
		t.Errorf("pop/pop resolution = %v, want nil", got)
	}
	if got := ds.ResolveReturns(ds.Init(), make([]trace.Operation, 3), []int{0}); got != nil {
		t.Errorf("dual stack 3-op resolution = %v, want nil", got)
	}
}

func TestQueueStepEdgeCases(t *testing.T) {
	q := NewQueue("Q")
	badEnq := trace.Singleton(trace.Operation{
		Thread: 1, Object: "Q", Method: MethodEnq, Arg: history.Int(1), Ret: history.Bool(false)})
	if _, err := q.Step(q.Init(), badEnq); err == nil {
		t.Error("failed enq must be rejected")
	}
	badDeqVal := trace.Singleton(trace.Operation{
		Thread: 1, Object: "Q", Method: MethodDeq, Arg: history.Unit(), Ret: history.Pair(false, 9)})
	if _, err := q.Step(q.Init(), badDeqVal); err == nil {
		t.Error("failed deq with nonzero value must be rejected")
	}
	unknown := trace.Singleton(trace.Operation{
		Thread: 1, Object: "Q", Method: "peek", Arg: history.Unit(), Ret: history.Int(0)})
	if _, err := q.Step(q.Init(), unknown); err == nil {
		t.Error("unknown method must be rejected")
	}
	pair := trace.MustElement(
		trace.Operation{Thread: 1, Object: "Q", Method: MethodEnq, Arg: history.Int(1), Ret: history.Bool(true)},
		trace.Operation{Thread: 2, Object: "Q", Method: MethodEnq, Arg: history.Int(2), Ret: history.Bool(true)})
	if _, err := q.Step(q.Init(), pair); err == nil {
		t.Error("queue elements must be singletons")
	}
}

func TestRegisterStepEdgeCases(t *testing.T) {
	r := NewRegister("R")
	badWrite := trace.Singleton(trace.Operation{
		Thread: 1, Object: "R", Method: MethodWrite, Arg: history.Unit(), Ret: history.Unit()})
	if _, err := r.Step(r.Init(), badWrite); err == nil {
		t.Error("write with unit arg must be rejected")
	}
	badRead := trace.Singleton(trace.Operation{
		Thread: 1, Object: "R", Method: MethodRead, Arg: history.Int(1), Ret: history.Int(0)})
	if _, err := r.Step(r.Init(), badRead); err == nil {
		t.Error("read with int arg must be rejected")
	}
	unknown := trace.Singleton(trace.Operation{
		Thread: 1, Object: "R", Method: "cas", Arg: history.Int(1), Ret: history.Bool(true)})
	if _, err := r.Step(r.Init(), unknown); err == nil {
		t.Error("unknown method must be rejected")
	}
	pair := trace.MustElement(
		trace.Operation{Thread: 1, Object: "R", Method: MethodWrite, Arg: history.Int(1), Ret: history.Unit()},
		trace.Operation{Thread: 2, Object: "R", Method: MethodWrite, Arg: history.Int(2), Ret: history.Unit()})
	if _, err := r.Step(r.Init(), pair); err == nil {
		t.Error("register elements must be singletons")
	}
}

func TestSyncQueueStepEdgeCases(t *testing.T) {
	sq := NewSyncQueue("SQ")
	badPut := trace.Singleton(trace.Operation{
		Thread: 1, Object: "SQ", Method: MethodPut, Arg: history.Unit(), Ret: history.Bool(false)})
	if _, err := sq.Step(sq.Init(), badPut); err == nil {
		t.Error("put with unit arg must be rejected")
	}
	badTake := trace.Singleton(trace.Operation{
		Thread: 1, Object: "SQ", Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(false, 4)})
	if _, err := sq.Step(sq.Init(), badTake); err == nil {
		t.Error("failed take with nonzero value must be rejected")
	}
	unknown := trace.Singleton(trace.Operation{
		Thread: 1, Object: "SQ", Method: "poll", Arg: history.Unit(), Ret: history.Pair(false, 0)})
	if _, err := sq.Step(sq.Init(), unknown); err == nil {
		t.Error("unknown method must be rejected")
	}
	badPair := trace.MustElement(
		trace.Operation{Thread: 1, Object: "SQ", Method: MethodPut, Arg: history.Int(1), Ret: history.Bool(false)},
		trace.Operation{Thread: 2, Object: "SQ", Method: MethodTake, Arg: history.Unit(), Ret: history.Pair(true, 1)})
	if _, err := sq.Step(sq.Init(), badPair); err == nil {
		t.Error("hand-off with failed put must be rejected")
	}
}

func TestSnapshotStepEdgeCases(t *testing.T) {
	sp := NewSnapshot("IS", 3)
	badMethod := trace.Singleton(trace.Operation{
		Thread: 1, Object: "IS", Method: "scan", Arg: history.Int(1), Ret: history.Pair(true, 1)})
	if _, err := sp.Step(sp.Init(), badMethod); err == nil {
		t.Error("unknown method must be rejected")
	}
	badArg := trace.Singleton(trace.Operation{
		Thread: 1, Object: "IS", Method: MethodUpdate, Arg: history.Unit(), Ret: history.Pair(true, 1)})
	if _, err := sp.Step(sp.Init(), badArg); err == nil {
		t.Error("unit argument must be rejected")
	}
}

func TestDualStackSingletonDelegation(t *testing.T) {
	d := NewDualStack("DS")
	// Ordinary stack semantics apply to singletons: LIFO violation caught.
	s1, err := d.Step(d.Init(), PushElement("DS", 1, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Step(s1, PopElement("DS", 2, true, 99)); err == nil {
		t.Error("pop of never-pushed value must be rejected")
	}
	// Oversized elements rejected.
	if _, err := d.Step(d.Init(), trace.MustElement(
		trace.Operation{Thread: 1, Object: "DS", Method: MethodPush, Arg: history.Int(1), Ret: history.Bool(true)},
		trace.Operation{Thread: 2, Object: "DS", Method: MethodPush, Arg: history.Int(2), Ret: history.Bool(true)},
		trace.Operation{Thread: 3, Object: "DS", Method: MethodPop, Arg: history.Unit(), Ret: history.Pair(true, 1)},
	)); err == nil {
		t.Error("3-op dual stack element must be rejected")
	}
}

func TestProductStateKeyFormat(t *testing.T) {
	p := MustProduct(NewStack("S"), NewQueue("Q"))
	s, err := p.Step(p.Init(), PushElement("S", 1, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	key := s.Key()
	if !strings.Contains(key, "S=") || !strings.Contains(key, "Q=") {
		t.Errorf("product key should name components: %q", key)
	}
}
