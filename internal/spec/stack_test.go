package spec

import (
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/trace"
)

const objS history.ObjectID = "S"

func TestStackLIFO(t *testing.T) {
	st := NewStack(objS)
	tr := trace.Trace{
		PushElement(objS, 1, 10, true),
		PushElement(objS, 2, 20, true),
		PopElement(objS, 1, true, 20),
		PopElement(objS, 2, true, 10),
		PopElement(objS, 1, false, 0), // empty
	}
	if _, err := Accepts(st, tr); err != nil {
		t.Fatalf("LIFO trace rejected: %v", err)
	}
}

func TestStackRejections(t *testing.T) {
	st := NewStack(objS)
	tests := []struct {
		name    string
		tr      trace.Trace
		wantErr string
	}{
		{"pop wrong order", trace.Trace{
			PushElement(objS, 1, 10, true),
			PushElement(objS, 2, 20, true),
			PopElement(objS, 1, true, 10),
		}, "top is 20"},
		{"pop empty success", trace.Trace{PopElement(objS, 1, true, 5)}, "empty"},
		{"failed pop nonempty", trace.Trace{
			PushElement(objS, 1, 10, true),
			PopElement(objS, 2, false, 0),
		}, "only on the empty stack"},
		{"failed push", trace.Trace{PushElement(objS, 1, 10, false)}, "cannot fail"},
		{"failed pop nonzero", trace.Trace{PopElement(objS, 1, false, 7)}, "(false,0)"},
		{"pair element", trace.Trace{trace.MustElement(
			trace.Operation{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(1), Ret: history.Bool(true)},
			trace.Operation{Thread: 2, Object: objS, Method: MethodPush, Arg: history.Int(2), Ret: history.Bool(true)},
		)}, "singleton"},
		{"wrong object", trace.Trace{PushElement("X", 1, 1, true)}, "constrains"},
		{"unknown method", trace.Trace{trace.Singleton(trace.Operation{
			Thread: 1, Object: objS, Method: "peek", Arg: history.Unit(), Ret: history.Int(0),
		})}, "unknown method"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Accepts(st, tt.tr)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Accepts error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestCentralStackContention(t *testing.T) {
	cs := NewCentralStack(objS)
	tr := trace.Trace{
		PushElement(objS, 1, 10, false), // contention: no-op
		PushElement(objS, 1, 10, true),
		PopElement(objS, 2, false, 0), // contention: no-op, stack non-empty
		PopElement(objS, 2, true, 10),
		PopElement(objS, 2, false, 0), // empty
	}
	if _, err := Accepts(cs, tr); err != nil {
		t.Fatalf("central stack trace rejected: %v", err)
	}
	// Contention failures are no-ops: state must be unchanged.
	s1, err := cs.Step(cs.Init(), PushElement(objS, 1, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cs.Step(s1, PushElement(objS, 2, 6, false))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Key() != s2.Key() {
		t.Errorf("failed push changed state: %q -> %q", s1.Key(), s2.Key())
	}
}

func TestStackStateEncoding(t *testing.T) {
	st := NewStack(objS)
	s := st.Init()
	var err error
	for _, v := range []int64{-5, 0, 123456789} {
		s, err = st.Step(s, PushElement(objS, 1, v, true))
		if err != nil {
			t.Fatalf("push %d: %v", v, err)
		}
	}
	for _, v := range []int64{123456789, 0, -5} {
		s, err = st.Step(s, PopElement(objS, 1, true, v))
		if err != nil {
			t.Fatalf("pop %d: %v", v, err)
		}
	}
	if s.Key() != "" {
		t.Errorf("final state = %q, want empty", s.Key())
	}
}

func TestStackResolveReturns(t *testing.T) {
	st := NewStack(objS)
	cs := NewCentralStack(objS)
	s1, _ := st.Step(st.Init(), PushElement(objS, 1, 42, true))

	pendPush := []trace.Operation{{Thread: 1, Object: objS, Method: MethodPush, Arg: history.Int(7)}}
	pendPop := []trace.Operation{{Thread: 1, Object: objS, Method: MethodPop, Arg: history.Unit()}}

	if got := st.ResolveReturns(st.Init(), pendPush, []int{0}); len(got) != 1 || got[0][0] != history.Bool(true) {
		t.Errorf("abstract pending push = %v", got)
	}
	if got := cs.ResolveReturns(cs.Init(), pendPush, []int{0}); len(got) != 2 {
		t.Errorf("central pending push should offer success and failure: %v", got)
	}
	if got := st.ResolveReturns(s1, pendPop, []int{0}); len(got) != 1 || got[0][0] != history.Pair(true, 42) {
		t.Errorf("pending pop on [42] = %v", got)
	}
	if got := st.ResolveReturns(st.Init(), pendPop, []int{0}); len(got) != 1 || got[0][0] != history.Pair(false, 0) {
		t.Errorf("pending pop on empty = %v", got)
	}
}

func TestStackPrefixClosure(t *testing.T) {
	// Every prefix of an accepted trace is accepted (Definition 6 requires
	// prefix-closed object systems; our Step construction guarantees it).
	st := NewStack(objS)
	full := trace.Trace{
		PushElement(objS, 1, 1, true),
		PushElement(objS, 2, 2, true),
		PopElement(objS, 1, true, 2),
		PopElement(objS, 2, true, 1),
	}
	for i := 0; i <= len(full); i++ {
		if _, err := Accepts(st, full[:i]); err != nil {
			t.Errorf("prefix of length %d rejected: %v", i, err)
		}
	}
}
