package spec

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the FIFO queue interface.
const (
	MethodEnq history.Method = "enq"
	MethodDeq history.Method = "deq"
)

// queueState is an immutable FIFO queue of integers; the first encoded
// element is the head.
type queueState struct {
	items string
}

func (q queueState) Key() string { return q.items }

func (q queueState) enq(v int64) queueState {
	enc := strconv.FormatInt(v, 10)
	if q.items == "" {
		return queueState{items: enc}
	}
	return queueState{items: q.items + "," + enc}
}

func (q queueState) deq() (queueState, int64, bool) {
	if q.items == "" {
		return q, 0, false
	}
	i := strings.IndexByte(q.items, ',')
	if i < 0 {
		n, err := strconv.ParseInt(q.items, 10, 64)
		if err != nil {
			panic("spec: corrupt queue state " + q.items)
		}
		return queueState{}, n, true
	}
	n, err := strconv.ParseInt(q.items[:i], 10, 64)
	if err != nil {
		panic("spec: corrupt queue state " + q.items)
	}
	return queueState{items: q.items[i+1:]}, n, true
}

// Queue is the sequential FIFO queue specification: enq(v) ▷ true enqueues,
// deq() ▷ (true,v) dequeues the head, deq() ▷ (false,0) is admitted only on
// the empty queue. It serves as a cross-validation target for the checkers
// and as the specification of elimination-based queues ([17]).
type Queue struct {
	Obj history.ObjectID
}

var (
	_ Spec            = Queue{}
	_ PendingResolver = Queue{}
)

// NewQueue returns the FIFO queue specification for object o.
func NewQueue(o history.ObjectID) Queue { return Queue{Obj: o} }

// Name implements Spec.
func (q Queue) Name() string { return "queue(" + string(q.Obj) + ")" }

// Object implements Spec.
func (q Queue) Object() history.ObjectID { return q.Obj }

// Init implements Spec.
func (q Queue) Init() State { return queueState{} }

// MaxElementSize implements Spec.
func (q Queue) MaxElementSize() int { return 1 }

// Step implements Spec.
func (q Queue) Step(s State, el trace.Element) (State, error) {
	if el.Object != q.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, q.Obj)
	}
	if len(el.Ops) != 1 {
		return nil, fmt.Errorf("queue elements are singletons, got %d operations", len(el.Ops))
	}
	qs, ok := s.(queueState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	op := el.Ops[0]
	switch op.Method {
	case MethodEnq:
		if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool || !op.Ret.B {
			return nil, fmt.Errorf("enq must be int ▷ true, got %s ▷ %s", op.Arg, op.Ret)
		}
		return qs.enq(op.Arg.N), nil
	case MethodDeq:
		if op.Arg.Kind != history.KindUnit || op.Ret.Kind != history.KindPair {
			return nil, fmt.Errorf("deq must be () ▷ (bool,int), got %s ▷ %s", op.Arg, op.Ret)
		}
		if !op.Ret.B {
			if op.Ret.N != 0 {
				return nil, fmt.Errorf("failed deq must return (false,0): %s", el)
			}
			if qs.items != "" {
				return nil, fmt.Errorf("deq may fail only on the empty queue, state [%s]", qs.items)
			}
			return qs, nil
		}
		next, v, nonEmpty := qs.deq()
		if !nonEmpty {
			return nil, fmt.Errorf("successful deq on empty queue: %s", el)
		}
		if v != op.Ret.N {
			return nil, fmt.Errorf("deq returned %d but head is %d", op.Ret.N, v)
		}
		return next, nil
	default:
		return nil, fmt.Errorf("unknown method %s", op.Method)
	}
}

// ResolveReturns implements PendingResolver.
func (q Queue) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) != 1 || len(pendingIdx) != 1 {
		return nil
	}
	qs, ok := s.(queueState)
	if !ok {
		return nil
	}
	switch ops[0].Method {
	case MethodEnq:
		return [][]history.Value{{history.Bool(true)}}
	case MethodDeq:
		if _, v, nonEmpty := qs.deq(); nonEmpty {
			return [][]history.Value{{history.Pair(true, v)}}
		}
		return [][]history.Value{{history.Pair(false, 0)}}
	}
	return nil
}
