package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// Methods of the set interface.
const (
	MethodAdd      history.Method = "add"
	MethodRemove   history.Method = "remove"
	MethodContains history.Method = "contains"
)

// setState is an immutable integer set with a canonical sorted encoding.
type setState struct {
	items string // sorted canonical encoding, e.g. "1,2,3"
}

func (s setState) Key() string { return s.items }

func (s setState) slice() []int64 {
	if s.items == "" {
		return nil
	}
	parts := strings.Split(s.items, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			panic("spec: corrupt set state " + s.items)
		}
		out[i] = n
	}
	return out
}

func encodeSet(items []int64) setState {
	if len(items) == 0 {
		return setState{}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	parts := make([]string, len(items))
	for i, v := range items {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return setState{items: strings.Join(parts, ",")}
}

func (s setState) has(v int64) bool {
	for _, x := range s.slice() {
		if x == v {
			return true
		}
	}
	return false
}

func (s setState) add(v int64) setState { return encodeSet(append(s.slice(), v)) }
func (s setState) remove(v int64) setState {
	items := s.slice()
	for i, x := range items {
		if x == v {
			return encodeSet(append(items[:i], items[i+1:]...))
		}
	}
	return s
}

// Set is the sequential integer-set specification: add(v) ▷ b with b true
// iff v was absent (and is now a member), remove(v) ▷ b with b true iff v
// was present (and is now removed), contains(v) ▷ b reporting membership.
// Every element is a singleton. Unambiguous set histories (each value added
// at most once) admit the log-linear specialized monitor in
// calgo/internal/monitor.
type Set struct {
	Obj history.ObjectID
}

var (
	_ Spec            = Set{}
	_ PendingResolver = Set{}
)

// NewSet returns the integer-set specification for object o.
func NewSet(o history.ObjectID) Set { return Set{Obj: o} }

// Name implements Spec.
func (st Set) Name() string { return "set(" + string(st.Obj) + ")" }

// Object implements Spec.
func (st Set) Object() history.ObjectID { return st.Obj }

// Init implements Spec.
func (st Set) Init() State { return setState{} }

// MaxElementSize implements Spec: the set specification is sequential.
func (st Set) MaxElementSize() int { return 1 }

// Step implements Spec.
func (st Set) Step(s State, el trace.Element) (State, error) {
	if el.Object != st.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, st.Obj)
	}
	if len(el.Ops) != 1 {
		return nil, fmt.Errorf("set elements are singletons, got %d operations", len(el.Ops))
	}
	ss, ok := s.(setState)
	if !ok {
		return nil, fmt.Errorf("foreign state %T", s)
	}
	op := el.Ops[0]
	if op.Arg.Kind != history.KindInt || op.Ret.Kind != history.KindBool {
		return nil, fmt.Errorf("set methods are int ▷ bool, got %s ▷ %s", op.Arg, op.Ret)
	}
	v, ret := op.Arg.N, op.Ret.B
	switch op.Method {
	case MethodAdd:
		if ss.has(v) {
			if ret {
				return nil, fmt.Errorf("add(%d) ▷ true but %d is already a member", v, v)
			}
			return ss, nil
		}
		if !ret {
			return nil, fmt.Errorf("add(%d) ▷ false but %d is absent", v, v)
		}
		return ss.add(v), nil
	case MethodRemove:
		if ss.has(v) {
			if !ret {
				return nil, fmt.Errorf("remove(%d) ▷ false but %d is a member", v, v)
			}
			return ss.remove(v), nil
		}
		if ret {
			return nil, fmt.Errorf("remove(%d) ▷ true but %d is absent", v, v)
		}
		return ss, nil
	case MethodContains:
		if ss.has(v) != ret {
			return nil, fmt.Errorf("contains(%d) ▷ %v but membership is %v", v, ret, ss.has(v))
		}
		return ss, nil
	default:
		return nil, fmt.Errorf("unknown method %s", op.Method)
	}
}

// ResolveReturns implements PendingResolver: pending set operations
// complete with the return value determined by the current state.
func (st Set) ResolveReturns(s State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	if len(ops) != 1 || len(pendingIdx) != 1 {
		return nil
	}
	ss, ok := s.(setState)
	if !ok {
		return nil
	}
	if ops[0].Arg.Kind != history.KindInt {
		return nil
	}
	v := ops[0].Arg.N
	switch ops[0].Method {
	case MethodAdd:
		return [][]history.Value{{history.Bool(!ss.has(v))}}
	case MethodRemove, MethodContains:
		return [][]history.Value{{history.Bool(ss.has(v))}}
	}
	return nil
}
