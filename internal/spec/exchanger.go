package spec

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/trace"
)

// MethodExchange is the single method of the exchanger interface.
const MethodExchange history.Method = "exchange"

// Exchanger is the CA-specification of the exchanger object (§4): every
// admitted CA-element is either
//
//   - a swap E.{(t, exchange(v) ▷ (true,v')), (t', exchange(v') ▷ (true,v))}
//     with t ≠ t' — two concurrent threads exchanging their values — or
//   - a failure singleton E.{(t, exchange(v) ▷ (false,v))}.
//
// The specification is stateless: any sequence of such elements is a valid
// CA-trace, which is exactly the paper's trace-set specification S1S2S3...
type Exchanger struct {
	Obj history.ObjectID
}

var (
	_ Spec            = Exchanger{}
	_ PendingResolver = Exchanger{}
)

// NewExchanger returns the exchanger specification for object o.
func NewExchanger(o history.ObjectID) Exchanger { return Exchanger{Obj: o} }

// Name implements Spec.
func (e Exchanger) Name() string { return "exchanger(" + string(e.Obj) + ")" }

// Object implements Spec.
func (e Exchanger) Object() history.ObjectID { return e.Obj }

// Init implements Spec.
func (e Exchanger) Init() State { return Empty() }

// MaxElementSize implements Spec: swaps pair exactly two operations.
func (e Exchanger) MaxElementSize() int { return 2 }

// Step implements Spec.
func (e Exchanger) Step(s State, el trace.Element) (State, error) {
	if el.Object != e.Obj {
		return nil, fmt.Errorf("element on object %s, spec constrains %s", el.Object, e.Obj)
	}
	for _, op := range el.Ops {
		if op.Method != MethodExchange {
			return nil, fmt.Errorf("unknown method %s", op.Method)
		}
		if op.Arg.Kind != history.KindInt {
			return nil, fmt.Errorf("exchange argument must be an int, got %s", op.Arg)
		}
		if op.Ret.Kind != history.KindPair {
			return nil, fmt.Errorf("exchange result must be a (bool,int) pair, got %s", op.Ret)
		}
	}
	switch len(el.Ops) {
	case 1:
		op := el.Ops[0]
		if op.Ret.B {
			return nil, reject("a successful exchange cannot stand alone", el)
		}
		if op.Ret.N != op.Arg.N {
			return nil, reject("failed exchange must return its own value", el)
		}
		return s, nil
	case 2:
		a, b := el.Ops[0], el.Ops[1]
		if !a.Ret.B || !b.Ret.B {
			return nil, reject("both operations of a swap must succeed", el)
		}
		if a.Ret.N != b.Arg.N || b.Ret.N != a.Arg.N {
			return nil, reject("swap values do not cross", el)
		}
		// NewElement already guarantees a.Thread != b.Thread.
		return s, nil
	default:
		return nil, fmt.Errorf("exchanger elements have one or two operations, got %d", len(el.Ops))
	}
}

// ResolveReturns implements PendingResolver. A lone pending exchange can
// only be completed as a failure; within a pair, each pending operation's
// return is forced to (true, partner's argument).
func (e Exchanger) ResolveReturns(_ State, ops []trace.Operation, pendingIdx []int) [][]history.Value {
	switch len(ops) {
	case 1:
		return [][]history.Value{{history.Pair(false, ops[0].Arg.N)}}
	case 2:
		rets := make([]history.Value, 0, len(pendingIdx))
		for _, i := range pendingIdx {
			partner := ops[1-i]
			rets = append(rets, history.Pair(true, partner.Arg.N))
		}
		return [][]history.Value{rets}
	default:
		return nil
	}
}

// NewElimArray returns the specification of the elimination array (§5): an
// elimination array "exposes the same specification as a single exchanger".
func NewElimArray(o history.ObjectID) Exchanger { return NewExchanger(o) }

// SwapElement builds the paper's E.swap(t,v,t',v') abbreviation: the
// CA-element pairing a successful exchange of v by t with a successful
// exchange of v' by t'.
func SwapElement(o history.ObjectID, t history.ThreadID, v int64, u history.ThreadID, w int64) trace.Element {
	return trace.MustElement(
		trace.Operation{Thread: t, Object: o, Method: MethodExchange, Arg: history.Int(v), Ret: history.Pair(true, w)},
		trace.Operation{Thread: u, Object: o, Method: MethodExchange, Arg: history.Int(w), Ret: history.Pair(true, v)},
	)
}

// FailElement builds the failure singleton E.{(t, exchange(v) ▷ (false,v))}.
func FailElement(o history.ObjectID, t history.ThreadID, v int64) trace.Element {
	return trace.Singleton(trace.Operation{
		Thread: t, Object: o, Method: MethodExchange,
		Arg: history.Int(v), Ret: history.Pair(false, v),
	})
}
