package stream

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/monitor"
	"calgo/internal/obs"
	"calgo/internal/spec"
)

// batchVerdict runs the batch checker over the complete history.
func batchVerdict(t *testing.T, sp spec.Spec, h history.History) check.Result {
	t.Helper()
	c, err := check.NewChecker(sp)
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), h)
	if err != nil {
		t.Fatalf("batch Check: %v", err)
	}
	return res
}

// streamVerdict feeds the whole history through a Stream and closes it.
func streamVerdict(t *testing.T, sp spec.Spec, h history.History, cfg Config) Verdict {
	t.Helper()
	s, err := New(sp, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.FeedAll(h); err != nil {
		t.Fatalf("FeedAll: %v", err)
	}
	return s.Close()
}

// corruptRet flips one respond event's return value, turning a valid
// execution into one the specification may reject (or, for monitors,
// one that leaves the unambiguous fragment — either way the streaming
// and batch verdicts must still agree).
func corruptRet(rng *rand.Rand, h history.History) (history.History, bool) {
	out := append(history.History(nil), h...)
	idxs := rng.Perm(len(out))
	for _, i := range idxs {
		ev := out[i]
		if ev.Kind != history.Respond {
			continue
		}
		switch ev.Ret.Kind {
		case history.KindPair:
			ev.Ret = history.Pair(ev.Ret.B, int64(1)<<40+rng.Int63n(1<<20))
		case history.KindBool:
			ev.Ret = history.Bool(!ev.Ret.B)
		default:
			continue
		}
		out[i] = ev
		return out, true
	}
	return out, false
}

// genExchanger simulates a valid exchanger execution: overlapping pairs
// swap, loners fail. The exchanger admits elements of size 2, so streams
// over it always take the windowed-DFS path.
func genExchanger(rng *rand.Rand, obj history.ObjectID, rounds int) history.History {
	var h history.History
	tid := history.ThreadID(1)
	v := int64(1)
	for i := 0; i < rounds; i++ {
		if rng.Intn(3) == 0 {
			t := tid
			tid++
			h = append(h,
				history.Inv(t, obj, spec.MethodExchange, history.Int(v)),
				history.Res(t, obj, spec.MethodExchange, history.Pair(false, v)))
			v++
			continue
		}
		t1, t2 := tid, tid+1
		tid += 2
		a, b := v, v+1
		v += 2
		h = append(h,
			history.Inv(t1, obj, spec.MethodExchange, history.Int(a)),
			history.Inv(t2, obj, spec.MethodExchange, history.Int(b)))
		if rng.Intn(2) == 0 {
			h = append(h,
				history.Res(t1, obj, spec.MethodExchange, history.Pair(true, b)),
				history.Res(t2, obj, spec.MethodExchange, history.Pair(true, a)))
		} else {
			h = append(h,
				history.Res(t2, obj, spec.MethodExchange, history.Pair(true, a)),
				history.Res(t1, obj, spec.MethodExchange, history.Pair(true, b)))
		}
	}
	return h
}

// TestStreamMatchesBatch cross-validates the streaming verdict against
// the batch checker on generated complete histories: all four monitored
// kinds (stepper fast path) plus the exchanger (DFS-only), pristine and
// with one corrupted return value. Degraded streams waive the
// comparison; everything else must agree exactly.
func TestStreamMatchesBatch(t *testing.T) {
	cases := []struct {
		name string
		sp   spec.Spec
		gen  func(seed int64, threads int) history.History
	}{
		{"queue", spec.NewQueue("q"), func(seed int64, th int) history.History {
			return monitor.GenQueue(40, th, seed, "q")
		}},
		{"stack", spec.NewStack("s"), func(seed int64, th int) history.History {
			return monitor.GenStack(40, th, seed, "s")
		}},
		{"set", spec.NewSet("st"), func(seed int64, th int) history.History {
			return monitor.GenSet(40, th, seed, "st")
		}},
		{"pqueue", spec.NewPQueue("pq"), func(seed int64, th int) history.History {
			return monitor.GenPQueue(40, th, seed, "pq")
		}},
		{"exchanger", spec.NewExchanger("ex"), func(seed int64, th int) history.History {
			return genExchanger(rand.New(rand.NewSource(seed)), "ex", 12)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 15; seed++ {
				for _, threads := range []int{1, 3} {
					for _, corrupt := range []bool{false, true} {
						h := tc.gen(seed, threads)
						if corrupt {
							var ok bool
							h, ok = corruptRet(rand.New(rand.NewSource(seed^0x5eed)), h)
							if !ok {
								continue
							}
						}
						v := streamVerdict(t, tc.sp, h, Config{CheckEvery: 8})
						if v.Status == Degraded {
							continue
						}
						b := batchVerdict(t, tc.sp, h)
						switch {
						case v.Status == Violation && b.Verdict != check.Unsat:
							t.Fatalf("%s seed %d threads %d corrupt %v: stream %s but batch %v\n%v",
								tc.name, seed, threads, corrupt, v, b.Verdict, h)
						case v.Status == SatSoFar && b.Verdict == check.Unsat:
							t.Fatalf("%s seed %d threads %d corrupt %v: stream %s but batch Unsat (%s)\n%v",
								tc.name, seed, threads, corrupt, v, b.Reason, h)
						}
					}
				}
			}
		})
	}
}

// TestStreamViolationAtExactEvent pins the exact-k contract on the
// incremental queue path: a dequeue of a never-enqueued value is flagged
// at the dequeue's response event, not at a later re-check boundary.
func TestStreamViolationAtExactEvent(t *testing.T) {
	sp := spec.NewQueue("q")
	h := history.History{
		history.Inv(1, "q", spec.MethodEnq, history.Int(1)),
		history.Res(1, "q", spec.MethodEnq, history.Bool(true)),
		history.Inv(1, "q", spec.MethodDeq, history.Unit()),
		history.Res(1, "q", spec.MethodDeq, history.Pair(true, 2)), // event 3: value 2 never enqueued
	}
	s, err := New(sp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FeedAll(h); err != nil {
		t.Fatal(err)
	}
	v := s.Verdict()
	if v.Status != Violation || v.AtEvent != 3 {
		t.Fatalf("want VIOLATION-at-event-3, got %s (at %d)", v, v.AtEvent)
	}
	if !strings.HasPrefix(v.String(), "VIOLATION-at-event-3:") {
		t.Fatalf("display string %q", v.String())
	}
	if v.Engine != "monitor:queue" {
		t.Fatalf("engine %q, want monitor:queue", v.Engine)
	}
	// Sticky across further feeds and Close.
	if err := s.Feed(history.Inv(2, "q", spec.MethodEnq, history.Int(9))); err != nil {
		t.Fatal(err)
	}
	final := s.Close()
	if final.Status != Violation || final.AtEvent != 3 || !final.Final {
		t.Fatalf("final verdict drifted: %s (at %d, final %v)", final, final.AtEvent, final.Final)
	}
	if err := s.Feed(history.Res(2, "q", spec.MethodEnq, history.Bool(true))); err != ErrClosed {
		t.Fatalf("Feed after Close: %v, want ErrClosed", err)
	}
}

// TestStreamMonitorFallsBackToDFS: a duplicate-value stack history is
// outside the monitor's unambiguous fragment but perfectly linearizable;
// while the fallback window still holds the full prefix the stream must
// switch engines and decide it exactly.
func TestStreamMonitorFallsBackToDFS(t *testing.T) {
	sp := spec.NewStack("s")
	h := history.History{
		history.Inv(1, "s", spec.MethodPush, history.Int(1)),
		history.Res(1, "s", spec.MethodPush, history.Bool(true)),
		history.Inv(1, "s", spec.MethodPush, history.Int(1)), // duplicate value: ambiguous for the monitor
		history.Res(1, "s", spec.MethodPush, history.Bool(true)),
		history.Inv(1, "s", spec.MethodPop, history.Unit()),
		history.Res(1, "s", spec.MethodPop, history.Pair(true, 1)),
		history.Inv(1, "s", spec.MethodPop, history.Unit()),
		history.Res(1, "s", spec.MethodPop, history.Pair(true, 1)),
	}
	v := streamVerdict(t, sp, h, Config{CheckEvery: 1})
	if v.Status != SatSoFar {
		t.Fatalf("want Sat, got %s", v)
	}
	if v.Engine != "dfs" {
		t.Fatalf("engine %q, want dfs after fallback", v.Engine)
	}

	// Same shape under EngineMonitor: no fallback allowed, degrade.
	v = streamVerdict(t, sp, h, Config{CheckEvery: 1, Engine: EngineMonitor})
	if v.Status != Degraded {
		t.Fatalf("engine monitor on ambiguous history: want Degraded, got %s", v)
	}
}

// TestStreamWindowOverflowDegrades: a DFS-only object that outgrows the
// fallback window degrades honestly (after one last exact check) and
// sheds its buffer; events keep being counted afterwards.
func TestStreamWindowOverflowDegrades(t *testing.T) {
	sp := spec.NewExchanger("ex")
	h := genExchanger(rand.New(rand.NewSource(7)), "ex", 20)
	s, err := New(sp, Config{Window: 16, CheckEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FeedAll(h); err != nil {
		t.Fatal(err)
	}
	v := s.Close()
	if v.Status != Degraded {
		t.Fatalf("want Degraded, got %s", v)
	}
	if !strings.Contains(v.Reason, "window") {
		t.Fatalf("reason %q does not mention the window", v.Reason)
	}
	if v.Shed == 0 {
		t.Fatal("window overflow must shed the buffer")
	}
	if v.Events != int64(len(h)) {
		t.Fatalf("events %d, want %d (degraded streams keep counting)", v.Events, len(h))
	}
}

// TestStreamCancelDegrades: cancelling mid-stream turns the next DFS
// re-check into honest degradation instead of a block or an error.
func TestStreamCancelDegrades(t *testing.T) {
	sp := spec.NewExchanger("ex")
	h := genExchanger(rand.New(rand.NewSource(3)), "ex", 12)
	s, err := New(sp, Config{CheckEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range h {
		if i == len(h)/2 {
			s.Cancel()
		}
		if err := s.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	v := s.Close()
	if v.Status != Degraded {
		t.Fatalf("cancelled stream: want Degraded, got %s", v)
	}
}

// TestStreamProductDemux: a product specification demultiplexes into one
// engine per object; a violation on either object decides the stream,
// and events on unconstrained objects are transport errors.
func TestStreamProductDemux(t *testing.T) {
	sp := spec.MustProduct(spec.NewQueue("q"), spec.NewStack("s"))
	s, err := New(sp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feed(history.Inv(1, "zzz", spec.MethodEnq, history.Int(1))); err == nil {
		t.Fatal("event on unconstrained object must be rejected")
	}
	h := history.History{
		history.Inv(1, "s", spec.MethodPush, history.Int(7)),
		history.Res(1, "s", spec.MethodPush, history.Bool(true)),
		history.Inv(2, "q", spec.MethodEnq, history.Int(1)),
		history.Res(2, "q", spec.MethodEnq, history.Bool(true)),
		history.Inv(2, "q", spec.MethodDeq, history.Unit()),
		history.Res(2, "q", spec.MethodDeq, history.Pair(true, 42)), // never enqueued
	}
	if err := s.FeedAll(h); err != nil {
		t.Fatal(err)
	}
	v := s.Close()
	if v.Status != Violation || v.AtEvent != 5 {
		t.Fatalf("want VIOLATION-at-event-5 (q's bad deq), got %s (at %d)", v, v.AtEvent)
	}
	if v.Engine != "mixed" {
		t.Fatalf("engine %q, want mixed (queue stepper + stack replay)", v.Engine)
	}
}

// TestStreamFeedTransportErrors: ill-formed events are rejected without
// advancing the stream or poisoning the verdict.
func TestStreamFeedTransportErrors(t *testing.T) {
	s, err := New(spec.NewQueue("q"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feed(history.Inv(1, "q", spec.MethodEnq, history.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Feed(history.Inv(1, "q", spec.MethodEnq, history.Int(2))); err == nil {
		t.Fatal("double invocation on one thread must be rejected")
	}
	if err := s.Feed(history.Res(2, "q", spec.MethodDeq, history.Pair(true, 1))); err == nil {
		t.Fatal("response without a pending invocation must be rejected")
	}
	v := s.Verdict()
	if v.Status != SatSoFar || v.Events != 1 {
		t.Fatalf("rejected events advanced the stream: %s (events %d)", v, v.Events)
	}
}

// feedBalancedQueue streams nCycles sequential enq/deq cycles (4 events
// each) through s, alternating two threads. badCycle >= 0 corrupts that
// cycle's dequeue to return a never-enqueued value and returns the
// stream index of the corrupted response event; otherwise returns -1.
func feedBalancedQueue(t *testing.T, s *Stream, nCycles, badCycle int) int64 {
	t.Helper()
	badAt := int64(-1)
	idx := int64(0)
	feed := func(ev history.Event) {
		t.Helper()
		if err := s.Feed(ev); err != nil {
			t.Fatalf("event %d: %v", idx, err)
		}
		idx++
	}
	for c := 0; c < nCycles; c++ {
		th := history.ThreadID(1 + c%2)
		v := int64(c + 1)
		feed(history.Inv(th, "q", spec.MethodEnq, history.Int(v)))
		feed(history.Res(th, "q", spec.MethodEnq, history.Bool(true)))
		feed(history.Inv(th, "q", spec.MethodDeq, history.Unit()))
		ret := v
		if c == badCycle {
			ret = int64(1) << 40
			badAt = idx
		}
		feed(history.Res(th, "q", spec.MethodDeq, history.Pair(true, ret)))
	}
	return badAt
}

// TestStreamBoundedMemoryMillionEvents is the acceptance pin: a
// 1M-event unambiguous queue stream runs in bounded resident memory
// (shedding active, high-water far below the stream length) and an
// injected defect near the end is reported at its exact event index.
func TestStreamBoundedMemoryMillionEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event soak; skipped with -short")
	}
	const cycles = 250_000 // 4 events each = 1M events
	const window = 1024

	t.Run("pristine", func(t *testing.T) {
		m := obs.NewMetrics()
		s, err := New(spec.NewQueue("q"), Config{Window: window, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		feedBalancedQueue(t, s, cycles, -1)
		v := s.Close()
		if v.Status != SatSoFar {
			t.Fatalf("pristine stream: want Sat, got %s", v)
		}
		if v.Events != 4*cycles {
			t.Fatalf("events %d, want %d", v.Events, 4*cycles)
		}
		if v.Shed == 0 {
			t.Fatal("a 1M-event stream must shed decided state")
		}
		if v.HighWater > 4*window {
			t.Fatalf("high-water %d exceeds the memory bound (window %d)", v.HighWater, window)
		}
		if got := m.Counter("stream.shed").Value(); got != v.Shed {
			t.Fatalf("stream.shed counter %d, verdict Shed %d", got, v.Shed)
		}
	})

	t.Run("defect-at-exact-k", func(t *testing.T) {
		s, err := New(spec.NewQueue("q"), Config{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		badAt := feedBalancedQueue(t, s, cycles, cycles-2)
		v := s.Close()
		if v.Status != Violation {
			t.Fatalf("want Violation, got %s", v)
		}
		if v.AtEvent != badAt {
			t.Fatalf("VIOLATION-at-event-%d, want exact k=%d", v.AtEvent, badAt)
		}
	})
}
