package stream

import (
	"fmt"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/monitor"
	"calgo/internal/spec"
)

// objEngine maintains one object's incremental verdict: a monitor
// stepper on the fast path, a windowed DFS re-checker as fallback. While
// a stepper engine still holds the complete event prefix in its buffer
// (the stream is shorter than Config.Window), leaving the monitored
// fragment falls back to an exact DFS re-check; past that boundary it
// degrades honestly.
type objEngine struct {
	sp      spec.Spec
	checker *check.Checker
	stepper monitor.Stepper
	strict  bool // EngineMonitor: degrade instead of falling back
	lbl     string

	buf       history.History
	buffering bool // stepper mode: buf is the complete prefix, fallback possible

	events     int
	sinceCheck int // dfs mode: events since the last re-check
	checked    bool
	lastIdx    int64
	shedSeen   int64 // stepper sheds already folded into the stream totals
	degraded   bool
}

func newObjEngine(comp spec.Spec, cfg *Config) (*objEngine, error) {
	copts := make([]check.Option, 0, len(cfg.CheckOptions)+1)
	copts = append(copts, cfg.CheckOptions...)
	if cfg.Engine == EngineDFS {
		copts = append(copts, check.WithEngine(check.EngineDFS))
	} else {
		copts = append(copts, check.WithEngine(check.EngineAuto))
	}
	checker, err := check.NewChecker(comp, copts...)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	e := &objEngine{sp: comp, checker: checker, lbl: "dfs"}
	eligible := monitor.SpecKind(comp) != monitor.KindNone && checker.MaxElementSize() == 1
	switch cfg.Engine {
	case EngineDFS:
	case EngineMonitor:
		if !eligible {
			return nil, fmt.Errorf("stream: engine monitor requires a specification with a specialized monitor at element size 1; %s has none", comp.Name())
		}
		st, err := monitor.NewStepper(comp, cfg.CheckEvery)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		e.stepper, e.strict = st, true
		e.lbl = "monitor:" + st.Kind().String()
	default: // EngineAuto
		if eligible {
			if st, err := monitor.NewStepper(comp, cfg.CheckEvery); err == nil {
				e.stepper = st
				e.buffering = true
				e.lbl = "monitor:" + st.Kind().String()
			}
		}
	}
	return e, nil
}

func (e *objEngine) obj() string {
	if o := e.sp.Object(); o != "" {
		return string(o)
	}
	return "all"
}

func (e *objEngine) label() string { return e.lbl }

func (e *objEngine) resident() int64 {
	r := int64(len(e.buf))
	if e.stepper != nil {
		r += int64(e.stepper.Stats().Resident)
	}
	return r
}

func (e *objEngine) stats() monitor.StepStats {
	if e.stepper != nil {
		return e.stepper.Stats()
	}
	return monitor.StepStats{Events: e.events, Resident: len(e.buf)}
}

// syncShed folds the stepper's internal shed count into the stream
// totals (and the stream.shed counter) exactly once.
func (e *objEngine) syncShed(s *Stream) {
	if e.stepper == nil {
		return
	}
	if sh := e.stepper.Stats().Shed; sh > e.shedSeen {
		s.shedBuffered(sh - e.shedSeen)
		e.shedSeen = sh
	}
}

func (e *objEngine) feed(s *Stream, ev history.Event, idx int64) {
	e.events++
	if e.degraded {
		return
	}
	e.lastIdx = idx
	if e.stepper != nil {
		r := e.stepper.Advance(ev, int(idx))
		switch r.Outcome {
		case monitor.StepOK:
			if e.buffering {
				e.buf = append(e.buf, ev)
				if len(e.buf) > s.cfg.Window {
					// Past the fallback window the stepper is on its own:
					// shed the decided prefix to bound memory.
					e.syncShed(s)
					s.shedBuffered(int64(len(e.buf)))
					e.buf = nil
					e.buffering = false
				}
			}
		case monitor.StepViolation:
			s.violate(int64(r.AtEvent), fmt.Sprintf("%s (object %s, %s)", r.Reason, e.obj(), e.lbl))
		default: // StepIneligible, StepInconclusive
			e.leaveFragment(s, &ev, idx, r)
		}
		return
	}
	// Windowed DFS: buffer and re-check on a cadence.
	e.buf = append(e.buf, ev)
	e.sinceCheck++
	if len(e.buf) > s.cfg.Window {
		// Last exact check over the full window, then degrade: shedding
		// events would silently weaken every later DFS verdict.
		e.recheck(s, idx)
		if e.degraded || s.status == Violation {
			return
		}
		n := int64(len(e.buf))
		e.buf = nil
		s.shedBuffered(n)
		e.degraded = true
		s.degrade(fmt.Sprintf("object %s outgrew the %d-event fallback window; verdict exact through event %d", e.obj(), s.cfg.Window, idx))
		return
	}
	if e.sinceCheck >= s.cfg.CheckEvery {
		e.recheck(s, idx)
	}
}

// leaveFragment handles a stepper punt (ineligible or inconclusive): an
// exact DFS fallback while the complete prefix is still buffered, honest
// degradation otherwise. ev is nil when punting at Finish.
func (e *objEngine) leaveFragment(s *Stream, ev *history.Event, idx int64, r monitor.StepResult) {
	reason := fmt.Sprintf("%s %s at event %d: %s", e.lbl, r.Outcome, r.AtEvent, r.Reason)
	e.syncShed(s)
	if e.strict {
		e.stepper = nil
		e.dropBuf(s)
		e.degraded = true
		s.degrade("engine monitor cannot decide: " + reason)
		return
	}
	if !e.buffering {
		e.stepper = nil
		e.dropBuf(s)
		e.degraded = true
		s.degrade(reason + "; the fallback window was already shed")
		return
	}
	if ev != nil {
		e.buf = append(e.buf, *ev)
	}
	e.stepper = nil
	e.buffering = false
	e.lbl = "dfs"
	e.recheck(s, idx)
}

func (e *objEngine) dropBuf(s *Stream) {
	if n := int64(len(e.buf)); n > 0 {
		s.shedBuffered(n)
		e.buf = nil
	}
}

func (e *objEngine) recheck(s *Stream, idx int64) {
	e.sinceCheck = 0
	e.checked = true
	if s.mChecks != nil {
		s.mChecks.Inc()
	}
	res, err := e.checker.Check(s.ctx, e.buf)
	if err != nil {
		e.degraded = true
		e.buf = nil
		s.degrade(fmt.Sprintf("re-check at event %d failed: %v", idx, err))
		return
	}
	switch res.Verdict {
	case check.Sat:
	case check.Unsat:
		s.violate(idx, fmt.Sprintf("%s (object %s, dfs re-check)", reasonOf(res), e.obj()))
	default: // Unknown: bounds or cancellation
		e.degraded = true
		e.buf = nil
		s.degrade(fmt.Sprintf("re-check at event %d undecided: %s", idx, reasonOf(res)))
	}
}

func (e *objEngine) finish(s *Stream) {
	if e.degraded {
		return
	}
	if e.stepper != nil {
		r := e.stepper.Finish()
		e.syncShed(s)
		switch r.Outcome {
		case monitor.StepOK:
		case monitor.StepViolation:
			s.violate(int64(r.AtEvent), fmt.Sprintf("%s (object %s, %s)", r.Reason, e.obj(), e.lbl))
		default:
			e.leaveFragment(s, nil, e.lastIdx, r)
		}
		e.buf = nil
		return
	}
	if e.events > 0 && (e.sinceCheck > 0 || !e.checked) {
		e.recheck(s, e.lastIdx)
	}
	e.buf = nil
}

func reasonOf(res check.Result) string {
	if res.Reason != "" {
		return res.Reason
	}
	if res.Unknown != nil {
		if res.Unknown.Reason != "" {
			return res.Unknown.Reason
		}
		if res.Unknown.Cause != nil {
			return res.Unknown.Cause.Error()
		}
	}
	return "no linearization found"
}
