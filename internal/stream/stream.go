// Package stream implements streaming/online concurrency-aware
// linearizability checking: an ingestion front-end that consumes an
// unbounded event stream, maintains per-object incremental verdicts and
// sheds decided prefixes to bound resident memory.
//
// The paper's CA-traces are defined over growing histories, and
// linearizability (the element-size-1 fragment) is closed under event
// prefixes: a prefix whose pending invocations may be dropped or
// completed arbitrarily is non-linearizable only if every extension is.
// That closure is what makes an online verdict sound — once a prefix is
// bad, "VIOLATION-at-event-k" is final for the whole stream.
//
// Each object gets one engine:
//
//   - fast path: the specialized monitors of calgo/internal/monitor,
//     advanced event-by-event (monitor.Stepper). The queue stepper is
//     fully incremental and sheds decided values, so a balanced stream
//     of any length runs in bounded memory; stack/set/pqueue steppers
//     retain completed operations and re-check at quiescent cuts.
//   - fallback: windowed DFS re-check — the general checker
//     (calgo/internal/check) re-run over the object's buffered events on
//     a cadence. The buffer is bounded by Config.Window; a stream that
//     outgrows it degrades honestly to "Unknown-degraded" rather than
//     shedding events the DFS would need.
//
// Verdicts are three-valued with an explicit degradation state:
// Sat-so-far (every check run so far passed), VIOLATION-at-event-k
// (sticky, with the stream index that made the prefix bad) and
// Unknown-degraded (the stream outgrew its window, left the monitored
// fragment after the fallback buffer was shed, or checking was
// cancelled).
package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/obs"
	"calgo/internal/spec"
)

// Status is the three-valued streaming verdict.
type Status uint8

const (
	// SatSoFar: every check run so far passed. For incremental engines
	// the full prefix is known linearizable; Verdict.Unchecked counts
	// events a cadence-based engine has not yet incorporated.
	SatSoFar Status = iota
	// Violation: the prefix through Verdict.AtEvent is not linearizable.
	// Sticky and final: prefix closure makes every extension bad.
	Violation
	// Degraded: the checker can no longer decide (window exceeded,
	// unambiguous fragment left after the fallback buffer was shed, or
	// cancellation). Events are still counted, but the verdict is
	// permanently Unknown unless a violation is found by another object's
	// engine.
	Degraded
)

// String returns the status's wire spelling (used in calgo.stream/v1
// verdict frames).
func (s Status) String() string {
	switch s {
	case Violation:
		return "violation"
	case Degraded:
		return "unknown-degraded"
	default:
		return "sat-so-far"
	}
}

// Verdict is a point-in-time streaming verdict snapshot.
type Verdict struct {
	// Status is the three-valued verdict.
	Status Status `json:"-"`
	// AtEvent is the stream index of the event that made the prefix
	// non-linearizable (-1 unless Status == Violation). For incremental
	// engines it is exact; cadence-based engines report the re-check
	// boundary at which the violation was detected.
	AtEvent int64 `json:"at_event"`
	// Reason explains a Violation (the bad pattern or witness-search
	// failure) or a Degraded state (what capacity was exceeded).
	Reason string `json:"reason,omitempty"`
	// Events fed so far; Ops completed; Pending invocations open.
	Events  int64 `json:"events"`
	Ops     int64 `json:"ops"`
	Pending int   `json:"pending"`
	// Unchecked counts events not yet incorporated into an exact verdict
	// (cadence-based engines between re-checks). Zero means Sat-so-far
	// is exact for the whole prefix.
	Unchecked int64 `json:"unchecked"`
	// Shed counts records and buffered events discarded to bound memory;
	// Resident is the current retained-record footprint and HighWater its
	// maximum so far.
	Shed      int64 `json:"shed"`
	Resident  int64 `json:"resident"`
	HighWater int64 `json:"high_water"`
	// Engine names the decision path: "monitor:queue", "dfs", or "mixed"
	// for multi-object streams with differing engines.
	Engine string `json:"engine"`
	// Final is set by Close: end-of-stream checks have run and the
	// verdict will not change.
	Final bool `json:"final"`
}

// String renders the verdict in the streaming vocabulary:
// "Sat-so-far", "VIOLATION-at-event-k" or "Unknown-degraded".
func (v Verdict) String() string {
	switch v.Status {
	case Violation:
		return fmt.Sprintf("VIOLATION-at-event-%d: %s", v.AtEvent, v.Reason)
	case Degraded:
		return "Unknown-degraded: " + v.Reason
	default:
		if v.Final {
			return fmt.Sprintf("Sat (%d events, %d ops)", v.Events, v.Ops)
		}
		return fmt.Sprintf("Sat-so-far (%d events, %d ops, %d pending)", v.Events, v.Ops, v.Pending)
	}
}

// MarshalJSON emits the verdict with its wire status and display string,
// the payload of a calgo.stream/v1 verdict frame.
func (v Verdict) MarshalJSON() ([]byte, error) {
	type alias Verdict
	return json.Marshal(struct {
		Status  string `json:"status"`
		Display string `json:"display"`
		alias
	}{Status: v.Status.String(), Display: v.String(), alias: alias(v)})
}

// ErrClosed is returned by Feed after Close.
var ErrClosed = errors.New("stream: closed")

// Engine selects the per-object decision path. Unlike the batch
// checker's check.Engine (whose zero value is the exhaustive DFS), the
// zero value here is EngineAuto: streaming exists for the incremental
// fast path, so it is the only sensible default.
type Engine uint8

const (
	// EngineAuto (the zero value) routes monitored element-size-1 specs
	// through incremental steppers and falls back to windowed DFS
	// re-checking when a stream leaves the unambiguous fragment.
	EngineAuto Engine = iota
	// EngineDFS forces windowed DFS re-checking for every object.
	EngineDFS
	// EngineMonitor forces steppers and degrades instead of falling
	// back; New errors for specs without a monitor at element size 1.
	EngineMonitor
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineDFS:
		return "dfs"
	case EngineMonitor:
		return "monitor"
	default:
		return "auto"
	}
}

// ParseEngine parses a -stream-engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "dfs":
		return EngineDFS, nil
	case "monitor":
		return EngineMonitor, nil
	default:
		return EngineAuto, fmt.Errorf("stream: unknown engine %q (want auto, dfs or monitor)", s)
	}
}

// Config configures a Stream. The zero value is usable: engine auto,
// default window and cadence, no metrics.
type Config struct {
	// Window bounds the events buffered per object for DFS (re-)checking
	// and for falling back from a monitor that leaves its fragment
	// mid-stream. Default 65536.
	Window int
	// CheckEvery is the DFS re-check cadence in buffered events, and the
	// replay steppers' re-check cadence in completed operations. Default
	// 4096.
	CheckEvery int
	// Engine selects the per-object decision path; see the Engine
	// constants. The zero value is EngineAuto.
	Engine Engine
	// CheckOptions configure the embedded fallback Checker (state bounds,
	// memo budget, tracers, metrics). Engine selection is owned by
	// Config.Engine and must not appear here.
	CheckOptions []check.Option
	// Metrics, when set, registers the stream gauges and counters
	// (stream.events, stream.shed, stream.checks, stream.violations,
	// stream.degraded, stream.resident, stream.resident_hwm).
	Metrics *obs.Metrics
	// Context parents the stream's internal context; cancelling it
	// degrades in-flight and future DFS re-checks. Nil means Background.
	Context context.Context
}

// DefaultWindow and DefaultCheckEvery are the Config defaults.
const (
	DefaultWindow     = 65536
	DefaultCheckEvery = 4096
)

// Stream is an online checker: feed events as they are observed, poll
// Verdict at any time, Close to run end-of-stream checks. All methods
// are safe for concurrent use; events must be fed in observation order.
type Stream struct {
	mu     sync.Mutex
	sp     spec.Spec
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	engines map[history.ObjectID]*objEngine
	order   []history.ObjectID // engine iteration order (stable)
	anyObj  bool               // single engine accepts every object

	pend   map[history.ThreadID]threadPend
	events int64
	ops    int64
	closed bool

	status   Status
	atEvent  int64
	reason   string
	shedBufs int64 // total sheds: engine buffers + synced stepper-internal sheds

	lastResident int64
	highWater    int64

	mEvents, mShed, mChecks, mViol, mDegraded *obs.Counter
	mResident, mHWM                           *obs.Gauge
}

type threadPend struct {
	obj    history.ObjectID
	method history.Method
}

// New builds a Stream deciding sp online. Product specifications are
// demultiplexed into one engine per component object; events on objects
// the specification does not constrain are Feed errors.
func New(sp spec.Spec, cfg Config) (*Stream, error) {
	if sp == nil {
		return nil, errors.New("stream: nil specification")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = DefaultCheckEvery
	}
	if cfg.CheckEvery > cfg.Window {
		cfg.CheckEvery = cfg.Window
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	s := &Stream{
		sp:      sp,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		engines: make(map[history.ObjectID]*objEngine),
		pend:    make(map[history.ThreadID]threadPend),
		atEvent: -1,
	}
	if m := cfg.Metrics; m != nil {
		s.mEvents = m.Counter("stream.events")
		s.mShed = m.Counter("stream.shed")
		s.mChecks = m.Counter("stream.checks")
		s.mViol = m.Counter("stream.violations")
		s.mDegraded = m.Counter("stream.degraded")
		s.mResident = m.Gauge("stream.resident")
		s.mHWM = m.Gauge("stream.resident_hwm")
	}
	var comps []spec.Spec
	if p, ok := sp.(*spec.Product); ok {
		comps = p.Components()
	} else {
		comps = []spec.Spec{sp}
		s.anyObj = sp.Object() == ""
	}
	for _, comp := range comps {
		eng, err := newObjEngine(comp, &cfg)
		if err != nil {
			cancel()
			return nil, err
		}
		s.engines[comp.Object()] = eng
		s.order = append(s.order, comp.Object())
	}
	return s, nil
}

func (s *Stream) engineFor(obj history.ObjectID) *objEngine {
	if s.anyObj {
		return s.engines[s.sp.Object()]
	}
	return s.engines[obj]
}

// Feed ingests one event. It returns an error only for transport-level
// problems — a closed stream, an ill-formed event (response without a
// matching invocation, invocation while one is pending on the same
// thread) or an object outside the specification; such events are
// rejected without advancing the stream. Verdict-level outcomes
// (violations, degradation) are reported by Verdict, never as errors.
func (s *Stream) Feed(ev history.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	eng := s.engineFor(ev.Object)
	if eng == nil {
		return fmt.Errorf("stream: event %d touches object %s, which the specification does not constrain", s.events, ev.Object)
	}
	idx := s.events
	switch ev.Kind {
	case history.Invoke:
		if p, dup := s.pend[ev.Thread]; dup {
			return fmt.Errorf("stream: ill-formed event %d: thread %s invokes %s/%s while %s/%s is pending",
				idx, ev.Thread, ev.Object, ev.Method, p.obj, p.method)
		}
		s.pend[ev.Thread] = threadPend{obj: ev.Object, method: ev.Method}
	case history.Respond:
		p, ok := s.pend[ev.Thread]
		if !ok || p.obj != ev.Object || p.method != ev.Method {
			return fmt.Errorf("stream: ill-formed event %d: response %s/%s on thread %s does not match a pending invocation",
				idx, ev.Object, ev.Method, ev.Thread)
		}
		delete(s.pend, ev.Thread)
		s.ops++
	default:
		return fmt.Errorf("stream: ill-formed event %d: unknown event kind %d", idx, ev.Kind)
	}
	s.events++
	if s.mEvents != nil {
		s.mEvents.Inc()
	}
	if s.status != Violation {
		eng.feed(s, ev, idx)
	}
	if idx&1023 == 0 {
		s.updateGauges()
	}
	return nil
}

// FeedAll feeds a batch of events in order, stopping at the first
// transport error.
func (s *Stream) FeedAll(h history.History) error {
	for _, ev := range h {
		if err := s.Feed(ev); err != nil {
			return err
		}
	}
	return nil
}

// Verdict snapshots the current streaming verdict.
func (s *Stream) Verdict() Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot()
}

// Close runs the end-of-stream checks (queue Q3/Q4 residue, a final
// batch re-check for cadence engines), releases buffered state and
// returns the final verdict. Further Feeds return ErrClosed; Close is
// idempotent.
func (s *Stream) Close() Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		if s.status != Violation {
			for _, obj := range s.order {
				s.engines[obj].finish(s)
				if s.status == Violation {
					break
				}
			}
		}
		s.cancel()
		s.updateGauges()
		if s.mResident != nil {
			s.mResident.Add(-s.lastResident)
			s.lastResident = 0
		}
	}
	v := s.snapshot()
	v.Final = true
	return v
}

// Cancel aborts in-flight and future DFS re-checks, degrading the
// verdict instead of blocking; Feed keeps counting events. Use it to
// bound Close latency when abandoning a stream.
func (s *Stream) Cancel() { s.cancel() }

// violate records a sticky violation.
func (s *Stream) violate(at int64, reason string) {
	if s.status == Violation {
		return
	}
	s.status = Violation
	s.atEvent = at
	s.reason = reason
	if s.mViol != nil {
		s.mViol.Inc()
	}
}

// degrade records honest degradation; violations (even later ones from
// other objects' engines) take precedence.
func (s *Stream) degrade(reason string) {
	if s.status != SatSoFar {
		return
	}
	s.status = Degraded
	s.reason = reason
	if s.mDegraded != nil {
		s.mDegraded.Inc()
	}
}

func (s *Stream) shedBuffered(n int64) {
	s.shedBufs += n
	if s.mShed != nil {
		s.mShed.Add(n)
	}
}

func (s *Stream) resident() int64 {
	r := int64(len(s.pend))
	for _, obj := range s.order {
		r += s.engines[obj].resident()
	}
	return r
}

func (s *Stream) updateGauges() {
	for _, obj := range s.order {
		s.engines[obj].syncShed(s)
	}
	r := s.resident()
	if r > s.highWater {
		s.highWater = r
	}
	if s.mResident != nil {
		s.mResident.Add(r - s.lastResident)
		s.lastResident = r
		s.mHWM.SetMax(s.highWater)
	}
}

func (s *Stream) snapshot() Verdict {
	for _, obj := range s.order {
		s.engines[obj].syncShed(s)
	}
	v := Verdict{
		Status:    s.status,
		AtEvent:   s.atEvent,
		Reason:    s.reason,
		Events:    s.events,
		Ops:       s.ops,
		Pending:   len(s.pend),
		Shed:      s.shedBufs,
		Resident:  s.resident(),
		HighWater: s.highWater,
		Final:     s.closed,
	}
	if v.Resident > v.HighWater {
		v.HighWater = v.Resident
	}
	for i, obj := range s.order {
		eng := s.engines[obj]
		st := eng.stats()
		v.Unchecked += int64(st.Unchecked) + int64(eng.sinceCheck)
		label := eng.label()
		if i == 0 {
			v.Engine = label
		} else if v.Engine != label {
			v.Engine = "mixed"
		}
	}
	return v
}
