package model_test

import (
	"context"
	"testing"

	"calgo/internal/model"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

func exploreSQ(t *testing.T, cfg model.SQConfig) sched.Stats {
	t.Helper()
	init := model.NewSyncQueue(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewSyncQueue(init.Object()), nil, true)))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestSyncQueueModelPutTake(t *testing.T) {
	stats := exploreSQ(t, model.SQConfig{Programs: [][]model.SQOp{
		{model.Put(42)},
		{model.Take()},
	}})
	t.Logf("put||take: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestSyncQueueModelThreeWay(t *testing.T) {
	stats := exploreSQ(t, model.SQConfig{Programs: [][]model.SQOp{
		{model.Put(1)},
		{model.Put(2)},
		{model.Take()},
	}})
	t.Logf("put||put||take: %+v", stats)
}

func TestSyncQueueModelRepeated(t *testing.T) {
	stats := exploreSQ(t, model.SQConfig{Programs: [][]model.SQOp{
		{model.Put(1), model.Put(2)},
		{model.Take(), model.Take()},
	}})
	t.Logf("2x(put)||2x(take): %+v", stats)
}

// TestSyncQueueModelOutcomes: both hand-off and all-fail executions occur,
// and a put can never succeed alone.
func TestSyncQueueModelOutcomes(t *testing.T) {
	init := model.NewSyncQueue(model.SQConfig{Programs: [][]model.SQOp{
		{model.Put(42)},
		{model.Take()},
	}})
	handOffs, allFail := 0, 0
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.SQState)
			saw := false
			for _, el := range s.Trace {
				if el.Size() == 2 {
					saw = true
				}
			}
			if saw {
				handOffs++
			} else {
				allFail++
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if handOffs == 0 {
		t.Error("no execution performed a hand-off")
	}
	if allFail == 0 {
		t.Error("no execution failed both attempts")
	}
	t.Logf("terminals: %d hand-off, %d all-fail", handOffs, allFail)
}

// TestSyncQueueModelSameKindNeverPair: two puts can never hand off to each
// other (the asymmetric protocol's kind check).
func TestSyncQueueModelSameKindNeverPair(t *testing.T) {
	init := model.NewSyncQueue(model.SQConfig{Programs: [][]model.SQOp{
		{model.Put(1)},
		{model.Put(2)},
	}})
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.SQState)
			for _, el := range s.Trace {
				if el.Size() == 2 {
					t.Fatalf("two puts paired: %s", el)
				}
			}
			return model.VerifyCAL(spec.NewSyncQueue("SQ"), nil, true)(st)
		}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyncQueueModelAccessors(t *testing.T) {
	init := model.NewSyncQueue(model.SQConfig{})
	if init.Object() != "SQ" || !init.Done() {
		t.Error("defaults wrong")
	}
	two := model.NewSyncQueue(model.SQConfig{Object: "X", Programs: [][]model.SQOp{{model.Put(1)}}})
	if two.Object() != "X" || two.Done() {
		t.Error("custom config wrong")
	}
	if len(two.Successors()) != 1 {
		t.Error("single thread should have one initial step")
	}
}
