package model_test

import (
	"context"
	"testing"

	"calgo/internal/model"
	"calgo/internal/rg"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

func exploreDS(t *testing.T, cfg model.DSConfig, maxStates int) sched.Stats {
	t.Helper()
	init := model.NewDualStack(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewDualStack(init.Object()), nil, true)),
		sched.WithDeadlockAllowed(),
		sched.WithMaxStates(maxStates))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestDualStackModelPushPop(t *testing.T) {
	stats := exploreDS(t, model.DSConfig{Programs: [][]model.StackOp{
		{model.Push(7)},
		{model.Pop()},
	}}, 2_000_000)
	t.Logf("push||pop: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestDualStackModelTwoPushersOnePopper(t *testing.T) {
	stats := exploreDS(t, model.DSConfig{Programs: [][]model.StackOp{
		{model.Push(1)},
		{model.Push(2)},
		{model.Pop()},
	}}, 4_000_000)
	t.Logf("2 push || pop: %+v", stats)
}

func TestDualStackModelTwoPoppers(t *testing.T) {
	stats := exploreDS(t, model.DSConfig{Programs: [][]model.StackOp{
		{model.Pop()},
		{model.Pop()},
		{model.Push(9)},
	}}, 4_000_000)
	t.Logf("2 pop || push: %+v", stats)
}

func TestDualStackModelRepeatedOps(t *testing.T) {
	stats := exploreDS(t, model.DSConfig{Programs: [][]model.StackOp{
		{model.Push(1), model.Pop()},
		{model.Pop(), model.Push(2)},
	}}, 4_000_000)
	t.Logf("mixed 2x2: %+v", stats)
}

// TestDualStackModelOutcomeCoverage: fulfilments, cancellations and
// ordinary pops all occur across the interleavings.
func TestDualStackModelOutcomeCoverage(t *testing.T) {
	init := model.NewDualStack(model.DSConfig{Programs: [][]model.StackOp{
		{model.Push(7)},
		{model.Pop()},
	}})
	fulfilments, cancels, ordinary := 0, 0, 0
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithDeadlockAllowed(),
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.DSState)
			for _, el := range s.Trace {
				switch {
				case el.Size() == 2:
					fulfilments++
				case el.Ops[0].Method == spec.MethodPop && !el.Ops[0].Ret.B:
					cancels++
				case el.Ops[0].Method == spec.MethodPop:
					ordinary++
				}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if fulfilments == 0 {
		t.Error("no execution fulfilled a waiting pop")
	}
	if cancels == 0 {
		t.Error("no execution cancelled a reservation")
	}
	if ordinary == 0 {
		t.Error("no execution popped an ordinary data node")
	}
	t.Logf("outcomes: %d fulfilments, %d cancellations, %d ordinary pops", fulfilments, cancels, ordinary)
}

func TestDualStackModelDefaults(t *testing.T) {
	s := model.NewDualStack(model.DSConfig{})
	if s.Object() != "DS" || !s.Done() {
		t.Error("defaults wrong")
	}
	if len(s.History()) != 0 || len(s.AuxTrace()) != 0 {
		t.Error("initial state not empty")
	}
}

// TestExchangerModelFourThreads is the deepest exploration in the suite
// (≈2.5M states); skipped in -short mode.
func TestExchangerModelFourThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("2.5M-state exploration skipped in -short mode")
	}
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{1}, {2}, {3}, {4}}})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithInvariant(func(st sched.State) error {
			if err := model.InvariantJ(st); err != nil {
				return err
			}
			return model.ProofOutline(st)
		}),
		sched.WithTransition(rg.Hook(true)),
		sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)),
		sched.WithMaxStates(3_000_000))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	t.Logf("4 threads x 1 op: %+v", stats)
	if stats.States < 2_000_000 {
		t.Errorf("expected ≥2M states, explored %d", stats.States)
	}
}
