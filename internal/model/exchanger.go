// Package model encodes the paper's algorithms as fine-grained atomic step
// machines for exhaustive exploration by calgo/internal/sched. Each model
// mirrors the published pseudocode line by line: every shared-memory read,
// CAS and auxiliary-trace assignment is one atomic step, and the recorded
// history and auxiliary CA-trace are part of the explored state. Together
// with the rely/guarantee checks in calgo/internal/rg and the proof-outline
// assertions implemented here, exploring a model discharges the §5 proof
// obligations on a bounded universe.
package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Hole pointer encodings for modelled offers.
const (
	HoleNull = -1 // hole == null
	HoleFail = -2 // hole == fail sentinel
)

// Offer is a modelled Offer object: the allocating thread (the auxiliary
// tid field of §5), the offered datum, and the hole pointer (an offer
// index, HoleNull or HoleFail).
type Offer struct {
	Tid  history.ThreadID
	Data int64
	Hole int
}

// Program counters of the exchanger step machine, mirroring Figure 1.
const (
	pcIdle    = iota // between operations; next step emits inv + alloc
	pcInit           // line 15: CAS(g, null, n)
	pcPass           // line 18: CAS(n.hole, null, fail) after the wait
	pcReadG          // line 25: cur = g (branching on null)
	pcXchg           // line 29: s = CAS(cur.hole, null, n)
	pcClean          // line 31: CAS(g, cur, null)
	pcLogFail        // line 35: h := h · fail (the FAIL action)
	pcRet            // return: emit the response action
	pcDone           // program finished
)

// ExchangerConfig describes a bounded client program over one exchanger.
type ExchangerConfig struct {
	// Object is the exchanger's object id (default "E").
	Object history.ObjectID
	// Programs[t] lists the values thread t+1 exchanges, in order.
	Programs [][]int64
	// Bug optionally injects a known defect, used to demonstrate that the
	// exploration catches real errors:
	//
	//	"drop-pass-log"    — PASS withdraws the offer without logging the
	//	                     failed operation (breaks the postcondition and
	//	                     the terminal CAL check);
	//	"wrong-swap-values" — XCHG logs the swap with the values not
	//	                     crossing (breaks assertion B and the spec);
	//	"late-swap-log"    — XCHG performs the CAS but logs the swap only
	//	                     at the active thread's return, breaking the
	//	                     atomicity of the instrumented action (breaks
	//	                     rely/guarantee justification).
	Bug string
}

type exchThread struct {
	pc      int
	op      int // index into the thread's program
	n       int // own offer index, -1 none
	cur     int // read offer index, -1 none
	s       bool
	retOK   bool
	retV    int64
	viewLen int  // |T_E|tid| at operation start (the logical variable T)
	lateLog bool // "late-swap-log" bug: swap logging deferred to return
}

// ExchangerState is one state of the exchanger model. It is exported so
// the rg package and tests can inspect it; treat it as immutable.
type ExchangerState struct {
	cfg     *ExchangerConfig
	Threads []exchThread
	Offers  []Offer
	G       int // offer index installed in g, or -1
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*ExchangerState)(nil)

// NewExchanger returns the initial state of the exchanger model.
func NewExchanger(cfg ExchangerConfig) *ExchangerState {
	if cfg.Object == "" {
		cfg.Object = "E"
	}
	st := &ExchangerState{cfg: &cfg, G: -1}
	for range cfg.Programs {
		st.Threads = append(st.Threads, exchThread{pc: pcIdle, n: -1, cur: -1})
	}
	return st
}

// Object returns the modelled exchanger's object id.
func (s *ExchangerState) Object() history.ObjectID { return s.cfg.Object }

// History returns the interface history produced so far.
func (s *ExchangerState) History() history.History { return s.Hist }

// AuxTrace returns the recorded auxiliary CA-trace 𝒯.
func (s *ExchangerState) AuxTrace() trace.Trace { return s.Trace }

// tid maps a thread index to its ThreadID (1-based).
func tid(t int) history.ThreadID { return history.ThreadID(t + 1) }

// arg returns the value thread t's current operation exchanges.
func (s *ExchangerState) arg(t int) int64 {
	return s.cfg.Programs[t][s.Threads[t].op]
}

// Key implements sched.State.
func (s *ExchangerState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%t.%t.%d.%t|", th.pc, th.op, th.n, th.cur, th.s, th.retOK, th.retV, th.lateLog)
	}
	b.WriteByte('g')
	b.WriteString(strconv.Itoa(s.G))
	for _, o := range s.Offers {
		fmt.Fprintf(&b, ";%d.%d.%d", o.Tid, o.Data, o.Hole)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *ExchangerState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != pcDone {
			return false
		}
	}
	return true
}

// clone returns a deep copy ready for mutation.
func (s *ExchangerState) clone() *ExchangerState {
	c := &ExchangerState{
		cfg:     s.cfg,
		Threads: append([]exchThread(nil), s.Threads...),
		Offers:  append([]Offer(nil), s.Offers...),
		G:       s.G,
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
	return c
}

// viewLen counts the CA-elements of 𝒯 mentioning thread id — |T_E|tid|.
func (s *ExchangerState) viewLenOf(id history.ThreadID) int {
	n := 0
	for _, el := range s.Trace {
		if el.Mentions(id) {
			n++
		}
	}
	return n
}

// Successors implements sched.State.
func (s *ExchangerState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

// step computes thread t's single atomic step from this state.
func (s *ExchangerState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	id := tid(t)
	obj := s.cfg.Object
	mk := func(label string, next *ExchangerState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case pcIdle:
		// inv: record the invocation and allocate the offer (lines 12-13).
		v := s.arg(t)
		c := s.clone()
		c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodExchange, history.Int(v)))
		c.Offers = append(c.Offers, Offer{Tid: id, Data: v, Hole: HoleNull})
		nt := &c.Threads[t]
		nt.n = len(c.Offers) - 1
		nt.cur = -1
		nt.s = false
		nt.viewLen = c.viewLenOf(id)
		nt.pc = pcInit
		return mk("inv", c)
	case pcInit:
		// line 15: CAS(g, null, n).
		c := s.clone()
		if s.G == -1 {
			c.G = th.n
			c.Threads[t].pc = pcPass // wait window ends whenever scheduled
			return mk("INIT", c)
		}
		c.Threads[t].pc = pcReadG
		return mk("init-miss", c)
	case pcPass:
		// line 18: CAS(n.hole, null, fail).
		c := s.clone()
		if s.Offers[th.n].Hole == HoleNull {
			c.Offers[th.n].Hole = HoleFail
			if s.cfg.Bug != "drop-pass-log" {
				c.Trace = append(c.Trace, spec.FailElement(obj, id, s.Offers[th.n].Data))
			}
			nt := &c.Threads[t]
			nt.retOK, nt.retV = false, s.Offers[th.n].Data
			nt.pc = pcRet
			return mk("PASS", c)
		}
		// A partner filled our hole: it logged the swap at its XCHG.
		partner := s.Offers[th.n].Hole
		nt := &c.Threads[t]
		nt.retOK, nt.retV = true, s.Offers[partner].Data
		nt.pc = pcRet
		return mk("matched", c)
	case pcReadG:
		// lines 25-27: cur = g; branch on null.
		c := s.clone()
		nt := &c.Threads[t]
		nt.cur = s.G
		if s.G == -1 {
			nt.pc = pcLogFail
		} else {
			nt.pc = pcXchg
		}
		return mk("read-g", c)
	case pcXchg:
		// line 29: s = CAS(cur.hole, null, n).
		c := s.clone()
		nt := &c.Threads[t]
		if s.Offers[th.cur].Hole == HoleNull {
			c.Offers[th.cur].Hole = th.n
			partner := s.Offers[th.cur]
			switch s.cfg.Bug {
			case "wrong-swap-values":
				// Defect: the logged swap's values do not cross.
				c.Trace = append(c.Trace, spec.SwapElement(obj, partner.Tid, s.arg(t), id, partner.Data))
			case "late-swap-log":
				// Defect: the auxiliary assignment is deferred to the
				// return, breaking the atomicity of the XCHG action.
				nt.lateLog = true
			default:
				c.Trace = append(c.Trace, spec.SwapElement(obj, partner.Tid, partner.Data, id, s.arg(t)))
			}
			nt.s = true
			nt.pc = pcClean
			return mk("XCHG", c)
		}
		nt.s = false
		nt.pc = pcClean
		return mk("xchg-miss", c)
	case pcClean:
		// line 31: CAS(g, cur, null) — unconditional cleanup.
		c := s.clone()
		label := "clean-miss"
		if s.G == th.cur {
			c.G = -1
			label = "CLEAN"
		}
		nt := &c.Threads[t]
		if th.s {
			nt.retOK, nt.retV = true, s.Offers[th.cur].Data
			nt.pc = pcRet
		} else {
			nt.pc = pcLogFail
		}
		return mk(label, c)
	case pcLogFail:
		// line 35: h := h · (E.{(tid, ex(v) ▷ false, v)}) — the FAIL action.
		c := s.clone()
		v := s.arg(t)
		c.Trace = append(c.Trace, spec.FailElement(obj, id, v))
		nt := &c.Threads[t]
		nt.retOK, nt.retV = false, v
		nt.pc = pcRet
		return mk("FAIL", c)
	case pcRet:
		// Emit the response action and move to the next operation.
		c := s.clone()
		nt := &c.Threads[t]
		if th.lateLog && th.cur >= 0 {
			partner := s.Offers[th.cur]
			c.Trace = append(c.Trace, spec.SwapElement(obj, partner.Tid, partner.Data, id, s.arg(t)))
			nt.lateLog = false
		}
		c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodExchange, history.Pair(th.retOK, th.retV)))
		nt.op++
		nt.n, nt.cur, nt.s = -1, -1, false
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = pcIdle
		} else {
			nt.pc = pcDone
		}
		return mk("res", c)
	default: // pcDone
		return sched.Succ{}, false
	}
}
