package model_test

import (
	"context"
	"errors"
	"testing"

	"calgo/internal/model"

	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

func exploreStack(t *testing.T, cfg model.StackConfig) sched.Stats {
	t.Helper()
	init := model.NewStack(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewCentralStack(init.Object()), nil, true)))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestStackModelTwoPushers(t *testing.T) {
	stats := exploreStack(t, model.StackConfig{Programs: [][]model.StackOp{
		{model.Push(1)},
		{model.Push(2)},
	}})
	t.Logf("2 pushers: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestStackModelPushPop(t *testing.T) {
	stats := exploreStack(t, model.StackConfig{Programs: [][]model.StackOp{
		{model.Push(1), model.Pop()},
		{model.Push(2), model.Pop()},
	}})
	t.Logf("push+pop x2: %+v", stats)
}

func TestStackModelPopEmpty(t *testing.T) {
	stats := exploreStack(t, model.StackConfig{Programs: [][]model.StackOp{
		{model.Pop()},
		{model.Push(5)},
		{model.Pop()},
	}})
	t.Logf("racing pops over one push: %+v", stats)
}

// TestStackModelContentionObserved checks that the model actually produces
// contended (failed) one-shot operations in some interleaving — the
// behaviour that motivates the elimination layer.
func TestStackModelContentionObserved(t *testing.T) {
	init := model.NewStack(model.StackConfig{Programs: [][]model.StackOp{
		{model.Push(1)},
		{model.Push(2)},
	}})
	misses := 0
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.StackState)
			for _, el := range s.Trace {
				op := el.Ops[0]
				if op.Method == spec.MethodPush && !op.Ret.B {
					misses++
				}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if misses == 0 {
		t.Error("no interleaving produced a contended push")
	}
	t.Logf("contended pushes across terminals: %d", misses)
}

func exploreES(t *testing.T, cfg model.ESConfig, maxStates int) sched.Stats {
	t.Helper()
	init := model.NewElimStack(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewStack(init.Object()), init.Project, true)),
		sched.WithDeadlockAllowed(),
		sched.WithMaxStates(maxStates))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestElimStackModelPushPopPair(t *testing.T) {
	stats := exploreES(t, model.ESConfig{
		Slots:   1,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(7)},
			{model.Pop()},
		},
	}, 2_000_000)
	t.Logf("push||pop, K=1, R=2: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestElimStackModelTwoPushersOnePopper(t *testing.T) {
	stats := exploreES(t, model.ESConfig{
		Slots:   1,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(1)},
			{model.Push(2)},
			{model.Pop()},
		},
	}, 4_000_000)
	t.Logf("2 push || pop, K=1, R=2: %+v", stats)
}

func TestElimStackModelTwoSlots(t *testing.T) {
	stats := exploreES(t, model.ESConfig{
		Slots:   2,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(7)},
			{model.Pop()},
		},
	}, 2_000_000)
	t.Logf("push||pop, K=2, R=2: %+v", stats)
}

// TestElimStackEliminationObserved verifies that some interleaving really
// eliminates a push/pop pair through the exchanger (the derived trace
// contains operations although the central stack logged no successes).
func TestElimStackEliminationObserved(t *testing.T) {
	// A lone pusher can never fail its central CAS (nothing else mutates
	// top before its push), so elimination needs a second pusher to
	// create contention: t1 reads top, t2 pushes, t1's CAS misses, t1
	// eliminates against the popper waiting in the array.
	init := model.NewElimStack(model.ESConfig{
		Slots:   1,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(7)},
			{model.Push(8)},
			{model.Pop()},
		},
	})
	eliminations := 0
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithDeadlockAllowed(),
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.ESState)
			for _, el := range s.Trace {
				if el.Size() == 2 {
					a, b := el.Ops[0], el.Ops[1]
					sentinel := int64(1 << 60)
					if (a.Arg.N == sentinel) != (b.Arg.N == sentinel) {
						eliminations++
					}
				}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if eliminations == 0 {
		t.Error("no interleaving eliminated the pair through the exchanger")
	}
	t.Logf("eliminating terminals: %d", eliminations)
}

// TestElimStackBoundedRetryHalts checks that the retry bound actually cuts
// some executions off (halted, non-Done terminals) and that those
// executions still pass the CAL obligations via completion-by-removal.
func TestElimStackBoundedRetryHalts(t *testing.T) {
	init := model.NewElimStack(model.ESConfig{
		Slots:   1,
		Retries: 1,
		Programs: [][]model.StackOp{
			{model.Pop()}, // lone popper on an empty stack must halt
		},
	})
	halted := 0
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithDeadlockAllowed(),
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.ESState)
			if !s.Done() {
				halted++
			}
			return model.VerifyCAL(spec.NewStack(s.Object()), s.Project, true)(st)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if halted == 0 {
		t.Error("lone popper should halt at the retry bound")
	}
	t.Logf("halted terminals: %d of %d", halted, stats.Terminals)
}

func TestStackModelDefaults(t *testing.T) {
	s := model.NewStack(model.StackConfig{})
	if s.Object() != "S" || !s.Done() {
		t.Error("empty stack model defaults wrong")
	}
	es := model.NewElimStack(model.ESConfig{})
	if es.Object() != "ES" || !es.Done() {
		t.Error("empty ES model defaults wrong")
	}
	if len(es.History()) != 0 || len(es.AuxTrace()) != 0 {
		t.Error("initial ES model not empty")
	}
}

// TestESProjectShapes unit-tests the projection on crafted raw traces.
func TestESProjectShapes(t *testing.T) {
	es := model.NewElimStack(model.ESConfig{Programs: nil, Sentinel: 99})
	raw := trace.Trace{
		spec.PushElement("ES.S", 1, 5, true),
		spec.PushElement("ES.S", 2, 6, false),
		spec.PopElement("ES.S", 3, true, 5),
		spec.PopElement("ES.S", 3, false, 0),
		spec.SwapElement("ES.AR.E[0]", 4, 8, 5, 99),
		spec.SwapElement("ES.AR.E[0]", 6, 99, 7, 99),
		spec.FailElement("ES.AR.E[0]", 8, 3),
	}
	got := es.Project(raw)
	want := trace.Trace{
		spec.PushElement("ES", 1, 5, true),
		spec.PopElement("ES", 3, true, 5),
		spec.PushElement("ES", 4, 8, true),
		spec.PopElement("ES", 5, true, 8),
	}
	if !got.Equal(want) {
		t.Errorf("Project = %s\nwant %s", got, want)
	}
}

func TestExploreMaxStates(t *testing.T) {
	init := model.NewElimStack(model.ESConfig{
		Slots:   2,
		Retries: 3,
		Programs: [][]model.StackOp{
			{model.Push(1)}, {model.Pop()}, {model.Push(2)},
		},
	})
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithMaxStates(100),
		sched.WithDeadlockAllowed())
	if !errors.Is(err, sched.ErrMaxStates) {
		t.Errorf("err = %v, want ErrMaxStates", err)
	}
}
