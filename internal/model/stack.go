package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Cell is a modelled stack cell.
type Cell struct {
	Data int64
	Next int // cell index or -1
}

// StackOp is one operation of a client program over the central stack.
type StackOp struct {
	// IsPush selects push(V); otherwise the op is pop().
	IsPush bool
	V      int64
}

// Push builds a push operation.
func Push(v int64) StackOp { return StackOp{IsPush: true, V: v} }

// Pop builds a pop operation.
func Pop() StackOp { return StackOp{} }

// StackConfig describes a bounded client program over the one-shot central
// stack of Figure 2.
type StackConfig struct {
	// Object is the stack's object id (default "S").
	Object history.ObjectID
	// Programs[t] lists the operations of thread t+1, in order.
	Programs [][]StackOp
}

// Program counters of the central-stack step machine.
const (
	spcIdle     = iota // next step emits inv
	spcPushRead        // line 11: h = top (and allocate the cell)
	spcPushCAS         // line 13: CAS(&top, h, n)
	spcPopRead         // lines 16-18: h = top; empty check
	spcPopCAS          // line 20: CAS(&top, h, n)
	spcRet             // emit the response action
	spcDone
)

type stackThread struct {
	pc    int
	op    int
	h     int // read top snapshot (cell index or -1)
	n     int // allocated cell index (push)
	retOK bool
	retV  int64
}

// StackState is one state of the central-stack model.
type StackState struct {
	cfg     *StackConfig
	Threads []stackThread
	Cells   []Cell
	Top     int
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*StackState)(nil)

// NewStack returns the initial state of the central-stack model.
func NewStack(cfg StackConfig) *StackState {
	if cfg.Object == "" {
		cfg.Object = "S"
	}
	st := &StackState{cfg: &cfg, Top: -1}
	for range cfg.Programs {
		st.Threads = append(st.Threads, stackThread{pc: spcIdle, h: -1, n: -1})
	}
	return st
}

// Object returns the modelled stack's object id.
func (s *StackState) Object() history.ObjectID { return s.cfg.Object }

// History implements HT.
func (s *StackState) History() history.History { return s.Hist }

// AuxTrace implements HT.
func (s *StackState) AuxTrace() trace.Trace { return s.Trace }

// Key implements sched.State.
func (s *StackState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%t.%d|", th.pc, th.op, th.h, th.n, th.retOK, th.retV)
	}
	b.WriteString("top")
	b.WriteString(strconv.Itoa(s.Top))
	for _, c := range s.Cells {
		fmt.Fprintf(&b, ";%d.%d", c.Data, c.Next)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *StackState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != spcDone {
			return false
		}
	}
	return true
}

func (s *StackState) clone() *StackState {
	return &StackState{
		cfg:     s.cfg,
		Threads: append([]stackThread(nil), s.Threads...),
		Cells:   append([]Cell(nil), s.Cells...),
		Top:     s.Top,
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

// Successors implements sched.State.
func (s *StackState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

func (s *StackState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	id := tid(t)
	obj := s.cfg.Object
	mk := func(label string, next *StackState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case spcIdle:
		op := s.cfg.Programs[t][th.op]
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsPush {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodPush, history.Int(op.V)))
			nt.pc = spcPushRead
		} else {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodPop, history.Unit()))
			nt.pc = spcPopRead
		}
		return mk("inv", c)
	case spcPushRead:
		// h = top; n = new Cell(data, h). The allocation touches only
		// unpublished memory, so read+alloc is one atomic step.
		op := s.cfg.Programs[t][th.op]
		c := s.clone()
		c.Cells = append(c.Cells, Cell{Data: op.V, Next: s.Top})
		nt := &c.Threads[t]
		nt.h = s.Top
		nt.n = len(c.Cells) - 1
		nt.pc = spcPushCAS
		return mk("read-top", c)
	case spcPushCAS:
		op := s.cfg.Programs[t][th.op]
		c := s.clone()
		nt := &c.Threads[t]
		label := "push-miss"
		if s.Top == th.h {
			c.Top = th.n
			label = "PUSH"
		}
		ok := label == "PUSH"
		c.Trace = append(c.Trace, spec.PushElement(obj, id, op.V, ok))
		nt.retOK = ok
		nt.pc = spcRet
		return mk(label, c)
	case spcPopRead:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == -1 {
			// Empty: the read of top is the linearization point.
			c.Trace = append(c.Trace, spec.PopElement(obj, id, false, 0))
			nt.retOK, nt.retV = false, 0
			nt.pc = spcRet
			return mk("POP-EMPTY", c)
		}
		nt.h = s.Top
		nt.pc = spcPopCAS
		return mk("read-top", c)
	case spcPopCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = s.Cells[th.h].Next
			c.Trace = append(c.Trace, spec.PopElement(obj, id, true, s.Cells[th.h].Data))
			nt.retOK, nt.retV = true, s.Cells[th.h].Data
			nt.pc = spcRet
			return mk("POP", c)
		}
		c.Trace = append(c.Trace, spec.PopElement(obj, id, false, 0))
		nt.retOK, nt.retV = false, 0
		nt.pc = spcRet
		return mk("pop-miss", c)
	case spcRet:
		op := s.cfg.Programs[t][th.op]
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsPush {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodPush, history.Bool(th.retOK)))
		} else {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodPop, history.Pair(th.retOK, th.retV)))
		}
		nt.op++
		nt.h, nt.n = -1, -1
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = spcIdle
		} else {
			nt.pc = spcDone
		}
		return mk("res", c)
	default:
		return sched.Succ{}, false
	}
}
