package model

import (
	"context"
	"fmt"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// InvariantJ is the paper's global invariant J (Figure 4): g cannot contain
// an unsatisfied offer of a thread not currently participating in the
// exchange. The model checks the strictly stronger working version that the
// proof actually relies on: the owner is parked at the pass CAS with its
// own offer installed.
func InvariantJ(st sched.State) error {
	s, ok := st.(*ExchangerState)
	if !ok {
		return fmt.Errorf("model: InvariantJ applied to %T", st)
	}
	if s.G == -1 || s.Offers[s.G].Hole != HoleNull {
		return nil
	}
	owner := int(s.Offers[s.G].Tid) - 1
	if owner < 0 || owner >= len(s.Threads) {
		return fmt.Errorf("J: g holds offer of unknown thread %d", s.Offers[s.G].Tid)
	}
	th := s.Threads[owner]
	if th.pc == pcIdle || th.pc == pcDone {
		return fmt.Errorf("J violated: g holds unsatisfied offer of %s which is not executing exchange", tid(owner))
	}
	if th.pc != pcPass || th.n != s.G {
		return fmt.Errorf("J+ violated: owner %s of unsatisfied installed offer is at pc %d (offer %d, g %d)",
			tid(owner), th.pc, th.n, s.G)
	}
	return nil
}

// assertA is the proof outline's assertion A: the thread has not performed
// its operation yet (T_E|tid = T) and g does not hold an unsatisfied offer
// of this thread, and the freshly allocated offer is untouched.
func (s *ExchangerState) assertA(t int) error {
	th := s.Threads[t]
	id := tid(t)
	if got := s.viewLenOf(id); got != th.viewLen {
		return fmt.Errorf("A: T_E|%s grew from %d to %d before the operation took effect", id, th.viewLen, got)
	}
	if s.G != -1 && s.Offers[s.G].Hole == HoleNull && s.Offers[s.G].Tid == id {
		return fmt.Errorf("A: g holds an unsatisfied offer of %s while it runs elsewhere", id)
	}
	if th.n < 0 || th.n >= len(s.Offers) {
		return fmt.Errorf("A: thread %s has no allocated offer", id)
	}
	n := s.Offers[th.n]
	if n.Tid != id || n.Data != s.arg(t) {
		return fmt.Errorf("A: offer fields corrupted: %+v", n)
	}
	return nil
}

// assertB is the proof outline's assertion B(k): k is a partner's offer and
// the trace was extended with exactly the swap pairing this thread's
// operation with the partner's.
func (s *ExchangerState) assertB(t, k int) error {
	th := s.Threads[t]
	id := tid(t)
	if k < 0 || k >= len(s.Offers) {
		return fmt.Errorf("B: hole value %d is not a partner offer", k)
	}
	partner := s.Offers[k]
	if partner.Tid == id {
		return fmt.Errorf("B: thread %s paired with itself", id)
	}
	if got := s.viewLenOf(id); got != th.viewLen+1 {
		return fmt.Errorf("B: T_E|%s has %d elements, want %d (exactly one new)", id, got, th.viewLen+1)
	}
	last, ok := s.lastMentioning(id)
	if !ok {
		return fmt.Errorf("B: no element of 𝒯 mentions %s", id)
	}
	want := spec.SwapElement(s.cfg.Object, id, s.arg(t), partner.Tid, partner.Data)
	if !last.Equal(want) {
		return fmt.Errorf("B: last element %s, want %s", last, want)
	}
	return nil
}

func (s *ExchangerState) lastMentioning(id history.ThreadID) (trace.Element, bool) {
	for i := len(s.Trace) - 1; i >= 0; i-- {
		if s.Trace[i].Mentions(id) {
			return s.Trace[i], true
		}
	}
	return trace.Element{}, false
}

// ProofOutline checks the assertions of Figure 1's proof outline at every
// program point of every thread. Install it as the exploration invariant to
// machine-check the outline across all interleavings.
func ProofOutline(st sched.State) error {
	s, ok := st.(*ExchangerState)
	if !ok {
		return fmt.Errorf("model: ProofOutline applied to %T", st)
	}
	for t := range s.Threads {
		if err := s.outlineAt(t); err != nil {
			return fmt.Errorf("thread %s: %w", tid(t), err)
		}
	}
	return nil
}

func (s *ExchangerState) outlineAt(t int) error {
	th := s.Threads[t]
	id := tid(t)
	switch th.pc {
	case pcInit:
		// Line 14: A.
		return s.assertA(t)
	case pcPass:
		// Line 16: (T_E|tid = T ∧ n ↦ tid,v,null ∧ g = n) ∨ B(n.hole).
		n := s.Offers[th.n]
		if n.Hole == HoleNull {
			if got := s.viewLenOf(id); got != th.viewLen {
				return fmt.Errorf("line 16: trace grew while offer unmatched")
			}
			if s.G != th.n {
				return fmt.Errorf("line 16: unmatched offer displaced from g")
			}
			return nil
		}
		if n.Hole == HoleFail {
			return fmt.Errorf("line 16: own hole is fail before the pass CAS")
		}
		return s.assertB(t, n.Hole)
	case pcXchg:
		// Line 28: A ∧ (g = cur ∨ cur.hole ≠ null) ∧ cur ≠ null ∧ ¬s.
		if err := s.assertA(t); err != nil {
			return err
		}
		if th.cur == -1 {
			return fmt.Errorf("line 28: cur is null at the xchg CAS")
		}
		if th.s {
			return fmt.Errorf("line 28: s already true")
		}
		if s.G != th.cur && s.Offers[th.cur].Hole == HoleNull {
			return fmt.Errorf("line 26 stability: cur displaced from g while still unsatisfied")
		}
		return nil
	case pcClean:
		// Line 30: (¬s ∧ A ∨ s ∧ B(cur)) ∧ cur ≠ null ∧ cur.hole ≠ null.
		if th.cur == -1 {
			return fmt.Errorf("line 30: cur is null at the clean CAS")
		}
		if s.Offers[th.cur].Hole == HoleNull {
			return fmt.Errorf("line 30: cur.hole still null at the clean CAS")
		}
		if th.s {
			return s.assertB(t, th.cur)
		}
		return s.assertA(t)
	case pcLogFail:
		// Before the FAIL auxiliary assignment the op is still unlogged.
		if got := s.viewLenOf(id); got != th.viewLen {
			return fmt.Errorf("line 35: trace grew before the FAIL assignment")
		}
		return nil
	case pcRet:
		// Lines 37-38: the postcondition of exchange.
		if got := s.viewLenOf(id); got != th.viewLen+1 {
			return fmt.Errorf("post: T_E|%s has %d elements, want %d", id, got, th.viewLen+1)
		}
		last, ok := s.lastMentioning(id)
		if !ok {
			return fmt.Errorf("post: no element mentions %s", id)
		}
		if th.retOK {
			if last.Size() != 2 {
				return fmt.Errorf("post: successful exchange logged %s, want a swap", last)
			}
			found := false
			for _, op := range last.Ops {
				if op.Thread == id && op.Arg == history.Int(s.arg(t)) && op.Ret == history.Pair(true, th.retV) {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("post: swap %s does not contain this operation", last)
			}
		} else {
			want := spec.FailElement(s.cfg.Object, id, s.arg(t))
			if !last.Equal(want) {
				return fmt.Errorf("post: failed exchange logged %s, want %s", last, want)
			}
			if th.retV != s.arg(t) {
				return fmt.Errorf("post: failed exchange returns %d, want own value %d", th.retV, s.arg(t))
			}
		}
		return nil
	default:
		return nil
	}
}

// HT is implemented by model states that expose their interface history and
// auxiliary trace for terminal verification.
type HT interface {
	History() history.History
	AuxTrace() trace.Trace
}

// VerifyCAL returns a terminal-state hook asserting the CAL obligations of
// Definition 6 on every maximal execution: the recorded trace (optionally
// rewritten by project, e.g. a view function composition) is admitted by
// sp, the produced history agrees with it (Definition 5), and — when
// runChecker is set — the CAL decision procedure independently accepts the
// history. Histories left incomplete by bounded-retry halts are completed
// by dropping pending invocations before the agreement check; the CAL
// checker handles them natively.
func VerifyCAL(sp spec.Spec, project func(trace.Trace) trace.Trace, runChecker bool) func(sched.State) error {
	return func(st sched.State) error {
		ht, ok := st.(HT)
		if !ok {
			return fmt.Errorf("model: VerifyCAL applied to %T", st)
		}
		h := ht.History()
		tr := ht.AuxTrace()
		if project != nil {
			tr = project(tr)
		}
		if _, err := spec.Accepts(sp, tr); err != nil {
			return fmt.Errorf("recorded trace rejected: %w", err)
		}
		if err := trace.Agrees(h.DropPending(), tr); err != nil {
			return fmt.Errorf("history/trace agreement: %w", err)
		}
		if runChecker {
			r, err := check.CAL(context.Background(), h, sp)
			if err != nil {
				return fmt.Errorf("CAL checker: %w", err)
			}
			if !r.OK {
				return fmt.Errorf("CAL checker rejects history: %s", r.Reason)
			}
		}
		return nil
	}
}
