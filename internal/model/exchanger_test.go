package model_test

import (
	"context"
	"errors"
	"testing"

	"calgo/internal/model"

	"calgo/internal/rg"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// explore runs the full verification battery over a configuration:
// Figure 1's proof-outline assertions and invariant J on every state,
// Figure 4's rely/guarantee justification on every transition, and the CAL
// obligations (Definition 5 + 6) on every terminal state.
func explore(t *testing.T, cfg model.ExchangerConfig) sched.Stats {
	t.Helper()
	init := model.NewExchanger(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithInvariant(func(st sched.State) error {
			if err := model.InvariantJ(st); err != nil {
				return err
			}
			return model.ProofOutline(st)
		}),
		sched.WithTransition(rg.Hook(true)),
		sched.WithTerminal(model.VerifyCAL(spec.NewExchanger(init.Object()), nil, true)))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestExploreTwoThreads(t *testing.T) {
	stats := explore(t, model.ExchangerConfig{Programs: [][]int64{{3}, {4}}})
	if stats.Terminals == 0 || stats.States < 20 {
		t.Errorf("suspiciously small exploration: %+v", stats)
	}
	t.Logf("2 threads x 1 op: %+v", stats)
}

func TestExploreFig3Program(t *testing.T) {
	// The paper's program P: exchange(3) || exchange(4) || exchange(7).
	stats := explore(t, model.ExchangerConfig{Programs: [][]int64{{3}, {4}, {7}}})
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
	t.Logf("Fig 3 program: %+v", stats)
}

func TestExploreRepeatedOps(t *testing.T) {
	stats := explore(t, model.ExchangerConfig{Programs: [][]int64{{1, 2}, {3, 4}}})
	t.Logf("2 threads x 2 ops: %+v", stats)
}

func TestExploreSingleThread(t *testing.T) {
	// A lone thread must always fail its exchanges.
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{5, 6}}})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithInvariant(model.ProofOutline),
		sched.WithTransition(rg.Hook(true)),
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.ExchangerState)
			for _, el := range s.Trace {
				if el.Size() != 1 {
					return errors.New("lone thread logged a swap")
				}
			}
			return model.VerifyCAL(spec.NewExchanger("E"), nil, true)(st)
		}))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	if stats.Terminals != 1 {
		t.Errorf("deterministic single-thread run has %d terminals", stats.Terminals)
	}
}

// TestExploreFindsCanonicalOutcomes checks that across all interleavings
// of the Figure 3 program both outcome classes occur: some execution pairs
// two threads (the third fails), and some execution fails all three.
func TestExploreFindsCanonicalOutcomes(t *testing.T) {
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{3}, {4}, {7}}})
	swaps, allFail := 0, 0
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.ExchangerState)
			hasSwap := false
			for _, el := range s.Trace {
				if el.Size() == 2 {
					hasSwap = true
				}
			}
			if hasSwap {
				swaps++
			} else {
				allFail++
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if swaps == 0 {
		t.Error("no execution produced a successful swap")
	}
	if allFail == 0 {
		t.Error("no execution failed all exchanges")
	}
	t.Logf("terminal outcomes: %d with swap, %d all-fail", swaps, allFail)
}

// TestBugsAreCaught demonstrates the soundness of the verification battery:
// each injected defect is detected by at least one check.
func TestBugsAreCaught(t *testing.T) {
	tests := []struct {
		bug string
		// which hooks to enable; the named bug must trip one of them
		wantKind []string
	}{
		// PASS without the auxiliary assignment matches no Figure 4
		// action, so the rely/guarantee hook fires before the outline
		// assertions get a chance.
		{"drop-pass-log", []string{"transition", "invariant", "terminal"}},
		{"wrong-swap-values", []string{"invariant", "transition", "terminal"}},
		{"late-swap-log", []string{"transition"}},
	}
	for _, tt := range tests {
		t.Run(tt.bug, func(t *testing.T) {
			init := model.NewExchanger(model.ExchangerConfig{
				Programs: [][]int64{{3}, {4}},
				Bug:      tt.bug,
			})
			_, err := sched.Explore(context.Background(),
				init,
				sched.WithInvariant(func(st sched.State) error {
					if err := model.InvariantJ(st); err != nil {
						return err
					}
					return model.ProofOutline(st)
				}),
				sched.WithTransition(rg.Hook(false)),
				sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)))
			var verr *sched.ViolationError
			if !errors.As(err, &verr) {
				t.Fatalf("bug %q escaped verification (err = %v)", tt.bug, err)
			}
			okKind := false
			for _, k := range tt.wantKind {
				if verr.Kind == k {
					okKind = true
				}
			}
			if !okKind {
				t.Errorf("bug %q caught as %q, want one of %v: %v", tt.bug, verr.Kind, tt.wantKind, verr)
			}
			t.Logf("caught as %s: %v", verr.Kind, verr.Err)
		})
	}
}

func TestExchangerStateAccessors(t *testing.T) {
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{1}}})
	if init.Object() != "E" {
		t.Errorf("default object = %s", init.Object())
	}
	if init.Done() {
		t.Error("initial state cannot be done")
	}
	if len(init.History()) != 0 || len(init.AuxTrace()) != 0 {
		t.Error("initial state must have empty history and trace")
	}
	custom := model.NewExchanger(model.ExchangerConfig{Object: "X", Programs: nil})
	if custom.Object() != "X" || !custom.Done() {
		t.Error("empty program should be immediately done")
	}
}

func TestKeyDistinguishesStates(t *testing.T) {
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{3}, {4}}})
	succs := init.Successors()
	if len(succs) != 2 {
		t.Fatalf("initial successors = %d, want 2", len(succs))
	}
	if succs[0].Next.Key() == succs[1].Next.Key() {
		t.Error("distinct successor states share a key")
	}
	if succs[0].Next.Key() == init.Key() {
		t.Error("stepping must change the key")
	}
}

func TestVerifyCALWrongStateType(t *testing.T) {
	hook := model.VerifyCAL(spec.NewExchanger("E"), nil, false)
	if err := hook(fakeState{}); err == nil {
		t.Error("model.VerifyCAL must reject foreign state types")
	}
	if err := model.InvariantJ(fakeState{}); err == nil {
		t.Error("model.InvariantJ must reject foreign state types")
	}
	if err := model.ProofOutline(fakeState{}); err == nil {
		t.Error("model.ProofOutline must reject foreign state types")
	}
}

type fakeState struct{}

func (fakeState) Key() string              { return "" }
func (fakeState) Successors() []sched.Succ { return nil }
func (fakeState) Done() bool               { return true }

// TestProjectHookApplied checks the project parameter of model.VerifyCAL.
func TestProjectHookApplied(t *testing.T) {
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{3}}})
	called := false
	hook := model.VerifyCAL(spec.NewExchanger("E"), func(tr trace.Trace) trace.Trace {
		called = true
		return tr
	}, false)
	// Drive to a terminal state by always stepping thread 0.
	var st sched.State = init
	for {
		succs := st.Successors()
		if len(succs) == 0 {
			break
		}
		st = succs[0].Next
	}
	if err := hook(st); err != nil {
		t.Fatalf("terminal hook: %v", err)
	}
	if !called {
		t.Error("project function not applied")
	}
}
