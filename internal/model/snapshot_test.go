package model_test

import (
	"context"
	"testing"

	"calgo/internal/model"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

func exploreIS(t *testing.T, values []int64, maxStates int) sched.Stats {
	t.Helper()
	init := model.NewSnapshot(model.ISConfig{Values: values})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewSnapshot(init.Object(), len(values)), init.Project, true)))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	_ = maxStates
	return stats
}

func TestSnapshotModelTwoParticipants(t *testing.T) {
	stats := exploreIS(t, []int64{10, 20}, 1_000_000)
	t.Logf("n=2: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestSnapshotModelThreeParticipants(t *testing.T) {
	stats := exploreIS(t, []int64{10, 20, 30}, 4_000_000)
	t.Logf("n=3: %+v", stats)
}

// TestSnapshotModelBlockSizes: across all interleavings of n=3, every
// block structure the theory allows actually occurs: three singleton
// blocks, a pair plus a singleton (in both orders), and one triple.
func TestSnapshotModelBlockSizes(t *testing.T) {
	init := model.NewSnapshot(model.ISConfig{Values: []int64{1, 2, 3}})
	shapes := map[string]int{}
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(func(st sched.State) error {
			s := st.(*model.ISState)
			blocks := s.Project(s.AuxTrace())
			key := ""
			for _, el := range blocks {
				key += string(rune('0' + el.Size()))
			}
			shapes[key]++
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"111", "12", "21", "3"} {
		if shapes[want] == 0 {
			t.Errorf("block shape %q never occurred (got %v)", want, shapes)
		}
	}
	t.Logf("block shapes: %v", shapes)
}

func TestSnapshotModelAccessors(t *testing.T) {
	s := model.NewSnapshot(model.ISConfig{})
	if s.Object() != "IS" || !s.Done() {
		t.Error("defaults wrong")
	}
}
