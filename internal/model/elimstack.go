package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// ESConfig describes a bounded client program over the elimination stack
// of Figure 2, composed of a central stack and an array of exchangers.
type ESConfig struct {
	// Object is the elimination stack's id (default "ES"); the subobjects
	// are Object+".S", Object+".AR" and Object+".AR.E[i]".
	Object history.ObjectID
	// Slots is the elimination array width K (default 1).
	Slots int
	// Retries bounds the rounds of each operation's retry loop (default
	// 2). A thread that exhausts its budget halts with its operation
	// pending — the bounded-model-checking cut-off for Figure 2's
	// unbounded loops.
	Retries int
	// Sentinel is the POP_SENTINAL value (default 1<<60).
	Sentinel int64
	// Programs[t] lists the elimination-stack operations of thread t+1.
	Programs [][]StackOp
}

// Program counters of the elimination-stack step machine.
const (
	epcIdle     = iota
	epcPushRead // S.push: h = top (+ cell alloc)
	epcPushCAS  // S.push: CAS(&top, h, n)
	epcPopRead  // S.pop: h = top; empty check
	epcPopCAS   // S.pop: CAS(&top, h, n)
	epcSlot     // AR.exchange: pick a slot, allocate the offer
	epcExInit   // exchanger line 15
	epcExPass   // exchanger line 18
	epcExReadG  // exchanger line 25
	epcExXchg   // exchanger line 29
	epcExClean  // exchanger line 31
	epcExFail   // exchanger line 35
	epcRet      // emit the ES-level response
	epcHalt     // retry budget exhausted; operation stays pending
	epcDone
)

type esThread struct {
	pc    int
	op    int
	round int
	h     int // stack top snapshot
	n     int // cell index (push attempt)
	slot  int
	xn    int // own offer index
	xcur  int // read offer index
	xs    bool
	retV  int64
}

// ESState is one state of the elimination-stack model.
type ESState struct {
	cfg     *ESConfig
	Threads []esThread
	Cells   []Cell
	Top     int
	G       []int // per-slot installed offer, -1 when empty
	Offers  []Offer
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*ESState)(nil)

// NewElimStack returns the initial state of the elimination-stack model.
func NewElimStack(cfg ESConfig) *ESState {
	if cfg.Object == "" {
		cfg.Object = "ES"
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Sentinel == 0 {
		cfg.Sentinel = 1 << 60
	}
	st := &ESState{cfg: &cfg, Top: -1, G: make([]int, cfg.Slots)}
	for i := range st.G {
		st.G[i] = -1
	}
	for range cfg.Programs {
		st.Threads = append(st.Threads, esThread{pc: epcIdle, h: -1, n: -1, slot: -1, xn: -1, xcur: -1})
	}
	return st
}

// Object returns the modelled elimination stack's object id.
func (s *ESState) Object() history.ObjectID { return s.cfg.Object }

func (s *ESState) stackID() history.ObjectID { return s.cfg.Object + ".S" }
func (s *ESState) arID() history.ObjectID    { return s.cfg.Object + ".AR" }
func (s *ESState) slotID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("%s.E[%d]", s.arID(), i))
}

// History implements HT.
func (s *ESState) History() history.History { return s.Hist }

// AuxTrace implements HT.
func (s *ESState) AuxTrace() trace.Trace { return s.Trace }

// Project is the composition F_ES ∘ F̂_AR over the model's raw trace: slot
// exchanges are relabeled to AR, then stack and AR elements are mapped to
// elimination-stack operations exactly as in §5. Pass it to VerifyCAL.
func (s *ESState) Project(tr trace.Trace) trace.Trace {
	esID, sID, arID := s.cfg.Object, s.stackID(), s.arID()
	var out trace.Trace
	for _, el := range tr {
		switch {
		case el.Object == sID:
			op := el.Ops[0]
			switch {
			case op.Method == spec.MethodPush && op.Ret.B:
				out = append(out, spec.PushElement(esID, op.Thread, op.Arg.N, true))
			case op.Method == spec.MethodPop && op.Ret.Kind == history.KindPair && op.Ret.B:
				out = append(out, spec.PopElement(esID, op.Thread, true, op.Ret.N))
			}
		case strings.HasPrefix(string(el.Object), string(arID)):
			if len(el.Ops) != 2 {
				continue // failed exchange: erased
			}
			push, pop := el.Ops[0], el.Ops[1]
			if push.Arg.N == s.cfg.Sentinel {
				push, pop = pop, push
			}
			if push.Arg.N == s.cfg.Sentinel || pop.Arg.N != s.cfg.Sentinel {
				continue // same-operation exchange: erased
			}
			out = append(out,
				spec.PushElement(esID, push.Thread, push.Arg.N, true),
				spec.PopElement(esID, pop.Thread, true, push.Arg.N))
		}
	}
	return out
}

// Key implements sched.State.
func (s *ESState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%d.%d.%d.%d.%t.%d|",
			th.pc, th.op, th.round, th.h, th.n, th.slot, th.xn, th.xcur, th.xs, th.retV)
	}
	b.WriteString("top")
	b.WriteString(strconv.Itoa(s.Top))
	for _, c := range s.Cells {
		fmt.Fprintf(&b, ";%d.%d", c.Data, c.Next)
	}
	b.WriteByte('g')
	for _, g := range s.G {
		b.WriteString(strconv.Itoa(g))
		b.WriteByte(',')
	}
	for _, o := range s.Offers {
		fmt.Fprintf(&b, ";%d.%d.%d", o.Tid, o.Data, o.Hole)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State. Halted threads do not count as done; the
// explorer runs with AllowDeadlock and the terminal check drops their
// pending operations.
func (s *ESState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != epcDone {
			return false
		}
	}
	return true
}

func (s *ESState) clone() *ESState {
	return &ESState{
		cfg:     s.cfg,
		Threads: append([]esThread(nil), s.Threads...),
		Cells:   append([]Cell(nil), s.Cells...),
		Top:     s.Top,
		G:       append([]int(nil), s.G...),
		Offers:  append([]Offer(nil), s.Offers...),
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

// Successors implements sched.State.
func (s *ESState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		out = append(out, s.steps(t)...)
	}
	return out
}

// isPush reports whether thread t's current op is a push, and its value.
func (s *ESState) opOf(t int) StackOp { return s.cfg.Programs[t][s.Threads[t].op] }

// exchangeArg is the value thread t offers to the elimination array.
func (s *ESState) exchangeArg(t int) int64 {
	if op := s.opOf(t); op.IsPush {
		return op.V
	}
	return s.cfg.Sentinel
}

// afterExchange routes the outcome d of an exchange attempt per Figure 2:
// a pusher is done iff it received the sentinel; a popper iff it received
// a non-sentinel value. Otherwise the round counter advances and the
// operation retries from the central stack, or halts at the retry bound.
func (s *ESState) afterExchange(c *ESState, t int, d int64) {
	nt := &c.Threads[t]
	op := s.opOf(t)
	done := d == s.cfg.Sentinel
	if !op.IsPush {
		done = d != s.cfg.Sentinel
	}
	if done {
		nt.retV = d
		nt.pc = epcRet
		return
	}
	nt.round++
	if nt.round >= s.cfg.Retries {
		nt.pc = epcHalt
		return
	}
	if op.IsPush {
		nt.pc = epcPushRead
	} else {
		nt.pc = epcPopRead
	}
}

func (s *ESState) steps(t int) []sched.Succ {
	th := s.Threads[t]
	id := tid(t)
	mk := func(label string, next *ESState) []sched.Succ {
		return []sched.Succ{{Thread: t, Label: label, Next: next}}
	}
	switch th.pc {
	case epcIdle:
		op := s.opOf(t)
		c := s.clone()
		nt := &c.Threads[t]
		nt.round = 0
		if op.IsPush {
			c.Hist = append(c.Hist, history.Inv(id, s.cfg.Object, spec.MethodPush, history.Int(op.V)))
			nt.pc = epcPushRead
		} else {
			c.Hist = append(c.Hist, history.Inv(id, s.cfg.Object, spec.MethodPop, history.Unit()))
			nt.pc = epcPopRead
		}
		return mk("inv", c)
	case epcPushRead:
		op := s.opOf(t)
		c := s.clone()
		c.Cells = append(c.Cells, Cell{Data: op.V, Next: s.Top})
		nt := &c.Threads[t]
		nt.h = s.Top
		nt.n = len(c.Cells) - 1
		nt.pc = epcPushCAS
		return mk("read-top", c)
	case epcPushCAS:
		op := s.opOf(t)
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = th.n
			c.Trace = append(c.Trace, spec.PushElement(s.stackID(), id, op.V, true))
			nt.pc = epcRet
			nt.retV = 0
			return mk("S-PUSH", c)
		}
		c.Trace = append(c.Trace, spec.PushElement(s.stackID(), id, op.V, false))
		nt.pc = epcSlot
		return mk("s-push-miss", c)
	case epcPopRead:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == -1 {
			c.Trace = append(c.Trace, spec.PopElement(s.stackID(), id, false, 0))
			nt.pc = epcSlot
			return mk("s-pop-empty", c)
		}
		nt.h = s.Top
		nt.pc = epcPopCAS
		return mk("read-top", c)
	case epcPopCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = s.Cells[th.h].Next
			v := s.Cells[th.h].Data
			c.Trace = append(c.Trace, spec.PopElement(s.stackID(), id, true, v))
			nt.retV = v
			nt.pc = epcRet
			return mk("S-POP", c)
		}
		c.Trace = append(c.Trace, spec.PopElement(s.stackID(), id, false, 0))
		nt.pc = epcSlot
		return mk("s-pop-miss", c)
	case epcSlot:
		// Nondeterministic slot choice; offer allocation is local.
		var out []sched.Succ
		for k := 0; k < s.cfg.Slots; k++ {
			c := s.clone()
			c.Offers = append(c.Offers, Offer{Tid: id, Data: s.exchangeArg(t), Hole: HoleNull})
			nt := &c.Threads[t]
			nt.slot = k
			nt.xn = len(c.Offers) - 1
			nt.xcur = -1
			nt.xs = false
			nt.pc = epcExInit
			out = append(out, sched.Succ{Thread: t, Label: fmt.Sprintf("slot[%d]", k), Next: c})
		}
		return out
	case epcExInit:
		c := s.clone()
		nt := &c.Threads[t]
		if s.G[th.slot] == -1 {
			c.G[th.slot] = th.xn
			nt.pc = epcExPass
			return mk("E-INIT", c)
		}
		nt.pc = epcExReadG
		return mk("e-init-miss", c)
	case epcExPass:
		c := s.clone()
		if s.Offers[th.xn].Hole == HoleNull {
			c.Offers[th.xn].Hole = HoleFail
			c.Trace = append(c.Trace, spec.FailElement(s.slotID(th.slot), id, s.Offers[th.xn].Data))
			s.afterExchange(c, t, s.Offers[th.xn].Data)
			return mk("E-PASS", c)
		}
		partner := s.Offers[th.xn].Hole
		s.afterExchange(c, t, s.Offers[partner].Data)
		return mk("e-matched", c)
	case epcExReadG:
		c := s.clone()
		nt := &c.Threads[t]
		nt.xcur = s.G[th.slot]
		if s.G[th.slot] == -1 {
			nt.pc = epcExFail
		} else {
			nt.pc = epcExXchg
		}
		return mk("e-read-g", c)
	case epcExXchg:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Offers[th.xcur].Hole == HoleNull {
			c.Offers[th.xcur].Hole = th.xn
			partner := s.Offers[th.xcur]
			c.Trace = append(c.Trace, spec.SwapElement(s.slotID(th.slot), partner.Tid, partner.Data, id, s.exchangeArg(t)))
			nt.xs = true
			nt.pc = epcExClean
			return mk("E-XCHG", c)
		}
		nt.xs = false
		nt.pc = epcExClean
		return mk("e-xchg-miss", c)
	case epcExClean:
		c := s.clone()
		label := "e-clean-miss"
		if s.G[th.slot] == th.xcur {
			c.G[th.slot] = -1
			label = "E-CLEAN"
		}
		if th.xs {
			s.afterExchange(c, t, s.Offers[th.xcur].Data)
		} else {
			c.Threads[t].pc = epcExFail
		}
		return mk(label, c)
	case epcExFail:
		c := s.clone()
		c.Trace = append(c.Trace, spec.FailElement(s.slotID(th.slot), id, s.exchangeArg(t)))
		s.afterExchange(c, t, s.exchangeArg(t))
		return mk("E-FAIL", c)
	case epcRet:
		op := s.opOf(t)
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsPush {
			c.Hist = append(c.Hist, history.Res(id, s.cfg.Object, spec.MethodPush, history.Bool(true)))
		} else {
			c.Hist = append(c.Hist, history.Res(id, s.cfg.Object, spec.MethodPop, history.Pair(true, th.retV)))
		}
		nt.op++
		nt.h, nt.n, nt.slot, nt.xn, nt.xcur, nt.xs, nt.round = -1, -1, -1, -1, -1, false, 0
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = epcIdle
		} else {
			nt.pc = epcDone
		}
		return mk("res", c)
	default: // epcHalt, epcDone
		return nil
	}
}
