package model_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"calgo/internal/model"
	"calgo/internal/rg"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

// exploreF1 runs the full F1 verification battery (exchanger, Fig. 3
// program) at the given parallelism.
func exploreF1(t *testing.T, parallelism int) sched.Stats {
	t.Helper()
	init := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{3}, {4}, {7}}})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithInvariant(func(st sched.State) error {
			if err := model.InvariantJ(st); err != nil {
				return err
			}
			return model.ProofOutline(st)
		}),
		sched.WithTransition(rg.Hook(true)),
		sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)),
		sched.WithParallelism(parallelism))
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return stats
}

// exploreF2 runs the F2 battery (elimination stack, K=1, R=2,
// push/push/pop) at the given parallelism.
func exploreF2(t *testing.T, parallelism int) sched.Stats {
	t.Helper()
	init := model.NewElimStack(model.ESConfig{
		Slots:   1,
		Retries: 2,
		Programs: [][]model.StackOp{
			{model.Push(1)},
			{model.Push(2)},
			{model.Pop()},
		},
	})
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewStack("ES"), init.Project, true)),
		sched.WithDeadlockAllowed(),
		sched.WithParallelism(parallelism))
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return stats
}

func parallelisms() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestParallelEquivalenceF1 pins that the work-stealing engine reports
// the exact sequential state counts on the F1 model at every worker
// count (the numbers recorded in EXPERIMENTS.md).
func TestParallelEquivalenceF1(t *testing.T) {
	want := exploreF1(t, 1)
	if want.States != 12_223 || want.Transitions != 20_424 || want.Terminals != 1_446 {
		t.Errorf("F1 sequential stats drifted: %+v", want)
	}
	for _, par := range parallelisms()[1:] {
		got := exploreF1(t, par)
		if got.States != want.States || got.Transitions != want.Transitions || got.Terminals != want.Terminals {
			t.Errorf("parallelism %d: stats %+v, want %+v", par, got, want)
		}
	}
}

// TestParallelEquivalenceF2 is the same contract on the 61,851-state F2
// model; skipped under -short because each run explores the full graph.
func TestParallelEquivalenceF2(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping three full F2 explorations in -short mode")
	}
	want := exploreF2(t, 1)
	if want.States != 61_851 || want.Transitions != 102_532 || want.Terminals != 7_096 {
		t.Errorf("F2 sequential stats drifted: %+v", want)
	}
	for _, par := range parallelisms()[1:] {
		got := exploreF2(t, par)
		if got.States != want.States || got.Transitions != want.Transitions || got.Terminals != want.Terminals {
			t.Errorf("parallelism %d: stats %+v, want %+v", par, got, want)
		}
	}
}

// TestParallelCatchesInjectedDefects re-runs the soundness battery with a
// parallel engine: all three injected exchanger defects must still be
// reported as violations.
func TestParallelCatchesInjectedDefects(t *testing.T) {
	for _, bug := range []string{"drop-pass-log", "wrong-swap-values", "late-swap-log"} {
		t.Run(bug, func(t *testing.T) {
			init := model.NewExchanger(model.ExchangerConfig{
				Programs: [][]int64{{3}, {4}},
				Bug:      bug,
			})
			_, err := sched.Explore(context.Background(),
				init,
				sched.WithInvariant(func(st sched.State) error {
					if err := model.InvariantJ(st); err != nil {
						return err
					}
					return model.ProofOutline(st)
				}),
				sched.WithTransition(rg.Hook(false)),
				sched.WithTerminal(model.VerifyCAL(spec.NewExchanger("E"), nil, true)),
				sched.WithParallelism(4))
			var verr *sched.ViolationError
			if !errors.As(err, &verr) {
				t.Fatalf("bug %q escaped the parallel exploration (err = %v)", bug, err)
			}
		})
	}
}
