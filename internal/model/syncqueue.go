package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// SQOp is one operation of a client program over the synchronous queue:
// a put of value V or a take.
type SQOp struct {
	IsPut bool
	V     int64
}

// Put builds a put operation.
func Put(v int64) SQOp { return SQOp{IsPut: true, V: v} }

// Take builds a take operation.
func Take() SQOp { return SQOp{} }

// SQConfig describes a bounded client program over the synchronous queue
// (the paper's second exchanger client, [9]/[22]). Each operation is a
// single Try attempt, mirroring the real implementation's attempt round:
// the asymmetric offer/hole protocol where only opposite kinds match.
type SQConfig struct {
	// Object is the queue's object id (default "SQ").
	Object history.ObjectID
	// Programs[t] lists the operations of thread t+1, in order.
	Programs [][]SQOp
}

// Program counters of the synchronous-queue step machine.
const (
	qpcIdle  = iota
	qpcInit  // CAS(g, null, n)
	qpcPass  // withdraw own offer after the wait window
	qpcReadG // cur = g; branch on kind
	qpcMatch // CAS(cur.hole, null, n) for an opposite-kind offer
	qpcClean // CAS(g, cur, null)
	qpcFail  // log the failed attempt
	qpcRet
	qpcDone
)

// sqOffer is a modelled offer: kind, owner, datum and hole.
type sqOffer struct {
	IsPut bool
	Tid   history.ThreadID
	Data  int64
	Hole  int // HoleNull, HoleFail, or index of the matching offer
}

type sqThread struct {
	pc      int
	op      int
	n       int // own offer
	cur     int // read offer
	matched bool
	retOK   bool
	retV    int64
}

// SQState is one state of the synchronous-queue model.
type SQState struct {
	cfg     *SQConfig
	Threads []sqThread
	Offers  []sqOffer
	G       int
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*SQState)(nil)

// NewSyncQueue returns the initial state of the synchronous-queue model.
func NewSyncQueue(cfg SQConfig) *SQState {
	if cfg.Object == "" {
		cfg.Object = "SQ"
	}
	st := &SQState{cfg: &cfg, G: -1}
	for range cfg.Programs {
		st.Threads = append(st.Threads, sqThread{pc: qpcIdle, n: -1, cur: -1})
	}
	return st
}

// Object returns the modelled queue's object id.
func (s *SQState) Object() history.ObjectID { return s.cfg.Object }

// History implements HT.
func (s *SQState) History() history.History { return s.Hist }

// AuxTrace implements HT.
func (s *SQState) AuxTrace() trace.Trace { return s.Trace }

// Key implements sched.State.
func (s *SQState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%t.%t.%d|", th.pc, th.op, th.n, th.cur, th.matched, th.retOK, th.retV)
	}
	b.WriteByte('g')
	b.WriteString(strconv.Itoa(s.G))
	for _, o := range s.Offers {
		fmt.Fprintf(&b, ";%t.%d.%d.%d", o.IsPut, o.Tid, o.Data, o.Hole)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *SQState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != qpcDone {
			return false
		}
	}
	return true
}

func (s *SQState) clone() *SQState {
	return &SQState{
		cfg:     s.cfg,
		Threads: append([]sqThread(nil), s.Threads...),
		Offers:  append([]sqOffer(nil), s.Offers...),
		G:       s.G,
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

func (s *SQState) opOf(t int) SQOp { return s.cfg.Programs[t][s.Threads[t].op] }

func (s *SQState) invEvent(t int) history.Event {
	op := s.opOf(t)
	if op.IsPut {
		return history.Inv(tid(t), s.cfg.Object, spec.MethodPut, history.Int(op.V))
	}
	return history.Inv(tid(t), s.cfg.Object, spec.MethodTake, history.Unit())
}

func (s *SQState) failElement(t int) trace.Element {
	op := s.opOf(t)
	if op.IsPut {
		return trace.Singleton(trace.Operation{
			Thread: tid(t), Object: s.cfg.Object, Method: spec.MethodPut,
			Arg: history.Int(op.V), Ret: history.Bool(false),
		})
	}
	return trace.Singleton(trace.Operation{
		Thread: tid(t), Object: s.cfg.Object, Method: spec.MethodTake,
		Arg: history.Unit(), Ret: history.Pair(false, 0),
	})
}

// Successors implements sched.State.
func (s *SQState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

func (s *SQState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	if th.pc == qpcDone {
		return sched.Succ{}, false
	}
	op := s.opOf(t)
	mk := func(label string, next *SQState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case qpcIdle:
		c := s.clone()
		c.Hist = append(c.Hist, s.invEvent(t))
		c.Offers = append(c.Offers, sqOffer{IsPut: op.IsPut, Tid: tid(t), Data: op.V, Hole: HoleNull})
		nt := &c.Threads[t]
		nt.n = len(c.Offers) - 1
		nt.cur = -1
		nt.matched = false
		nt.pc = qpcInit
		return mk("inv", c)
	case qpcInit:
		c := s.clone()
		if s.G == -1 {
			c.G = th.n
			c.Threads[t].pc = qpcPass
			return mk("INIT", c)
		}
		c.Threads[t].pc = qpcReadG
		return mk("init-miss", c)
	case qpcPass:
		c := s.clone()
		if s.Offers[th.n].Hole == HoleNull {
			c.Offers[th.n].Hole = HoleFail
			c.Trace = append(c.Trace, s.failElement(t))
			nt := &c.Threads[t]
			nt.retOK, nt.retV = false, 0
			nt.pc = qpcRet
			return mk("PASS", c)
		}
		partner := s.Offers[th.n].Hole
		nt := &c.Threads[t]
		nt.retOK = true
		if op.IsPut {
			nt.retV = op.V
		} else {
			nt.retV = s.Offers[partner].Data
		}
		nt.pc = qpcRet
		return mk("matched", c)
	case qpcReadG:
		c := s.clone()
		nt := &c.Threads[t]
		nt.cur = s.G
		switch {
		case s.G == -1:
			nt.pc = qpcFail
		case s.Offers[s.G].IsPut != op.IsPut:
			nt.pc = qpcMatch
		case s.Offers[s.G].Hole != HoleNull:
			// Same kind, settled: help clean, then fail this attempt.
			nt.pc = qpcClean
		default:
			nt.pc = qpcFail
		}
		return mk("read-g", c)
	case qpcMatch:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Offers[th.cur].Hole == HoleNull {
			c.Offers[th.cur].Hole = th.n
			cur := s.Offers[th.cur]
			put, take := cur, sqOffer{IsPut: op.IsPut, Tid: tid(t), Data: op.V}
			if !put.IsPut {
				put, take = take, put
			}
			c.Trace = append(c.Trace, spec.HandOffElement(s.cfg.Object, put.Tid, put.Data, take.Tid))
			nt.matched = true
		}
		nt.pc = qpcClean
		if nt.matched {
			return mk("MATCH", c)
		}
		return mk("match-miss", c)
	case qpcClean:
		c := s.clone()
		label := "clean-miss"
		if s.G == th.cur && s.Offers[th.cur].Hole != HoleNull {
			c.G = -1
			label = "CLEAN"
		}
		nt := &c.Threads[t]
		if th.matched {
			nt.retOK = true
			if op.IsPut {
				nt.retV = op.V
			} else {
				nt.retV = s.Offers[th.cur].Data
			}
			nt.pc = qpcRet
		} else {
			nt.pc = qpcFail
		}
		return mk(label, c)
	case qpcFail:
		c := s.clone()
		c.Trace = append(c.Trace, s.failElement(t))
		nt := &c.Threads[t]
		nt.retOK, nt.retV = false, 0
		nt.pc = qpcRet
		return mk("FAIL", c)
	case qpcRet:
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsPut {
			c.Hist = append(c.Hist, history.Res(tid(t), s.cfg.Object, spec.MethodPut, history.Bool(th.retOK)))
		} else {
			c.Hist = append(c.Hist, history.Res(tid(t), s.cfg.Object, spec.MethodTake, history.Pair(th.retOK, th.retV)))
		}
		nt.op++
		nt.n, nt.cur, nt.matched = -1, -1, false
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = qpcIdle
		} else {
			nt.pc = qpcDone
		}
		return mk("res", c)
	default:
		return sched.Succ{}, false
	}
}
