package model_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"calgo/internal/model"
	"calgo/internal/sched"
	"calgo/internal/spec"
)

func exploreDQ(t *testing.T, cfg model.DQConfig, maxStates int) sched.Stats {
	t.Helper()
	init := model.NewDualQueue(cfg)
	stats, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewDualQueue(init.Object()), nil, true)),
		sched.WithDeadlockAllowed(),
		sched.WithMaxStates(maxStates))
	if err != nil {
		t.Fatalf("exploration failed: %v", err)
	}
	return stats
}

func TestDualQueueModelEnqDeq(t *testing.T) {
	stats := exploreDQ(t, model.DQConfig{Programs: [][]model.QOp{
		{model.Enq(7)},
		{model.Deq()},
	}}, 2_000_000)
	t.Logf("enq||deq: %+v", stats)
	if stats.Terminals == 0 {
		t.Error("no terminal states")
	}
}

func TestDualQueueModelTwoEnqOneDeq(t *testing.T) {
	stats := exploreDQ(t, model.DQConfig{Programs: [][]model.QOp{
		{model.Enq(1)},
		{model.Enq(2)},
		{model.Deq()},
	}}, 4_000_000)
	t.Logf("2 enq || deq: %+v", stats)
}

func TestDualQueueModelTwoDeqOneEnq(t *testing.T) {
	stats := exploreDQ(t, model.DQConfig{Programs: [][]model.QOp{
		{model.Deq()},
		{model.Deq()},
		{model.Enq(9)},
	}}, 4_000_000)
	t.Logf("2 deq || enq: %+v", stats)
}

func TestDualQueueModelMixedPrograms(t *testing.T) {
	stats := exploreDQ(t, model.DQConfig{Programs: [][]model.QOp{
		{model.Enq(1), model.Deq()},
		{model.Deq(), model.Enq(2)},
	}}, 4_000_000)
	t.Logf("mixed 2x2: %+v", stats)
}

// TestDualQueueModelFIFOAcrossFulfilment is the FIFO-critical scenario:
// with two waiting dequeuers, fulfilments must serve the OLDEST first.
func TestDualQueueModelFIFOAcrossFulfilment(t *testing.T) {
	if testing.Short() {
		t.Skip("~1M-state exploration skipped in -short mode")
	}
	stats := exploreDQ(t, model.DQConfig{
		Retries: 2,
		Programs: [][]model.QOp{
			{model.Deq()},
			{model.Deq()},
			{model.Enq(1), model.Enq(2)},
		},
	}, 6_000_000)
	t.Logf("2 deq || enq;enq: %+v", stats)
}

// TestDualQueueHeadKindBugCaught: the defective mode decision (by the
// head's first node rather than the tail) admits an interleaving that
// appends data behind an open reservation, breaking FIFO; the terminal
// CAL check must find it.
func TestDualQueueHeadKindBugCaught(t *testing.T) {
	init := model.NewDualQueue(model.DQConfig{
		HeadKindBug: true,
		Retries:     3,
		Programs: [][]model.QOp{
			{model.Enq(1), model.Enq(2)},
			{model.Deq(), model.Deq()},
			{model.Deq()},
		},
	})
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTerminal(model.VerifyCAL(spec.NewDualQueue("DQ"), nil, true)),
		sched.WithDeadlockAllowed(),
		sched.WithMaxStates(8_000_000))
	var verr *sched.ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("head-kind bug escaped exploration (err = %v)", err)
	}
	if verr.Kind != "terminal" {
		t.Errorf("caught as %q, want terminal CAL violation", verr.Kind)
	}
	t.Logf("caught: %v", verr.Err)
	if !strings.Contains(verr.Error(), "schedule:") {
		t.Error("violation should carry the schedule")
	}
}

func TestDualQueueModelDefaults(t *testing.T) {
	q := model.NewDualQueue(model.DQConfig{})
	if q.Object() != "DQ" || !q.Done() {
		t.Error("defaults wrong")
	}
	if len(q.History()) != 0 || len(q.AuxTrace()) != 0 {
		t.Error("initial state not empty")
	}
}
