package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Hole states of modelled dual-stack reservations (data nodes use dsNoHole).
const (
	dsNoHole    = -3
	dsOpen      = -1
	dsCancelled = -2
)

// DSConfig describes a bounded client program over the dual stack (§6).
// Operations use the Try semantics: a pop that installed a reservation
// either gets fulfilled or — at any later schedule point — cancels, which
// models both TryPop's bounded patience and the race between fulfilment
// and cancellation. Push and the pop install loop retry at most Retries
// times before halting.
type DSConfig struct {
	// Object is the dual stack's id (default "DS").
	Object history.ObjectID
	// Retries bounds the CAS retry loops (default 2).
	Retries int
	// Programs[t] lists the operations of thread t+1.
	Programs [][]StackOp
}

// Program counters of the dual-stack step machine.
const (
	dpcIdle       = iota
	dpcPushRead   // h = top; branch on node kind
	dpcPushCAS    // CAS(&top, h, n) for a data push
	dpcFulfil     // CAS(h.hole, open, value) + pair log
	dpcUnlinkPush // help CAS(&top, h, h.next) after fulfil/settled, then retry or return
	dpcPopRead    // h = top; branch
	dpcUnlinkPop  // help unlink a settled reservation during pop
	dpcPopCAS     // CAS(&top, h, h.next) for a data pop
	dpcResInstall // CAS(&top, h, r) installing a reservation
	dpcAwait      // check own hole: fulfilled -> return; else cancel
	dpcRet
	dpcHalt
	dpcDone
)

type dsNode struct {
	IsRes     bool
	Tid       history.ThreadID
	Data      int64 // datum (data node) or fulfilment value (reservation)
	Hole      int   // dsNoHole, dsOpen, dsCancelled, or 1 (fulfilled)
	Next      int
	Fulfilled bool
}

type dsThread struct {
	pc       int
	op       int
	round    int
	h        int // read top snapshot
	n        int // own node
	pushDone bool
	retOK    bool
	retV     int64
}

// DSState is one state of the dual-stack model.
type DSState struct {
	cfg     *DSConfig
	Threads []dsThread
	Nodes   []dsNode
	Top     int
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*DSState)(nil)

// NewDualStack returns the initial state of the dual-stack model.
func NewDualStack(cfg DSConfig) *DSState {
	if cfg.Object == "" {
		cfg.Object = "DS"
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	st := &DSState{cfg: &cfg, Top: -1}
	for range cfg.Programs {
		st.Threads = append(st.Threads, dsThread{pc: dpcIdle, h: -1, n: -1})
	}
	return st
}

// Object returns the modelled dual stack's object id.
func (s *DSState) Object() history.ObjectID { return s.cfg.Object }

// History implements HT.
func (s *DSState) History() history.History { return s.Hist }

// AuxTrace implements HT.
func (s *DSState) AuxTrace() trace.Trace { return s.Trace }

// Key implements sched.State.
func (s *DSState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%d.%t.%t.%d|", th.pc, th.op, th.round, th.h, th.n, th.pushDone, th.retOK, th.retV)
	}
	b.WriteString("top")
	b.WriteString(strconv.Itoa(s.Top))
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, ";%t.%d.%d.%d.%d.%t", n.IsRes, n.Tid, n.Data, n.Hole, n.Next, n.Fulfilled)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *DSState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != dpcDone {
			return false
		}
	}
	return true
}

func (s *DSState) clone() *DSState {
	return &DSState{
		cfg:     s.cfg,
		Threads: append([]dsThread(nil), s.Threads...),
		Nodes:   append([]dsNode(nil), s.Nodes...),
		Top:     s.Top,
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

func (s *DSState) dsOpOf(t int) StackOp { return s.cfg.Programs[t][s.Threads[t].op] }

// retry advances the round counter; at the bound the thread halts.
func (s *DSState) retry(c *DSState, t, backTo int) {
	nt := &c.Threads[t]
	nt.round++
	if nt.round >= s.cfg.Retries {
		nt.pc = dpcHalt
		return
	}
	nt.pc = backTo
}

// Successors implements sched.State.
func (s *DSState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

func (s *DSState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	if th.pc == dpcDone || th.pc == dpcHalt {
		return sched.Succ{}, false
	}
	id := tid(t)
	obj := s.cfg.Object
	op := s.dsOpOf(t)
	mk := func(label string, next *DSState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case dpcIdle:
		c := s.clone()
		nt := &c.Threads[t]
		nt.round = 0
		if op.IsPush {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodPush, history.Int(op.V)))
			nt.pc = dpcPushRead
		} else {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodPop, history.Unit()))
			nt.pc = dpcPopRead
		}
		return mk("inv", c)
	case dpcPushRead:
		c := s.clone()
		nt := &c.Threads[t]
		nt.h = s.Top
		if s.Top != -1 && s.Nodes[s.Top].IsRes {
			if s.Nodes[s.Top].Hole == dsOpen {
				nt.pc = dpcFulfil
			} else {
				nt.pushDone = false
				nt.pc = dpcUnlinkPush // settled reservation: help unlink
			}
			return mk("read-top", c)
		}
		c.Nodes = append(c.Nodes, dsNode{Tid: id, Data: op.V, Hole: dsNoHole, Next: s.Top})
		nt.n = len(c.Nodes) - 1
		nt.pc = dpcPushCAS
		return mk("read-top", c)
	case dpcPushCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = th.n
			c.Trace = append(c.Trace, spec.PushElement(obj, id, op.V, true))
			nt.retOK = true
			nt.pc = dpcRet
			return mk("PUSH", c)
		}
		s.retry(c, t, dpcPushRead)
		return mk("push-miss", c)
	case dpcFulfil:
		c := s.clone()
		nt := &c.Threads[t]
		r := s.Nodes[th.h]
		if r.Hole == dsOpen {
			c.Nodes[th.h].Hole = 1
			c.Nodes[th.h].Fulfilled = true
			c.Nodes[th.h].Data = op.V
			c.Trace = append(c.Trace, spec.FulfilmentElement(obj, id, op.V, r.Tid))
			nt.pushDone = true
			nt.pc = dpcUnlinkPush
			return mk("FULFIL", c)
		}
		nt.pushDone = false
		nt.pc = dpcUnlinkPush
		return mk("fulfil-miss", c)
	case dpcUnlinkPush:
		c := s.clone()
		nt := &c.Threads[t]
		label := "unlink-miss"
		if s.Top == th.h && th.h != -1 {
			c.Top = s.Nodes[th.h].Next
			label = "unlink"
		}
		if th.pushDone {
			nt.retOK = true
			nt.pc = dpcRet
		} else {
			s.retry(c, t, dpcPushRead)
		}
		return mk(label, c)
	case dpcPopRead:
		c := s.clone()
		nt := &c.Threads[t]
		nt.h = s.Top
		switch {
		case s.Top == -1:
			// Install a reservation on the empty stack.
			var hole int = dsOpen
			c.Nodes = append(c.Nodes, dsNode{IsRes: true, Tid: id, Hole: hole, Next: s.Top})
			nt.n = len(c.Nodes) - 1
			nt.pc = dpcResInstall
		case s.Nodes[s.Top].IsRes:
			if s.Nodes[s.Top].Hole == dsOpen {
				// Reservations waiting: stack our own on top.
				c.Nodes = append(c.Nodes, dsNode{IsRes: true, Tid: id, Hole: dsOpen, Next: s.Top})
				nt.n = len(c.Nodes) - 1
				nt.pc = dpcResInstall
			} else {
				// Settled: help unlink via the shared push-unlink step.
				nt.pushDone = false
				nt.pc = dpcUnlinkPop
			}
		default:
			nt.pc = dpcPopCAS
		}
		return mk("read-top", c)
	case dpcUnlinkPop:
		c := s.clone()
		label := "unlink-miss"
		if s.Top == th.h && th.h != -1 {
			c.Top = s.Nodes[th.h].Next
			label = "unlink"
		}
		s.retry(c, t, dpcPopRead)
		return mk(label, c)
	case dpcPopCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = s.Nodes[th.h].Next
			v := s.Nodes[th.h].Data
			c.Trace = append(c.Trace, spec.PopElement(obj, id, true, v))
			nt.retOK, nt.retV = true, v
			nt.pc = dpcRet
			return mk("POP", c)
		}
		s.retry(c, t, dpcPopRead)
		return mk("pop-miss", c)
	case dpcResInstall:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Top == th.h {
			c.Top = th.n
			nt.pc = dpcAwait
			return mk("RESERVE", c)
		}
		s.retry(c, t, dpcPopRead)
		return mk("reserve-miss", c)
	case dpcAwait:
		c := s.clone()
		nt := &c.Threads[t]
		r := s.Nodes[th.n]
		if r.Fulfilled {
			// Help unlink our settled reservation, then return the value.
			if s.Top == th.n {
				c.Top = r.Next
			}
			nt.retOK, nt.retV = true, r.Data
			nt.pc = dpcRet
			return mk("fulfilled", c)
		}
		// Patience exhausted at this schedule point: cancel.
		c.Nodes[th.n].Hole = dsCancelled
		c.Trace = append(c.Trace, spec.PopElement(obj, id, false, 0))
		if s.Top == th.n {
			c.Top = r.Next
		}
		nt.retOK, nt.retV = false, 0
		nt.pc = dpcRet
		return mk("CANCEL", c)
	case dpcRet:
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsPush {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodPush, history.Bool(true)))
		} else {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodPop, history.Pair(th.retOK, th.retV)))
		}
		nt.op++
		nt.h, nt.n, nt.pushDone, nt.round = -1, -1, false, 0
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = dpcIdle
		} else {
			nt.pc = dpcDone
		}
		return mk("res", c)
	default:
		return sched.Succ{}, false
	}
}
