package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// ISConfig describes the immediate-snapshot model: participant t+1 writes
// Values[t] and descends levels. The model is register-accurate: each
// level write and each read of another participant's level register is its
// own atomic step, so the exploration checks the Borowsky-Gafni algorithm
// under non-atomic scans — the property its correctness argument actually
// hinges on.
type ISConfig struct {
	// Object is the snapshot's id (default "IS").
	Object history.ObjectID
	// Values[t] is the value participant t+1 writes (one-shot).
	Values []int64
}

// Program counters of the immediate-snapshot step machine.
const (
	ipcIdle     = iota // emit inv, write own value
	ipcSetLevel        // level[p] = lev
	ipcScan            // read level[scanIdx]
	ipcCheck           // |members| == lev ? return : descend
	ipcRet
	ipcDoneIS
)

type isThread struct {
	pc      int
	lev     int
	scanIdx int
	members int // bitmask of participants seen at level <= lev
	retCard int
}

// ISState is one state of the immediate-snapshot model.
type ISState struct {
	cfg     *ISConfig
	Threads []isThread
	Levels  []int
	Trace   trace.Trace // derived blocks appended at return, in return order
	Hist    history.History
}

var _ sched.State = (*ISState)(nil)

// NewSnapshot returns the initial state of the immediate-snapshot model.
func NewSnapshot(cfg ISConfig) *ISState {
	if cfg.Object == "" {
		cfg.Object = "IS"
	}
	n := len(cfg.Values)
	st := &ISState{cfg: &cfg, Levels: make([]int, n)}
	for i := range st.Levels {
		st.Levels[i] = n + 1
	}
	for range cfg.Values {
		st.Threads = append(st.Threads, isThread{pc: ipcIdle})
	}
	return st
}

// Object returns the modelled snapshot's object id.
func (s *ISState) Object() history.ObjectID { return s.cfg.Object }

// History implements HT.
func (s *ISState) History() history.History { return s.Hist }

// AuxTrace returns the trace of return-ordered operations; use Project to
// group them into blocks by cardinality before checking the spec.
func (s *ISState) AuxTrace() trace.Trace { return s.Trace }

// Project groups the return-ordered singleton operations into blocks by
// view cardinality, ordered by cardinality — the quiescent derivation of
// DeriveTrace, inside the model.
func (s *ISState) Project(tr trace.Trace) trace.Trace {
	byCard := map[int64][]trace.Operation{}
	var cards []int64
	for _, el := range tr {
		op := el.Ops[0]
		c := op.Ret.N
		if len(byCard[c]) == 0 {
			cards = append(cards, c)
		}
		byCard[c] = append(byCard[c], op)
	}
	sort.Slice(cards, func(i, j int) bool { return cards[i] < cards[j] })
	var out trace.Trace
	for _, c := range cards {
		el, err := trace.NewElement(byCard[c]...)
		if err != nil {
			// Invalid block (e.g. duplicate thread): surface it as an
			// impossible trace so the spec check fails loudly.
			return trace.Trace{}
		}
		out = append(out, el)
	}
	return out
}

// Key implements sched.State.
func (s *ISState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%d|", th.pc, th.lev, th.scanIdx, th.members, th.retCard)
	}
	for _, l := range s.Levels {
		b.WriteString(strconv.Itoa(l))
		b.WriteByte(',')
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *ISState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != ipcDoneIS {
			return false
		}
	}
	return true
}

func (s *ISState) clone() *ISState {
	return &ISState{
		cfg:     s.cfg,
		Threads: append([]isThread(nil), s.Threads...),
		Levels:  append([]int(nil), s.Levels...),
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

// Successors implements sched.State.
func (s *ISState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

func (s *ISState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	id := tid(t)
	obj := s.cfg.Object
	n := len(s.cfg.Values)
	mk := func(label string, next *ISState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case ipcIdle:
		// inv + value write (the value register is written once, before
		// any level activity, so folding them is safe).
		c := s.clone()
		c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodUpdate, history.Int(s.cfg.Values[t])))
		nt := &c.Threads[t]
		nt.lev = n
		nt.pc = ipcSetLevel
		return mk("inv", c)
	case ipcSetLevel:
		// level[p] = lev — one register write.
		c := s.clone()
		c.Levels[t] = th.lev
		nt := &c.Threads[t]
		nt.scanIdx = 0
		nt.members = 0
		nt.pc = ipcScan
		return mk(fmt.Sprintf("set-level[%d]", th.lev), c)
	case ipcScan:
		// Read level[scanIdx] — one register read per step.
		c := s.clone()
		nt := &c.Threads[t]
		if s.Levels[th.scanIdx] <= th.lev {
			nt.members |= 1 << th.scanIdx
		}
		nt.scanIdx++
		if nt.scanIdx == n {
			nt.pc = ipcCheck
		}
		return mk("read-level", c)
	case ipcCheck:
		// Local: count members; terminate at |members| == lev.
		c := s.clone()
		nt := &c.Threads[t]
		count := 0
		for q := 0; q < n; q++ {
			if th.members&(1<<q) != 0 {
				count++
			}
		}
		if count == th.lev {
			nt.retCard = count
			nt.pc = ipcRet
			return mk("terminate", c)
		}
		nt.lev--
		if nt.lev < 1 {
			// Unreachable if the algorithm is correct: the exploration
			// flags it as a deadlocked thread.
			nt.pc = ipcDoneIS
			nt.retCard = -1
			return mk("fell-through", c)
		}
		nt.pc = ipcSetLevel
		return mk("descend", c)
	case ipcRet:
		c := s.clone()
		nt := &c.Threads[t]
		// Self-inclusion is checked structurally here: the view must
		// contain the caller.
		if th.members&(1<<t) == 0 {
			nt.retCard = -1 // flagged by the terminal check
		}
		c.Trace = append(c.Trace, trace.Singleton(trace.Operation{
			Thread: id, Object: obj, Method: spec.MethodUpdate,
			Arg: history.Int(s.cfg.Values[t]), Ret: history.Pair(true, int64(th.retCard)),
		}))
		c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodUpdate, history.Pair(true, int64(th.retCard))))
		nt.pc = ipcDoneIS
		return mk("res", c)
	default:
		return sched.Succ{}, false
	}
}
