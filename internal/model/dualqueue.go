package model

import (
	"fmt"
	"strconv"
	"strings"

	"calgo/internal/history"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// QOp is one operation over the dual queue: enq(V) or deq.
type QOp struct {
	IsEnq bool
	V     int64
}

// Enq builds an enqueue operation.
func Enq(v int64) QOp { return QOp{IsEnq: true, V: v} }

// Deq builds a dequeue operation.
func Deq() QOp { return QOp{} }

// DQConfig describes a bounded client program over the dual queue. The
// model mirrors internal/objects/dualqueue step by step — in particular
// the tail-kind mode decision whose head-kind variant has a FIFO-breaking
// race (see the package comment there); exploring this model checks that
// design exhaustively. Deq uses the Try semantics: a waiting reservation
// is either fulfilled or cancels at a later schedule point.
type DQConfig struct {
	// Object is the queue's id (default "DQ").
	Object history.ObjectID
	// Retries bounds the CAS retry loops (default 2).
	Retries int
	// Programs[t] lists the operations of thread t+1.
	Programs [][]QOp
	// HeadKindBug, when set, decides the enqueue mode by the HEAD's first
	// node instead of the tail — the defective variant; exploration must
	// catch it via the terminal CAL check.
	HeadKindBug bool
}

// Program counters of the dual-queue step machine. The head/first reads
// and the tail read are SEPARATE atomic steps: the staleness window
// between them is exactly what makes the head-kind mode decision unsound
// (HeadKindBug) and what the tail-kind decision must survive.
const (
	qdIdle       = iota
	qdEnqRead    // read head and head.next
	qdEnqDecide  // read tail, decide mode, allocate node
	qdEnqCAS     // CAS(tail.next, nil, n)
	qdEnqSwing   // help CAS(&tail, tail, n) then return
	qdFulfil     // CAS(first.hole, open, v) + pair log
	qdFulfilHead // CAS(&head, head, first) then return or retry
	qdDeqRead    // read head and head.next
	qdDeqDecide  // read tail, decide mode, maybe allocate reservation
	qdDeqCAS     // CAS(&head, head, first) for a data dequeue
	qdResCAS     // CAS(tail.next, nil, r)
	qdResSwing   // help CAS(&tail, tail, r) then await
	qdAwait      // fulfilled -> return; else cancel
	qdRet
	qdHaltQ
	qdDoneQ
)

type dqNode struct {
	IsRes     bool
	Tid       history.ThreadID
	Data      int64
	Hole      int // dsNoHole (data), dsOpen, dsCancelled, 1 = fulfilled
	Next      int // node index or -1
	Fulfilled bool
}

type dqThread struct {
	pc    int
	op    int
	round int
	head  int // head snapshot
	tail  int // tail snapshot
	first int // head.next snapshot
	n     int // own node
	retOK bool
	retV  int64
}

// DQState is one state of the dual-queue model.
type DQState struct {
	cfg     *DQConfig
	Threads []dqThread
	Nodes   []dqNode // Nodes[0] is the initial dummy
	Head    int
	Tail    int
	Trace   trace.Trace
	Hist    history.History
}

var _ sched.State = (*DQState)(nil)

// NewDualQueue returns the initial state of the dual-queue model.
func NewDualQueue(cfg DQConfig) *DQState {
	if cfg.Object == "" {
		cfg.Object = "DQ"
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	st := &DQState{cfg: &cfg}
	st.Nodes = []dqNode{{Hole: dsNoHole, Next: -1}} // dummy
	st.Head, st.Tail = 0, 0
	for range cfg.Programs {
		st.Threads = append(st.Threads, dqThread{pc: qdIdle, head: -1, tail: -1, first: -1, n: -1})
	}
	return st
}

// Object returns the modelled queue's object id.
func (s *DQState) Object() history.ObjectID { return s.cfg.Object }

// History implements HT.
func (s *DQState) History() history.History { return s.Hist }

// AuxTrace implements HT.
func (s *DQState) AuxTrace() trace.Trace { return s.Trace }

// Key implements sched.State.
func (s *DQState) Key() string {
	var b strings.Builder
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "%d.%d.%d.%d.%d.%d.%d.%t.%d|", th.pc, th.op, th.round, th.head, th.tail, th.first, th.n, th.retOK, th.retV)
	}
	b.WriteString("h")
	b.WriteString(strconv.Itoa(s.Head))
	b.WriteString("t")
	b.WriteString(strconv.Itoa(s.Tail))
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, ";%t.%d.%d.%d.%d.%t", n.IsRes, n.Tid, n.Data, n.Hole, n.Next, n.Fulfilled)
	}
	b.WriteByte('#')
	b.WriteString(s.Trace.Key())
	b.WriteByte('#')
	b.WriteString(history.Format(s.Hist))
	return b.String()
}

// Done implements sched.State.
func (s *DQState) Done() bool {
	for _, th := range s.Threads {
		if th.pc != qdDoneQ {
			return false
		}
	}
	return true
}

func (s *DQState) clone() *DQState {
	return &DQState{
		cfg:     s.cfg,
		Threads: append([]dqThread(nil), s.Threads...),
		Nodes:   append([]dqNode(nil), s.Nodes...),
		Head:    s.Head,
		Tail:    s.Tail,
		Trace:   append(trace.Trace(nil), s.Trace...),
		Hist:    append(history.History(nil), s.Hist...),
	}
}

func (s *DQState) qOpOf(t int) QOp { return s.cfg.Programs[t][s.Threads[t].op] }

func (s *DQState) qRetry(c *DQState, t, backTo int) {
	nt := &c.Threads[t]
	nt.round++
	if nt.round >= s.cfg.Retries {
		nt.pc = qdHaltQ
		return
	}
	nt.pc = backTo
}

// Successors implements sched.State.
func (s *DQState) Successors() []sched.Succ {
	var out []sched.Succ
	for t := range s.Threads {
		if succ, ok := s.step(t); ok {
			out = append(out, succ)
		}
	}
	return out
}

func (s *DQState) step(t int) (sched.Succ, bool) {
	th := s.Threads[t]
	if th.pc == qdDoneQ || th.pc == qdHaltQ {
		return sched.Succ{}, false
	}
	id := tid(t)
	obj := s.cfg.Object
	op := s.qOpOf(t)
	mk := func(label string, next *DQState) (sched.Succ, bool) {
		return sched.Succ{Thread: t, Label: label, Next: next}, true
	}
	switch th.pc {
	case qdIdle:
		c := s.clone()
		nt := &c.Threads[t]
		nt.round = 0
		if op.IsEnq {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodEnq, history.Int(op.V)))
			nt.pc = qdEnqRead
		} else {
			c.Hist = append(c.Hist, history.Inv(id, obj, spec.MethodDeq, history.Unit()))
			nt.pc = qdDeqRead
		}
		return mk("inv", c)
	case qdEnqRead:
		c := s.clone()
		nt := &c.Threads[t]
		nt.head = s.Head
		nt.first = s.Nodes[s.Head].Next
		nt.pc = qdEnqDecide
		return mk("read-head", c)
	case qdEnqDecide:
		c := s.clone()
		nt := &c.Threads[t]
		nt.tail = s.Tail
		appendMode := s.Tail == th.head || !s.Nodes[s.Tail].IsRes
		if s.cfg.HeadKindBug {
			// Defect: decide by the (possibly stale) head-side snapshot.
			appendMode = th.first == -1 || !s.Nodes[th.first].IsRes
		}
		if appendMode {
			if s.Nodes[s.Tail].Next != -1 {
				// Tail lagging: help swing, restart the attempt.
				c.Tail = s.Nodes[s.Tail].Next
				nt.pc = qdEnqRead
				return mk("tail-swing", c)
			}
			c.Nodes = append(c.Nodes, dqNode{Tid: id, Data: op.V, Hole: dsNoHole, Next: -1})
			nt.n = len(c.Nodes) - 1
			nt.pc = qdEnqCAS
			return mk("decide-append", c)
		}
		if th.first == -1 || !s.Nodes[th.first].IsRes {
			nt.pc = qdEnqRead // inconsistent snapshot: restart
			return mk("decide-retry", c)
		}
		nt.pc = qdFulfil
		return mk("decide-fulfil", c)
	case qdEnqCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Nodes[th.tail].Next == -1 {
			c.Nodes[th.tail].Next = th.n
			c.Trace = append(c.Trace, trace.Singleton(trace.Operation{
				Thread: id, Object: obj, Method: spec.MethodEnq,
				Arg: history.Int(op.V), Ret: history.Bool(true),
			}))
			nt.pc = qdEnqSwing
			return mk("ENQ", c)
		}
		s.qRetry(c, t, qdEnqRead)
		return mk("enq-miss", c)
	case qdEnqSwing:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Tail == th.tail {
			c.Tail = th.n
		}
		nt.retOK = true
		nt.pc = qdRet
		return mk("tail-swing", c)
	case qdFulfil:
		c := s.clone()
		nt := &c.Threads[t]
		r := s.Nodes[th.first]
		if r.Hole == dsOpen {
			c.Nodes[th.first].Hole = 1
			c.Nodes[th.first].Fulfilled = true
			c.Nodes[th.first].Data = op.V
			c.Trace = append(c.Trace, spec.QFulfilmentElement(obj, id, op.V, r.Tid))
			nt.retOK = true
			nt.pc = qdFulfilHead
			return mk("FULFIL", c)
		}
		nt.retOK = false
		nt.pc = qdFulfilHead
		return mk("fulfil-miss", c)
	case qdFulfilHead:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Head == th.head {
			c.Head = th.first // dequeue the settled reservation
		}
		if th.retOK {
			nt.pc = qdRet
		} else {
			s.qRetry(c, t, qdEnqRead)
		}
		return mk("head-swing", c)
	case qdDeqRead:
		c := s.clone()
		nt := &c.Threads[t]
		nt.head = s.Head
		nt.first = s.Nodes[s.Head].Next
		nt.pc = qdDeqDecide
		return mk("read-head", c)
	case qdDeqDecide:
		c := s.clone()
		nt := &c.Threads[t]
		nt.tail = s.Tail
		reserveMode := s.Tail == th.head || s.Nodes[s.Tail].IsRes
		if s.cfg.HeadKindBug {
			reserveMode = th.first == -1 || s.Nodes[th.first].IsRes
		}
		if reserveMode {
			if s.Nodes[s.Tail].Next != -1 {
				c.Tail = s.Nodes[s.Tail].Next
				nt.pc = qdDeqRead
				return mk("tail-swing", c)
			}
			c.Nodes = append(c.Nodes, dqNode{IsRes: true, Tid: id, Hole: dsOpen, Next: -1})
			nt.n = len(c.Nodes) - 1
			nt.pc = qdResCAS
			return mk("decide-reserve", c)
		}
		if th.first == -1 || s.Nodes[th.first].IsRes {
			// Inconsistent snapshot or dead reservation: help and restart.
			if th.first != -1 && s.Nodes[th.first].IsRes &&
				s.Nodes[th.first].Hole != dsOpen && s.Head == th.head {
				c.Head = th.first
			}
			nt.pc = qdDeqRead
			return mk("decide-retry", c)
		}
		nt.pc = qdDeqCAS
		return mk("decide-deq", c)
	case qdDeqCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Head == th.head {
			c.Head = th.first
			v := s.Nodes[th.first].Data
			c.Trace = append(c.Trace, trace.Singleton(trace.Operation{
				Thread: id, Object: obj, Method: spec.MethodDeq,
				Arg: history.Unit(), Ret: history.Pair(true, v),
			}))
			nt.retOK, nt.retV = true, v
			nt.pc = qdRet
			return mk("DEQ", c)
		}
		s.qRetry(c, t, qdDeqRead)
		return mk("deq-miss", c)
	case qdResCAS:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Nodes[th.tail].Next == -1 {
			c.Nodes[th.tail].Next = th.n
			nt.pc = qdResSwing
			return mk("RESERVE", c)
		}
		s.qRetry(c, t, qdDeqRead)
		return mk("reserve-miss", c)
	case qdResSwing:
		c := s.clone()
		nt := &c.Threads[t]
		if s.Tail == th.tail {
			c.Tail = th.n
		}
		nt.pc = qdAwait
		return mk("tail-swing", c)
	case qdAwait:
		c := s.clone()
		nt := &c.Threads[t]
		r := s.Nodes[th.n]
		if r.Fulfilled {
			nt.retOK, nt.retV = true, r.Data
			nt.pc = qdRet
			return mk("fulfilled", c)
		}
		c.Nodes[th.n].Hole = dsCancelled
		c.Trace = append(c.Trace, trace.Singleton(trace.Operation{
			Thread: id, Object: obj, Method: spec.MethodDeq,
			Arg: history.Unit(), Ret: history.Pair(false, 0),
		}))
		nt.retOK, nt.retV = false, 0
		nt.pc = qdRet
		return mk("CANCEL", c)
	case qdRet:
		c := s.clone()
		nt := &c.Threads[t]
		if op.IsEnq {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodEnq, history.Bool(true)))
		} else {
			c.Hist = append(c.Hist, history.Res(id, obj, spec.MethodDeq, history.Pair(th.retOK, th.retV)))
		}
		nt.op++
		nt.head, nt.tail, nt.first, nt.n, nt.round = -1, -1, -1, -1, 0
		if nt.op < len(s.cfg.Programs[t]) {
			nt.pc = qdIdle
		} else {
			nt.pc = qdDoneQ
		}
		return mk("res", c)
	default:
		return sched.Succ{}, false
	}
}
