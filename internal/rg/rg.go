// Package rg implements the rely/guarantee side of the paper's proof
// (Figure 4): every shared-state transition of the exchanger must be
// justified by one of the actions INIT, CLEAN, PASS, XCHG or FAIL (plus
// thread-local steps that leave the shared state untouched, and offer
// allocations, which publish nothing). Installing Justify as the
// exploration's transition hook checks that every thread's every step lies
// within its guarantee G^t — and hence, by G^t ⇒ R^t' for t ≠ t', within
// every other thread's rely.
package rg

import (
	"fmt"

	"calgo/internal/history"
	"calgo/internal/model"
	"calgo/internal/sched"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Action names, as in Figure 4. Tau covers steps with no shared effect
// (reads, CAS misses, local branching, interface inv/res events) and Alloc
// covers `new Offer(...)`, which touches only unpublished memory.
const (
	ActionInit  = "INIT"
	ActionClean = "CLEAN"
	ActionPass  = "PASS"
	ActionXchg  = "XCHG"
	ActionFail  = "FAIL"
	ActionAlloc = "alloc"
	ActionTau   = "tau"
)

// Justify checks one transition of the exchanger model against the
// guarantee of the stepping thread, returning the matched action name.
func Justify(pre, post *model.ExchangerState, t history.ThreadID) (string, error) {
	switch {
	case isTau(pre, post):
		return ActionTau, nil
	case isAlloc(pre, post, t):
		return ActionAlloc, nil
	case isInit(pre, post, t):
		return ActionInit, nil
	case isClean(pre, post):
		return ActionClean, nil
	case isPass(pre, post, t):
		return ActionPass, nil
	case isXchg(pre, post, t):
		return ActionXchg, nil
	case isFail(pre, post, t):
		return ActionFail, nil
	default:
		return "", fmt.Errorf("rg: transition of %s matches no action in G^t", t)
	}
}

// Hook adapts Justify to a sched transition hook. If strict labels are
// requested, the action matched by shape must also agree with the model's
// own label for CAS-success steps (catching instrumentation drift).
func Hook(strict bool) func(sched.State, sched.Succ) error {
	named := map[string]bool{
		ActionInit: true, ActionClean: true, ActionPass: true,
		ActionXchg: true, ActionFail: true,
	}
	return func(from sched.State, s sched.Succ) error {
		pre, ok := from.(*model.ExchangerState)
		if !ok {
			return fmt.Errorf("rg: hook applied to %T", from)
		}
		post, ok := s.Next.(*model.ExchangerState)
		if !ok {
			return fmt.Errorf("rg: successor is %T", s.Next)
		}
		action, err := Justify(pre, post, history.ThreadID(s.Thread+1))
		if err != nil {
			return fmt.Errorf("%w (labelled %q)", err, s.Label)
		}
		if strict && (named[action] || named[s.Label]) && action != s.Label {
			return fmt.Errorf("rg: shape matches %s but step is labelled %s", action, s.Label)
		}
		return nil
	}
}

// sameOffers reports whether the offer heaps agree on the first n entries.
func sameOffers(pre, post *model.ExchangerState, skipHole int) bool {
	if len(post.Offers) != len(pre.Offers) {
		return false
	}
	for i := range pre.Offers {
		a, b := pre.Offers[i], post.Offers[i]
		if i == skipHole {
			a.Hole, b.Hole = 0, 0
		}
		if a != b {
			return false
		}
	}
	return true
}

func sameTrace(pre, post *model.ExchangerState) bool {
	return post.AuxTrace().Equal(pre.AuxTrace())
}

// traceGrewBy reports whether post's trace is pre's plus exactly el.
func traceGrewBy(pre, post *model.ExchangerState, el trace.Element) bool {
	tp, tq := pre.AuxTrace(), post.AuxTrace()
	if len(tq) != len(tp)+1 {
		return false
	}
	if !trace.Trace(tq[:len(tp)]).Equal(tp) {
		return false
	}
	return tq[len(tq)-1].Equal(el)
}

// isTau: no shared mutation at all (G, offers, 𝒯 unchanged).
func isTau(pre, post *model.ExchangerState) bool {
	return pre.G == post.G && sameOffers(pre, post, -1) && sameTrace(pre, post)
}

// isAlloc: one fresh unpublished offer of thread t appended; rest same.
func isAlloc(pre, post *model.ExchangerState, t history.ThreadID) bool {
	if len(post.Offers) != len(pre.Offers)+1 || pre.G != post.G || !sameTrace(pre, post) {
		return false
	}
	for i := range pre.Offers {
		if pre.Offers[i] != post.Offers[i] {
			return false
		}
	}
	fresh := post.Offers[len(post.Offers)-1]
	return fresh.Tid == t && fresh.Hole == model.HoleNull
}

// isInit is INIT^t: [∃n. g = null ∧ n.tid = t ∧ n.hole = null ∧ g' = n]_g.
func isInit(pre, post *model.ExchangerState, t history.ThreadID) bool {
	if pre.G != -1 || post.G == -1 || !sameOffers(pre, post, -1) || !sameTrace(pre, post) {
		return false
	}
	n := post.Offers[post.G]
	return n.Tid == t && n.Hole == model.HoleNull
}

// isClean is CLEAN^t: [g.hole ≠ null ∧ g' = null]_g.
func isClean(pre, post *model.ExchangerState) bool {
	if pre.G == -1 || post.G != -1 || !sameOffers(pre, post, -1) || !sameTrace(pre, post) {
		return false
	}
	return pre.Offers[pre.G].Hole != model.HoleNull
}

// isPass is PASS^t: [g.hole = null ∧ g.tid = t ∧ g.hole' = fail]_{g.hole},
// extended (per §5's prose) with the auxiliary assignment logging the
// failed operation.
func isPass(pre, post *model.ExchangerState, t history.ThreadID) bool {
	if pre.G == -1 || post.G != pre.G || !sameOffers(pre, post, pre.G) {
		return false
	}
	own := pre.Offers[pre.G]
	if own.Tid != t || own.Hole != model.HoleNull || post.Offers[pre.G].Hole != model.HoleFail {
		return false
	}
	return traceGrewBy(pre, post, spec.FailElement(pre.Object(), t, own.Data))
}

// isXchg is XCHG^t: [∃n ≠ fail. n.tid = t ∧ g.hole = null ∧ g.tid ≠ t ∧
// g.hole' = n ∧ 𝒯' = 𝒯 · E.swap(g.tid, g.data, t, n.data)]_{g.hole, 𝒯}.
func isXchg(pre, post *model.ExchangerState, t history.ThreadID) bool {
	if pre.G == -1 || post.G != pre.G || !sameOffers(pre, post, pre.G) {
		return false
	}
	cur := pre.Offers[pre.G]
	if cur.Tid == t || cur.Hole != model.HoleNull {
		return false
	}
	holeAfter := post.Offers[pre.G].Hole
	if holeAfter < 0 || holeAfter >= len(post.Offers) {
		return false
	}
	n := post.Offers[holeAfter]
	if n.Tid != t {
		return false
	}
	return traceGrewBy(pre, post, spec.SwapElement(pre.Object(), cur.Tid, cur.Data, t, n.Data))
}

// isFail is FAIL^t: [∃d. 𝒯' = 𝒯 · (E.{(t, ex(d) ▷ false, d)})]_𝒯.
func isFail(pre, post *model.ExchangerState, t history.ThreadID) bool {
	if pre.G != post.G || !sameOffers(pre, post, -1) {
		return false
	}
	tq := post.AuxTrace()
	if len(tq) != len(pre.AuxTrace())+1 {
		return false
	}
	last := tq[len(tq)-1]
	if last.Size() != 1 || last.Ops[0].Thread != t {
		return false
	}
	op := last.Ops[0]
	return op.Method == spec.MethodExchange && op.Ret == history.Pair(false, op.Arg.N)
}
