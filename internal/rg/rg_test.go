package rg_test

import (
	"context"
	"strings"
	"testing"

	"calgo/internal/history"
	"calgo/internal/model"
	"calgo/internal/rg"
	"calgo/internal/sched"
)

// walk collects every transition of the model's full state graph.
func walk(t *testing.T, cfg model.ExchangerConfig, visit func(pre, post *model.ExchangerState, s sched.Succ)) {
	t.Helper()
	init := model.NewExchanger(cfg)
	_, err := sched.Explore(context.Background(),
		init,
		sched.WithTransition(func(from sched.State, s sched.Succ) error {
			visit(from.(*model.ExchangerState), s.Next.(*model.ExchangerState), s)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
}

// TestJustifyMatchesLabels checks on the full graph of the Figure 3
// program that every transition is justified and that shape-matched action
// names coincide with the model's own labels for the named actions.
func TestJustifyMatchesLabels(t *testing.T) {
	named := map[string]bool{
		rg.ActionInit: true, rg.ActionClean: true, rg.ActionPass: true,
		rg.ActionXchg: true, rg.ActionFail: true,
	}
	seen := map[string]int{}
	walk(t, model.ExchangerConfig{Programs: [][]int64{{3}, {4}, {7}}},
		func(pre, post *model.ExchangerState, s sched.Succ) {
			action, err := rg.Justify(pre, post, history.ThreadID(s.Thread+1))
			if err != nil {
				t.Fatalf("unjustified transition %q: %v", s.Label, err)
			}
			seen[action]++
			if named[s.Label] && action != s.Label {
				t.Fatalf("label %q justified as %q", s.Label, action)
			}
		})
	// Every Figure 4 action must actually occur somewhere in the graph.
	for a := range named {
		if seen[a] == 0 {
			t.Errorf("action %s never exercised", a)
		}
	}
	t.Logf("action counts: %v", seen)
}

// TestJustifyRejectsWrongThread: an XCHG justified for the stepping thread
// must not be attributable to its partner (the guarantee is per-thread).
func TestJustifyRejectsWrongThread(t *testing.T) {
	checked := 0
	walk(t, model.ExchangerConfig{Programs: [][]int64{{3}, {4}}},
		func(pre, post *model.ExchangerState, s sched.Succ) {
			if s.Label != rg.ActionXchg {
				return
			}
			checked++
			other := history.ThreadID((s.Thread+1)%2 + 1)
			if action, err := rg.Justify(pre, post, other); err == nil {
				t.Fatalf("XCHG of t%d wrongly justified for %s as %s", s.Thread+1, other, action)
			}
		})
	if checked == 0 {
		t.Error("no XCHG transitions found")
	}
}

// TestJustifyRejectsWrongThreadPassInit: INIT and PASS are also
// thread-attributed.
func TestJustifyRejectsWrongThreadPassInit(t *testing.T) {
	walk(t, model.ExchangerConfig{Programs: [][]int64{{3}, {4}}},
		func(pre, post *model.ExchangerState, s sched.Succ) {
			if s.Label != rg.ActionInit && s.Label != rg.ActionPass {
				return
			}
			other := history.ThreadID((s.Thread+1)%2 + 1)
			action, err := rg.Justify(pre, post, other)
			if err == nil && action != rg.ActionTau && action != rg.ActionAlloc {
				t.Fatalf("%s of t%d justified for %s as %s", s.Label, s.Thread+1, other, action)
			}
		})
}

func TestHookTypeErrors(t *testing.T) {
	hook := rg.Hook(true)
	if err := hook(badState{}, sched.Succ{Next: badState{}}); err == nil {
		t.Error("hook must reject foreign state types")
	}
	pre := model.NewExchanger(model.ExchangerConfig{Programs: [][]int64{{1}}})
	if err := hook(pre, sched.Succ{Next: badState{}}); err == nil || !strings.Contains(err.Error(), "successor") {
		t.Errorf("hook must reject foreign successors: %v", err)
	}
}

type badState struct{}

func (badState) Key() string              { return "" }
func (badState) Successors() []sched.Succ { return nil }
func (badState) Done() bool               { return true }

// TestLateLogBreaksJustification: the "late-swap-log" defect makes the
// hole CAS unjustifiable — the exact obligation the XCHG action encodes.
func TestLateLogBreaksJustification(t *testing.T) {
	init := model.NewExchanger(model.ExchangerConfig{
		Programs: [][]int64{{3}, {4}},
		Bug:      "late-swap-log",
	})
	_, err := sched.Explore(context.Background(), init, sched.WithTransition(rg.Hook(false)))
	if err == nil {
		t.Fatal("late swap logging must break rely/guarantee justification")
	}
	if !strings.Contains(err.Error(), "matches no action") {
		t.Errorf("unexpected error: %v", err)
	}
}
