package trace

import (
	"strings"
	"testing"

	"calgo/internal/history"
)

const (
	objE history.ObjectID = "E"
	objS history.ObjectID = "S"
	exch history.Method   = "exchange"
)

func exOp(t history.ThreadID, arg int64, ok bool, ret int64) Operation {
	return Operation{Thread: t, Object: objE, Method: exch, Arg: history.Int(arg), Ret: history.Pair(ok, ret)}
}

// swapElem is the paper's E.swap(t,v,t',v') abbreviation.
func swapElem(t history.ThreadID, v int64, u history.ThreadID, w int64) Element {
	return MustElement(exOp(t, v, true, w), exOp(u, w, true, v))
}

func failElem(t history.ThreadID, v int64) Element {
	return MustElement(exOp(t, v, false, v))
}

func TestNewElementValidation(t *testing.T) {
	tests := []struct {
		name    string
		ops     []Operation
		wantErr string
	}{
		{"empty", nil, "empty"},
		{"singleton ok", []Operation{exOp(1, 3, false, 3)}, ""},
		{"pair ok", []Operation{exOp(1, 3, true, 4), exOp(2, 4, true, 3)}, ""},
		{"duplicate op", []Operation{exOp(1, 3, false, 3), exOp(1, 3, false, 3)}, "duplicate"},
		{"same thread twice", []Operation{exOp(1, 3, true, 4), exOp(1, 4, true, 3)}, "thread"},
		{"mixed objects", []Operation{
			exOp(1, 3, true, 4),
			{Thread: 2, Object: objS, Method: "push", Arg: history.Int(1), Ret: history.Bool(true)},
		}, "mixes objects"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := NewElement(tt.ops...)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("NewElement: %v", err)
				}
				if e.Size() != len(tt.ops) {
					t.Errorf("Size() = %d, want %d", e.Size(), len(tt.ops))
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("NewElement error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestElementCanonicalOrder(t *testing.T) {
	a := MustElement(exOp(2, 4, true, 3), exOp(1, 3, true, 4))
	b := MustElement(exOp(1, 3, true, 4), exOp(2, 4, true, 3))
	if !a.Equal(b) {
		t.Error("element equality must be order-insensitive")
	}
	if a.Key() != b.Key() {
		t.Error("canonical keys must match")
	}
}

func TestMustElementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustElement on empty input should panic")
		}
	}()
	MustElement()
}

func TestSingleton(t *testing.T) {
	op := exOp(3, 7, false, 7)
	e := Singleton(op)
	if e.Size() != 1 || e.Object != objE || e.Ops[0] != op {
		t.Errorf("Singleton = %v", e)
	}
}

func TestMentions(t *testing.T) {
	e := swapElem(1, 3, 2, 4)
	if !e.Mentions(1) || !e.Mentions(2) || e.Mentions(3) {
		t.Error("Mentions wrong")
	}
}

func TestTraceProjections(t *testing.T) {
	sOp := Operation{Thread: 5, Object: objS, Method: "push", Arg: history.Int(9), Ret: history.Bool(true)}
	tr := Trace{swapElem(1, 3, 2, 4), failElem(3, 7), Singleton(sOp)}

	// T|t returns elements mentioning t, including partners' operations.
	t1 := tr.ByThread(1)
	if len(t1) != 1 || t1[0].Size() != 2 {
		t.Errorf("T|t1 = %v; partner ops must be retained", t1)
	}
	if got := len(tr.ByThread(3)); got != 1 {
		t.Errorf("|T|t3| = %d, want 1", got)
	}
	if got := len(tr.ByThread(9)); got != 0 {
		t.Errorf("|T|t9| = %d, want 0", got)
	}
	if got := len(tr.ByObject(objE)); got != 2 {
		t.Errorf("|T|E| = %d, want 2", got)
	}
	if got := len(tr.ByObject(objS)); got != 1 {
		t.Errorf("|T|S| = %d, want 1", got)
	}
}

func TestTraceOperationsAndEqual(t *testing.T) {
	tr := Trace{swapElem(1, 3, 2, 4), failElem(3, 7)}
	if got := len(tr.Operations()); got != 3 {
		t.Errorf("Operations() len = %d, want 3", got)
	}
	same := Trace{swapElem(2, 4, 1, 3), failElem(3, 7)} // canonical ordering
	if !tr.Equal(same) {
		t.Error("traces should be equal up to element canonicalization")
	}
	if tr.Equal(Trace{failElem(3, 7), swapElem(1, 3, 2, 4)}) {
		t.Error("element order matters for trace equality")
	}
	if tr.Equal(tr[:1]) {
		t.Error("different lengths must differ")
	}
}

func TestTraceString(t *testing.T) {
	if got := (Trace{}).String(); got != "ε" {
		t.Errorf("empty trace String() = %q, want ε", got)
	}
	s := Trace{swapElem(1, 3, 2, 4)}.String()
	for _, frag := range []string{"E.{", "(t1, exchange(3) ▷ (true,4))", "(t2, exchange(4) ▷ (true,3))"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestOpOf(t *testing.T) {
	hop := history.Op{Thread: 1, Object: objE, Method: exch, Arg: history.Int(3), Ret: history.Pair(true, 4), InvIndex: 0, ResIndex: 5}
	got := OpOf(hop)
	want := exOp(1, 3, true, 4)
	if got != want {
		t.Errorf("OpOf = %v, want %v", got, want)
	}
}
