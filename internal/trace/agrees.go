package trace

import (
	"fmt"

	"calgo/internal/history"
)

// Agrees decides H ⊑CAL T (Definition 5): whether there is a surjection π
// from the operations of the complete history h onto the element indices of
// tr such that (i) the real-time order of h is preserved (i ≺H j implies
// π(i) < π(j)) and (ii) every CA-element of tr is exactly the set of
// operations mapped to it. It returns nil if h agrees with tr and an error
// explaining the failure otherwise.
func Agrees(h history.History, tr Trace) error {
	if !h.IsWellFormed() {
		return fmt.Errorf("trace: history is not well-formed")
	}
	if !h.IsComplete() {
		return fmt.Errorf("trace: agreement is defined on complete histories; history has pending invocations %v", h.PendingThreads())
	}
	ops := h.Operations()
	total := 0
	for _, e := range tr {
		total += e.Size()
	}
	if total != len(ops) {
		return fmt.Errorf("trace: history has %d operations but trace has %d", len(ops), total)
	}
	if len(ops) == 0 {
		return nil
	}

	rt := history.RTOrder(ops)
	n := len(ops)
	assigned := make([]bool, n)
	memo := make(map[string]bool) // masks known to fail
	maxElem := 0                  // deepest element index reached, for diagnostics

	var rec func(k int) bool
	rec = func(k int) bool {
		if k > maxElem {
			maxElem = k
		}
		if k == len(tr) {
			return true
		}
		key := maskKey(assigned)
		if memo[key] {
			return false
		}
		e := tr[k]
		chosen := make([]int, 0, e.Size())
		var assign func(slot int) bool
		assign = func(slot int) bool {
			if slot == len(e.Ops) {
				return rec(k + 1)
			}
			want := e.Ops[slot]
		candidates:
			for i := range ops {
				if assigned[i] || OpOf(ops[i]) != want {
					continue
				}
				// Every real-time predecessor of ops[i] must already be
				// mapped to an earlier element.
				for j := 0; j < n; j++ {
					if rt[j][i] && !assigned[j] {
						continue candidates
					}
				}
				// Co-members of one CA-element must be pairwise concurrent.
				for _, c := range chosen {
					if rt[c][i] || rt[i][c] {
						continue candidates
					}
				}
				assigned[i] = true
				chosen = append(chosen, i)
				if assign(slot + 1) {
					return true
				}
				assigned[i] = false
				chosen = chosen[:len(chosen)-1]
			}
			return false
		}
		if assign(0) {
			return true
		}
		memo[key] = true
		return false
	}

	if rec(0) {
		return nil
	}
	return fmt.Errorf("trace: history does not agree with trace; no order-preserving surjection exists (matching stuck at element %d of %d: %s)",
		maxElem+1, len(tr), elementAt(tr, maxElem))
}

func elementAt(tr Trace, k int) string {
	if k >= len(tr) {
		return "<past end>"
	}
	return tr[k].String()
}

func maskKey(assigned []bool) string {
	buf := make([]byte, (len(assigned)+7)/8)
	for i, a := range assigned {
		if a {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	return string(buf)
}
