package trace

import (
	"strings"
	"testing"

	"calgo/internal/history"
)

// The Figure 3 histories of the paper.

func fig3H1() history.History {
	return history.History{
		history.Inv(1, objE, exch, history.Int(3)),
		history.Inv(2, objE, exch, history.Int(4)),
		history.Inv(3, objE, exch, history.Int(7)),
		history.Res(1, objE, exch, history.Pair(true, 4)),
		history.Res(2, objE, exch, history.Pair(true, 3)),
		history.Res(3, objE, exch, history.Pair(false, 7)),
	}
}

func fig3H2() history.History {
	return history.History{
		history.Inv(1, objE, exch, history.Int(3)),
		history.Inv(2, objE, exch, history.Int(4)),
		history.Res(1, objE, exch, history.Pair(true, 4)),
		history.Res(2, objE, exch, history.Pair(true, 3)),
		history.Inv(3, objE, exch, history.Int(7)),
		history.Res(3, objE, exch, history.Pair(false, 7)),
	}
}

func TestAgreesFig3(t *testing.T) {
	swapThenFail := Trace{swapElem(1, 3, 2, 4), failElem(3, 7)}
	failThenSwap := Trace{failElem(3, 7), swapElem(1, 3, 2, 4)}

	// H1: all operations overlap, so both element orders explain it.
	if err := Agrees(fig3H1(), swapThenFail); err != nil {
		t.Errorf("H1 ⊑CAL swap·fail should hold: %v", err)
	}
	if err := Agrees(fig3H1(), failThenSwap); err != nil {
		t.Errorf("H1 ⊑CAL fail·swap should hold: %v", err)
	}

	// H2: t3 runs strictly after the swap pair, so only swap·fail works.
	if err := Agrees(fig3H2(), swapThenFail); err != nil {
		t.Errorf("H2 ⊑CAL swap·fail should hold: %v", err)
	}
	if err := Agrees(fig3H2(), failThenSwap); err == nil {
		t.Error("H2 ⊑CAL fail·swap must fail: real-time order is violated")
	}
}

func TestAgreesRejectsWrongOps(t *testing.T) {
	h := fig3H1()
	// Wrong return value in the trace.
	bad := Trace{swapElem(1, 3, 2, 5), failElem(3, 7)}
	if err := Agrees(h, bad); err == nil {
		t.Error("trace with wrong values must not agree")
	}
	// Missing the failed operation.
	if err := Agrees(h, Trace{swapElem(1, 3, 2, 4)}); err == nil {
		t.Error("trace missing an operation must not agree")
	}
	// Extra element.
	extra := Trace{swapElem(1, 3, 2, 4), failElem(3, 7), failElem(4, 9)}
	if err := Agrees(h, extra); err == nil {
		t.Error("trace with extra operations must not agree")
	}
}

func TestAgreesRequiresOverlapWithinElement(t *testing.T) {
	// t1 and t2 do NOT overlap; a swap element pairing them must be
	// rejected because co-members of a CA-element must be concurrent.
	h := history.History{
		history.Inv(1, objE, exch, history.Int(3)),
		history.Res(1, objE, exch, history.Pair(true, 4)),
		history.Inv(2, objE, exch, history.Int(4)),
		history.Res(2, objE, exch, history.Pair(true, 3)),
	}
	if err := Agrees(h, Trace{swapElem(1, 3, 2, 4)}); err == nil {
		t.Error("sequentially ordered operations cannot share a CA-element")
	}
}

func TestAgreesSequentialHistorySingletonTrace(t *testing.T) {
	// A sequential history agrees exactly with the trace of singletons in
	// the same order (classical linearizability's degenerate case).
	h := history.History{
		history.Inv(1, objE, exch, history.Int(7)),
		history.Res(1, objE, exch, history.Pair(false, 7)),
		history.Inv(2, objE, exch, history.Int(8)),
		history.Res(2, objE, exch, history.Pair(false, 8)),
	}
	inOrder := Trace{failElem(1, 7), failElem(2, 8)}
	reversed := Trace{failElem(2, 8), failElem(1, 7)}
	if err := Agrees(h, inOrder); err != nil {
		t.Errorf("in-order singleton trace should agree: %v", err)
	}
	if err := Agrees(h, reversed); err == nil {
		t.Error("reversed singleton trace must violate real-time order")
	}
}

func TestAgreesEmpty(t *testing.T) {
	if err := Agrees(history.History{}, Trace{}); err != nil {
		t.Errorf("empty history agrees with empty trace: %v", err)
	}
	if err := Agrees(history.History{}, Trace{failElem(1, 1)}); err == nil {
		t.Error("empty history cannot agree with non-empty trace")
	}
}

func TestAgreesRejectsIncomplete(t *testing.T) {
	h := history.History{history.Inv(1, objE, exch, history.Int(3))}
	err := Agrees(h, Trace{})
	if err == nil || !strings.Contains(err.Error(), "complete") {
		t.Errorf("Agrees on incomplete history: err = %v, want completeness complaint", err)
	}
	ill := history.History{history.Res(1, objE, exch, history.Int(3))}
	if err := Agrees(ill, Trace{}); err == nil {
		t.Error("ill-formed history must be rejected")
	}
}

func TestAgreesAmbiguousMatching(t *testing.T) {
	// Two identical fail operations by different threads, ordered in time;
	// the matching must respect which one came first even though the
	// element contents for each thread are distinguishable only by thread.
	h := history.History{
		history.Inv(1, objE, exch, history.Int(5)),
		history.Res(1, objE, exch, history.Pair(false, 5)),
		history.Inv(2, objE, exch, history.Int(5)),
		history.Res(2, objE, exch, history.Pair(false, 5)),
	}
	if err := Agrees(h, Trace{failElem(1, 5), failElem(2, 5)}); err != nil {
		t.Errorf("correct order should agree: %v", err)
	}
	if err := Agrees(h, Trace{failElem(2, 5), failElem(1, 5)}); err == nil {
		t.Error("swapped order must be rejected")
	}
}

func TestAgreesSameThreadRepeatedOps(t *testing.T) {
	// One thread performs the same operation twice; both history ops have
	// identical tuples, forcing the matcher to try both assignments.
	h := history.History{
		history.Inv(1, objE, exch, history.Int(5)),
		history.Res(1, objE, exch, history.Pair(false, 5)),
		history.Inv(1, objE, exch, history.Int(5)),
		history.Res(1, objE, exch, history.Pair(false, 5)),
	}
	tr := Trace{failElem(1, 5), failElem(1, 5)}
	if err := Agrees(h, tr); err != nil {
		t.Errorf("repeated identical ops should agree with repeated singletons: %v", err)
	}
	if err := Agrees(h, Trace{failElem(1, 5)}); err == nil {
		t.Error("one element cannot cover two operations")
	}
}

func TestAgreesBacktrackingRequired(t *testing.T) {
	// Crafted so a greedy matcher that binds t2's op to the first
	// element fails: t2 overlaps t1 and t3, but t1 finished before t3
	// started. Trace is swap(t1,t2') impossible; instead we force the pair
	// (t1,t2) then singleton t3 vs pair (t2,t3) then singleton t1.
	h := history.History{
		history.Inv(1, objE, exch, history.Int(1)),
		history.Inv(2, objE, exch, history.Int(2)),
		history.Res(1, objE, exch, history.Pair(true, 2)),
		history.Inv(3, objE, exch, history.Int(1)),
		history.Res(2, objE, exch, history.Pair(true, 1)),
		history.Res(3, objE, exch, history.Pair(false, 1)),
	}
	// t2 swapped with t1 (values 2<->1); t3 failed. Note t3's arg equals
	// t1's arg, so element matching is ambiguous at the tuple level only
	// for nonidentical threads; the RT order must drive the search.
	good := Trace{swapElem(1, 1, 2, 2), failElem(3, 1)}
	if err := Agrees(h, good); err != nil {
		t.Errorf("valid explanation rejected: %v", err)
	}
	bad := Trace{failElem(3, 1), swapElem(1, 1, 2, 2)}
	if err := Agrees(h, bad); err == nil {
		t.Error("t3 cannot be linearized before t1: t1 precedes t3")
	}
}

func TestAgreesLargeBalancedHistory(t *testing.T) {
	// A larger smoke test: n sequential rounds of a swap pair; matching is
	// essentially forced, exercising the memoized search at depth.
	const rounds = 40
	var h history.History
	var tr Trace
	for i := 0; i < rounds; i++ {
		v := int64(2 * i)
		h = append(h,
			history.Inv(1, objE, exch, history.Int(v)),
			history.Inv(2, objE, exch, history.Int(v+1)),
			history.Res(1, objE, exch, history.Pair(true, v+1)),
			history.Res(2, objE, exch, history.Pair(true, v)),
		)
		tr = append(tr, swapElem(1, v, 2, v+1))
	}
	if err := Agrees(h, tr); err != nil {
		t.Fatalf("balanced history should agree: %v", err)
	}
}
