// Package trace implements concurrency-aware traces (Definition 4 of the
// paper) and the agreement relation H ⊑CAL T between complete histories and
// CA-traces (Definition 5). A CA-trace is a sequence of CA-elements, each
// pairing an object with a non-empty set of operations that "seem to take
// effect simultaneously".
package trace

import (
	"fmt"
	"strings"

	"calgo/internal/history"
)

// Operation is a completed operation (t, f(n) ▷ n') of an object
// (Definition 4). It is a comparable value type.
type Operation struct {
	Thread history.ThreadID
	Object history.ObjectID
	Method history.Method
	Arg    history.Value
	Ret    history.Value
}

// String renders the operation in the paper's notation.
func (op Operation) String() string {
	return fmt.Sprintf("(%s, %s(%s) ▷ %s)", op.Thread, op.Method, op.Arg, op.Ret)
}

// less is an arbitrary total order used to canonicalize operation sets.
func (op Operation) less(other Operation) bool {
	if op.Thread != other.Thread {
		return op.Thread < other.Thread
	}
	if op.Object != other.Object {
		return op.Object < other.Object
	}
	if op.Method != other.Method {
		return op.Method < other.Method
	}
	if op.Arg != other.Arg {
		return valueLess(op.Arg, other.Arg)
	}
	return valueLess(op.Ret, other.Ret)
}

func valueLess(a, b history.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.B != b.B {
		return !a.B
	}
	return a.N < b.N
}

// OpOf converts a completed history operation to a trace Operation.
func OpOf(op history.Op) Operation {
	return Operation{
		Thread: op.Thread,
		Object: op.Object,
		Method: op.Method,
		Arg:    op.Arg,
		Ret:    op.Ret,
	}
}

// Element is a CA-element o.S: a non-empty set of operations of a single
// object o (Definition 4). Elements are kept canonical: Ops is sorted and
// duplicate-free, and every operation's Object equals Object.
type Element struct {
	Object history.ObjectID
	Ops    []Operation
}

// NewElement builds a canonical CA-element from the given operations. It
// returns an error if the set is empty, contains duplicates, mixes objects,
// or contains two operations of the same thread (operations of one thread
// can never overlap).
func NewElement(ops ...Operation) (Element, error) {
	if len(ops) == 0 {
		return Element{}, fmt.Errorf("trace: empty CA-element")
	}
	sorted := append([]Operation(nil), ops...)
	// Elements are tiny (bounded by the spec's MaxElementSize), so an
	// insertion sort avoids sort.Slice's reflection machinery on what is
	// the checker's innermost loop.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].less(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	o := sorted[0].Object
	for i, op := range sorted {
		if op.Object != o {
			return Element{}, fmt.Errorf("trace: CA-element mixes objects %s and %s", o, op.Object)
		}
		if i > 0 && sorted[i-1] == op {
			return Element{}, fmt.Errorf("trace: duplicate operation %v in CA-element", op)
		}
		// Sorting is thread-major, so same-thread operations are adjacent.
		if i > 0 && sorted[i-1].Thread == op.Thread {
			return Element{}, fmt.Errorf("trace: two operations of thread %s in one CA-element", op.Thread)
		}
	}
	return Element{Object: o, Ops: sorted}, nil
}

// MustElement is NewElement for statically-known-valid inputs; it panics on
// error and is intended for tests and package-internal literals.
func MustElement(ops ...Operation) Element {
	e, err := NewElement(ops...)
	if err != nil {
		panic(err)
	}
	return e
}

// Singleton builds the CA-element o.{op} for a single operation.
func Singleton(op Operation) Element {
	return Element{Object: op.Object, Ops: []Operation{op}}
}

// Size returns the number of operations in the element.
func (e Element) Size() int { return len(e.Ops) }

// Mentions reports whether the element contains an operation of thread t.
func (e Element) Mentions(t history.ThreadID) bool {
	for _, op := range e.Ops {
		if op.Thread == t {
			return true
		}
	}
	return false
}

// Equal reports whether two canonical elements are equal.
func (e Element) Equal(f Element) bool {
	if e.Object != f.Object || len(e.Ops) != len(f.Ops) {
		return false
	}
	for i := range e.Ops {
		if e.Ops[i] != f.Ops[i] {
			return false
		}
	}
	return true
}

// String renders the element in the paper's notation o.{op1, ..., opk}.
func (e Element) String() string {
	parts := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		parts[i] = op.String()
	}
	return string(e.Object) + ".{" + strings.Join(parts, ", ") + "}"
}

// Key returns a canonical string encoding of the element, suitable for use
// as a map key.
func (e Element) Key() string { return e.String() }

// Trace is a CA-trace: a sequence of CA-elements (Definition 4).
type Trace []Element

// ByThread returns T|t, the subsequence of CA-elements mentioning thread t.
// Note that the projection returns not only the operations of t but all
// operations of other threads concurrent with some operation of t.
func (tr Trace) ByThread(t history.ThreadID) Trace {
	var out Trace
	for _, e := range tr {
		if e.Mentions(t) {
			out = append(out, e)
		}
	}
	return out
}

// ByObject returns T|o, the subsequence of CA-elements of object o.
func (tr Trace) ByObject(o history.ObjectID) Trace {
	var out Trace
	for _, e := range tr {
		if e.Object == o {
			out = append(out, e)
		}
	}
	return out
}

// Operations returns all operations of the trace in element order.
func (tr Trace) Operations() []Operation {
	var out []Operation
	for _, e := range tr {
		out = append(out, e.Ops...)
	}
	return out
}

// Equal reports element-wise equality of two traces.
func (tr Trace) Equal(other Trace) bool {
	if len(tr) != len(other) {
		return false
	}
	for i := range tr {
		if !tr[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// String renders the trace as element · element · ...
func (tr Trace) String() string {
	if len(tr) == 0 {
		return "ε"
	}
	parts := make([]string, len(tr))
	for i, e := range tr {
		parts[i] = e.String()
	}
	return strings.Join(parts, " · ")
}

// Key returns a canonical string encoding of the trace.
func (tr Trace) Key() string { return tr.String() }
