package trace

import (
	"math/rand"
	"testing"

	"calgo/internal/history"
)

// genHistoryAndTrace builds a valid exchanger-style history together with
// an agreeing trace: rounds of either a swap pair or a lone failure, with
// the response order within a round randomized.
func genHistoryAndTrace(rng *rand.Rand, rounds int) (history.History, Trace) {
	var h history.History
	var tr Trace
	tid := history.ThreadID(1)
	v := int64(1)
	for i := 0; i < rounds; i++ {
		if rng.Intn(3) == 0 {
			t := tid
			tid++
			h = append(h,
				history.Inv(t, objE, exch, history.Int(v)),
				history.Res(t, objE, exch, history.Pair(false, v)))
			tr = append(tr, failElem(t, v))
			v++
			continue
		}
		t1, t2 := tid, tid+1
		tid += 2
		a, b := v, v+1
		v += 2
		h = append(h,
			history.Inv(t1, objE, exch, history.Int(a)),
			history.Inv(t2, objE, exch, history.Int(b)))
		if rng.Intn(2) == 0 {
			h = append(h,
				history.Res(t1, objE, exch, history.Pair(true, b)),
				history.Res(t2, objE, exch, history.Pair(true, a)))
		} else {
			h = append(h,
				history.Res(t2, objE, exch, history.Pair(true, a)),
				history.Res(t1, objE, exch, history.Pair(true, b)))
		}
		tr = append(tr, swapElem(t1, a, t2, b))
	}
	return h, tr
}

// TestAgreesInvariantUnderSameKindSwaps: exchanging two adjacent actions
// of different threads with the same kind (inv/inv or res/res) does not
// change any real-time precedence, so agreement must be preserved.
func TestAgreesInvariantUnderSameKindSwaps(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h, tr := genHistoryAndTrace(rng, 2+rng.Intn(5))
		if err := Agrees(h, tr); err != nil {
			t.Fatalf("seed %d: base agreement failed: %v", seed, err)
		}
		// Apply a few random same-kind adjacent swaps.
		mut := append(history.History(nil), h...)
		for k := 0; k < 5; k++ {
			i := rng.Intn(len(mut) - 1)
			a, b := mut[i], mut[i+1]
			if a.Thread != b.Thread && a.Kind == b.Kind {
				mut[i], mut[i+1] = b, a
			}
		}
		if !mut.IsWellFormed() {
			t.Fatalf("seed %d: mutation broke well-formedness", seed)
		}
		if err := Agrees(mut, tr); err != nil {
			t.Fatalf("seed %d: agreement lost after same-kind swaps: %v\n%v", seed, err, mut)
		}
	}
}

// TestAgreesDetectsElementOrderViolations: moving a later element before
// an earlier one whose operations really precede it must break agreement.
func TestAgreesDetectsElementOrderViolations(t *testing.T) {
	// Build a strictly sequential run: every op really precedes the next.
	var h history.History
	var tr Trace
	for i := int64(0); i < 5; i++ {
		t := history.ThreadID(i + 1)
		h = append(h,
			history.Inv(t, objE, exch, history.Int(i)),
			history.Res(t, objE, exch, history.Pair(false, i)))
		tr = append(tr, failElem(t, i))
	}
	if err := Agrees(h, tr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr)-1; i++ {
		bad := append(Trace(nil), tr...)
		bad[i], bad[i+1] = bad[i+1], bad[i]
		if err := Agrees(h, bad); err == nil {
			t.Errorf("swapping sequential elements %d/%d should break agreement", i, i+1)
		}
	}
}

// TestProjectionLaws: T|t and T|o are subsequences partitioning behaviour
// sensibly.
func TestProjectionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, tr := genHistoryAndTrace(rng, 8)
	// Every element of T|t mentions t.
	for _, tid := range []history.ThreadID{1, 2, 3} {
		for _, el := range tr.ByThread(tid) {
			if !el.Mentions(tid) {
				t.Fatalf("T|%v contains %s", tid, el)
			}
		}
	}
	// Object projection partitions the trace (single-object here).
	if got := tr.ByObject(objE); !got.Equal(tr) {
		t.Error("single-object trace should project to itself")
	}
	if got := tr.ByObject("Z"); len(got) != 0 {
		t.Error("projection to absent object should be empty")
	}
	// Projection is idempotent.
	p := tr.ByThread(1)
	if !p.ByThread(1).Equal(p) {
		t.Error("thread projection must be idempotent")
	}
}

// TestAgreesPermutationOfConcurrentRounds: two fully-overlapping rounds
// may appear in either element order.
func TestAgreesPermutationOfConcurrentRounds(t *testing.T) {
	// Four threads, two swap pairs, all overlapping.
	h := history.History{
		history.Inv(1, objE, exch, history.Int(1)),
		history.Inv(2, objE, exch, history.Int(2)),
		history.Inv(3, objE, exch, history.Int(3)),
		history.Inv(4, objE, exch, history.Int(4)),
		history.Res(1, objE, exch, history.Pair(true, 2)),
		history.Res(2, objE, exch, history.Pair(true, 1)),
		history.Res(3, objE, exch, history.Pair(true, 4)),
		history.Res(4, objE, exch, history.Pair(true, 3)),
	}
	ab := Trace{swapElem(1, 1, 2, 2), swapElem(3, 3, 4, 4)}
	ba := Trace{swapElem(3, 3, 4, 4), swapElem(1, 1, 2, 2)}
	if err := Agrees(h, ab); err != nil {
		t.Errorf("order ab: %v", err)
	}
	if err := Agrees(h, ba); err != nil {
		t.Errorf("order ba: %v", err)
	}
}
