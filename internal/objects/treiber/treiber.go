// Package treiber implements the central concurrent stack of the
// elimination stack (Figure 2, class Stack): a linked stack whose push and
// pop perform a single CAS on the top pointer and report failure under
// contention instead of retrying. The retrying wrappers Push and Pop turn
// it into the classic Treiber stack, used as the lock-free baseline in the
// benchmarks.
//
// When instrumented with a recorder, every operation logs a singleton
// CA-element at its linearization point: the top CAS for successful (and
// contended) operations, and the top read for the empty-pop case.
package treiber

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

type cell struct {
	data int64
	next *cell
}

// Stack is a lock-free LIFO stack of int64 values.
type Stack struct {
	id  history.ObjectID
	top atomic.Pointer[cell]
	rec *recorder.Recorder
	inj *chaos.Injector
}

// Option configures a Stack.
type Option func(*Stack)

// WithRecorder enables CA-trace instrumentation at linearization points.
func WithRecorder(r *recorder.Recorder) Option {
	return func(s *Stack) { s.rec = r }
}

// WithChaos threads fault-injection hooks through the stack's
// synchronization points; forced CAS failures take the ordinary
// contention-failure paths.
func WithChaos(in *chaos.Injector) Option {
	return func(s *Stack) { s.inj = in }
}

// New returns an empty stack identified as object id.
func New(id history.ObjectID, opts ...Option) *Stack {
	s := &Stack{id: id}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ID returns the stack's object identifier.
func (s *Stack) ID() history.ObjectID { return s.id }

// TryPush attempts one push of v (Figure 2, lines 10-14). It returns false
// if the single CAS on top fails due to contention.
func (s *Stack) TryPush(tid history.ThreadID, v int64) bool {
	s.inj.Pause(tid, "treiber.trypush.pre-read")
	h := s.top.Load()
	n := &cell{data: v, next: h}
	s.inj.Pause(tid, "treiber.trypush.pre-cas")
	if s.inj.FailCAS(tid, "treiber.trypush.cas") {
		// Forced contention failure: a no-op on the stack, logged exactly
		// like a lost CAS race.
		if s.rec != nil {
			s.rec.Append(spec.PushElement(s.id, tid, v, false))
		}
		return false
	}
	if s.rec == nil {
		return s.top.CompareAndSwap(h, n)
	}
	var ok bool
	s.rec.Do(func(log func(trace.Element)) {
		ok = s.top.CompareAndSwap(h, n)
		log(spec.PushElement(s.id, tid, v, ok))
	})
	return ok
}

// TryPop attempts one pop (Figure 2, lines 15-24). It returns (false, 0)
// when the stack is empty or the single CAS on top fails due to contention.
func (s *Stack) TryPop(tid history.ThreadID) (bool, int64) {
	s.inj.Pause(tid, "treiber.trypop.pre-read")
	if s.inj.FailCAS(tid, "treiber.trypop.cas") {
		if s.rec != nil {
			s.rec.Append(spec.PopElement(s.id, tid, false, 0))
		}
		return false, 0
	}
	s.inj.Pause(tid, "treiber.trypop.pre-cas")
	if s.rec == nil {
		h := s.top.Load()
		if h == nil {
			return false, 0
		}
		if s.top.CompareAndSwap(h, h.next) {
			return true, h.data
		}
		return false, 0
	}
	var ok bool
	var v int64
	s.rec.Do(func(log func(trace.Element)) {
		h := s.top.Load()
		if h == nil {
			log(spec.PopElement(s.id, tid, false, 0))
			return
		}
		if s.top.CompareAndSwap(h, h.next) {
			ok, v = true, h.data
		}
		log(spec.PopElement(s.id, tid, ok, v))
	})
	return ok, v
}

// Push pushes v, retrying until the CAS succeeds (the classic Treiber
// stack). Unlike repeated TryPush calls, internal retries are not logged:
// only the final successful CAS is an operation at the interface.
func (s *Stack) Push(tid history.ThreadID, v int64) {
	for {
		s.inj.Pause(tid, "treiber.push.pre-read")
		h := s.top.Load()
		n := &cell{data: v, next: h}
		s.inj.Pause(tid, "treiber.push.pre-cas")
		if s.inj.FailCAS(tid, "treiber.push.cas") {
			continue // forced retry: internal, not an interface operation
		}
		if s.rec == nil {
			if s.top.CompareAndSwap(h, n) {
				return
			}
			continue
		}
		var ok bool
		s.rec.Do(func(log func(trace.Element)) {
			ok = s.top.CompareAndSwap(h, n)
			if ok {
				log(spec.PushElement(s.id, tid, v, true))
			}
		})
		if ok {
			return
		}
	}
}

// Pop pops the top value, retrying CAS failures; it returns (false, 0)
// only when the stack is observed empty.
func (s *Stack) Pop(tid history.ThreadID) (bool, int64) {
	for {
		s.inj.Pause(tid, "treiber.pop.pre-read")
		if s.inj.FailCAS(tid, "treiber.pop.cas") {
			continue // forced retry
		}
		if s.rec == nil {
			h := s.top.Load()
			if h == nil {
				return false, 0
			}
			if s.top.CompareAndSwap(h, h.next) {
				return true, h.data
			}
			continue
		}
		done, ok, v := s.popOnceLogged(tid)
		if done {
			return ok, v
		}
	}
}

// popOnceLogged performs one instrumented pop attempt for Pop: contended
// attempts are NOT logged (they are retried internally, so they are not
// operations at the interface), while empty and successful outcomes are.
func (s *Stack) popOnceLogged(tid history.ThreadID) (done, ok bool, v int64) {
	s.rec.Do(func(log func(trace.Element)) {
		h := s.top.Load()
		if h == nil {
			log(spec.PopElement(s.id, tid, false, 0))
			done = true
			return
		}
		if s.top.CompareAndSwap(h, h.next) {
			log(spec.PopElement(s.id, tid, true, h.data))
			done, ok, v = true, true, h.data
		}
	})
	return done, ok, v
}

// Len counts the stack's elements; it is a snapshot helper for tests and
// is not linearizable with respect to concurrent mutation.
func (s *Stack) Len() int {
	n := 0
	for c := s.top.Load(); c != nil; c = c.next {
		n++
	}
	return n
}
