package treiber

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objS history.ObjectID = "S"

func TestSequentialLIFO(t *testing.T) {
	s := New(objS)
	for _, v := range []int64{1, 2, 3} {
		if !s.TryPush(1, v) {
			t.Fatalf("uncontended TryPush(%d) failed", v)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, want := range []int64{3, 2, 1} {
		ok, v := s.TryPop(1)
		if !ok || v != want {
			t.Fatalf("TryPop = (%v,%d), want (true,%d)", ok, v, want)
		}
	}
	if ok, _ := s.TryPop(1); ok {
		t.Error("pop on empty must fail")
	}
	if ok, _ := s.Pop(1); ok {
		t.Error("retrying Pop on empty must fail")
	}
}

func TestRetryingPushPop(t *testing.T) {
	s := New(objS)
	s.Push(1, 7)
	s.Push(1, 8)
	if ok, v := s.Pop(1); !ok || v != 8 {
		t.Errorf("Pop = (%v,%d), want (true,8)", ok, v)
	}
}

func TestInstrumentedTraceMatchesCentralStackSpec(t *testing.T) {
	rec := recorder.New()
	s := New(objS, WithRecorder(rec))
	s.TryPush(1, 5)
	s.TryPush(1, 6)
	s.TryPop(2)
	s.TryPop(2)
	s.TryPop(2) // empty: logged failure
	got := rec.View(objS)
	want := trace.Trace{
		spec.PushElement(objS, 1, 5, true),
		spec.PushElement(objS, 1, 6, true),
		spec.PopElement(objS, 2, true, 6),
		spec.PopElement(objS, 2, true, 5),
		spec.PopElement(objS, 2, false, 0),
	}
	if !got.Equal(want) {
		t.Errorf("trace = %s\nwant %s", got, want)
	}
	if _, err := spec.Accepts(spec.NewCentralStack(objS), got); err != nil {
		t.Errorf("trace not admitted: %v", err)
	}
}

func TestConcurrentStressBalance(t *testing.T) {
	s := New(objS)
	const workers = 8
	const per = 500
	var popped sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*100_000 + i)
				s.Push(tid, v)
				if ok, got := s.Pop(tid); ok {
					if _, dup := popped.LoadOrStore(got, true); dup {
						t.Errorf("value %d popped twice", got)
					}
				} else {
					t.Error("pop failed with at least one value present per worker")
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("stack should be empty, has %d", s.Len())
	}
}

// TestRuntimeVerificationLinearizable: run the instrumented central stack
// under contention, capture the history, and verify it is linearizable
// w.r.t. the central-stack spec, agreeing with the recorded trace.
func TestRuntimeVerificationLinearizable(t *testing.T) {
	rec := recorder.New()
	s := New(objS, WithRecorder(rec))
	var cap history.Capture

	const workers = 4
	const per = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, objS, spec.MethodPush, history.Int(v))
					ok := s.TryPush(tid, v)
					cap.Res(tid, objS, spec.MethodPush, history.Bool(ok))
				} else {
					cap.Inv(tid, objS, spec.MethodPop, history.Unit())
					ok, got := s.TryPop(tid)
					cap.Res(tid, objS, spec.MethodPop, history.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View(objS)
	if _, err := spec.Accepts(spec.NewCentralStack(objS), tr); err != nil {
		t.Fatalf("recorded trace violates central-stack spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	r, err := check.Linearizable(context.Background(), h, spec.NewCentralStack(objS))
	if err != nil {
		t.Fatalf("Linearizable: %v", err)
	}
	if !r.OK {
		t.Fatalf("central stack history not linearizable: %s", r.Reason)
	}
}

func TestPopRetrySkipsContendedLogs(t *testing.T) {
	// The retrying Pop must not log contended internal attempts; under a
	// push/pop storm the recorded trace must still satisfy the spec with
	// one element per interface operation.
	rec := recorder.New()
	s := New(objS, WithRecorder(rec))
	const workers = 4
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				s.Push(tid, int64(w*1_000+i))
				s.Pop(tid)
			}
		}(w)
	}
	wg.Wait()
	tr := rec.View(objS)
	if len(tr) != 2*workers*per {
		t.Errorf("trace has %d elements, want %d (one per interface op)", len(tr), 2*workers*per)
	}
	if _, err := spec.Accepts(spec.NewCentralStack(objS), tr); err != nil {
		t.Fatalf("trace violates spec: %v", err)
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
