// Package snapshot implements the one-shot immediate atomic snapshot
// object of Borowsky and Gafni — the example Neiger used to motivate
// set-linearizability, which the paper's related work (§6) identifies as a
// CA-object. Each of n participants calls Update(v) once and receives a
// view: the set of (participant, value) pairs of everyone whose operation
// "took effect" no later than its own. Views satisfy
//
//   - self-inclusion: a participant's own value is in its view;
//   - containment: any two views are ordered by ⊆;
//   - immediacy: participants with equal-size views have EQUAL views, and
//     their operations form one block that takes effect simultaneously.
//
// The implementation is the classic wait-free level-descent algorithm:
// participant p writes its value, then descends levels n, n-1, ...,
// scanning all levels at each step; it terminates at the first level l
// where exactly l participants (including itself) are at level ≤ l, and
// returns their values. At most l participants ever reach level l, so the
// descent terminates by level 1.
//
// Because a block's membership is only determined when its members
// terminate (a scanned participant may keep descending), the CA-trace of a
// run is derived at quiescence by DeriveTrace — grouping completed
// operations into blocks by view cardinality — rather than logged online;
// see the package tests for the resulting Definition 5/6 verification.
package snapshot

import (
	"fmt"
	"sort"
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Pair is one (participant thread, value) entry of a view.
type Pair struct {
	Thread history.ThreadID
	Value  int64
}

// View is a set of pairs, sorted by thread id.
type View []Pair

// Contains reports whether the view includes thread t.
func (v View) Contains(t history.ThreadID) bool {
	for _, p := range v {
		if p.Thread == t {
			return true
		}
	}
	return false
}

// SubsetOf reports whether v ⊆ w.
func (v View) SubsetOf(w View) bool {
	for _, p := range v {
		found := false
		for _, q := range w {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Equal reports whether two views contain the same pairs.
func (v View) Equal(w View) bool {
	return len(v) == len(w) && v.SubsetOf(w)
}

// Snapshot is a one-shot immediate snapshot object for n participants.
type Snapshot struct {
	id     history.ObjectID
	n      int
	levels []atomic.Int64 // participant slot -> current level; n+1 = not started
	values []atomic.Int64
	tids   []atomic.Int64 // ThreadID of the participant using each slot
	inj    *chaos.Injector
}

// Option configures a Snapshot.
type Option func(*Snapshot)

// WithChaos threads fault-injection pauses through the level-descent
// algorithm (between the value write, each level store, and each scan).
// The algorithm is CAS-free, so only timing faults apply.
func WithChaos(in *chaos.Injector) Option {
	return func(s *Snapshot) { s.inj = in }
}

// New returns an immediate snapshot object for n participants, identified
// as object id.
func New(id history.ObjectID, n int, opts ...Option) (*Snapshot, error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: need at least one participant, got %d", n)
	}
	s := &Snapshot{
		id:     id,
		n:      n,
		levels: make([]atomic.Int64, n),
		values: make([]atomic.Int64, n),
		tids:   make([]atomic.Int64, n),
	}
	for i := range s.levels {
		s.levels[i].Store(int64(n + 1))
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// ID returns the object identifier.
func (s *Snapshot) ID() history.ObjectID { return s.id }

// Participants returns n.
func (s *Snapshot) Participants() int { return s.n }

// Update submits value v for participant slot (0 ≤ slot < n) on behalf of
// thread tid and returns the view of the operation's block. Each slot must
// be used exactly once; a reused or out-of-range slot returns an error.
func (s *Snapshot) Update(slot int, tid history.ThreadID, v int64) (View, error) {
	if slot < 0 || slot >= s.n {
		return nil, fmt.Errorf("snapshot: slot %d out of range [0,%d)", slot, s.n)
	}
	if s.levels[slot].Load() != int64(s.n+1) {
		return nil, fmt.Errorf("snapshot: slot %d already used (one-shot object)", slot)
	}
	s.values[slot].Store(v)
	s.tids[slot].Store(int64(tid))
	s.inj.Pause(tid, "snapshot.write.post")
	for lev := int64(s.n); lev >= 1; lev-- {
		s.inj.Pause(tid, "snapshot.descend.pre-store")
		s.levels[slot].Store(lev)
		s.inj.Pause(tid, "snapshot.scan.pre")
		var members []int
		for q := 0; q < s.n; q++ {
			if s.levels[q].Load() <= lev {
				members = append(members, q)
			}
		}
		if int64(len(members)) == lev {
			view := make(View, 0, len(members))
			for _, q := range members {
				view = append(view, Pair{
					Thread: history.ThreadID(s.tids[q].Load()),
					Value:  s.values[q].Load(),
				})
			}
			sort.Slice(view, func(i, j int) bool { return view[i].Thread < view[j].Thread })
			return view, nil
		}
	}
	// Unreachable: at most one participant reaches level 1.
	return nil, fmt.Errorf("snapshot: descent fell through level 1")
}

// Result pairs a completed operation with its view, for DeriveTrace.
type Result struct {
	Thread history.ThreadID
	Value  int64
	View   View
}

// DeriveTrace computes the CA-trace of a quiescent run from its completed
// operations: operations are grouped into blocks by view cardinality and
// blocks ordered by cardinality — the unique candidate trace under the
// immediate snapshot specification. It returns an error if the results
// cannot form such a trace (which itself indicates a violation).
func DeriveTrace(o history.ObjectID, results []Result) (trace.Trace, error) {
	byCard := map[int][]Result{}
	for _, r := range results {
		byCard[len(r.View)] = append(byCard[len(r.View)], r)
	}
	cards := make([]int, 0, len(byCard))
	for c := range byCard {
		cards = append(cards, c)
	}
	sort.Ints(cards)
	var tr trace.Trace
	prior := 0
	for _, c := range cards {
		block := byCard[c]
		if prior+len(block) != c {
			return nil, fmt.Errorf("snapshot: block of %d ops at cardinality %d does not extend prior count %d",
				len(block), c, prior)
		}
		ops := make([]trace.Operation, len(block))
		for i, r := range block {
			ops[i] = trace.Operation{
				Thread: r.Thread, Object: o, Method: spec.MethodUpdate,
				Arg: history.Int(r.Value), Ret: history.Pair(true, int64(c)),
			}
		}
		el, err := trace.NewElement(ops...)
		if err != nil {
			return nil, fmt.Errorf("snapshot: invalid block: %w", err)
		}
		tr = append(tr, el)
		prior = c
	}
	return tr, nil
}
