package snapshot

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objIS history.ObjectID = "IS"

func TestNewValidation(t *testing.T) {
	if _, err := New(objIS, 0); err == nil {
		t.Error("n=0 must be rejected")
	}
	s, err := New(objIS, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != objIS || s.Participants() != 3 {
		t.Error("accessors wrong")
	}
}

func TestUpdateValidation(t *testing.T) {
	s, err := New(objIS, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(-1, 1, 5); err == nil {
		t.Error("negative slot must fail")
	}
	if _, err := s.Update(2, 1, 5); err == nil {
		t.Error("out-of-range slot must fail")
	}
	if _, err := s.Update(0, 1, 5); err != nil {
		t.Fatalf("first update: %v", err)
	}
	if _, err := s.Update(0, 1, 6); err == nil {
		t.Error("slot reuse must fail (one-shot)")
	}
}

func TestSequentialUpdatesSeeGrowingViews(t *testing.T) {
	s, err := New(objIS, 3)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Update(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != 1 || !v1.Contains(1) {
		t.Fatalf("first view = %v, want {t1}", v1)
	}
	v2, err := s.Update(1, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != 2 || !v1.SubsetOf(v2) {
		t.Fatalf("second view = %v, want superset of %v", v2, v1)
	}
	v3, err := s.Update(2, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(v3) != 3 || !v2.SubsetOf(v3) {
		t.Fatalf("third view = %v", v3)
	}
}

// runConcurrent runs n participants concurrently and returns their results.
func runConcurrent(t *testing.T, n int) ([]Result, history.History) {
	t.Helper()
	s, err := New(objIS, n)
	if err != nil {
		t.Fatal(err)
	}
	var cap history.Capture
	results := make([]Result, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(p + 1)
			v := int64(100 + p)
			cap.Inv(tid, objIS, spec.MethodUpdate, history.Int(v))
			view, err := s.Update(p, tid, v)
			if err != nil {
				t.Errorf("Update: %v", err)
				return
			}
			cap.Res(tid, objIS, spec.MethodUpdate, history.Pair(true, int64(len(view))))
			results[p] = Result{Thread: tid, Value: v, View: view}
		}(p)
	}
	wg.Wait()
	return results, cap.History()
}

// TestImmediateSnapshotProperties checks self-inclusion, containment and
// immediacy on concurrent runs.
func TestImmediateSnapshotProperties(t *testing.T) {
	for round := 0; round < 50; round++ {
		results, _ := runConcurrent(t, 5)
		for i, r := range results {
			if !r.View.Contains(r.Thread) {
				t.Fatalf("round %d: self-inclusion violated: %v not in %v", round, r.Thread, r.View)
			}
			for j, q := range results {
				if i == j {
					continue
				}
				switch {
				case len(r.View) < len(q.View):
					if !r.View.SubsetOf(q.View) {
						t.Fatalf("round %d: containment violated: %v vs %v", round, r.View, q.View)
					}
				case len(r.View) == len(q.View):
					if !r.View.Equal(q.View) {
						t.Fatalf("round %d: immediacy violated: %v vs %v", round, r.View, q.View)
					}
				}
			}
		}
	}
}

// TestRuntimeVerificationSnapshot derives the CA-trace of concurrent runs
// and verifies the full Definition 5/6 battery against the snapshot
// CA-spec — including that wide blocks (size > 2) are handled by both the
// derivation and the CAL checker.
func TestRuntimeVerificationSnapshot(t *testing.T) {
	sawWideBlock := false
	for round := 0; round < 40; round++ {
		results, h := runConcurrent(t, 4)
		tr, err := DeriveTrace(objIS, results)
		if err != nil {
			t.Fatalf("round %d: DeriveTrace: %v", round, err)
		}
		sp := spec.NewSnapshot(objIS, 4)
		if _, err := spec.Accepts(sp, tr); err != nil {
			t.Fatalf("round %d: derived trace rejected: %v", round, err)
		}
		if err := trace.Agrees(h, tr); err != nil {
			t.Fatalf("round %d: history disagrees with derived trace: %v", round, err)
		}
		r, err := check.CAL(context.Background(), h, sp)
		if err != nil {
			t.Fatalf("round %d: CAL: %v", round, err)
		}
		if !r.OK {
			t.Fatalf("round %d: history not CA-linearizable: %s", round, r.Reason)
		}
		for _, el := range tr {
			if el.Size() > 2 {
				sawWideBlock = true
			}
		}
	}
	if !sawWideBlock {
		t.Log("note: no block wider than 2 occurred in these runs (scheduling-dependent)")
	}
}

// TestSequentialRunIsAlsoLinearizable: with no overlap, every block is a
// singleton and the object degenerates to a linearizable one.
func TestSequentialRunIsAlsoLinearizable(t *testing.T) {
	s, err := New(objIS, 3)
	if err != nil {
		t.Fatal(err)
	}
	var cap history.Capture
	var results []Result
	for p := 0; p < 3; p++ {
		tid := history.ThreadID(p + 1)
		v := int64(10 * (p + 1))
		cap.Inv(tid, objIS, spec.MethodUpdate, history.Int(v))
		view, err := s.Update(p, tid, v)
		if err != nil {
			t.Fatal(err)
		}
		cap.Res(tid, objIS, spec.MethodUpdate, history.Pair(true, int64(len(view))))
		results = append(results, Result{Thread: tid, Value: v, View: view})
	}
	tr, err := DeriveTrace(objIS, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("sequential run should yield 3 singleton blocks, got %s", tr)
	}
	r, err := check.Linearizable(context.Background(), cap.History(), spec.NewSnapshot(objIS, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("sequential snapshot history should be linearizable: %s", r.Reason)
	}
}

func TestDeriveTraceRejectsInconsistent(t *testing.T) {
	// Two ops both claiming cardinality 2 with nothing at cardinality 1 is
	// fine (one block of two); but a lone op claiming cardinality 2 is not.
	_, err := DeriveTrace(objIS, []Result{
		{Thread: 1, Value: 1, View: View{{Thread: 1, Value: 1}, {Thread: 2, Value: 2}}},
	})
	if err == nil {
		t.Error("lone op with cardinality-2 view must be rejected")
	}
	if _, err := DeriveTrace(objIS, nil); err != nil {
		t.Errorf("empty run: %v", err)
	}
}
