// Package baseline provides coarse-grained lock-based implementations of
// the paper's objects — a stack and an exchanger — used as comparison
// points by the benchmark harness. They are correct and simple, and their
// throughput collapse under contention is the behaviour the elimination
// stack ([10]) and the CAS exchanger are designed to beat.
package baseline

import (
	"sync"
	"time"

	"calgo/internal/history"
)

// LockStack is a mutex-protected LIFO stack of int64 values.
type LockStack struct {
	mu    sync.Mutex
	items []int64
}

// NewLockStack returns an empty lock-based stack.
func NewLockStack() *LockStack { return &LockStack{} }

// Push appends v.
func (s *LockStack) Push(_ history.ThreadID, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
}

// Pop removes and returns the top value, or (false, 0) when empty.
func (s *LockStack) Pop(_ history.ThreadID) (bool, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return false, 0
	}
	v := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return true, v
}

// Len returns the current depth.
func (s *LockStack) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// LockQueue is a mutex-protected FIFO queue of int64 values.
type LockQueue struct {
	mu    sync.Mutex
	items []int64
}

// NewLockQueue returns an empty lock-based queue.
func NewLockQueue() *LockQueue { return &LockQueue{} }

// Enq appends v.
func (q *LockQueue) Enq(_ history.ThreadID, v int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Deq removes and returns the head value, or (false, 0) when empty.
func (q *LockQueue) Deq(_ history.ThreadID) (bool, int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return false, 0
	}
	v := q.items[0]
	q.items = q.items[1:]
	return true, v
}

// Len returns the current depth.
func (q *LockQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// waiter is a parked exchange operation.
type waiter struct {
	v  int64
	ch chan int64
}

// LockExchanger is a monitor-style exchanger: a slot guarded by a mutex
// plus a channel hand-off. Functionally equivalent to the CAS exchanger
// but serializing all arrivals through one lock.
type LockExchanger struct {
	mu      sync.Mutex
	waiting *waiter
	timeout time.Duration
}

// NewLockExchanger returns a lock-based exchanger whose unpaired
// operations fail after timeout.
func NewLockExchanger(timeout time.Duration) *LockExchanger {
	return &LockExchanger{timeout: timeout}
}

// Exchange offers v; it returns (true, w) when paired with a concurrent
// partner offering w and (false, v) on timeout.
func (e *LockExchanger) Exchange(_ history.ThreadID, v int64) (bool, int64) {
	e.mu.Lock()
	if w := e.waiting; w != nil {
		e.waiting = nil
		e.mu.Unlock()
		w.ch <- v
		return true, w.v
	}
	me := &waiter{v: v, ch: make(chan int64, 1)}
	e.waiting = me
	e.mu.Unlock()

	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case d := <-me.ch:
		return true, d
	case <-timer.C:
	}
	// Timed out; withdraw unless a partner claimed us concurrently.
	e.mu.Lock()
	if e.waiting == me {
		e.waiting = nil
		e.mu.Unlock()
		return false, v
	}
	e.mu.Unlock()
	// A partner removed us from the slot before we withdrew: its value
	// is already on (or about to hit) the channel.
	return true, <-me.ch
}
