package baseline

import (
	"sync"
	"testing"
	"time"
)

func TestLockStackLIFO(t *testing.T) {
	s := NewLockStack()
	if ok, _ := s.Pop(1); ok {
		t.Error("pop on empty must fail")
	}
	for _, v := range []int64{1, 2, 3} {
		s.Push(1, v)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	for _, want := range []int64{3, 2, 1} {
		ok, v := s.Pop(1)
		if !ok || v != want {
			t.Fatalf("Pop = (%v,%d), want (true,%d)", ok, v, want)
		}
	}
}

func TestLockStackConcurrent(t *testing.T) {
	s := NewLockStack()
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*100_000 + i)
				s.Push(0, v)
				if ok, got := s.Pop(0); ok {
					if _, dup := popped.LoadOrStore(got, true); dup {
						t.Errorf("value %d popped twice", got)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("stack should be empty, has %d", s.Len())
	}
}

func TestLockQueueFIFO(t *testing.T) {
	q := NewLockQueue()
	if ok, _ := q.Deq(1); ok {
		t.Error("deq on empty must fail")
	}
	for _, v := range []int64{1, 2, 3} {
		q.Enq(1, v)
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	for _, want := range []int64{1, 2, 3} {
		ok, v := q.Deq(1)
		if !ok || v != want {
			t.Fatalf("Deq = (%v,%d), want (true,%d)", ok, v, want)
		}
	}
}

func TestLockQueueConcurrent(t *testing.T) {
	q := NewLockQueue()
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	var deqd sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enq(0, int64(w*100_000+i))
				if ok, v := q.Deq(0); ok {
					if _, dup := deqd.LoadOrStore(v, true); dup {
						t.Errorf("value %d dequeued twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Errorf("queue should be empty, has %d", q.Len())
	}
}

func TestLockExchangerTimeout(t *testing.T) {
	e := NewLockExchanger(time.Millisecond)
	ok, v := e.Exchange(1, 42)
	if ok || v != 42 {
		t.Errorf("Exchange = (%v,%d), want (false,42)", ok, v)
	}
}

func TestLockExchangerPairs(t *testing.T) {
	e := NewLockExchanger(time.Second)
	var wg sync.WaitGroup
	var ok1 bool
	var v1 int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ok1, v1 = e.Exchange(1, 3)
	}()
	ok2, v2 := e.Exchange(2, 4)
	wg.Wait()
	if !ok1 || !ok2 {
		t.Fatalf("both should succeed: (%v,%d) (%v,%d)", ok1, v1, ok2, v2)
	}
	if v1+v2 != 7 || v1 == v2 {
		t.Errorf("values did not cross: %d %d", v1, v2)
	}
}

func TestLockExchangerStress(t *testing.T) {
	e := NewLockExchanger(10 * time.Millisecond)
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	results := make([][]int64, workers) // offered value -> received (or -1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				ok, got := e.Exchange(0, v)
				if ok {
					results[w] = append(results[w], v, got)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every successful pairing must be mutual.
	recv := make(map[int64]int64)
	for _, rs := range results {
		for i := 0; i < len(rs); i += 2 {
			recv[rs[i]] = rs[i+1]
		}
	}
	for in, out := range recv {
		back, ok := recv[out]
		if !ok || back != in {
			t.Fatalf("pairing not mutual: %d -> %d -> %v", in, out, back)
		}
	}
}
