package exchanger

import (
	"runtime"
	"time"
)

// WaitPolicy controls how a thread that installed its offer waits for a
// partner before attempting to withdraw — the paper's sleep(50) at line 17
// of Figure 1. The choice trades latency under low load against pairing
// probability under high load; it never affects correctness (the protocol
// is wait-free either way), so tests inject fast policies.
type WaitPolicy interface {
	// Wait blocks the caller for the policy's partner-wait window.
	Wait()
}

// Sleep waits by sleeping for a fixed duration, as in Figure 1 and
// java.util.concurrent. Suitable for real workloads; too slow for unit
// tests.
type Sleep time.Duration

// Wait implements WaitPolicy.
func (s Sleep) Wait() { time.Sleep(time.Duration(s)) }

// Spin waits by yielding the processor a fixed number of times. This is
// the default: it keeps unit tests and benchmarks fast while still giving
// concurrent partners a scheduling window.
type Spin int

// Wait implements WaitPolicy.
func (s Spin) Wait() {
	for i := 0; i < int(s); i++ {
		runtime.Gosched()
	}
}

// NoWait withdraws immediately: the offering thread never waits for a
// partner. Pairing then requires the partner to interpose between the
// install CAS and the withdraw CAS, which makes failures overwhelmingly
// likely — useful for exercising the failure paths deterministically.
type NoWait struct{}

// Wait implements WaitPolicy.
func (NoWait) Wait() {}

// Func adapts an arbitrary function to a WaitPolicy; used by tests that
// need to block the offering thread on a channel to force a schedule.
type Func func()

// Wait implements WaitPolicy.
func (f Func) Wait() { f() }
