package exchanger

import (
	"context"
	"sync"
	"testing"
	"time"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objE history.ObjectID = "E"

func TestLoneExchangeFails(t *testing.T) {
	e := New(objE, WithWaitPolicy(NoWait{}))
	ok, v := e.Exchange(1, 42)
	if ok || v != 42 {
		t.Errorf("Exchange = (%v,%d), want (false,42)", ok, v)
	}
	// The slot must be reusable afterwards.
	ok, v = e.Exchange(1, 43)
	if ok || v != 43 {
		t.Errorf("second Exchange = (%v,%d), want (false,43)", ok, v)
	}
}

func TestForcedPairing(t *testing.T) {
	// Force the schedule: t1 installs its offer and blocks in its wait
	// window until t2 has matched it.
	rec := recorder.New()
	installed := make(chan struct{})
	matched := make(chan struct{})
	e := New(objE,
		WithRecorder(rec),
		WithWaitPolicy(Func(func() {
			close(installed)
			<-matched
		})),
	)

	var ok1, ok2 bool
	var v1, v2 int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ok1, v1 = e.Exchange(1, 3)
	}()
	<-installed
	ok2, v2 = e.Exchange(2, 4)
	close(matched)
	wg.Wait()

	if !ok1 || v1 != 4 {
		t.Errorf("t1 got (%v,%d), want (true,4)", ok1, v1)
	}
	if !ok2 || v2 != 3 {
		t.Errorf("t2 got (%v,%d), want (true,3)", ok2, v2)
	}
	got := rec.View(objE)
	want := trace.Trace{spec.SwapElement(objE, 1, 3, 2, 4)}
	if !got.Equal(want) {
		t.Errorf("recorded trace = %s, want %s", got, want)
	}
}

func TestForcedWithdrawal(t *testing.T) {
	// t1 installs and withdraws before t2 arrives: both must fail.
	rec := recorder.New()
	e := New(objE, WithRecorder(rec), WithWaitPolicy(NoWait{}))
	if ok, v := e.Exchange(1, 3); ok || v != 3 {
		t.Errorf("t1 = (%v,%d), want (false,3)", ok, v)
	}
	if ok, v := e.Exchange(2, 4); ok || v != 4 {
		t.Errorf("t2 = (%v,%d), want (false,4)", ok, v)
	}
	got := rec.View(objE)
	want := trace.Trace{spec.FailElement(objE, 1, 3), spec.FailElement(objE, 2, 4)}
	if !got.Equal(want) {
		t.Errorf("recorded trace = %s, want %s", got, want)
	}
}

func TestSlowPathFailure(t *testing.T) {
	// t2 finds an already-matched offer in g whose hole is taken: its
	// XCHG CAS fails, it helps clean g and fails.
	rec := recorder.New()
	installed := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	e := New(objE, WithRecorder(rec), WithWaitPolicy(Func(func() {
		// Only t1's wait blocks; later offers (t3) pass straight through.
		once.Do(func() {
			close(installed)
			<-proceed
		})
	})))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Exchange(1, 3)
	}()
	<-installed
	// t2 matches t1.
	if ok, v := e.Exchange(2, 4); !ok || v != 3 {
		t.Fatalf("t2 = (%v,%d), want (true,3)", ok, v)
	}
	close(proceed)
	wg.Wait()
	// One swap recorded; subsequent lone exchange fails.
	if ok, _ := e.Exchange(3, 9); ok {
		t.Error("t3 should fail with no partner")
	}
	tr := rec.View(objE)
	if len(tr) != 2 || tr[0].Size() != 2 || tr[1].Size() != 1 {
		t.Errorf("trace = %s, want swap then fail", tr)
	}
}

func TestExchangeStressPairingInvariants(t *testing.T) {
	e := New(objE, WithWaitPolicy(Spin(128)))
	const workers = 8
	const perWorker = 200

	type result struct {
		tid history.ThreadID
		in  int64
		ok  bool
		out int64
	}
	results := make([][]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < perWorker; i++ {
				v := int64(w*10_000 + i) // globally unique
				ok, out := e.Exchange(tid, v)
				results[w] = append(results[w], result{tid, v, ok, out})
			}
		}(w)
	}
	wg.Wait()

	// Every successful exchange must have exactly one partner whose
	// in/out values cross.
	gotByIn := make(map[int64]result)
	for _, rs := range results {
		for _, r := range rs {
			gotByIn[r.in] = r
		}
	}
	successes := 0
	for _, rs := range results {
		for _, r := range rs {
			if !r.ok {
				if r.out != r.in {
					t.Fatalf("failed exchange returned foreign value: %+v", r)
				}
				continue
			}
			successes++
			p, found := gotByIn[r.out]
			if !found {
				t.Fatalf("partner value %d never offered", r.out)
			}
			if !p.ok || p.out != r.in {
				t.Fatalf("pairing not mutual: %+v vs %+v", r, p)
			}
			if p.tid == r.tid {
				t.Fatalf("thread paired with itself: %+v", r)
			}
		}
	}
	if successes%2 != 0 {
		t.Errorf("odd number of successful exchanges: %d", successes)
	}
	t.Logf("stress: %d/%d exchanges succeeded", successes, workers*perWorker)
}

// TestRuntimeVerificationCAL is the end-to-end runtime check of §4-5: run
// the real instrumented exchanger under load, capture the observable
// history, and verify (i) the recorded trace is admitted by the exchanger
// CA-spec, (ii) the history agrees with the recorded trace (Definition 5),
// and (iii) the CAL checker independently accepts the history
// (Definition 6).
func TestRuntimeVerificationCAL(t *testing.T) {
	rec := recorder.New()
	e := New(objE, WithRecorder(rec), WithWaitPolicy(Spin(64)))
	var cap history.Capture

	const workers = 6
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < perWorker; i++ {
				v := int64(w*10_000 + i)
				cap.Inv(tid, objE, spec.MethodExchange, history.Int(v))
				ok, out := e.Exchange(tid, v)
				cap.Res(tid, objE, spec.MethodExchange, history.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()

	h := cap.History()
	if !h.IsComplete() {
		t.Fatal("history must be complete after all workers returned")
	}
	tr := rec.View(objE)

	if _, err := spec.Accepts(spec.NewExchanger(objE), tr); err != nil {
		t.Fatalf("recorded trace violates exchanger spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	r, err := check.CAL(context.Background(), h, spec.NewExchanger(objE))
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	if !r.OK {
		t.Fatalf("history not CA-linearizable: %s", r.Reason)
	}
}

func TestWaitPolicies(t *testing.T) {
	start := time.Now()
	Sleep(time.Millisecond).Wait()
	if time.Since(start) < time.Millisecond {
		t.Error("Sleep returned too early")
	}
	Spin(4).Wait() // must terminate
	NoWait{}.Wait()
	ran := false
	Func(func() { ran = true }).Wait()
	if !ran {
		t.Error("Func policy did not run")
	}
}

func TestExchangerID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
