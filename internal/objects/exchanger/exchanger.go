// Package exchanger implements the wait-free exchanger CA-object of the
// paper's Figure 1 — a simplified form of java.util.concurrent.Exchanger.
// Two concurrent threads pair up and atomically swap values; a thread that
// finds no partner within its wait window fails and gets its own value
// back.
//
// The implementation follows the offer/hole CAS protocol exactly: a thread
// either installs its Offer in the global slot g and waits for a partner to
// fill the offer's hole, or finds an installed offer and attempts to fill
// its hole with its own offer. The optional recorder instrumentation logs
// the CA-trace witnessing concurrency-aware linearizability at the
// linearization points identified by the paper's proof (§5): the XCHG CAS
// logs the swap pair for both threads in one atomic step; the PASS CAS and
// the final return log failure singletons.
package exchanger

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// offer mirrors the paper's Offer class: the offering thread, the datum,
// and the hole pointer that a partner CASes from nil to its own offer. The
// thread id is the auxiliary tid field added by the proof (§5); here it
// also carries the value back to the waiting partner.
type offer struct {
	tid  history.ThreadID
	data int64
	hole atomic.Pointer[offer]
}

// Exchanger is a wait-free exchange channel for int64 values.
type Exchanger struct {
	id   history.ObjectID
	g    atomic.Pointer[offer]
	fail *offer // sentinel marking a withdrawn offer
	wait WaitPolicy
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures an Exchanger.
type Option func(*Exchanger)

// WithWaitPolicy sets how long a thread that installed its offer waits for
// a partner before withdrawing (the paper's sleep(50)). The default is
// Spin(64).
func WithWaitPolicy(w WaitPolicy) Option {
	return func(e *Exchanger) { e.wait = w }
}

// WithRecorder enables CA-trace instrumentation: the exchanger logs a
// CA-element on 𝒯 at each linearization point. Used by the runtime
// verification tests; nil disables instrumentation (the default).
func WithRecorder(r *recorder.Recorder) Option {
	return func(e *Exchanger) { e.rec = r }
}

// WithChaos threads fault-injection hooks through the offer/hole
// protocol's synchronization points. Forced failures are installed only at
// the INIT and XCHG CASes, whose failure paths assume nothing about other
// threads; PASS is never forced (its failure path reads the hole filled by
// the partner).
func WithChaos(in *chaos.Injector) Option {
	return func(e *Exchanger) { e.inj = in }
}

// New returns an exchanger identified as object id in histories and traces.
func New(id history.ObjectID, opts ...Option) *Exchanger {
	e := &Exchanger{id: id, fail: &offer{}, wait: Spin(64)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// ID returns the exchanger's object identifier.
func (e *Exchanger) ID() history.ObjectID { return e.id }

// Exchange offers v for swapping on behalf of thread tid. It returns
// (true, w) if a partner thread concurrently offered w, and (false, v) if
// no partner was found. tid identifies the calling goroutine in recorded
// traces; callers must not run two operations with the same tid
// concurrently.
func (e *Exchanger) Exchange(tid history.ThreadID, v int64) (bool, int64) {
	n := &offer{tid: tid, data: v}
	e.inj.Pause(tid, "exchanger.init.pre-cas")
	if !e.inj.FailCAS(tid, "exchanger.init.cas") && e.g.CompareAndSwap(nil, n) {
		// init: offer installed
		e.inj.Pause(tid, "exchanger.wait.pre")
		e.wait.Wait()
		e.inj.Pause(tid, "exchanger.pass.pre-cas")
		if e.pass(n) { // withdraw the offer
			return false, v
		}
		// A partner filled our hole; it logged the swap at its XCHG.
		return true, n.hole.Load().data
	}
	e.inj.Pause(tid, "exchanger.slow.pre-read")
	cur := e.g.Load()
	if cur != nil {
		e.inj.Pause(tid, "exchanger.xchg.pre-cas")
		s := !e.inj.FailCAS(tid, "exchanger.xchg.cas") && e.xchg(cur, n, tid, v)
		// clean: unconditionally help remove the matched/withdrawn offer,
		// preserving wait-freedom (nobody ever waits for the offerer).
		e.inj.Pause(tid, "exchanger.clean.pre-cas")
		e.g.CompareAndSwap(cur, nil)
		if s {
			return true, cur.data
		}
	}
	e.logFail(tid, v)
	return false, v
}

// pass performs the PASS action: CAS our own hole from nil to the fail
// sentinel, signalling withdrawal. On success the failed operation is
// logged; on failure a partner got there first.
func (e *Exchanger) pass(n *offer) bool {
	if e.rec == nil {
		return n.hole.CompareAndSwap(nil, e.fail)
	}
	var ok bool
	e.rec.Do(func(log func(trace.Element)) {
		ok = n.hole.CompareAndSwap(nil, e.fail)
		if ok {
			log(spec.FailElement(e.id, n.tid, n.data))
		}
	})
	return ok
}

// xchg performs the XCHG action: CAS the found offer's hole from nil to our
// own offer. On success both operations of the swap are logged as a single
// CA-element in the same atomic step — the paper's treatment of one
// concrete atomic action as a sequence of operations by different threads.
func (e *Exchanger) xchg(cur, n *offer, tid history.ThreadID, v int64) bool {
	if e.rec == nil {
		return cur.hole.CompareAndSwap(nil, n)
	}
	var ok bool
	e.rec.Do(func(log func(trace.Element)) {
		ok = cur.hole.CompareAndSwap(nil, n)
		if ok {
			log(spec.SwapElement(e.id, cur.tid, cur.data, tid, v))
		}
	})
	return ok
}

// logFail performs the FAIL action for the slow-path failure (line 35 of
// Figure 1).
func (e *Exchanger) logFail(tid history.ThreadID, v int64) {
	if e.rec == nil {
		return
	}
	e.rec.Append(spec.FailElement(e.id, tid, v))
}
