// Package dualqueue implements a lock-free dual FIFO queue in the style
// of Scherer and Scott's dualqueue (the algorithm underlying
// java.util.concurrent.SynchronousQueue's fair mode): a Michael-Scott
// queue whose nodes are either data or *reservations*. A dequeuer that
// finds no data appends a reservation and waits; an enqueuer that finds
// reservations at the head fulfils the oldest one instead of appending.
//
// Together with the dual stack, this completes the paper's §6 observation
// about dual data structures: the fulfilling CAS logs the CA-element
// {(enqueuer, enq(v) ▷ true), (dequeuer, deq() ▷ (true,v))} in one atomic
// step. Because the queue is always uniformly data or uniformly
// reservations, fulfilments (and reservation cancellations) occur only
// when the abstract queue is empty — exactly when the DualQueue
// specification admits them under FIFO order.
package dualqueue

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

type settle struct {
	value     int64
	cancelled bool
}

// node is a queue node: a data node (isRes == false) or a reservation
// whose hole is CASed from nil to a fulfilment or cancellation.
type node struct {
	isRes bool
	data  int64
	tid   history.ThreadID // reserving thread (reservations only)
	hole  atomic.Pointer[settle]
	next  atomic.Pointer[node]
}

// Queue is a lock-free dual FIFO queue of int64 values.
type Queue struct {
	id   history.ObjectID
	head atomic.Pointer[node] // dummy-headed
	tail atomic.Pointer[node]
	wait exchanger.WaitPolicy
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures a Queue.
type Option func(*Queue)

// WithRecorder enables CA-trace instrumentation.
func WithRecorder(r *recorder.Recorder) Option {
	return func(q *Queue) { q.rec = r }
}

// WithWaitPolicy sets how a waiting dequeuer spins between checks of its
// reservation.
func WithWaitPolicy(w exchanger.WaitPolicy) Option {
	return func(q *Queue) { q.wait = w }
}

// WithChaos threads fault-injection hooks through the queue's retry loops.
// Forced failures are installed only at the append CASes (data and
// reservation); the fulfil and cancel CASes are never forced — their
// failure paths correctly assume the reservation was settled by another
// thread.
func WithChaos(in *chaos.Injector) Option {
	return func(q *Queue) { q.inj = in }
}

// New returns an empty dual queue identified as object id.
func New(id history.ObjectID, opts ...Option) *Queue {
	q := &Queue{id: id, wait: exchanger.Spin(1)}
	dummy := &node{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	for _, o := range opts {
		o(q)
	}
	return q
}

// ID returns the queue's object identifier.
func (q *Queue) ID() history.ObjectID { return q.id }

// Enq appends v on behalf of thread tid, fulfilling the oldest waiting
// dequeuer when reservations are queued.
//
// As in Scherer & Scott's dualqueue, the mode is decided by the TAIL
// node's kind (the queue is uniformly data or uniformly reservations, so
// the tail's kind is the queue's kind): deciding by the head's first node
// would race with a drain-and-refill and let a data node be appended
// behind an open reservation, breaking FIFO.
func (q *Queue) Enq(tid history.ThreadID, v int64) {
	n := &node{data: v}
	for {
		q.inj.Pause(tid, "dualqueue.enq.pre-read")
		head := q.head.Load()
		tail := q.tail.Load()
		if tail == head || !tail.isRes {
			// Empty or all-data: ordinary MS-queue append.
			next := tail.next.Load()
			if tail != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(tail, next)
				continue
			}
			q.inj.Pause(tid, "dualqueue.enq.pre-cas")
			if q.inj.FailCAS(tid, "dualqueue.enq.cas") {
				continue // forced retry
			}
			if q.enqCAS(tail, n, tid, v) {
				q.tail.CompareAndSwap(tail, n)
				return
			}
			continue
		}
		// All-reservations: fulfil the oldest.
		first := head.next.Load()
		if head != q.head.Load() || first == nil {
			continue
		}
		if !first.isRes {
			continue // queue flipped to data under us: retry
		}
		q.inj.Pause(tid, "dualqueue.fulfil.pre-cas")
		if q.fulfil(first, tid, v) {
			q.head.CompareAndSwap(head, first) // dequeue the fulfilled node
			return
		}
		// Settled by someone else (fulfilled or cancelled): help dequeue
		// the dead reservation and retry.
		q.head.CompareAndSwap(head, first)
	}
}

// Deq returns the head value, waiting for an enqueue when the queue is
// empty.
func (q *Queue) Deq(tid history.ThreadID) int64 {
	v, _ := q.deq(tid, -1)
	return v
}

// TryDeq attempts to dequeue, waiting at most attempts rounds once a
// reservation is installed; (0, false) means the reservation was
// cancelled unfulfilled.
func (q *Queue) TryDeq(tid history.ThreadID, attempts int) (int64, bool) {
	return q.deq(tid, attempts)
}

// deq decides its mode by the tail's kind, symmetrically to Enq: it
// appends a reservation only when the queue is empty or already holds
// reservations, preserving uniformity.
func (q *Queue) deq(tid history.ThreadID, attempts int) (int64, bool) {
	for {
		q.inj.Pause(tid, "dualqueue.deq.pre-read")
		head := q.head.Load()
		tail := q.tail.Load()
		if tail == head || tail.isRes {
			// Empty or all-reservations: append our own reservation.
			next := tail.next.Load()
			if tail != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(tail, next)
				continue
			}
			r := &node{isRes: true, tid: tid}
			q.inj.Pause(tid, "dualqueue.reserve.pre-cas")
			if q.inj.FailCAS(tid, "dualqueue.reserve.cas") {
				continue // forced retry
			}
			if !tail.next.CompareAndSwap(nil, r) {
				continue
			}
			q.tail.CompareAndSwap(tail, r)
			if v, ok := q.await(r, tid, attempts); ok {
				return v, true
			}
			if attempts >= 0 {
				return 0, false
			}
			continue
		}
		// All-data: ordinary MS-queue dequeue from the head.
		first := head.next.Load()
		if head != q.head.Load() || first == nil {
			continue
		}
		if first.isRes {
			// Leftover settled reservation at the head of a now-data
			// queue: help dequeue it.
			if first.hole.Load() != nil {
				q.head.CompareAndSwap(head, first)
			}
			continue
		}
		q.inj.Pause(tid, "dualqueue.deq.pre-cas")
		if q.inj.FailCAS(tid, "dualqueue.deq.cas") {
			continue // forced retry
		}
		if q.deqCAS(head, first, tid) {
			return first.data, true
		}
	}
}

// await waits for the reservation to settle; with a bounded budget it
// attempts cancellation, which can lose to a concurrent fulfilment.
func (q *Queue) await(r *node, tid history.ThreadID, attempts int) (int64, bool) {
	for round := 0; ; round++ {
		if f := r.hole.Load(); f != nil {
			return f.value, true
		}
		if attempts >= 0 && round >= attempts {
			if q.cancel(r, tid) {
				return 0, false
			}
			f := r.hole.Load()
			return f.value, true
		}
		q.wait.Wait()
	}
}

func (q *Queue) enqCAS(tail, n *node, tid history.ThreadID, v int64) bool {
	if q.rec == nil {
		return tail.next.CompareAndSwap(nil, n)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = tail.next.CompareAndSwap(nil, n)
		if ok {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodEnq,
				Arg: history.Int(v), Ret: history.Bool(true),
			}))
		}
	})
	return ok
}

func (q *Queue) deqCAS(head, first *node, tid history.ThreadID) bool {
	if q.rec == nil {
		return q.head.CompareAndSwap(head, first)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = q.head.CompareAndSwap(head, first)
		if ok {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodDeq,
				Arg: history.Unit(), Ret: history.Pair(true, first.data),
			}))
		}
	})
	return ok
}

// fulfil settles the oldest reservation with our value, logging the
// enq/deq pair atomically with the CAS.
func (q *Queue) fulfil(r *node, tid history.ThreadID, v int64) bool {
	f := &settle{value: v}
	if q.rec == nil {
		return r.hole.CompareAndSwap(nil, f)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = r.hole.CompareAndSwap(nil, f)
		if ok {
			log(spec.QFulfilmentElement(q.id, tid, v, r.tid))
		}
	})
	return ok
}

// cancel settles our own reservation as cancelled — a failed dequeue on
// the (necessarily empty) abstract queue.
func (q *Queue) cancel(r *node, tid history.ThreadID) bool {
	c := &settle{cancelled: true}
	if q.rec == nil {
		return r.hole.CompareAndSwap(nil, c)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = r.hole.CompareAndSwap(nil, c)
		if ok {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodDeq,
				Arg: history.Unit(), Ret: history.Pair(false, 0),
			}))
		}
	})
	return ok
}

// Len counts queued data nodes; a test helper.
func (q *Queue) Len() int {
	n := 0
	for c := q.head.Load().next.Load(); c != nil; c = c.next.Load() {
		if !c.isRes {
			n++
		}
	}
	return n
}
