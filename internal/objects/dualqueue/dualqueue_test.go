package dualqueue

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objDQ history.ObjectID = "DQ"

func TestSequentialFIFO(t *testing.T) {
	q := New(objDQ)
	for _, v := range []int64{1, 2, 3} {
		q.Enq(1, v)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for _, want := range []int64{1, 2, 3} {
		if got := q.Deq(1); got != want {
			t.Fatalf("Deq = %d, want %d", got, want)
		}
	}
}

func TestTryDeqCancelsOnEmpty(t *testing.T) {
	rec := recorder.New()
	q := New(objDQ, WithRecorder(rec), WithWaitPolicy(exchanger.NoWait{}))
	if v, ok := q.TryDeq(1, 0); ok {
		t.Fatalf("TryDeq on empty = (%d,true), want cancellation", v)
	}
	got := rec.View(objDQ)
	want := trace.Trace{trace.Singleton(trace.Operation{
		Thread: 1, Object: objDQ, Method: spec.MethodDeq,
		Arg: history.Unit(), Ret: history.Pair(false, 0),
	})}
	if !got.Equal(want) {
		t.Errorf("trace = %s, want %s", got, want)
	}
	// The queue remains usable past the dead reservation.
	q.Enq(2, 7)
	if v := q.Deq(2); v != 7 {
		t.Errorf("Deq after cancel = %d, want 7", v)
	}
}

func TestFulfilmentPairsOldestWaiter(t *testing.T) {
	rec := recorder.New()
	q := New(objDQ, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(1)))

	first := make(chan int64)
	second := make(chan int64)
	go func() { first <- q.Deq(2) }()
	// Wait for t2's reservation before t3 queues behind it.
	for q.head.Load().next.Load() == nil {
	}
	go func() { second <- q.Deq(3) }()
	for {
		n := q.head.Load().next.Load()
		if n != nil && n.next.Load() != nil {
			break
		}
	}
	q.Enq(1, 10) // must fulfil t2 (FIFO), not t3
	if got := <-first; got != 10 {
		t.Fatalf("first waiter got %d, want 10", got)
	}
	q.Enq(4, 20)
	if got := <-second; got != 20 {
		t.Fatalf("second waiter got %d, want 20", got)
	}
	tr := rec.View(objDQ)
	want := trace.Trace{
		spec.QFulfilmentElement(objDQ, 1, 10, 2),
		spec.QFulfilmentElement(objDQ, 4, 20, 3),
	}
	if !tr.Equal(want) {
		t.Errorf("trace = %s, want %s", tr, want)
	}
	if _, err := spec.Accepts(spec.NewDualQueue(objDQ), tr); err != nil {
		t.Errorf("trace not admitted: %v", err)
	}
}

func TestConcurrentStressNoLossNoDup(t *testing.T) {
	q := New(objDQ, WithWaitPolicy(exchanger.Spin(1)))
	const pairs = 4
	const per = 300
	var wg sync.WaitGroup
	var taken sync.Map
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				q.Enq(tid, int64(p*100_000+i))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				v := q.Deq(tid)
				if _, dup := taken.LoadOrStore(v, true); dup {
					t.Errorf("value %d dequeued twice", v)
				}
			}
		}(p)
	}
	wg.Wait()
	n := 0
	taken.Range(func(_, _ any) bool { n++; return true })
	if n != pairs*per {
		t.Errorf("dequeued %d distinct values, want %d", n, pairs*per)
	}
	if q.Len() != 0 {
		t.Errorf("queue should hold no data, has %d", q.Len())
	}
}

// TestRuntimeVerificationDualQueue verifies live runs against the
// DualQueue CA-spec, including the FIFO-specific constraint that
// fulfilments are only admitted on the empty queue.
func TestRuntimeVerificationDualQueue(t *testing.T) {
	rec := recorder.New()
	q := New(objDQ, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(1)))
	var cap history.Capture

	const pairs = 3
	const per = 15
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, objDQ, spec.MethodEnq, history.Int(v))
				q.Enq(tid, v)
				cap.Res(tid, objDQ, spec.MethodEnq, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, objDQ, spec.MethodDeq, history.Unit())
				v := q.Deq(tid)
				cap.Res(tid, objDQ, spec.MethodDeq, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View(objDQ)
	sp := spec.NewDualQueue(objDQ)
	if _, err := spec.Accepts(sp, tr); err != nil {
		t.Fatalf("recorded trace violates dual-queue spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	r, err := check.CAL(context.Background(), h, sp)
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	if !r.OK {
		t.Fatalf("dual queue history not CA-linearizable: %s", r.Reason)
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
