// Package dualstack implements a lock-free dual stack in the style of
// Scherer and Scott's dual data structures (discussed in the paper's
// related work, §6): a LIFO stack whose Pop waits for a value instead of
// failing when the stack is empty. A popper that finds no data pushes a
// *reservation* node; a pusher that finds an open reservation on top
// fulfils it by CASing its value into the reservation's hole instead of
// pushing a node.
//
// The paper observes that dual data structures are CA-objects and that
// CA-traces obviate Scherer & Scott's separate "request" and "follow-up"
// linearization points: here a fulfilment logs the single CA-element
// {(pusher, push(v) ▷ true), (popper, pop() ▷ (true,v))} atomically at the
// fulfilling CAS, and the object is verified against the DualStack
// CA-specification.
//
// Invariant: the stack is always all-data or all-reservations — a push
// never stacks data on an open reservation (it fulfils it instead), so a
// cancelled or fulfilled reservation always corresponds to an empty
// abstract stack.
package dualstack

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// node is either a data node (reservation == nil) or a reservation whose
// hole is CASed from nil to a fulfilment (or to the cancel sentinel).
type node struct {
	data int64
	next *node
	// hole is non-nil only for reservation nodes: it is CASed from nil
	// to the fulfilling value, or to the cancelled sentinel.
	hole *atomic.Pointer[fulfilment]
	tid  history.ThreadID // reserving thread (reservations only)
}

type fulfilment struct {
	value     int64
	cancelled bool
}

// Stack is a lock-free dual LIFO stack of int64 values.
type Stack struct {
	id   history.ObjectID
	top  atomic.Pointer[node]
	wait exchanger.WaitPolicy
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures a Stack.
type Option func(*Stack)

// WithRecorder enables CA-trace instrumentation.
func WithRecorder(r *recorder.Recorder) Option {
	return func(s *Stack) { s.rec = r }
}

// WithWaitPolicy sets how a waiting popper spins between checks of its
// reservation (and how long TryPop waits before cancelling).
func WithWaitPolicy(w exchanger.WaitPolicy) Option {
	return func(s *Stack) { s.wait = w }
}

// WithChaos threads fault-injection hooks through the stack's retry loops.
// Forced failures are installed only at the top-pointer CASes (push, pop,
// reservation install); fulfil and cancel are never forced — their failure
// paths correctly assume the reservation was settled by another thread.
func WithChaos(in *chaos.Injector) Option {
	return func(s *Stack) { s.inj = in }
}

// New returns an empty dual stack identified as object id.
func New(id history.ObjectID, opts ...Option) *Stack {
	s := &Stack{id: id, wait: exchanger.Spin(1)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ID returns the stack's object identifier.
func (s *Stack) ID() history.ObjectID { return s.id }

// Push pushes v on behalf of thread tid, fulfilling a waiting popper when
// one is available.
func (s *Stack) Push(tid history.ThreadID, v int64) {
	for {
		s.inj.Pause(tid, "dualstack.push.pre-read")
		h := s.top.Load()
		if h != nil && h.hole != nil {
			f := h.hole.Load()
			switch {
			case f == nil:
				// Open reservation on top: fulfil it.
				s.inj.Pause(tid, "dualstack.fulfil.pre-cas")
				if s.fulfil(h, tid, v) {
					s.top.CompareAndSwap(h, h.next) // help unlink
					return
				}
				// Lost the race (fulfilled or cancelled by others): the
				// reservation is settled, help unlink and retry.
				s.top.CompareAndSwap(h, h.next)
			default:
				// Settled reservation: help unlink and retry.
				s.top.CompareAndSwap(h, h.next)
			}
			continue
		}
		n := &node{data: v, next: h}
		s.inj.Pause(tid, "dualstack.push.pre-cas")
		if s.inj.FailCAS(tid, "dualstack.push.cas") {
			continue // forced retry
		}
		if s.pushCAS(h, n, tid, v) {
			return
		}
	}
}

// Pop returns the top value, waiting for a push when the stack is empty.
func (s *Stack) Pop(tid history.ThreadID) int64 {
	v, _ := s.pop(tid, -1)
	return v
}

// TryPop attempts to pop for at most attempts wait rounds once a
// reservation is installed; it returns (0, false) if the reservation was
// cancelled without being fulfilled.
func (s *Stack) TryPop(tid history.ThreadID, attempts int) (int64, bool) {
	return s.pop(tid, attempts)
}

// pop implements Pop (attempts < 0) and TryPop (attempts >= 0).
func (s *Stack) pop(tid history.ThreadID, attempts int) (int64, bool) {
	for {
		s.inj.Pause(tid, "dualstack.pop.pre-read")
		h := s.top.Load()
		switch {
		case h == nil || h.hole != nil:
			// Empty stack or reservations on top. Settled reservations
			// get unlinked; otherwise install our own reservation.
			if h != nil && h.hole.Load() != nil {
				s.top.CompareAndSwap(h, h.next)
				continue
			}
			var hole atomic.Pointer[fulfilment]
			r := &node{next: h, hole: &hole, tid: tid}
			s.inj.Pause(tid, "dualstack.reserve.pre-cas")
			if s.inj.FailCAS(tid, "dualstack.reserve.cas") {
				continue // forced retry
			}
			if !s.top.CompareAndSwap(h, r) {
				continue
			}
			if v, ok := s.await(r, tid, attempts); ok {
				return v, true
			}
			if attempts >= 0 {
				return 0, false
			}
			// Blocking pop never gives up; cancellation is only for
			// TryPop, so await with attempts < 0 always returns a value.
		default:
			// Data on top: ordinary pop.
			s.inj.Pause(tid, "dualstack.pop.pre-cas")
			if s.inj.FailCAS(tid, "dualstack.pop.cas") {
				continue // forced retry
			}
			if s.popCAS(h, tid) {
				return h.data, true
			}
		}
	}
}

// await waits for the reservation to be fulfilled. With a bounded budget
// it attempts cancellation when patience runs out; cancellation can lose
// to a concurrent fulfilment, in which case the value is returned.
func (s *Stack) await(r *node, tid history.ThreadID, attempts int) (int64, bool) {
	for round := 0; ; round++ {
		if f := r.hole.Load(); f != nil {
			s.top.CompareAndSwap(r, r.next) // help unlink
			return f.value, true
		}
		if attempts >= 0 && round >= attempts {
			if s.cancel(r, tid) {
				s.top.CompareAndSwap(r, r.next)
				return 0, false
			}
			// Fulfilment won the race.
			f := r.hole.Load()
			s.top.CompareAndSwap(r, r.next)
			return f.value, true
		}
		s.wait.Wait()
	}
}

// pushCAS performs an ordinary data push, logging the singleton element
// atomically with the successful CAS.
func (s *Stack) pushCAS(h, n *node, tid history.ThreadID, v int64) bool {
	if s.rec == nil {
		return s.top.CompareAndSwap(h, n)
	}
	var ok bool
	s.rec.Do(func(log func(trace.Element)) {
		ok = s.top.CompareAndSwap(h, n)
		if ok {
			log(spec.PushElement(s.id, tid, v, true))
		}
	})
	return ok
}

// popCAS performs an ordinary data pop.
func (s *Stack) popCAS(h *node, tid history.ThreadID) bool {
	if s.rec == nil {
		return s.top.CompareAndSwap(h, h.next)
	}
	var ok bool
	s.rec.Do(func(log func(trace.Element)) {
		ok = s.top.CompareAndSwap(h, h.next)
		if ok {
			log(spec.PopElement(s.id, tid, true, h.data))
		}
	})
	return ok
}

// fulfil CASes the reservation's hole from nil to our value, logging the
// push/pop pair as one CA-element in the same atomic step — the dual-
// structure analogue of the exchanger's XCHG instrumentation.
func (s *Stack) fulfil(r *node, tid history.ThreadID, v int64) bool {
	f := &fulfilment{value: v}
	if s.rec == nil {
		return r.hole.CompareAndSwap(nil, f)
	}
	var ok bool
	s.rec.Do(func(log func(trace.Element)) {
		ok = r.hole.CompareAndSwap(nil, f)
		if ok {
			log(spec.FulfilmentElement(s.id, tid, v, r.tid))
		}
	})
	return ok
}

// cancel CASes the reservation's hole from nil to the cancelled sentinel.
// A cancelled reservation corresponds to a failed pop on an empty stack
// (the all-reservations invariant), logged as pop ▷ (false,0).
func (s *Stack) cancel(r *node, tid history.ThreadID) bool {
	c := &fulfilment{cancelled: true}
	if s.rec == nil {
		return r.hole.CompareAndSwap(nil, c)
	}
	var ok bool
	s.rec.Do(func(log func(trace.Element)) {
		ok = r.hole.CompareAndSwap(nil, c)
		if ok {
			log(spec.PopElement(s.id, tid, false, 0))
		}
	})
	return ok
}
