package dualstack

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objDS history.ObjectID = "DS"

func TestSequentialLIFO(t *testing.T) {
	s := New(objDS)
	for _, v := range []int64{1, 2, 3} {
		s.Push(1, v)
	}
	for _, want := range []int64{3, 2, 1} {
		if got := s.Pop(1); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestTryPopCancelsOnEmpty(t *testing.T) {
	rec := recorder.New()
	s := New(objDS, WithRecorder(rec), WithWaitPolicy(exchanger.NoWait{}))
	if v, ok := s.TryPop(1, 0); ok {
		t.Fatalf("TryPop on empty = (%d,true), want cancellation", v)
	}
	got := rec.View(objDS)
	want := trace.Trace{spec.PopElement(objDS, 1, false, 0)}
	if !got.Equal(want) {
		t.Errorf("trace = %s, want %s", got, want)
	}
	// The stack is reusable after a cancelled reservation.
	s.Push(2, 7)
	if v := s.Pop(2); v != 7 {
		t.Errorf("Pop after cancel = %d, want 7", v)
	}
}

func TestFulfilmentPairsWaitingPopper(t *testing.T) {
	rec := recorder.New()
	s := New(objDS, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(1)))

	done := make(chan int64)
	go func() {
		done <- s.Pop(2) // waits: stack is empty
	}()
	// Wait until the reservation is visible, then push.
	for s.top.Load() == nil {
	}
	s.Push(1, 42)
	if got := <-done; got != 42 {
		t.Fatalf("waiting Pop = %d, want 42", got)
	}
	got := rec.View(objDS)
	want := trace.Trace{spec.FulfilmentElement(objDS, 1, 42, 2)}
	if !got.Equal(want) {
		t.Errorf("trace = %s, want %s", got, want)
	}
	if _, err := spec.Accepts(spec.NewDualStack(objDS), got); err != nil {
		t.Errorf("trace not admitted: %v", err)
	}
}

func TestAllDataOrAllReservationsInvariant(t *testing.T) {
	// A cancelled TryPop while data exists must not happen: data on top
	// means TryPop pops it instead of reserving.
	rec := recorder.New()
	s := New(objDS, WithRecorder(rec), WithWaitPolicy(exchanger.NoWait{}))
	s.Push(1, 5)
	if v, ok := s.TryPop(2, 0); !ok || v != 5 {
		t.Fatalf("TryPop with data = (%d,%v), want (5,true)", v, ok)
	}
	if _, err := spec.Accepts(spec.NewDualStack(objDS), rec.View(objDS)); err != nil {
		t.Errorf("trace not admitted: %v", err)
	}
}

func TestConcurrentStressNoLossNoDup(t *testing.T) {
	s := New(objDS, WithWaitPolicy(exchanger.Spin(1)))
	const pairs = 4
	const per = 300
	var wg sync.WaitGroup
	var popped sync.Map
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				s.Push(tid, int64(p*100_000+i))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				v := s.Pop(tid)
				if _, dup := popped.LoadOrStore(v, true); dup {
					t.Errorf("value %d popped twice", v)
				}
			}
		}(p)
	}
	wg.Wait()
	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != pairs*per {
		t.Errorf("popped %d distinct values, want %d", n, pairs*per)
	}
	if s.top.Load() != nil {
		t.Error("stack should be physically empty")
	}
}

// TestRuntimeVerificationDualStack is the §6 claim made executable: the
// dual stack's runs are CA-linearizable w.r.t. the DualStack spec, with
// fulfilments as single CA-elements (no request/follow-up split).
func TestRuntimeVerificationDualStack(t *testing.T) {
	rec := recorder.New()
	s := New(objDS, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(1)))
	var cap history.Capture

	const pairs = 3
	const per = 15
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, objDS, spec.MethodPush, history.Int(v))
				s.Push(tid, v)
				cap.Res(tid, objDS, spec.MethodPush, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, objDS, spec.MethodPop, history.Unit())
				v := s.Pop(tid)
				cap.Res(tid, objDS, spec.MethodPop, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View(objDS)
	sp := spec.NewDualStack(objDS)
	if _, err := spec.Accepts(sp, tr); err != nil {
		t.Fatalf("recorded trace violates dual-stack spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	r, err := check.CAL(context.Background(), h, sp)
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	if !r.OK {
		t.Fatalf("dual stack history not CA-linearizable: %s", r.Reason)
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
