package elimarray

import (
	"sync"
	"testing"

	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objAR history.ObjectID = "AR"

func TestNewValidation(t *testing.T) {
	if _, err := New(objAR, 0); err == nil {
		t.Error("K=0 must be rejected")
	}
	a, err := New(objAR, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3 || a.ID() != objAR {
		t.Errorf("Size=%d ID=%s", a.Size(), a.ID())
	}
}

func TestSlotID(t *testing.T) {
	if got := SlotID(objAR, 2); got != "AR.E[2]" {
		t.Errorf("SlotID = %s", got)
	}
}

func TestLoneExchangeFails(t *testing.T) {
	a, err := New(objAR, 2, WithWaitPolicy(exchanger.NoWait{}))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := a.Exchange(1, 5); ok || v != 5 {
		t.Errorf("Exchange = (%v,%d), want (false,5)", ok, v)
	}
}

func TestForcedPairingThroughFixedSlot(t *testing.T) {
	rec := recorder.New()
	installed := make(chan struct{})
	matched := make(chan struct{})
	var once sync.Once
	a, err := New(objAR, 4,
		WithRecorder(rec),
		WithSlotter(func(int) int { return 2 }), // always slot 2
		WithWaitPolicy(exchanger.Func(func() {
			once.Do(func() {
				close(installed)
				<-matched
			})
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterViews(rec); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var ok1 bool
	var v1 int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ok1, v1 = a.Exchange(1, 10)
	}()
	<-installed
	ok2, v2 := a.Exchange(2, 20)
	close(matched)
	wg.Wait()

	if !ok1 || v1 != 20 || !ok2 || v2 != 10 {
		t.Errorf("exchange results (%v,%d) (%v,%d)", ok1, v1, ok2, v2)
	}
	// Raw trace names the slot; the view relabels it to AR.
	raw := rec.Snapshot()
	if len(raw) != 1 || raw[0].Object != "AR.E[2]" {
		t.Errorf("raw trace = %s", raw)
	}
	got := rec.View(objAR)
	want := trace.Trace{spec.SwapElement(objAR, 1, 10, 2, 20)}
	if !got.Equal(want) {
		t.Errorf("View(AR) = %s, want %s", got, want)
	}
	if _, err := spec.Accepts(spec.NewElimArray(objAR), got); err != nil {
		t.Errorf("view not admitted by elim-array spec: %v", err)
	}
}

func TestStressSpreadAcrossSlots(t *testing.T) {
	rec := recorder.New()
	a, err := New(objAR, 4, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(64)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterViews(rec); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				a.Exchange(tid, int64(w*10_000+i))
			}
		}(w)
	}
	wg.Wait()
	// Whatever happened, the AR view must satisfy the exchanger spec.
	if _, err := spec.Accepts(spec.NewElimArray(objAR), rec.View(objAR)); err != nil {
		t.Fatalf("stressed view violates spec: %v", err)
	}
	// And the raw per-slot traces must each satisfy their own spec.
	for i := 0; i < a.Size(); i++ {
		slot := SlotID(objAR, i)
		if _, err := spec.Accepts(spec.NewExchanger(slot), rec.Snapshot().ByObject(slot)); err != nil {
			t.Fatalf("slot %d trace violates spec: %v", i, err)
		}
	}
}

func TestDefaultSlotterCoversRange(t *testing.T) {
	a, err := New(objAR, 8, WithWaitPolicy(exchanger.NoWait{}))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 4_000; i++ {
		seen[a.slot(a.Size())] = true
	}
	if len(seen) != 8 {
		t.Errorf("default slotter hit %d/8 slots", len(seen))
	}
	for s := range seen {
		if s < 0 || s >= 8 {
			t.Errorf("slot %d out of range", s)
		}
	}
}
