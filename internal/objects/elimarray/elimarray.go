// Package elimarray implements the elimination layer of the elimination
// stack (§2.2): an array of K exchangers behind the single-exchanger
// interface. A caller picks a random slot and attempts one exchange there;
// spreading callers over K slots reduces contention on any one exchanger.
//
// Per §5, the elimination array "exposes the same specification as a single
// exchanger": its view function F_AR relabels an exchange performed on any
// E[i] as an exchange on AR, hiding the array from clients.
package elimarray

import (
	"fmt"
	"math/rand/v2"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/trace"
)

// Slotter picks the elimination slot for one exchange attempt. It must be
// safe for concurrent use. The default chooses uniformly at random, as in
// the paper (line 4 of Figure 2).
type Slotter func(k int) int

// ElimArray is an array of K exchangers used as a single exchange channel.
type ElimArray struct {
	id   history.ObjectID
	exs  []*exchanger.Exchanger
	slot Slotter
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures an ElimArray.
type Option func(*cfg)

type cfg struct {
	slot Slotter
	wait exchanger.WaitPolicy
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// WithSlotter overrides slot selection; tests use it to force schedules.
func WithSlotter(s Slotter) Option { return func(c *cfg) { c.slot = s } }

// WithWaitPolicy sets the wait policy of every underlying exchanger.
func WithWaitPolicy(w exchanger.WaitPolicy) Option { return func(c *cfg) { c.wait = w } }

// WithRecorder instruments every underlying exchanger with the recorder.
// Call RegisterViews to install F_AR.
func WithRecorder(r *recorder.Recorder) Option { return func(c *cfg) { c.rec = r } }

// WithChaos threads fault-injection hooks through slot selection and every
// underlying exchanger.
func WithChaos(in *chaos.Injector) Option { return func(c *cfg) { c.inj = in } }

// New returns an elimination array with k slots, identified as object id.
func New(id history.ObjectID, k int, opts ...Option) (*ElimArray, error) {
	if k < 1 {
		return nil, fmt.Errorf("elimarray: need at least one slot, got %d", k)
	}
	c := cfg{
		slot: func(k int) int { return rand.IntN(k) },
		wait: exchanger.Spin(64),
	}
	for _, o := range opts {
		o(&c)
	}
	a := &ElimArray{id: id, slot: c.slot, rec: c.rec, inj: c.inj}
	for i := 0; i < k; i++ {
		exOpts := []exchanger.Option{exchanger.WithWaitPolicy(c.wait)}
		if c.rec != nil {
			exOpts = append(exOpts, exchanger.WithRecorder(c.rec))
		}
		if c.inj != nil {
			exOpts = append(exOpts, exchanger.WithChaos(c.inj))
		}
		a.exs = append(a.exs, exchanger.New(SlotID(id, i), exOpts...))
	}
	return a, nil
}

// SlotID returns the object identifier of slot i of elimination array id.
func SlotID(id history.ObjectID, i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("%s.E[%d]", id, i))
}

// ID returns the array's object identifier.
func (a *ElimArray) ID() history.ObjectID { return a.id }

// Size returns the number of slots K.
func (a *ElimArray) Size() int { return len(a.exs) }

// Exchange picks a slot and attempts a single exchange there on behalf of
// thread tid (Figure 2, lines 3-6).
func (a *ElimArray) Exchange(tid history.ThreadID, v int64) (bool, int64) {
	a.inj.Pause(tid, "elimarray.slot.pre")
	return a.exs[a.slot(len(a.exs))].Exchange(tid, v)
}

// RegisterViews registers the array and its exchanger subobjects with the
// recorder, installing the view function F_AR(E[i].S) = AR.S of §5.
func (a *ElimArray) RegisterViews(rec *recorder.Recorder) error {
	children := make([]history.ObjectID, len(a.exs))
	for i, ex := range a.exs {
		children[i] = ex.ID()
	}
	return rec.Register(a.id, children, a.relabel)
}

// relabel is F_AR: any exchange on a subobject becomes an exchange on AR.
func (a *ElimArray) relabel(el trace.Element) (trace.Trace, bool) {
	ops := make([]trace.Operation, len(el.Ops))
	for i, op := range el.Ops {
		op.Object = a.id
		ops[i] = op
	}
	out, err := trace.NewElement(ops...)
	if err != nil {
		// Unreachable: relabeling preserves element validity.
		return nil, false
	}
	return trace.Trace{out}, true
}
