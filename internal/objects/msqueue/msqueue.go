// Package msqueue implements the Michael-Scott lock-free FIFO queue. It is
// not itself a CA-object: it serves as a classically linearizable
// substrate that cross-validates the checker stack (Definition 6 with
// singleton elements must coincide with ordinary linearizability checking)
// and as the FIFO counterpart of the central stack in the benchmarks.
//
// When instrumented, the queue logs singleton CA-elements at its
// linearization points: the tail-next CAS for enqueue, the head CAS for
// dequeue, and the empty observation (head == tail with nil next) for a
// failed dequeue.
package msqueue

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

type node struct {
	data int64
	next atomic.Pointer[node]
}

// Queue is a lock-free FIFO queue of int64 values.
type Queue struct {
	id   history.ObjectID
	head atomic.Pointer[node] // dummy-headed
	tail atomic.Pointer[node]
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures a Queue.
type Option func(*Queue)

// WithRecorder enables CA-trace instrumentation.
func WithRecorder(r *recorder.Recorder) Option {
	return func(q *Queue) { q.rec = r }
}

// WithChaos threads fault-injection hooks through the queue's retry loops;
// forced CAS failures re-enter the loops like lost races.
func WithChaos(in *chaos.Injector) Option {
	return func(q *Queue) { q.inj = in }
}

// New returns an empty queue identified as object id.
func New(id history.ObjectID, opts ...Option) *Queue {
	q := &Queue{id: id}
	dummy := &node{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	for _, o := range opts {
		o(q)
	}
	return q
}

// ID returns the queue's object identifier.
func (q *Queue) ID() history.ObjectID { return q.id }

// Enq appends v on behalf of thread tid.
func (q *Queue) Enq(tid history.ThreadID, v int64) {
	n := &node{data: v}
	for {
		q.inj.Pause(tid, "msqueue.enq.pre-read")
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging: help advance.
			q.inj.Pause(tid, "msqueue.enq.pre-advance")
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		q.inj.Pause(tid, "msqueue.enq.pre-cas")
		if q.inj.FailCAS(tid, "msqueue.enq.cas") {
			continue // forced retry
		}
		if q.enqCAS(tail, n, tid, v) {
			q.inj.Pause(tid, "msqueue.enq.pre-swing")
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Deq removes and returns the head value, or (false, 0) when the queue is
// observed empty.
func (q *Queue) Deq(tid history.ThreadID) (bool, int64) {
	for {
		q.inj.Pause(tid, "msqueue.deq.pre-read")
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				if q.emptyLogged(tid) {
					return false, 0
				}
				continue // queue changed while logging: retry
			}
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if next == nil {
			continue // transient: retry
		}
		q.inj.Pause(tid, "msqueue.deq.pre-cas")
		if q.inj.FailCAS(tid, "msqueue.deq.cas") {
			continue // forced retry
		}
		if q.deqCAS(head, next, tid) {
			return true, next.data
		}
	}
}

// Len counts the queued elements; a test helper, not linearizable under
// concurrent mutation.
func (q *Queue) Len() int {
	n := 0
	for c := q.head.Load().next.Load(); c != nil; c = c.next.Load() {
		n++
	}
	return n
}

func (q *Queue) enqCAS(tail, n *node, tid history.ThreadID, v int64) bool {
	if q.rec == nil {
		return tail.next.CompareAndSwap(nil, n)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = tail.next.CompareAndSwap(nil, n)
		if ok {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodEnq,
				Arg: history.Int(v), Ret: history.Bool(true),
			}))
		}
	})
	return ok
}

func (q *Queue) deqCAS(head, next *node, tid history.ThreadID) bool {
	if q.rec == nil {
		return q.head.CompareAndSwap(head, next)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = q.head.CompareAndSwap(head, next)
		if ok {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodDeq,
				Arg: history.Unit(), Ret: history.Pair(true, next.data),
			}))
		}
	})
	return ok
}

// emptyLogged records the failed dequeue. The empty observation made in
// Deq happened outside the recorder lock, so the emptiness is re-validated
// inside the atomic step — the re-read IS the linearization point; if the
// queue changed in between, nothing is logged and the caller retries.
func (q *Queue) emptyLogged(tid history.ThreadID) bool {
	if q.rec == nil {
		return true
	}
	var empty bool
	q.rec.Do(func(log func(trace.Element)) {
		head := q.head.Load()
		empty = head == q.tail.Load() && head.next.Load() == nil
		if empty {
			log(trace.Singleton(trace.Operation{
				Thread: tid, Object: q.id, Method: spec.MethodDeq,
				Arg: history.Unit(), Ret: history.Pair(false, 0),
			}))
		}
	})
	return empty
}
