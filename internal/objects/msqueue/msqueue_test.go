package msqueue

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objQ history.ObjectID = "Q"

func TestSequentialFIFO(t *testing.T) {
	q := New(objQ)
	if ok, _ := q.Deq(1); ok {
		t.Error("deq on empty must fail")
	}
	for _, v := range []int64{1, 2, 3} {
		q.Enq(1, v)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for _, want := range []int64{1, 2, 3} {
		ok, v := q.Deq(1)
		if !ok || v != want {
			t.Fatalf("Deq = (%v,%d), want (true,%d)", ok, v, want)
		}
	}
	if ok, _ := q.Deq(1); ok {
		t.Error("drained queue must be empty")
	}
}

func TestInstrumentedTraceMatchesQueueSpec(t *testing.T) {
	rec := recorder.New()
	q := New(objQ, WithRecorder(rec))
	q.Enq(1, 5)
	q.Enq(1, 6)
	q.Deq(2)
	q.Deq(2)
	q.Deq(2) // empty
	tr := rec.View(objQ)
	if len(tr) != 5 {
		t.Fatalf("trace = %s", tr)
	}
	if _, err := spec.Accepts(spec.NewQueue(objQ), tr); err != nil {
		t.Fatalf("trace not admitted: %v", err)
	}
}

func TestConcurrentStressNoLossNoDup(t *testing.T) {
	q := New(objQ)
	const workers = 8
	const per = 400
	var wg sync.WaitGroup
	var deqd sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				q.Enq(tid, int64(w*100_000+i))
				if ok, v := q.Deq(tid); ok {
					if _, dup := deqd.LoadOrStore(v, true); dup {
						t.Errorf("value %d dequeued twice", v)
					}
				} else {
					t.Error("deq failed with a value pending per worker")
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Errorf("queue should be empty, has %d", q.Len())
	}
}

// TestRuntimeVerificationLinearizable cross-validates the checker: the
// MS queue's concurrent histories must be linearizable w.r.t. the FIFO
// queue spec, and CAL must coincide with Linearizable on them.
func TestRuntimeVerificationLinearizable(t *testing.T) {
	rec := recorder.New()
	q := New(objQ, WithRecorder(rec))
	var cap history.Capture

	const workers = 4
	const per = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, objQ, spec.MethodEnq, history.Int(v))
					q.Enq(tid, v)
					cap.Res(tid, objQ, spec.MethodEnq, history.Bool(true))
				} else {
					cap.Inv(tid, objQ, spec.MethodDeq, history.Unit())
					ok, got := q.Deq(tid)
					cap.Res(tid, objQ, spec.MethodDeq, history.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View(objQ)
	if _, err := spec.Accepts(spec.NewQueue(objQ), tr); err != nil {
		t.Fatalf("recorded trace violates queue spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	lin, err := check.Linearizable(context.Background(), h, spec.NewQueue(objQ))
	if err != nil {
		t.Fatalf("Linearizable: %v", err)
	}
	if !lin.OK {
		t.Fatalf("MS queue history not linearizable: %s", lin.Reason)
	}
	cal, err := check.CAL(context.Background(), h, spec.NewQueue(objQ))
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	if cal.OK != lin.OK {
		t.Error("CAL and Linearizable must coincide for a sequential spec")
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
