package pqueue

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objP history.ObjectID = "P"

func TestSequentialMinHeap(t *testing.T) {
	h := New(objP)
	if ok, _ := h.ExtractMin(1); ok {
		t.Error("extractmin on empty must fail")
	}
	for _, v := range []int64{5, 1, 4, 2, 3} {
		h.Insert(1, v)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	for _, want := range []int64{1, 2, 3, 4, 5} {
		ok, v := h.ExtractMin(1)
		if !ok || v != want {
			t.Fatalf("ExtractMin = (%v,%d), want (true,%d)", ok, v, want)
		}
	}
	if ok, _ := h.ExtractMin(1); ok {
		t.Error("drained heap must be empty")
	}
}

func TestInstrumentedTraceMatchesPQueueSpec(t *testing.T) {
	rec := recorder.New()
	h := New(objP, WithRecorder(rec))
	h.Insert(1, 9)
	h.Insert(1, 3)
	h.ExtractMin(2)
	h.ExtractMin(2)
	h.ExtractMin(2) // empty
	tr := rec.View(objP)
	if len(tr) != 5 {
		t.Fatalf("trace = %s", tr)
	}
	if _, err := spec.Accepts(spec.NewPQueue(objP), tr); err != nil {
		t.Fatalf("trace not admitted: %v", err)
	}
}

func TestConcurrentStressNoLossNoDup(t *testing.T) {
	h := New(objP)
	const workers = 8
	const per = 400
	var wg sync.WaitGroup
	var extracted sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				h.Insert(tid, int64(w*100_000+i))
				if ok, v := h.ExtractMin(tid); ok {
					if _, dup := extracted.LoadOrStore(v, true); dup {
						t.Errorf("value %d extracted twice", v)
					}
				} else {
					t.Error("extractmin failed with a value pending per worker")
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != 0 {
		t.Errorf("heap should be empty, has %d", h.Len())
	}
}

// TestRuntimeVerificationLinearizable cross-validates the checker on the
// heap's concurrent histories — with the auto engine, so eligible runs
// exercise the specialized pqueue monitor against a real object.
func TestRuntimeVerificationLinearizable(t *testing.T) {
	rec := recorder.New()
	h := New(objP, WithRecorder(rec))
	var cap history.Capture
	rng := rand.New(rand.NewSource(1))
	vals := rng.Perm(100)

	const workers = 4
	const per = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					v := int64(vals[w*per+i] + 1)
					cap.Inv(tid, objP, spec.MethodInsert, history.Int(v))
					h.Insert(tid, v)
					cap.Res(tid, objP, spec.MethodInsert, history.Bool(true))
				} else {
					cap.Inv(tid, objP, spec.MethodExtractMin, history.Unit())
					ok, got := h.ExtractMin(tid)
					cap.Res(tid, objP, spec.MethodExtractMin, history.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()

	hist := cap.History()
	tr := rec.View(objP)
	if _, err := spec.Accepts(spec.NewPQueue(objP), tr); err != nil {
		t.Fatalf("recorded trace violates pqueue spec: %v", err)
	}
	if err := trace.Agrees(hist, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	c, err := check.NewChecker(spec.NewPQueue(objP), check.WithEngine(check.EngineAuto))
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	res, err := c.Check(context.Background(), hist)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != check.Sat {
		t.Fatalf("heap history not linearizable (engine %s): %s", res.Engine, res.Reason)
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
