// Package pqueue implements a mutex-guarded binary min-heap. It is the
// priority-queue counterpart of the msqueue/treiber substrates: a
// classically linearizable object whose concurrent histories exercise the
// pqueue spec and the log-linear specialized monitor
// (calgo/internal/monitor) end to end.
//
// When instrumented, the heap logs singleton CA-elements at its
// linearization points, which are simply the heap mutations under the
// lock: the sift-up completing an insert, the root removal completing an
// extract-min, and the emptiness observation for a failed extract-min.
package pqueue

import (
	"sync"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// Heap is a mutex-guarded binary min-heap of int64 values.
type Heap struct {
	id  history.ObjectID
	mu  sync.Mutex
	a   []int64
	rec *recorder.Recorder
	inj *chaos.Injector
}

// Option configures a Heap.
type Option func(*Heap)

// WithRecorder enables CA-trace instrumentation.
func WithRecorder(r *recorder.Recorder) Option {
	return func(h *Heap) { h.rec = r }
}

// WithChaos threads fault-injection pause points around the critical
// section; a coarse-grained lock has no retry loops to perturb, so chaos
// here only stretches operation windows.
func WithChaos(in *chaos.Injector) Option {
	return func(h *Heap) { h.inj = in }
}

// New returns an empty heap identified as object id.
func New(id history.ObjectID, opts ...Option) *Heap {
	h := &Heap{id: id}
	for _, o := range opts {
		o(h)
	}
	return h
}

// ID returns the heap's object identifier.
func (h *Heap) ID() history.ObjectID { return h.id }

// Insert adds v on behalf of thread tid.
func (h *Heap) Insert(tid history.ThreadID, v int64) {
	h.inj.Pause(tid, "pqueue.insert.pre-lock")
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logged(func() {
		h.a = append(h.a, v)
		h.siftUp(len(h.a) - 1)
	}, trace.Singleton(trace.Operation{
		Thread: tid, Object: h.id, Method: spec.MethodInsert,
		Arg: history.Int(v), Ret: history.Bool(true),
	}))
}

// ExtractMin removes and returns the minimum, or (false, 0) when the heap
// is empty.
func (h *Heap) ExtractMin(tid history.ThreadID) (bool, int64) {
	h.inj.Pause(tid, "pqueue.extractmin.pre-lock")
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.a) == 0 {
		h.logged(func() {}, trace.Singleton(trace.Operation{
			Thread: tid, Object: h.id, Method: spec.MethodExtractMin,
			Arg: history.Unit(), Ret: history.Pair(false, 0),
		}))
		return false, 0
	}
	min := h.a[0]
	h.logged(func() {
		last := len(h.a) - 1
		h.a[0] = h.a[last]
		h.a = h.a[:last]
		if last > 0 {
			h.siftDown(0)
		}
	}, trace.Singleton(trace.Operation{
		Thread: tid, Object: h.id, Method: spec.MethodExtractMin,
		Arg: history.Unit(), Ret: history.Pair(true, min),
	}))
	return true, min
}

// Len reports the number of stored values; a test helper, not
// linearizable under concurrent mutation.
func (h *Heap) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.a)
}

// logged runs the heap mutation, logging el at the linearization point
// when a recorder is attached. The heap lock is already held, so the
// recorder's atomic step and the mutation coincide.
func (h *Heap) logged(mutate func(), el trace.Element) {
	if h.rec == nil {
		mutate()
		return
	}
	h.rec.Do(func(log func(trace.Element)) {
		mutate()
		log(el)
	})
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			return
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.a)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h.a[l] < h.a[m] {
			m = l
		}
		if r < n && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			return
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
}
