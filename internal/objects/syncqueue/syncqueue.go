// Package syncqueue implements a synchronous (hand-off) queue, the second
// exchanger client discussed by the paper ([9], [22]): a put blocks until a
// take arrives and vice versa, and the paired operations "seem to take
// effect simultaneously" — making the object concurrency-aware, with no
// useful sequential specification.
//
// The implementation adapts the exchanger's offer/hole protocol to the
// asymmetric case: the global slot holds either a waiting put offer or a
// waiting take reservation, and only an operation of the opposite kind may
// fill its hole. The instrumented build logs the hand-off pair as a single
// CA-element at the matching CAS, exactly as the exchanger logs swaps.
package syncqueue

import (
	"sync/atomic"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

type kind uint8

const (
	kindPut kind = iota + 1
	kindTake
)

type node struct {
	kind kind
	tid  history.ThreadID
	data int64
	hole atomic.Pointer[node]
}

// SyncQueue is a rendezvous channel for int64 values.
type SyncQueue struct {
	id   history.ObjectID
	g    atomic.Pointer[node]
	fail *node
	wait exchanger.WaitPolicy
	rec  *recorder.Recorder
	inj  *chaos.Injector
}

// Option configures a SyncQueue.
type Option func(*SyncQueue)

// WithWaitPolicy sets the partner-wait window of a waiting operation.
func WithWaitPolicy(w exchanger.WaitPolicy) Option {
	return func(q *SyncQueue) { q.wait = w }
}

// WithRecorder enables CA-trace instrumentation.
func WithRecorder(r *recorder.Recorder) Option {
	return func(q *SyncQueue) { q.rec = r }
}

// WithChaos threads fault-injection hooks through the offer/hole protocol.
// Forced failures are installed at the install and match CASes only; the
// pass CAS is never forced (its failure path reads the partner-filled
// hole).
func WithChaos(in *chaos.Injector) Option {
	return func(q *SyncQueue) { q.inj = in }
}

// New returns a synchronous queue identified as object id.
func New(id history.ObjectID, opts ...Option) *SyncQueue {
	q := &SyncQueue{id: id, fail: &node{}, wait: exchanger.Spin(64)}
	for _, o := range opts {
		o(q)
	}
	return q
}

// ID returns the queue's object identifier.
func (q *SyncQueue) ID() history.ObjectID { return q.id }

// TryPut attempts one hand-off of v to a concurrent taker; it fails if
// none arrives within the wait window. Failures are logged as failed-put
// singletons.
func (q *SyncQueue) TryPut(tid history.ThreadID, v int64) bool {
	ok, _ := q.attempt(tid, kindPut, v, true)
	return ok
}

// TryTake attempts one hand-off from a concurrent putter.
func (q *SyncQueue) TryTake(tid history.ThreadID) (int64, bool) {
	ok, v := q.attempt(tid, kindTake, 0, true)
	return v, ok
}

// Put hands v to a taker, retrying until one arrives. Internal failed
// attempts are not interface operations and are not logged.
func (q *SyncQueue) Put(tid history.ThreadID, v int64) {
	for {
		if ok, _ := q.attempt(tid, kindPut, v, false); ok {
			return
		}
	}
}

// Take receives a value from a putter, retrying until one arrives.
func (q *SyncQueue) Take(tid history.ThreadID) int64 {
	for {
		if ok, v := q.attempt(tid, kindTake, 0, false); ok {
			return v
		}
	}
}

// attempt runs one round of the offer/hole protocol for an operation of
// the given kind. logFail controls whether an unsuccessful round is logged
// as a failure singleton (true for the Try variants).
func (q *SyncQueue) attempt(tid history.ThreadID, k kind, v int64, logFail bool) (bool, int64) {
	n := &node{kind: k, tid: tid, data: v}
	q.inj.Pause(tid, "syncqueue.install.pre-cas")
	if !q.inj.FailCAS(tid, "syncqueue.install.cas") && q.g.CompareAndSwap(nil, n) {
		q.inj.Pause(tid, "syncqueue.wait.pre")
		q.wait.Wait()
		q.inj.Pause(tid, "syncqueue.pass.pre-cas")
		if q.pass(n, logFail) {
			return false, 0
		}
		m := n.hole.Load()
		if k == kindPut {
			return true, v
		}
		return true, m.data
	}
	q.inj.Pause(tid, "syncqueue.slow.pre-read")
	cur := q.g.Load()
	if cur != nil {
		if cur.kind != k {
			q.inj.Pause(tid, "syncqueue.match.pre-cas")
			matched := !q.inj.FailCAS(tid, "syncqueue.match.cas") && q.match(cur, n)
			q.inj.Pause(tid, "syncqueue.clean.pre-cas")
			q.g.CompareAndSwap(cur, nil)
			if matched {
				if k == kindPut {
					return true, v
				}
				return true, cur.data
			}
		} else if cur.hole.Load() != nil {
			// Same kind, already matched or withdrawn: help clean.
			q.g.CompareAndSwap(cur, nil)
		}
	}
	if logFail {
		q.logFail(tid, k, v)
	}
	return false, 0
}

// pass withdraws our own waiting offer (the PASS action).
func (q *SyncQueue) pass(n *node, logFail bool) bool {
	if q.rec == nil || !logFail {
		return n.hole.CompareAndSwap(nil, q.fail)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = n.hole.CompareAndSwap(nil, q.fail)
		if ok {
			log(q.failElement(n.tid, n.kind, n.data))
		}
	})
	return ok
}

// match fills the waiting opposite-kind offer's hole with ours (the XCHG
// analogue), logging the hand-off pair for both threads atomically.
func (q *SyncQueue) match(cur, n *node) bool {
	if q.rec == nil {
		return cur.hole.CompareAndSwap(nil, n)
	}
	var ok bool
	q.rec.Do(func(log func(trace.Element)) {
		ok = cur.hole.CompareAndSwap(nil, n)
		if !ok {
			return
		}
		putter, taker := cur, n
		if putter.kind != kindPut {
			putter, taker = n, cur
		}
		log(spec.HandOffElement(q.id, putter.tid, putter.data, taker.tid))
	})
	return ok
}

func (q *SyncQueue) logFail(tid history.ThreadID, k kind, v int64) {
	if q.rec == nil {
		return
	}
	q.rec.Append(q.failElement(tid, k, v))
}

func (q *SyncQueue) failElement(tid history.ThreadID, k kind, v int64) trace.Element {
	if k == kindPut {
		return trace.Singleton(trace.Operation{
			Thread: tid, Object: q.id, Method: spec.MethodPut,
			Arg: history.Int(v), Ret: history.Bool(false),
		})
	}
	return trace.Singleton(trace.Operation{
		Thread: tid, Object: q.id, Method: spec.MethodTake,
		Arg: history.Unit(), Ret: history.Pair(false, 0),
	})
}
