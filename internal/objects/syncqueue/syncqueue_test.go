package syncqueue

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objQ history.ObjectID = "SQ"

func TestTryPutAloneFails(t *testing.T) {
	rec := recorder.New()
	q := New(objQ, WithWaitPolicy(exchanger.NoWait{}), WithRecorder(rec))
	if q.TryPut(1, 5) {
		t.Error("TryPut with no taker must fail")
	}
	if _, ok := q.TryTake(2); ok {
		t.Error("TryTake with no putter must fail")
	}
	tr := rec.View(objQ)
	if len(tr) != 2 {
		t.Fatalf("trace = %s, want two failure singletons", tr)
	}
	if _, err := spec.Accepts(spec.NewSyncQueue(objQ), tr); err != nil {
		t.Errorf("trace not admitted: %v", err)
	}
}

func TestForcedHandOff(t *testing.T) {
	rec := recorder.New()
	installed := make(chan struct{})
	matched := make(chan struct{})
	var once sync.Once
	q := New(objQ, WithRecorder(rec), WithWaitPolicy(exchanger.Func(func() {
		once.Do(func() {
			close(installed)
			<-matched
		})
	})))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Put(1, 42)
	}()
	<-installed
	if v, ok := q.TryTake(2); !ok || v != 42 {
		t.Fatalf("TryTake = (%d,%v), want (42,true)", v, ok)
	}
	close(matched)
	wg.Wait()

	got := rec.View(objQ)
	want := trace.Trace{spec.HandOffElement(objQ, 1, 42, 2)}
	if !got.Equal(want) {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

func TestForcedHandOffTakerWaits(t *testing.T) {
	// Symmetric case: the taker installs its reservation first.
	rec := recorder.New()
	installed := make(chan struct{})
	matched := make(chan struct{})
	var once sync.Once
	q := New(objQ, WithRecorder(rec), WithWaitPolicy(exchanger.Func(func() {
		once.Do(func() {
			close(installed)
			<-matched
		})
	})))

	var got int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got = q.Take(2)
	}()
	<-installed
	if !q.TryPut(1, 7) {
		t.Fatal("TryPut should match the waiting taker")
	}
	close(matched)
	wg.Wait()
	if got != 7 {
		t.Fatalf("Take = %d, want 7", got)
	}
	want := trace.Trace{spec.HandOffElement(objQ, 1, 7, 2)}
	if tr := rec.View(objQ); !tr.Equal(want) {
		t.Errorf("trace = %s, want %s", tr, want)
	}
}

func TestBlockingPairsUnderLoad(t *testing.T) {
	q := New(objQ, WithWaitPolicy(exchanger.Spin(64)))
	const pairs = 4
	const per = 200
	var wg sync.WaitGroup
	var taken sync.Map
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				q.Put(tid, int64(p*100_000+i))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				v := q.Take(tid)
				if _, dup := taken.LoadOrStore(v, true); dup {
					t.Errorf("value %d taken twice", v)
				}
			}
		}(p)
	}
	wg.Wait()
	n := 0
	taken.Range(func(_, _ any) bool { n++; return true })
	if n != pairs*per {
		t.Errorf("took %d distinct values, want %d", n, pairs*per)
	}
}

// TestRuntimeVerificationSyncQueue: capture the history of an instrumented
// run and verify CAL against the synchronous queue CA-spec.
func TestRuntimeVerificationSyncQueue(t *testing.T) {
	rec := recorder.New()
	q := New(objQ, WithRecorder(rec), WithWaitPolicy(exchanger.Spin(64)))
	var cap history.Capture

	const pairs = 3
	const per = 15
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, objQ, spec.MethodPut, history.Int(v))
				q.Put(tid, v)
				cap.Res(tid, objQ, spec.MethodPut, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, objQ, spec.MethodTake, history.Unit())
				v := q.Take(tid)
				cap.Res(tid, objQ, spec.MethodTake, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	tr := rec.View(objQ)
	if _, err := spec.Accepts(spec.NewSyncQueue(objQ), tr); err != nil {
		t.Fatalf("trace violates sync-queue spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with trace: %v", err)
	}
	r, err := check.CAL(context.Background(), h, spec.NewSyncQueue(objQ))
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	if !r.OK {
		t.Fatalf("sync-queue history not CA-linearizable: %s", r.Reason)
	}
	// Under a sequential reading the same history must be rejected as soon
	// as any hand-off succeeded (successful puts cannot stand alone).
	lin, err := check.Linearizable(context.Background(), h, spec.NewSyncQueue(objQ))
	if err != nil {
		t.Fatalf("Linearizable: %v", err)
	}
	if lin.OK {
		t.Error("hand-off history must not be explainable sequentially")
	}
}

func TestID(t *testing.T) {
	if New("X").ID() != "X" {
		t.Error("ID mismatch")
	}
}
