// Package elimstack implements the elimination stack of Hendler, Shavit
// and Yerushalmi, following the paper's Figure 2: a central lock-free stack
// plus an elimination array. A thread first attempts its operation on the
// central stack; if the single CAS fails under contention it tries to
// eliminate against a concurrently executing opposite operation through
// the elimination array — a pushing thread offers its value, a popping
// thread offers the POP sentinel, and a successful exchange of value
// against sentinel eliminates the pair without touching the stack.
//
// The package also carries the object's view function F_ES (§5), which
// derives the elimination stack's CA-trace from those of its subobjects:
// successful central-stack operations map to the corresponding
// elimination-stack operations, a value/sentinel exchange maps to a push
// linearized immediately before the matching pop, and everything else
// (contention failures, same-operation exchanges, failed exchanges) is
// erased. Under this view the elimination stack is linearizable with
// respect to the ordinary sequential stack specification.
package elimstack

import (
	"errors"
	"math"

	"calgo/internal/chaos"
	"calgo/internal/history"
	"calgo/internal/objects/elimarray"
	"calgo/internal/objects/exchanger"
	"calgo/internal/objects/treiber"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// PopSentinel is the reserved value offered to the elimination array by
// popping threads (POP_SENTINAL = INFINITY in Figure 2). Client values must
// be smaller.
const PopSentinel int64 = math.MaxInt64

// ErrSentinel is returned when a client attempts to push PopSentinel.
var ErrSentinel = errors.New("elimstack: cannot push the pop sentinel value")

// Stack is an elimination-backed lock-free stack of int64 values.
type Stack struct {
	id  history.ObjectID
	s   *treiber.Stack
	ar  *elimarray.ElimArray
	inj *chaos.Injector
}

// Option configures a Stack.
type Option func(*cfg)

type cfg struct {
	slots int
	wait  exchanger.WaitPolicy
	slot  elimarray.Slotter
	rec   *recorder.Recorder
	inj   *chaos.Injector
}

// WithSlots sets the elimination array width K (default 4).
func WithSlots(k int) Option { return func(c *cfg) { c.slots = k } }

// WithWaitPolicy sets the exchangers' partner-wait policy.
func WithWaitPolicy(w exchanger.WaitPolicy) Option { return func(c *cfg) { c.wait = w } }

// WithSlotter overrides elimination slot selection (tests only).
func WithSlotter(s elimarray.Slotter) Option { return func(c *cfg) { c.slot = s } }

// WithRecorder instruments the stack and its subobjects and registers the
// view functions F_AR and F_ES with the recorder.
func WithRecorder(r *recorder.Recorder) Option { return func(c *cfg) { c.rec = r } }

// WithChaos threads fault-injection hooks through the stack's retry loop
// and both subobjects (the central stack's CASes and the elimination
// array's exchangers).
func WithChaos(in *chaos.Injector) Option { return func(c *cfg) { c.inj = in } }

// New returns an elimination stack identified as object id. Its subobjects
// are identified as id+".S" and id+".AR".
func New(id history.ObjectID, opts ...Option) (*Stack, error) {
	c := cfg{slots: 4, wait: exchanger.Spin(64)}
	for _, o := range opts {
		o(&c)
	}
	var sOpts []treiber.Option
	arOpts := []elimarray.Option{elimarray.WithWaitPolicy(c.wait)}
	if c.slot != nil {
		arOpts = append(arOpts, elimarray.WithSlotter(c.slot))
	}
	if c.rec != nil {
		sOpts = append(sOpts, treiber.WithRecorder(c.rec))
		arOpts = append(arOpts, elimarray.WithRecorder(c.rec))
	}
	if c.inj != nil {
		sOpts = append(sOpts, treiber.WithChaos(c.inj))
		arOpts = append(arOpts, elimarray.WithChaos(c.inj))
	}
	sub := treiber.New(id+".S", sOpts...)
	ar, err := elimarray.New(id+".AR", c.slots, arOpts...)
	if err != nil {
		return nil, err
	}
	es := &Stack{id: id, s: sub, ar: ar, inj: c.inj}
	if c.rec != nil {
		if err := es.registerViews(c.rec); err != nil {
			return nil, err
		}
	}
	return es, nil
}

// ID returns the stack's object identifier.
func (es *Stack) ID() history.ObjectID { return es.id }

// Central returns the central stack subobject (for tests and examples).
func (es *Stack) Central() *treiber.Stack { return es.s }

// ElimArray returns the elimination array subobject.
func (es *Stack) ElimArray() *elimarray.ElimArray { return es.ar }

// Push pushes v on behalf of thread tid (Figure 2, lines 29-37), retrying
// until the push either lands on the central stack or is eliminated by a
// concurrent pop.
func (es *Stack) Push(tid history.ThreadID, v int64) error {
	if v == PopSentinel {
		return ErrSentinel
	}
	for {
		if es.s.TryPush(tid, v) {
			return nil
		}
		es.inj.Pause(tid, "elimstack.push.pre-eliminate")
		if _, d := es.ar.Exchange(tid, v); d == PopSentinel {
			return nil // eliminated by a popper
		}
		// Failed or same-operation exchange: retry.
		es.inj.Pause(tid, "elimstack.push.retry")
	}
}

// Pop pops a value on behalf of thread tid (Figure 2, lines 38-47). Like
// the paper's code it retries until a value is obtained, so it blocks while
// the stack stays empty and no pusher arrives; use TryPop for bounded
// attempts.
func (es *Stack) Pop(tid history.ThreadID) int64 {
	for {
		if ok, v := es.s.TryPop(tid); ok {
			return v
		}
		es.inj.Pause(tid, "elimstack.pop.pre-eliminate")
		if _, v := es.ar.Exchange(tid, PopSentinel); v != PopSentinel {
			return v // eliminated a pusher
		}
		es.inj.Pause(tid, "elimstack.pop.retry")
	}
}

// TryPop attempts at most attempts rounds of Pop's loop, returning
// (0, false) if none yielded a value.
func (es *Stack) TryPop(tid history.ThreadID, attempts int) (int64, bool) {
	for i := 0; i < attempts; i++ {
		if ok, v := es.s.TryPop(tid); ok {
			return v, true
		}
		if _, v := es.ar.Exchange(tid, PopSentinel); v != PopSentinel {
			return v, true
		}
	}
	return 0, false
}

// TryPush attempts at most attempts rounds of Push's loop.
func (es *Stack) TryPush(tid history.ThreadID, v int64, attempts int) (bool, error) {
	if v == PopSentinel {
		return false, ErrSentinel
	}
	for i := 0; i < attempts; i++ {
		if es.s.TryPush(tid, v) {
			return true, nil
		}
		if _, d := es.ar.Exchange(tid, v); d == PopSentinel {
			return true, nil
		}
	}
	return false, nil
}

// registerViews wires the subobjects' view functions and F_ES into rec.
func (es *Stack) registerViews(rec *recorder.Recorder) error {
	if err := rec.Register(es.s.ID(), nil, nil); err != nil {
		return err
	}
	if err := es.ar.RegisterViews(rec); err != nil {
		return err
	}
	return rec.Register(es.id, []history.ObjectID{es.s.ID(), es.ar.ID()}, es.view)
}

// view is F_ES (§5). It receives elements of the immediate subobjects (the
// central stack S and the elimination array AR, the latter already
// relabeled by F_AR) and produces elimination-stack operations:
//
//	F_ES(S.(t,push(n)▷true))          = ES.(t,push(n)▷true)
//	F_ES(S.(t,pop()▷(true,n)))        = ES.(t,pop()▷(true,n))
//	F_ES(AR.swap value n vs sentinel) = ES.push(n) · ES.pop▷n
//	F_ES(anything else)               = ε
func (es *Stack) view(el trace.Element) (trace.Trace, bool) {
	switch el.Object {
	case es.s.ID():
		if len(el.Ops) != 1 {
			return nil, true
		}
		op := el.Ops[0]
		switch {
		case op.Method == spec.MethodPush && op.Ret.Kind == history.KindBool && op.Ret.B:
			return trace.Trace{spec.PushElement(es.id, op.Thread, op.Arg.N, true)}, true
		case op.Method == spec.MethodPop && op.Ret.Kind == history.KindPair && op.Ret.B:
			return trace.Trace{spec.PopElement(es.id, op.Thread, true, op.Ret.N)}, true
		default:
			return nil, true // contention or empty failure: erased
		}
	case es.ar.ID():
		if len(el.Ops) != 2 {
			return nil, true // failed exchange: erased
		}
		push, pop := el.Ops[0], el.Ops[1]
		if push.Arg.N == PopSentinel {
			push, pop = pop, push
		}
		if push.Arg.N == PopSentinel || pop.Arg.N != PopSentinel {
			return nil, true // same-operation exchange: erased
		}
		if !push.Ret.B || !pop.Ret.B {
			return nil, true
		}
		// The push is linearized immediately before the pop (§5).
		return trace.Trace{
			spec.PushElement(es.id, push.Thread, push.Arg.N, true),
			spec.PopElement(es.id, pop.Thread, true, push.Arg.N),
		}, true
	default:
		return nil, false
	}
}
