package elimstack

import (
	"context"
	"sync"
	"testing"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/objects/exchanger"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

const objES history.ObjectID = "ES"

func TestSequentialPushPop(t *testing.T) {
	es, err := New(objES)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{1, 2, 3} {
		if err := es.Push(1, v); err != nil {
			t.Fatalf("Push(%d): %v", v, err)
		}
	}
	for _, want := range []int64{3, 2, 1} {
		if got := es.Pop(1); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if _, ok := es.TryPop(1, 3); ok {
		t.Error("TryPop on empty should fail")
	}
}

func TestPushSentinelRejected(t *testing.T) {
	es, err := New(objES)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Push(1, PopSentinel); err != ErrSentinel {
		t.Errorf("Push(sentinel) = %v, want ErrSentinel", err)
	}
	if _, err := es.TryPush(1, PopSentinel, 1); err != ErrSentinel {
		t.Errorf("TryPush(sentinel) = %v, want ErrSentinel", err)
	}
}

func TestTryPushSucceedsUncontended(t *testing.T) {
	es, err := New(objES)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := es.TryPush(1, 9, 1)
	if err != nil || !ok {
		t.Fatalf("TryPush = (%v,%v)", ok, err)
	}
	if v, ok := es.TryPop(1, 1); !ok || v != 9 {
		t.Fatalf("TryPop = (%d,%v)", v, ok)
	}
}

func TestAccessors(t *testing.T) {
	es, err := New(objES, WithSlots(2))
	if err != nil {
		t.Fatal(err)
	}
	if es.ID() != objES {
		t.Error("ID mismatch")
	}
	if es.Central().ID() != "ES.S" {
		t.Errorf("central id = %s", es.Central().ID())
	}
	if es.ElimArray().ID() != "ES.AR" || es.ElimArray().Size() != 2 {
		t.Errorf("elim array = %s size %d", es.ElimArray().ID(), es.ElimArray().Size())
	}
	if _, err := New(objES, WithSlots(0)); err == nil {
		t.Error("zero slots must be rejected")
	}
}

// TestPushPopThroughEliminationUnderContention drives the Push/Pop and
// TryPush retry loops through the elimination branch: a one-slot array
// with an always-failing central stack forced by saturating contention.
func TestPushPopThroughEliminationUnderContention(t *testing.T) {
	es, err := New(objES,
		WithSlots(1),
		WithSlotter(func(int) int { return 0 }),
		WithWaitPolicy(exchanger.Spin(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer with many workers so both stack contention and elimination
	// occur; TryPush with bounded attempts exercises the give-up path.
	const workers = 6
	const per = 100
	var wg sync.WaitGroup
	var pushed, popped sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*100_000 + i)
				if w%2 == 0 {
					ok, err := es.TryPush(tid, v, 50)
					if err != nil {
						t.Errorf("TryPush: %v", err)
					}
					if ok {
						pushed.Store(v, true)
					}
				} else {
					if v, ok := es.TryPop(tid, 50); ok {
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("value %d popped twice", v)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every popped value was pushed.
	popped.Range(func(k, _ any) bool {
		if _, ok := pushed.Load(k); !ok {
			t.Errorf("popped value %v never pushed", k)
		}
		return true
	})
}

func TestRecorderReuseRejected(t *testing.T) {
	// The strict ownership discipline (§2): registering two elimination
	// stacks with the same object id on one recorder must fail.
	rec := recorder.New()
	if _, err := New(objES, WithRecorder(rec)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(objES, WithRecorder(rec)); err == nil {
		t.Error("duplicate registration must fail")
	}
}

// TestViewFunction exercises F_ES directly on all element shapes.
func TestViewFunction(t *testing.T) {
	rec := recorder.New()
	es, err := New(objES, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	sID, arID := es.Central().ID(), es.ElimArray().ID()

	tests := []struct {
		name string
		el   trace.Element
		want trace.Trace // nil means erased
	}{
		{"successful push", spec.PushElement(sID, 1, 5, true),
			trace.Trace{spec.PushElement(objES, 1, 5, true)}},
		{"successful pop", spec.PopElement(sID, 2, true, 5),
			trace.Trace{spec.PopElement(objES, 2, true, 5)}},
		{"failed push erased", spec.PushElement(sID, 1, 5, false), nil},
		{"failed pop erased", spec.PopElement(sID, 2, false, 0), nil},
		{"elimination pair", spec.SwapElement(arID, 1, 7, 2, PopSentinel),
			trace.Trace{spec.PushElement(objES, 1, 7, true), spec.PopElement(objES, 2, true, 7)}},
		{"elimination pair reversed", spec.SwapElement(arID, 2, PopSentinel, 1, 7),
			trace.Trace{spec.PushElement(objES, 1, 7, true), spec.PopElement(objES, 2, true, 7)}},
		{"push-push exchange erased", spec.SwapElement(arID, 1, 7, 2, 8), nil},
		{"pop-pop exchange erased", spec.SwapElement(arID, 1, PopSentinel, 2, PopSentinel), nil},
		{"failed exchange erased", spec.FailElement(arID, 1, 7), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := es.view(tt.el)
			if !ok {
				t.Fatal("view undefined on subobject element")
			}
			if tt.want == nil {
				if len(got) != 0 {
					t.Errorf("view = %s, want ε", got)
				}
				return
			}
			if !trace.Trace(got).Equal(tt.want) {
				t.Errorf("view = %s, want %s", got, tt.want)
			}
		})
	}
	// Foreign objects pass through.
	if _, ok := es.view(spec.FailElement("other", 1, 1)); ok {
		t.Error("view must be undefined on foreign objects")
	}
}

func TestForcedElimination(t *testing.T) {
	// Force a pusher and a popper to meet in the elimination array: the
	// pusher blocks in its exchanger wait window until the popper matches.
	rec := recorder.New()
	installed := make(chan struct{})
	matched := make(chan struct{})
	var once sync.Once
	es, err := New(objES,
		WithRecorder(rec),
		WithSlots(1),
		WithWaitPolicy(exchanger.Func(func() {
			once.Do(func() {
				close(installed)
				<-matched
			})
		})),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the central stack CAS path: we force TryPush to fail by
	// pre-filling g? Instead, drive the elimination array directly — Push
	// falls back to it only on contention, so for a deterministic test we
	// exercise the same code path via the subobject and the view.
	var wg sync.WaitGroup
	var pushErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, d := es.ElimArray().Exchange(1, 7) // pusher's elimination offer
		if d != PopSentinel {
			pushErr = ErrSentinel // repurposed: marks unexpected result
		}
	}()
	<-installed
	if _, v := es.ElimArray().Exchange(2, PopSentinel); v != 7 {
		t.Fatalf("popper received %d, want 7", v)
	}
	close(matched)
	wg.Wait()
	if pushErr != nil {
		t.Fatal("pusher was not eliminated by the popper")
	}

	got := rec.View(objES)
	want := trace.Trace{
		spec.PushElement(objES, 1, 7, true),
		spec.PopElement(objES, 2, true, 7),
	}
	if !got.Equal(want) {
		t.Errorf("View(ES) = %s, want %s", got, want)
	}
	if _, err := spec.Accepts(spec.NewStack(objES), got); err != nil {
		t.Errorf("derived trace not admitted by stack spec: %v", err)
	}
}

// TestRuntimeVerificationElimStack is the paper's headline theorem made
// executable: the elimination stack, composed of an instrumented central
// stack and elimination array, is linearizable with respect to the
// SEQUENTIAL stack specification — verified on real concurrent executions
// through the composed view F_ES ∘ F̂_AR.
func TestRuntimeVerificationElimStack(t *testing.T) {
	rec := recorder.New()
	es, err := New(objES, WithRecorder(rec), WithSlots(2), WithWaitPolicy(exchanger.Spin(64)))
	if err != nil {
		t.Fatal(err)
	}
	var cap history.Capture

	const pairs = 3 // pusher/popper pairs
	const per = 20
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, objES, spec.MethodPush, history.Int(v))
				if err := es.Push(tid, v); err != nil {
					t.Errorf("Push: %v", err)
				}
				cap.Res(tid, objES, spec.MethodPush, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, objES, spec.MethodPop, history.Unit())
				v := es.Pop(tid)
				cap.Res(tid, objES, spec.MethodPop, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()

	h := cap.History()
	if !h.IsComplete() {
		t.Fatal("history must be complete")
	}
	tr := rec.View(objES)

	// (i) The derived ES trace satisfies the sequential stack spec.
	if _, err := spec.Accepts(spec.NewStack(objES), tr); err != nil {
		t.Fatalf("derived trace violates stack spec: %v", err)
	}
	// (ii) The observed history agrees with the derived trace (Def. 5).
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with derived trace: %v", err)
	}
	// (iii) Independent check: the history is linearizable (Def. 6 with
	// singleton elements, since the stack spec is sequential).
	r, err := check.Linearizable(context.Background(), h, spec.NewStack(objES))
	if err != nil {
		t.Fatalf("Linearizable: %v", err)
	}
	if !r.OK {
		t.Fatalf("elimination stack history not linearizable: %s", r.Reason)
	}
	// (iv) The subobject views satisfy their own specs (modularity).
	if _, err := spec.Accepts(spec.NewCentralStack(es.Central().ID()), rec.View(es.Central().ID())); err != nil {
		t.Errorf("central stack view violates its spec: %v", err)
	}
	if _, err := spec.Accepts(spec.NewElimArray(es.ElimArray().ID()), rec.View(es.ElimArray().ID())); err != nil {
		t.Errorf("elimination array view violates its spec: %v", err)
	}
}

func TestConcurrentStressNoLossNoDup(t *testing.T) {
	es, err := New(objES, WithSlots(4), WithWaitPolicy(exchanger.Spin(32)))
	if err != nil {
		t.Fatal(err)
	}
	const pairs = 4
	const per = 300
	var wg sync.WaitGroup
	var popped sync.Map
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				if err := es.Push(tid, int64(p*100_000+i)); err != nil {
					t.Errorf("Push: %v", err)
				}
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				v := es.Pop(tid)
				if _, dup := popped.LoadOrStore(v, true); dup {
					t.Errorf("value %d popped twice", v)
				}
			}
		}(p)
	}
	wg.Wait()
	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != pairs*per {
		t.Errorf("popped %d distinct values, want %d", n, pairs*per)
	}
	if es.Central().Len() != 0 {
		t.Errorf("central stack should be empty, has %d", es.Central().Len())
	}
}
