// Package cliflags defines the flags, observability wiring and exit-code
// conventions shared by the calgo CLIs (calcheck, calexplore, calfuzz,
// calbench, calreport), so the tools stay uniform: the same flag names
// mean the same thing everywhere, every tool documents the exit-code
// legend in its -h output, and -metrics-json/-trace/-progress/-pprof/
// -serve/-log-level/-log-format behave identically.
//
// Usage, in a tool's main:
//
//	s := cliflags.Register("calcheck")
//	flag.Parse()
//	if err := s.Start(); err != nil { ... exit 2 ... }
//	defer s.Close()
//	ctx, cancel := s.WithTimeout(ctx)
//	defer cancel()
//	results, err := calgo.CheckMany(ctx, hs, sp, s.Options()...)
//	...
//	s.DumpFlight()            // on VIOLATION or UNKNOWN
//	if err := s.Finish(exit); err != nil { ... exit 2 ... }
package cliflags

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"calgo"
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM — the
// shared interrupt wiring of every calgo CLI, so a Ctrl-C or an
// orchestrator's TERM turns into cooperative cancellation (and a flushed
// -metrics-json/-report) instead of lost output. The returned stop
// function releases the signal registration; a second signal after
// cancellation kills the process with the default disposition.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// ExitLegend is the exit-code convention shared by every calgo CLI; it
// is appended to each tool's -h output.
const ExitLegend = `
Exit status:
  0  OK: the property was verified / all runs passed
  1  VIOLATION: a history or execution failed its check
  2  usage or input error
  3  UNKNOWN: interrupted, cancelled, or out of budget before a verdict
     (a resource-bounded "don't know", not a failure)
`

// TraceSample is the 1-in-N sampling rate of -trace's JSON-lines output
// for high-frequency events (NodeExpand, MemoHit, ElementAdmit,
// Backtrack); SearchStart and SearchEnd are always written.
const TraceSample = 64

// FlightEvents is the ring capacity of the flight recorder attached by
// -trace; the last FlightEvents events are dumped on VIOLATION/UNKNOWN.
const FlightEvents = 4096

// RuntimeSampleInterval is how often the -serve runtime sampler records
// goroutine count, heap gauges and GC pauses into the registry.
const RuntimeSampleInterval = 5 * time.Second

// Set is the shared flag set of one tool, created by Register. After
// flag.Parse and Start, it hands out the facade options implementing
// the observability flags.
type Set struct {
	tool string

	workers     *int
	timeout     *time.Duration
	metricsJSON *string
	tracePath   *string
	progress    *bool
	pprofAddr   *string
	explain     *bool
	dotPath     *string
	reportPath  *string
	engineName  *string
	serveAddr   *string
	serveLinger *time.Duration
	logLevel    *string
	logFormat   *string

	streamEngineName *string // nil unless RegisterStream was called
	streamWindow     *int
	streamCheckEvery *int

	start     time.Time
	metrics   *calgo.Metrics
	flight    *calgo.FlightRecorder
	logTracer *calgo.LogTracer
	traceFile *os.File // nil when tracing to stderr or disabled

	engine       calgo.Engine       // parsed -engine, valid after Start
	streamEngine calgo.StreamEngine // parsed -stream-engine, valid after Start

	live        *calgo.LiveRun
	ops         *calgo.OpsServer
	samplerStop func() // runtime sampler shutdown; nil when not running
	logger      *slog.Logger

	runs  []calgo.RunReport // accumulated for -report
	notes []string
}

// Register defines the shared flags on the default flag set and wraps
// flag.Usage to append the exit-code legend. Call before flag.Parse.
func Register(tool string) *Set {
	s := &Set{
		tool:        tool,
		workers:     flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)"),
		timeout:     flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none), e.g. 100ms, 30s; exceeding it exits 3 (UNKNOWN)"),
		metricsJSON: flag.String("metrics-json", "", "write the metrics registry as JSON to this path when done (\"-\" = stdout)"),
		tracePath:   flag.String("trace", "", "write sampled search-trace JSON lines to this path (\"-\" = stderr) and dump a flight-recorder ring on VIOLATION/UNKNOWN"),
		progress:    flag.Bool("progress", false, "report live progress (states, states/sec, budget ETA) to stderr every second"),
		pprofAddr:   flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration"),
		explain:     flag.Bool("explain", false, "render the evidence behind each verdict: a per-thread timeline with concurrency windows and, on VIOLATION, the first blocked operation"),
		dotPath:     flag.String("dot", "", "write a Graphviz DOT rendering of the worst verdict's evidence to this path (\"-\" = stdout)"),
		reportPath:  flag.String("report", "", "write a self-contained calgo.report/v1 run report to this path (\"-\" = stdout as JSON; a .md path renders Markdown)"),
		engineName:  flag.String("engine", "auto", "checker engine: auto (route unambiguous collection histories to the O(n log n) specialized monitors, DFS otherwise), dfs (always run the memoized search), monitor (force the fast path; histories it cannot decide exit 3 UNKNOWN)"),
	}
	s.registerOps()
	wrapUsage()
	return s
}

// RegisterOps defines only the ops-endpoint and logging flags (-serve,
// -serve-linger, -log-level, -log-format) — for tools like calreport
// that have their own flag vocabulary but still want the shared ops
// surface. The other accessors behave as if their flags were left at
// their defaults.
func RegisterOps(tool string) *Set {
	s := &Set{
		tool:        tool,
		workers:     new(int),
		timeout:     new(time.Duration),
		metricsJSON: new(string),
		tracePath:   new(string),
		progress:    new(bool),
		pprofAddr:   new(string),
		explain:     new(bool),
		dotPath:     new(string),
		reportPath:  new(string),
		engineName:  new(string),
	}
	*s.engineName = "auto"
	s.registerOps()
	wrapUsage()
	return s
}

// registerOps defines the ops-endpoint and logging flags shared by
// Register and RegisterOps.
func (s *Set) registerOps() {
	s.serveAddr = flag.String("serve", "", "serve the embedded ops endpoint on this address (e.g. localhost:8080; \":0\" picks a port): /metrics (Prometheus), /statusz (live status; ?watch=1 streams), /flightz, /runsz, /debug/pprof/")
	s.serveLinger = flag.Duration("serve-linger", 0, "keep the -serve ops server up this long after the run finishes, so late scrapes and watchers see the final state")
	s.logLevel = flag.String("log-level", "info", "diagnostic log level: debug, info, warn or error")
	s.logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
}

// wrapUsage appends the exit-code legend to the tool's -h output.
func wrapUsage() {
	prev := flag.Usage
	flag.Usage = func() {
		if prev != nil {
			prev()
		}
		fmt.Fprint(flag.CommandLine.Output(), ExitLegend)
	}
}

// RegisterStream defines the streaming-checker flags — -stream-engine,
// -stream-window and -stream-check-every — for tools with an online
// checking mode (calfuzz -soak-stream). Call between Register and
// flag.Parse; Start validates -stream-engine. StreamOptions hands out
// the matching facade options.
func (s *Set) RegisterStream() {
	s.streamEngineName = flag.String("stream-engine", "auto", "streaming engine: auto (incremental monitors with windowed-DFS fallback), dfs (always re-check the window), monitor (never fall back; undecidable streams degrade to UNKNOWN)")
	s.streamWindow = flag.Int("stream-window", calgo.DefaultStreamWindow, "events buffered per object for fallback re-checking; streams that outgrow the window degrade honestly instead of weakening verdicts")
	s.streamCheckEvery = flag.Int("stream-check-every", calgo.DefaultStreamCheckEvery, "fallback re-check cadence in buffered events (and replay-stepper operations)")
}

// StreamOptions returns the facade options implementing the
// RegisterStream flags, append-compatible with Options(). It panics if
// RegisterStream was not called.
func (s *Set) StreamOptions() []calgo.Option {
	return []calgo.Option{
		calgo.WithStreamEngine(s.streamEngine),
		calgo.WithStreamWindow(*s.streamWindow),
		calgo.WithStreamCheckEvery(*s.streamCheckEvery),
	}
}

// StreamEngine returns the parsed -stream-engine selection. Valid after
// Start, for tools that report the effective engine.
func (s *Set) StreamEngine() calgo.StreamEngine { return s.streamEngine }

// Workers returns the -workers value (0 = GOMAXPROCS).
func (s *Set) Workers() int { return *s.workers }

// Engine returns the parsed -engine selection. Valid after Start. It is
// not folded into Options() because the explorer has no engine notion;
// checker CLIs append calgo.WithEngine(s.Engine()) themselves.
func (s *Set) Engine() calgo.Engine { return s.engine }

// Explain returns whether -explain was given.
func (s *Set) Explain() bool { return *s.explain }

// DOTPath returns the -dot destination ("" = off, "-" = stdout).
func (s *Set) DOTPath() string { return *s.dotPath }

// ReportPath returns the -report destination ("" = off, "-" = stdout).
func (s *Set) ReportPath() string { return *s.reportPath }

// WantsRuns reports whether per-run summaries have a consumer — a
// -report document under construction or a live -serve endpoint — so
// CLIs can skip assembling them otherwise. Valid after Start.
func (s *Set) WantsRuns() bool { return *s.reportPath != "" || s.ops != nil }

// Timeout returns the -timeout value (0 = none).
func (s *Set) Timeout() time.Duration { return *s.timeout }

// LingerDuration returns the -serve-linger value (0 = none).
func (s *Set) LingerDuration() time.Duration { return *s.serveLinger }

// WithTimeout derives the run's context from parent, applying -timeout
// when set. The CancelFunc must be called to release the timer.
func (s *Set) WithTimeout(parent context.Context) (context.Context, context.CancelFunc) {
	if *s.timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, *s.timeout)
}

// Logger returns the tool's diagnostic logger, configured by
// -log-level and -log-format. It works before Start too (for
// usage-error diagnostics), falling back to a text handler at the
// default level when the flag values are invalid, so call sites never
// need a nil check.
func (s *Set) Logger() *slog.Logger {
	if s.logger == nil {
		if err := s.buildLogger(); err != nil {
			s.logger = slog.New(slog.NewTextHandler(os.Stderr, nil)).With("tool", s.tool)
		}
	}
	return s.logger
}

// buildLogger materializes -log-level/-log-format into s.logger.
func (s *Set) buildLogger() error {
	logger, err := NewLogger(s.tool, *s.logLevel, *s.logFormat)
	if err != nil {
		return err
	}
	s.logger = logger
	return nil
}

// NewLogger builds the shared structured diagnostic logger from the
// -log-level/-log-format vocabulary — for daemons like cald that manage
// their own flag set but must log exactly like the other tools.
func NewLogger(tool, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
	return slog.New(h).With("tool", tool), nil
}

// Start materializes the observability flags: builds the logger, opens
// the trace sink, creates the metrics registry, starts the pprof and
// ops servers. Errors are usage/environment errors (exit 2). Call
// after flag.Parse and pair with Close.
func (s *Set) Start() error {
	s.start = time.Now()
	if err := s.buildLogger(); err != nil {
		return err
	}
	eng, err := calgo.ParseEngine(*s.engineName)
	if err != nil {
		return fmt.Errorf("bad -engine: %w", err)
	}
	s.engine = eng
	if s.streamEngineName != nil {
		seng, err := calgo.ParseStreamEngine(*s.streamEngineName)
		if err != nil {
			return fmt.Errorf("bad -stream-engine: %w", err)
		}
		s.streamEngine = seng
	}
	if *s.metricsJSON != "" || *s.reportPath != "" {
		// A report always embeds a metrics snapshot, so -report implies a
		// registry even without -metrics-json.
		s.metrics = calgo.NewMetrics()
	}
	if *s.tracePath != "" {
		w := os.Stderr
		if *s.tracePath != "-" {
			f, err := os.Create(*s.tracePath)
			if err != nil {
				return fmt.Errorf("opening trace sink: %w", err)
			}
			s.traceFile, w = f, f
		}
		s.logTracer = calgo.NewLogTracer(w, TraceSample)
	}
	if *s.tracePath != "" || *s.reportPath != "" {
		// The report's flight-recorder tail needs a ring even when no
		// trace sink was requested.
		s.flight = calgo.NewFlightRecorder(FlightEvents)
	}
	if *s.pprofAddr != "" {
		if s.metrics == nil {
			// The debug server's /debug/vars page is the natural place to
			// watch the run's counters live, so -pprof implies a registry
			// even without -metrics-json.
			s.metrics = calgo.NewMetrics()
		}
		if err := s.metrics.PublishExpvar("calgo"); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *s.pprofAddr)
		if err != nil {
			return fmt.Errorf("starting pprof server: %w", err)
		}
		s.Logger().Info("pprof serving",
			"url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()),
			"vars", fmt.Sprintf("http://%s/debug/vars", ln.Addr()))
		go func() {
			_ = http.Serve(ln, nil) // default mux; net/http/pprof registered
		}()
	}
	if *s.serveAddr != "" {
		if s.metrics == nil {
			// /metrics and /statusz read the registry, so -serve implies one
			// even without -metrics-json.
			s.metrics = calgo.NewMetrics()
		}
		if s.flight == nil {
			// /flightz serves the ring, so -serve implies one too.
			s.flight = calgo.NewFlightRecorder(FlightEvents)
		}
		if err := s.metrics.PublishExpvar("calgo"); err != nil {
			// Another registry from this process already owns the expvar
			// (re-Register in tests); the ops endpoints don't depend on it.
			s.Logger().Debug("expvar publication skipped", "err", err)
		}
		s.live = calgo.NewLiveRun(s.tool)
		s.ops = calgo.NewOpsServer(calgo.OpsConfig{
			Tool:    s.tool,
			Metrics: s.metrics,
			Flight:  s.flight,
			Live:    s.live,
		})
		addr, err := s.ops.Start(*s.serveAddr)
		if err != nil {
			return fmt.Errorf("starting ops server: %w", err)
		}
		s.samplerStop = calgo.StartRuntimeSampler(s.metrics, RuntimeSampleInterval)
		s.Logger().Info("ops server listening",
			"url", fmt.Sprintf("http://%s/", addr),
			"endpoints", "/metrics /statusz /flightz /runsz /debug/pprof/")
	}
	return nil
}

// Options returns the facade options implementing the observability and
// pool flags: WithParallelism from -workers, WithTracer from -trace,
// WithMetrics from -metrics-json, WithProgress from -progress. The
// slice is append-compatible with tool-specific options.
func (s *Set) Options() []calgo.Option {
	opts := []calgo.Option{calgo.WithParallelism(*s.workers)}
	var tracers []calgo.Tracer
	if s.logTracer != nil {
		tracers = append(tracers, s.logTracer)
	}
	if s.flight != nil {
		tracers = append(tracers, s.flight)
	}
	if len(tracers) > 0 {
		// MultiTracer unwraps a single live tracer.
		opts = append(opts, calgo.WithTracer(calgo.MultiTracer(tracers...)))
	}
	if s.metrics != nil {
		opts = append(opts, calgo.WithMetrics(s.metrics))
	}
	if *s.progress {
		opts = append(opts, calgo.WithProgress(time.Second, calgo.ProgressPrinter(os.Stderr, s.tool)))
	}
	if s.live != nil {
		opts = append(opts, calgo.WithLive(s.live))
	}
	return opts
}

// Live returns the live run view backing -serve's /statusz, or nil when
// the flag is off; tools may set custom phases on it between searches.
func (s *Set) Live() *calgo.LiveRun { return s.live }

// Ops returns the running -serve ops server, or nil when the flag is
// off; tools may push extra notes or reports into it.
func (s *Set) Ops() *calgo.OpsServer { return s.ops }

// Metrics returns the registry backing -metrics-json, or nil when the
// flag is off; tools may record their own gauges into it.
func (s *Set) Metrics() *calgo.Metrics { return s.metrics }

// DumpFlight writes the flight recorder's retained events to stderr,
// followed by the counterexample schedule when the caller has one. Call
// it when the run ends in VIOLATION or UNKNOWN; it is a no-op when none
// of -trace, -report or -serve is on or nothing was recorded.
func (s *Set) DumpFlight(schedule ...calgo.ExploreStep) {
	if s.flight == nil || s.flight.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: flight recorder (-trace) ring:\n", s.tool)
	_ = s.flight.Dump(os.Stderr)
	if len(schedule) > 0 {
		fmt.Fprintf(os.Stderr, "%s: schedule to the violating state:\n", s.tool)
		for i, step := range schedule {
			fmt.Fprintf(os.Stderr, "  %3d  %s\n", i, step)
		}
	}
}

// AddRun records one checked input's outcome for the -report document
// and the -serve /statusz run list. Tools should gate the expensive
// fields (Timeline, DOT) on ReportPath() being set; the record itself
// is cheap.
func (s *Set) AddRun(r calgo.RunReport) {
	s.runs = append(s.runs, r)
	s.ops.AddRun(r)
}

// AddNote appends a free-form line to the -report document's notes and
// the -serve /statusz note list.
func (s *Set) AddNote(format string, args ...any) {
	note := fmt.Sprintf(format, args...)
	s.notes = append(s.notes, note)
	s.ops.AddNote(note)
}

// WriteDOT writes a DOT document to the -dot destination; a no-op when
// the flag is off. Call at most once per process, with the rendering of
// the run's worst verdict.
func (s *Set) WriteDOT(dot string) error {
	if *s.dotPath == "" {
		return nil
	}
	if *s.dotPath == "-" {
		_, err := os.Stdout.WriteString(dot)
		return err
	}
	if err := os.WriteFile(*s.dotPath, []byte(dot), 0o644); err != nil {
		return fmt.Errorf("writing DOT: %w", err)
	}
	return nil
}

// Report is the -metrics-json document: the tool name, wall-clock
// elapsed time, and the metrics registry snapshot (schema
// calgo.MetricsSchemaVersion).
type Report struct {
	Tool      string                `json:"tool"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Metrics   calgo.MetricsSnapshot `json:"metrics"`
}

// Finish flushes the end-of-run outputs: snapshots runtime memory
// gauges, writes the -metrics-json document and the -report document
// (stamped with the process exit code the caller is about to use), and
// surfaces any -trace write error. Errors are environment errors
// (exit 2).
func (s *Set) Finish(exit int) error {
	if s.logTracer != nil {
		if err := s.logTracer.Err(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if s.metrics != nil {
		s.metrics.SnapshotMemStats()
	}
	if s.metrics != nil && *s.metricsJSON != "" {
		doc := Report{
			Tool:      s.tool,
			ElapsedNS: time.Since(s.start).Nanoseconds(),
			Metrics:   s.metrics.Snapshot(),
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if *s.metricsJSON == "-" {
			if _, err := os.Stdout.Write(b); err != nil {
				return err
			}
		} else if err := os.WriteFile(*s.metricsJSON, b, 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if s.ops != nil {
		// Freeze the live view and publish the finished run on /runsz so a
		// lingering server (or one kept up by a still-running process)
		// serves the final state.
		s.live.SetPhase("done")
		s.ops.AddReport(s.buildReport(exit))
	}
	return s.writeReport(exit)
}

// buildReport assembles the calgo.report/v1 document for this run.
func (s *Set) buildReport(exit int) *calgo.Report {
	doc := calgo.NewReport(s.tool, time.Now())
	doc.ElapsedNS = time.Since(s.start).Nanoseconds()
	doc.Exit = exit
	doc.Runs = s.runs
	doc.Notes = s.notes
	if s.metrics != nil {
		snap := s.metrics.Snapshot()
		doc.Metrics = &snap
	}
	if s.flight != nil && s.flight.Total() > 0 {
		doc.Flight = s.flight.Events()
		doc.FlightTotal = s.flight.Total()
	}
	return doc
}

// writeReport writes the calgo.report/v1 document to -report's path.
func (s *Set) writeReport(exit int) error {
	if *s.reportPath == "" {
		return nil
	}
	doc := s.buildReport(exit)
	if *s.reportPath == "-" {
		return doc.WriteJSON(os.Stdout)
	}
	if strings.HasSuffix(*s.reportPath, ".md") {
		if err := os.WriteFile(*s.reportPath, []byte(doc.Markdown()), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		return nil
	}
	f, err := os.Create(*s.reportPath)
	if err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing report: %w", err)
	}
	return f.Close()
}

// OpsShutdownTimeout bounds how long Close waits for the ops server's
// graceful stop: in-flight scrapes finish and SSE watchers get their
// final frame, but a stuck client can't wedge process exit.
const OpsShutdownTimeout = 2 * time.Second

// Close honours -serve-linger (interruptibly: SIGINT/SIGTERM cuts the
// linger short), gracefully shuts down the ops server and runtime
// sampler, and releases the trace sink. Safe to call once, after
// Finish.
func (s *Set) Close() {
	if s.ops != nil && *s.serveLinger > 0 {
		s.Logger().Info("ops server lingering", "addr", s.ops.Addr().String(), "for", *s.serveLinger)
		lingerCtx, stop := SignalContext()
		select {
		case <-time.After(*s.serveLinger):
		case <-lingerCtx.Done():
			s.Logger().Info("linger interrupted")
		}
		stop()
	}
	if s.samplerStop != nil {
		s.samplerStop()
		s.samplerStop = nil
	}
	if s.ops != nil {
		ctx, cancel := context.WithTimeout(context.Background(), OpsShutdownTimeout)
		_ = s.ops.Shutdown(ctx)
		cancel()
		s.ops = nil
	}
	if s.traceFile != nil {
		_ = s.traceFile.Close()
		s.traceFile = nil
	}
}
