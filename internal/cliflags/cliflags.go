// Package cliflags defines the flags, observability wiring and exit-code
// conventions shared by the calgo CLIs (calcheck, calexplore, calfuzz,
// calbench), so the tools stay uniform: the same flag names mean the
// same thing everywhere, every tool documents the exit-code legend in
// its -h output, and -metrics-json/-trace/-progress/-pprof behave
// identically.
//
// Usage, in a tool's main:
//
//	s := cliflags.Register("calcheck")
//	flag.Parse()
//	if err := s.Start(); err != nil { ... exit 2 ... }
//	defer s.Close()
//	ctx, cancel := s.WithTimeout(ctx)
//	defer cancel()
//	results, err := calgo.CheckMany(ctx, hs, sp, s.Options()...)
//	...
//	s.DumpFlight()            // on VIOLATION or UNKNOWN
//	if err := s.Finish(); err != nil { ... exit 2 ... }
package cliflags

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"time"

	"calgo"
)

// ExitLegend is the exit-code convention shared by every calgo CLI; it
// is appended to each tool's -h output.
const ExitLegend = `
Exit status:
  0  OK: the property was verified / all runs passed
  1  VIOLATION: a history or execution failed its check
  2  usage or input error
  3  UNKNOWN: interrupted, cancelled, or out of budget before a verdict
     (a resource-bounded "don't know", not a failure)
`

// TraceSample is the 1-in-N sampling rate of -trace's JSON-lines output
// for high-frequency events (NodeExpand, MemoHit, ElementAdmit,
// Backtrack); SearchStart and SearchEnd are always written.
const TraceSample = 64

// FlightEvents is the ring capacity of the flight recorder attached by
// -trace; the last FlightEvents events are dumped on VIOLATION/UNKNOWN.
const FlightEvents = 4096

// Set is the shared flag set of one tool, created by Register. After
// flag.Parse and Start, it hands out the facade options implementing
// the observability flags.
type Set struct {
	tool string

	workers     *int
	timeout     *time.Duration
	metricsJSON *string
	tracePath   *string
	progress    *bool
	pprofAddr   *string

	start     time.Time
	metrics   *calgo.Metrics
	flight    *calgo.FlightRecorder
	logTracer *calgo.LogTracer
	traceFile *os.File // nil when tracing to stderr or disabled
}

// Register defines the shared flags on the default flag set and wraps
// flag.Usage to append the exit-code legend. Call before flag.Parse.
func Register(tool string) *Set {
	s := &Set{
		tool:        tool,
		workers:     flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)"),
		timeout:     flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none), e.g. 100ms, 30s; exceeding it exits 3 (UNKNOWN)"),
		metricsJSON: flag.String("metrics-json", "", "write the metrics registry as JSON to this path when done (\"-\" = stdout)"),
		tracePath:   flag.String("trace", "", "write sampled search-trace JSON lines to this path (\"-\" = stderr) and dump a flight-recorder ring on VIOLATION/UNKNOWN"),
		progress:    flag.Bool("progress", false, "report live progress (states, states/sec, budget ETA) to stderr every second"),
		pprofAddr:   flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration"),
	}
	prev := flag.Usage
	flag.Usage = func() {
		if prev != nil {
			prev()
		}
		fmt.Fprint(flag.CommandLine.Output(), ExitLegend)
	}
	return s
}

// AliasWorkers registers name as a deprecated alias of -workers sharing
// its value; when both are given the last one on the command line wins.
func (s *Set) AliasWorkers(name string) {
	flag.IntVar(s.workers, name, 0, "deprecated alias for -workers")
}

// Workers returns the -workers value (0 = GOMAXPROCS).
func (s *Set) Workers() int { return *s.workers }

// Timeout returns the -timeout value (0 = none).
func (s *Set) Timeout() time.Duration { return *s.timeout }

// WithTimeout derives the run's context from parent, applying -timeout
// when set. The CancelFunc must be called to release the timer.
func (s *Set) WithTimeout(parent context.Context) (context.Context, context.CancelFunc) {
	if *s.timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, *s.timeout)
}

// Start materializes the observability flags: opens the trace sink,
// creates the metrics registry, starts the pprof server. Errors are
// usage/environment errors (exit 2). Call after flag.Parse and pair
// with Close.
func (s *Set) Start() error {
	s.start = time.Now()
	if *s.metricsJSON != "" {
		s.metrics = calgo.NewMetrics()
	}
	if *s.tracePath != "" {
		w := os.Stderr
		if *s.tracePath != "-" {
			f, err := os.Create(*s.tracePath)
			if err != nil {
				return fmt.Errorf("opening trace sink: %w", err)
			}
			s.traceFile, w = f, f
		}
		s.logTracer = calgo.NewLogTracer(w, TraceSample)
		s.flight = calgo.NewFlightRecorder(FlightEvents)
	}
	if *s.pprofAddr != "" {
		if s.metrics == nil {
			// The debug server's /debug/vars page is the natural place to
			// watch the run's counters live, so -pprof implies a registry
			// even without -metrics-json.
			s.metrics = calgo.NewMetrics()
		}
		if err := s.metrics.PublishExpvar("calgo"); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *s.pprofAddr)
		if err != nil {
			return fmt.Errorf("starting pprof server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: pprof serving on http://%s/debug/pprof/ (metrics on /debug/vars)\n", s.tool, ln.Addr())
		go func() {
			_ = http.Serve(ln, nil) // default mux; net/http/pprof registered
		}()
	}
	return nil
}

// Options returns the facade options implementing the observability and
// pool flags: WithParallelism from -workers, WithTracer from -trace,
// WithMetrics from -metrics-json, WithProgress from -progress. The
// slice is append-compatible with tool-specific options.
func (s *Set) Options() []calgo.Option {
	opts := []calgo.Option{calgo.WithParallelism(*s.workers)}
	if s.logTracer != nil {
		opts = append(opts, calgo.WithTracer(calgo.MultiTracer(s.logTracer, s.flight)))
	}
	if s.metrics != nil {
		opts = append(opts, calgo.WithMetrics(s.metrics))
	}
	if *s.progress {
		opts = append(opts, calgo.WithProgress(time.Second, calgo.ProgressPrinter(os.Stderr, s.tool)))
	}
	return opts
}

// Metrics returns the registry backing -metrics-json, or nil when the
// flag is off; tools may record their own gauges into it.
func (s *Set) Metrics() *calgo.Metrics { return s.metrics }

// DumpFlight writes the flight recorder's retained events to stderr.
// Call it when the run ends in VIOLATION or UNKNOWN; it is a no-op when
// -trace is off or nothing was recorded.
func (s *Set) DumpFlight() {
	if s.flight == nil || s.flight.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: flight recorder (-trace) ring:\n", s.tool)
	_ = s.flight.Dump(os.Stderr)
}

// Report is the -metrics-json document: the tool name, wall-clock
// elapsed time, and the metrics registry snapshot (schema
// calgo.MetricsSchemaVersion).
type Report struct {
	Tool      string                `json:"tool"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Metrics   calgo.MetricsSnapshot `json:"metrics"`
}

// Finish flushes the end-of-run outputs: snapshots runtime memory
// gauges and writes the -metrics-json document, and surfaces any -trace
// write error. Errors are environment errors (exit 2).
func (s *Set) Finish() error {
	if s.logTracer != nil {
		if err := s.logTracer.Err(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if s.metrics == nil || *s.metricsJSON == "" {
		return nil
	}
	s.metrics.SnapshotMemStats()
	doc := Report{
		Tool:      s.tool,
		ElapsedNS: time.Since(s.start).Nanoseconds(),
		Metrics:   s.metrics.Snapshot(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *s.metricsJSON == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(*s.metricsJSON, b, 0o644); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	return nil
}

// Close releases the trace sink. Safe to call once, after Finish.
func (s *Set) Close() {
	if s.traceFile != nil {
		_ = s.traceFile.Close()
		s.traceFile = nil
	}
}
