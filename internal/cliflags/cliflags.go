// Package cliflags defines the flags, observability wiring and exit-code
// conventions shared by the calgo CLIs (calcheck, calexplore, calfuzz,
// calbench), so the tools stay uniform: the same flag names mean the
// same thing everywhere, every tool documents the exit-code legend in
// its -h output, and -metrics-json/-trace/-progress/-pprof behave
// identically.
//
// Usage, in a tool's main:
//
//	s := cliflags.Register("calcheck")
//	flag.Parse()
//	if err := s.Start(); err != nil { ... exit 2 ... }
//	defer s.Close()
//	ctx, cancel := s.WithTimeout(ctx)
//	defer cancel()
//	results, err := calgo.CheckMany(ctx, hs, sp, s.Options()...)
//	...
//	s.DumpFlight()            // on VIOLATION or UNKNOWN
//	if err := s.Finish(exit); err != nil { ... exit 2 ... }
package cliflags

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"strconv"
	"strings"
	"time"

	"calgo"
)

// ExitLegend is the exit-code convention shared by every calgo CLI; it
// is appended to each tool's -h output.
const ExitLegend = `
Exit status:
  0  OK: the property was verified / all runs passed
  1  VIOLATION: a history or execution failed its check
  2  usage or input error
  3  UNKNOWN: interrupted, cancelled, or out of budget before a verdict
     (a resource-bounded "don't know", not a failure)
`

// TraceSample is the 1-in-N sampling rate of -trace's JSON-lines output
// for high-frequency events (NodeExpand, MemoHit, ElementAdmit,
// Backtrack); SearchStart and SearchEnd are always written.
const TraceSample = 64

// FlightEvents is the ring capacity of the flight recorder attached by
// -trace; the last FlightEvents events are dumped on VIOLATION/UNKNOWN.
const FlightEvents = 4096

// Set is the shared flag set of one tool, created by Register. After
// flag.Parse and Start, it hands out the facade options implementing
// the observability flags.
type Set struct {
	tool string

	workers     *int
	timeout     *time.Duration
	metricsJSON *string
	tracePath   *string
	progress    *bool
	pprofAddr   *string
	explain     *bool
	dotPath     *string
	reportPath  *string

	start       time.Time
	metrics     *calgo.Metrics
	flight      *calgo.FlightRecorder
	logTracer   *calgo.LogTracer
	traceFile   *os.File // nil when tracing to stderr or disabled
	aliasWarned bool     // the deprecated-alias notice fired already

	runs  []calgo.RunReport // accumulated for -report
	notes []string
}

// Register defines the shared flags on the default flag set and wraps
// flag.Usage to append the exit-code legend. Call before flag.Parse.
func Register(tool string) *Set {
	s := &Set{
		tool:        tool,
		workers:     flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)"),
		timeout:     flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none), e.g. 100ms, 30s; exceeding it exits 3 (UNKNOWN)"),
		metricsJSON: flag.String("metrics-json", "", "write the metrics registry as JSON to this path when done (\"-\" = stdout)"),
		tracePath:   flag.String("trace", "", "write sampled search-trace JSON lines to this path (\"-\" = stderr) and dump a flight-recorder ring on VIOLATION/UNKNOWN"),
		progress:    flag.Bool("progress", false, "report live progress (states, states/sec, budget ETA) to stderr every second"),
		pprofAddr:   flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration"),
		explain:     flag.Bool("explain", false, "render the evidence behind each verdict: a per-thread timeline with concurrency windows and, on VIOLATION, the first blocked operation"),
		dotPath:     flag.String("dot", "", "write a Graphviz DOT rendering of the worst verdict's evidence to this path (\"-\" = stdout)"),
		reportPath:  flag.String("report", "", "write a self-contained calgo.report/v1 run report to this path (\"-\" = stdout as JSON; a .md path renders Markdown)"),
	}
	prev := flag.Usage
	flag.Usage = func() {
		if prev != nil {
			prev()
		}
		fmt.Fprint(flag.CommandLine.Output(), ExitLegend)
	}
	return s
}

// AliasWorkers registers name as a deprecated alias of -workers sharing
// its value; when both are given the last one on the command line wins.
// The first use of the alias prints a one-time deprecation notice to
// stderr pointing at -workers.
func (s *Set) AliasWorkers(name string) {
	flag.Var(&workersAlias{set: s, name: name}, name, "deprecated alias for -workers")
}

// workersAlias is the flag.Value behind AliasWorkers: it forwards to the
// shared -workers target and emits the deprecation notice on first use.
type workersAlias struct {
	set  *Set
	name string
}

func (a *workersAlias) String() string {
	if a.set == nil {
		return ""
	}
	return strconv.Itoa(*a.set.workers)
}

func (a *workersAlias) Set(v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	if !a.set.aliasWarned {
		a.set.aliasWarned = true
		fmt.Fprintf(os.Stderr, "%s: flag -%s is deprecated, use -workers\n", a.set.tool, a.name)
	}
	*a.set.workers = n
	return nil
}

// Workers returns the -workers value (0 = GOMAXPROCS).
func (s *Set) Workers() int { return *s.workers }

// Explain returns whether -explain was given.
func (s *Set) Explain() bool { return *s.explain }

// DOTPath returns the -dot destination ("" = off, "-" = stdout).
func (s *Set) DOTPath() string { return *s.dotPath }

// ReportPath returns the -report destination ("" = off, "-" = stdout).
func (s *Set) ReportPath() string { return *s.reportPath }

// Timeout returns the -timeout value (0 = none).
func (s *Set) Timeout() time.Duration { return *s.timeout }

// WithTimeout derives the run's context from parent, applying -timeout
// when set. The CancelFunc must be called to release the timer.
func (s *Set) WithTimeout(parent context.Context) (context.Context, context.CancelFunc) {
	if *s.timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, *s.timeout)
}

// Start materializes the observability flags: opens the trace sink,
// creates the metrics registry, starts the pprof server. Errors are
// usage/environment errors (exit 2). Call after flag.Parse and pair
// with Close.
func (s *Set) Start() error {
	s.start = time.Now()
	if *s.metricsJSON != "" || *s.reportPath != "" {
		// A report always embeds a metrics snapshot, so -report implies a
		// registry even without -metrics-json.
		s.metrics = calgo.NewMetrics()
	}
	if *s.tracePath != "" {
		w := os.Stderr
		if *s.tracePath != "-" {
			f, err := os.Create(*s.tracePath)
			if err != nil {
				return fmt.Errorf("opening trace sink: %w", err)
			}
			s.traceFile, w = f, f
		}
		s.logTracer = calgo.NewLogTracer(w, TraceSample)
	}
	if *s.tracePath != "" || *s.reportPath != "" {
		// The report's flight-recorder tail needs a ring even when no
		// trace sink was requested.
		s.flight = calgo.NewFlightRecorder(FlightEvents)
	}
	if *s.pprofAddr != "" {
		if s.metrics == nil {
			// The debug server's /debug/vars page is the natural place to
			// watch the run's counters live, so -pprof implies a registry
			// even without -metrics-json.
			s.metrics = calgo.NewMetrics()
		}
		if err := s.metrics.PublishExpvar("calgo"); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *s.pprofAddr)
		if err != nil {
			return fmt.Errorf("starting pprof server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: pprof serving on http://%s/debug/pprof/ (metrics on /debug/vars)\n", s.tool, ln.Addr())
		go func() {
			_ = http.Serve(ln, nil) // default mux; net/http/pprof registered
		}()
	}
	return nil
}

// Options returns the facade options implementing the observability and
// pool flags: WithParallelism from -workers, WithTracer from -trace,
// WithMetrics from -metrics-json, WithProgress from -progress. The
// slice is append-compatible with tool-specific options.
func (s *Set) Options() []calgo.Option {
	opts := []calgo.Option{calgo.WithParallelism(*s.workers)}
	var tracers []calgo.Tracer
	if s.logTracer != nil {
		tracers = append(tracers, s.logTracer)
	}
	if s.flight != nil {
		tracers = append(tracers, s.flight)
	}
	if len(tracers) > 0 {
		// MultiTracer unwraps a single live tracer.
		opts = append(opts, calgo.WithTracer(calgo.MultiTracer(tracers...)))
	}
	if s.metrics != nil {
		opts = append(opts, calgo.WithMetrics(s.metrics))
	}
	if *s.progress {
		opts = append(opts, calgo.WithProgress(time.Second, calgo.ProgressPrinter(os.Stderr, s.tool)))
	}
	return opts
}

// Metrics returns the registry backing -metrics-json, or nil when the
// flag is off; tools may record their own gauges into it.
func (s *Set) Metrics() *calgo.Metrics { return s.metrics }

// DumpFlight writes the flight recorder's retained events to stderr,
// followed by the counterexample schedule when the caller has one. Call
// it when the run ends in VIOLATION or UNKNOWN; it is a no-op when
// neither -trace nor -report is on or nothing was recorded.
func (s *Set) DumpFlight(schedule ...calgo.ExploreStep) {
	if s.flight == nil || s.flight.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: flight recorder (-trace) ring:\n", s.tool)
	_ = s.flight.Dump(os.Stderr)
	if len(schedule) > 0 {
		fmt.Fprintf(os.Stderr, "%s: schedule to the violating state:\n", s.tool)
		for i, step := range schedule {
			fmt.Fprintf(os.Stderr, "  %3d  %s\n", i, step)
		}
	}
}

// AddRun records one checked input's outcome for the -report document.
// Tools should gate the expensive fields (Timeline, DOT) on ReportPath()
// being set; the record itself is cheap.
func (s *Set) AddRun(r calgo.RunReport) {
	s.runs = append(s.runs, r)
}

// AddNote appends a free-form line to the -report document's notes.
func (s *Set) AddNote(format string, args ...any) {
	s.notes = append(s.notes, fmt.Sprintf(format, args...))
}

// WriteDOT writes a DOT document to the -dot destination; a no-op when
// the flag is off. Call at most once per process, with the rendering of
// the run's worst verdict.
func (s *Set) WriteDOT(dot string) error {
	if *s.dotPath == "" {
		return nil
	}
	if *s.dotPath == "-" {
		_, err := os.Stdout.WriteString(dot)
		return err
	}
	if err := os.WriteFile(*s.dotPath, []byte(dot), 0o644); err != nil {
		return fmt.Errorf("writing DOT: %w", err)
	}
	return nil
}

// Report is the -metrics-json document: the tool name, wall-clock
// elapsed time, and the metrics registry snapshot (schema
// calgo.MetricsSchemaVersion).
type Report struct {
	Tool      string                `json:"tool"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Metrics   calgo.MetricsSnapshot `json:"metrics"`
}

// Finish flushes the end-of-run outputs: snapshots runtime memory
// gauges, writes the -metrics-json document and the -report document
// (stamped with the process exit code the caller is about to use), and
// surfaces any -trace write error. Errors are environment errors
// (exit 2).
func (s *Set) Finish(exit int) error {
	if s.logTracer != nil {
		if err := s.logTracer.Err(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if s.metrics != nil {
		s.metrics.SnapshotMemStats()
	}
	if s.metrics != nil && *s.metricsJSON != "" {
		doc := Report{
			Tool:      s.tool,
			ElapsedNS: time.Since(s.start).Nanoseconds(),
			Metrics:   s.metrics.Snapshot(),
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if *s.metricsJSON == "-" {
			if _, err := os.Stdout.Write(b); err != nil {
				return err
			}
		} else if err := os.WriteFile(*s.metricsJSON, b, 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return s.writeReport(exit)
}

// writeReport assembles and writes the calgo.report/v1 document.
func (s *Set) writeReport(exit int) error {
	if *s.reportPath == "" {
		return nil
	}
	doc := calgo.NewReport(s.tool, time.Now())
	doc.ElapsedNS = time.Since(s.start).Nanoseconds()
	doc.Exit = exit
	doc.Runs = s.runs
	doc.Notes = s.notes
	if s.metrics != nil {
		snap := s.metrics.Snapshot()
		doc.Metrics = &snap
	}
	if s.flight != nil && s.flight.Total() > 0 {
		doc.Flight = s.flight.Events()
		doc.FlightTotal = s.flight.Total()
	}
	if *s.reportPath == "-" {
		return doc.WriteJSON(os.Stdout)
	}
	if strings.HasSuffix(*s.reportPath, ".md") {
		if err := os.WriteFile(*s.reportPath, []byte(doc.Markdown()), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		return nil
	}
	f, err := os.Create(*s.reportPath)
	if err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing report: %w", err)
	}
	return f.Close()
}

// Close releases the trace sink. Safe to call once, after Finish.
func (s *Set) Close() {
	if s.traceFile != nil {
		_ = s.traceFile.Close()
		s.traceFile = nil
	}
}
