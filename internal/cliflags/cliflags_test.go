package cliflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calgo"
)

// resetFlags gives each test a fresh default flag set and restores the
// real one (and flag.Usage) afterwards, since Register mutates both.
func resetFlags(t *testing.T) {
	t.Helper()
	oldCmd, oldUsage := flag.CommandLine, flag.Usage
	t.Cleanup(func() { flag.CommandLine, flag.Usage = oldCmd, oldUsage })
	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	flag.Usage = nil
}

// capture redirects the given file (os.Stdout or os.Stderr) for the
// duration of fn and returns what was written.
func capture(t *testing.T, f **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := *f
	*f = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		_, _ = b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	*f = old
	return <-done
}

// TestRegisterDefinesSharedFlags pins the shared vocabulary: every tool
// built on cliflags must expose exactly these names.
func TestRegisterDefinesSharedFlags(t *testing.T) {
	resetFlags(t)
	Register("testtool")
	for _, name := range []string{
		"workers", "timeout", "metrics-json", "trace", "progress", "pprof",
		"explain", "dot", "report",
	} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

// TestUsageIncludesExitLegend pins the -h contract: the exit-code legend
// is appended to every tool's usage output.
func TestUsageIncludesExitLegend(t *testing.T) {
	resetFlags(t)
	Register("testtool")
	var buf bytes.Buffer
	flag.CommandLine.SetOutput(&buf)
	flag.Usage()
	out := buf.String()
	for _, want := range []string{"Exit status:", "0  OK", "1  VIOLATION", "3  UNKNOWN"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
}

// TestRegisterStreamFlags pins the streaming flag surface: the three
// -stream-* flags register with documented defaults, Start validates
// -stream-engine, and StreamOptions projects onto facade options that
// NewStream accepts.
func TestRegisterStreamFlags(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	s.RegisterStream()
	for _, name := range []string{"stream-engine", "stream-window", "stream-check-every"} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := flag.CommandLine.Parse([]string{"-stream-engine", "dfs", "-stream-window", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.StreamEngine() != calgo.StreamEngineDFS {
		t.Errorf("StreamEngine() = %v, want dfs", s.StreamEngine())
	}
	st, err := calgo.NewStream(calgo.NewQueueSpec("q"), s.StreamOptions()...)
	if err != nil {
		t.Fatalf("NewStream rejected StreamOptions(): %v", err)
	}
	st.Close()
}

// TestStartRejectsBadStreamEngine: an unknown -stream-engine spelling is
// a startup error, not a silent fallback.
func TestStartRejectsBadStreamEngine(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	s.RegisterStream()
	if err := flag.CommandLine.Parse([]string{"-stream-engine", "warp"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil || !strings.Contains(err.Error(), "stream-engine") {
		t.Fatalf("Start() = %v, want bad -stream-engine error", err)
	}
}

// TestMetricsJSONStdout pins "-metrics-json -": counters recorded into
// the shared registry are aggregated into one document on stdout.
func TestMetricsJSONStdout(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-metrics-json", "-"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Two recordings into the same counter must aggregate, as the fuzz
	// batches do.
	s.Metrics().Counter("test.checks").Add(2)
	s.Metrics().Counter("test.checks").Add(3)
	out := capture(t, &os.Stdout, func() {
		if err := s.Finish(0); err != nil {
			t.Fatal(err)
		}
	})
	var doc Report
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out)
	}
	if doc.Tool != "testtool" {
		t.Errorf("tool = %q", doc.Tool)
	}
	if got := doc.Metrics.Counters["test.checks"]; got != 5 {
		t.Errorf("test.checks = %d, want 5 (aggregated)", got)
	}
	if doc.Metrics.Schema != calgo.MetricsSchemaVersion {
		t.Errorf("schema = %q", doc.Metrics.Schema)
	}
}

// TestReportJSONAndMarkdown: -report writes a calgo.report/v1 document
// with the accumulated runs and the caller's exit code; a .md path
// renders Markdown instead.
func TestReportJSONAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "run.json")
	mdPath := filepath.Join(dir, "run.md")

	for _, path := range []string{jsonPath, mdPath} {
		resetFlags(t)
		s := Register("testtool")
		if err := flag.CommandLine.Parse([]string{"-report", path}); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if s.Metrics() == nil {
			t.Fatal("-report did not imply a metrics registry")
		}
		s.AddRun(calgo.RunReport{Name: "case-1", Verdict: "VIOLATION", Detail: "it broke"})
		s.AddNote("note %d", 7)
		if err := s.Finish(1); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}

	var doc calgo.Report
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != calgo.ReportSchemaVersion || doc.Exit != 1 || doc.Tool != "testtool" {
		t.Errorf("report header = %+v", doc)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Verdict != "VIOLATION" {
		t.Errorf("runs = %+v", doc.Runs)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "note 7" {
		t.Errorf("notes = %+v", doc.Notes)
	}
	if doc.Metrics == nil {
		t.Error("report missing metrics snapshot")
	}

	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# testtool run report", "VIOLATION", "it broke", "note 7"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

// TestRegisterDefinesOpsFlags: Register and RegisterOps both expose the
// ops-endpoint and logging vocabulary.
func TestRegisterDefinesOpsFlags(t *testing.T) {
	for _, reg := range []struct {
		name string
		fn   func(string) *Set
	}{{"Register", Register}, {"RegisterOps", RegisterOps}} {
		resetFlags(t)
		reg.fn("testtool")
		for _, name := range []string{"serve", "serve-linger", "log-level", "log-format"} {
			if flag.Lookup(name) == nil {
				t.Errorf("%s: flag -%s not registered", reg.name, name)
			}
		}
	}
	// RegisterOps leaves the run flags out but its accessors still answer
	// with defaults.
	resetFlags(t)
	s := RegisterOps("testtool")
	if flag.Lookup("workers") != nil {
		t.Error("RegisterOps registered -workers")
	}
	if s.Workers() != 0 || s.Timeout() != 0 || s.ReportPath() != "" || s.Explain() {
		t.Error("RegisterOps accessors are not at their defaults")
	}
}

// TestLoggerFlagValidation: bad -log-level/-log-format are usage errors
// from Start, and the chosen format shapes the output.
func TestLoggerFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-log-level", "loud"},
		{"-log-format", "xml"},
	} {
		resetFlags(t)
		s := Register("testtool")
		if err := flag.CommandLine.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err == nil {
			t.Errorf("Start accepted %v", args)
		}
	}

	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-log-format", "json", "-log-level", "warn"}); err != nil {
		t.Fatal(err)
	}
	errOut := capture(t, &os.Stderr, func() {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.Logger().Info("too quiet")
		s.Logger().Warn("hear me", "k", 1)
	})
	if strings.Contains(errOut, "too quiet") {
		t.Errorf("-log-level warn let an info line through:\n%s", errOut)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(errOut)), &line); err != nil {
		t.Fatalf("-log-format json produced non-JSON %q: %v", errOut, err)
	}
	if line["msg"] != "hear me" || line["tool"] != "testtool" {
		t.Errorf("log line = %v", line)
	}
}

// TestServeEndToEnd: -serve brings up the ops endpoint with metrics,
// live status, flight ring and, after Finish, the completed report on
// /runsz.
func TestServeEndToEnd(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	errOut := capture(t, &os.Stderr, func() {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	})
	defer s.Close()
	if !strings.Contains(errOut, "ops server listening") {
		t.Errorf("Start did not announce the ops server:\n%s", errOut)
	}
	if s.Metrics() == nil || s.Live() == nil || s.Ops() == nil {
		t.Fatal("-serve did not imply metrics + live + ops server")
	}
	if !s.WantsRuns() {
		t.Error("WantsRuns() = false with a live -serve endpoint")
	}

	s.Metrics().Counter("test.hits").Add(9)
	s.AddRun(calgo.RunReport{Name: "case-1", Verdict: "OK"})
	s.AddNote("served %s", "note")

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Ops().Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "calgo_test_hits_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var st calgo.Statusz
	if err := json.Unmarshal([]byte(get("/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tool != "testtool" || len(st.Runs) != 1 || st.Runs[0].Name != "case-1" {
		t.Errorf("statusz = %+v", st)
	}
	if len(st.Notes) != 1 || st.Notes[0] != "served note" {
		t.Errorf("statusz notes = %v", st.Notes)
	}

	// Options must carry the live view into the engines.
	var hasLive bool
	for _, o := range s.Options() {
		if strings.Contains(o.String(), "WithLive") {
			hasLive = true
		}
	}
	if !hasLive {
		t.Error("Options() does not include WithLive under -serve")
	}

	if err := s.Finish(0); err != nil {
		t.Fatal(err)
	}
	var records []calgo.RunRecord
	if err := json.Unmarshal([]byte(get("/runsz")), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Report == nil ||
		records[0].Report.Exit != 0 || len(records[0].Report.Runs) != 1 {
		t.Errorf("/runsz = %+v", records)
	}
	if err := json.Unmarshal([]byte(get("/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Run.Phase != "done" {
		t.Errorf("post-Finish phase = %q, want done", st.Run.Phase)
	}
	s.Close()
	if s.Ops() != nil {
		t.Error("Close did not clear the ops server")
	}
}

// TestDumpFlightIncludesSchedule: a violation schedule passed to
// DumpFlight is appended to the stderr dump.
func TestDumpFlightIncludesSchedule(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-report", filepath.Join(t.TempDir(), "r.json")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.flight.SearchStart(1)
	errOut := capture(t, &os.Stderr, func() {
		s.DumpFlight(calgo.ExploreStep{Thread: 2, Label: "XCHG"})
	})
	if !strings.Contains(errOut, "schedule to the violating state") || !strings.Contains(errOut, "t2:XCHG") {
		t.Errorf("flight dump missing schedule:\n%s", errOut)
	}
}

// TestWriteDOTOffIsNoop: without -dot, WriteDOT must do nothing.
func TestWriteDOTOffIsNoop(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDOT("digraph g {}"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.dot")
	resetFlags(t)
	s = Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-dot", path}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDOT("digraph g {}"); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != "digraph g {}" {
		t.Errorf("WriteDOT wrote %q, %v", b, err)
	}
}
