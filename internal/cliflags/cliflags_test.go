package cliflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calgo"
)

// resetFlags gives each test a fresh default flag set and restores the
// real one (and flag.Usage) afterwards, since Register mutates both.
func resetFlags(t *testing.T) {
	t.Helper()
	oldCmd, oldUsage := flag.CommandLine, flag.Usage
	t.Cleanup(func() { flag.CommandLine, flag.Usage = oldCmd, oldUsage })
	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	flag.Usage = nil
}

// capture redirects the given file (os.Stdout or os.Stderr) for the
// duration of fn and returns what was written.
func capture(t *testing.T, f **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := *f
	*f = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		_, _ = b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	*f = old
	return <-done
}

// TestRegisterDefinesSharedFlags pins the shared vocabulary: every tool
// built on cliflags must expose exactly these names.
func TestRegisterDefinesSharedFlags(t *testing.T) {
	resetFlags(t)
	Register("testtool")
	for _, name := range []string{
		"workers", "timeout", "metrics-json", "trace", "progress", "pprof",
		"explain", "dot", "report",
	} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

// TestUsageIncludesExitLegend pins the -h contract: the exit-code legend
// is appended to every tool's usage output.
func TestUsageIncludesExitLegend(t *testing.T) {
	resetFlags(t)
	Register("testtool")
	var buf bytes.Buffer
	flag.CommandLine.SetOutput(&buf)
	flag.Usage()
	out := buf.String()
	for _, want := range []string{"Exit status:", "0  OK", "1  VIOLATION", "3  UNKNOWN"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
}

// TestAliasWorkersDeprecationNotice: the alias forwards to -workers and
// warns exactly once on stderr.
func TestAliasWorkersDeprecationNotice(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	s.AliasWorkers("parallel")
	var errOut string
	errOut = capture(t, &os.Stderr, func() {
		if err := flag.CommandLine.Parse([]string{"-parallel", "4", "-parallel", "6"}); err != nil {
			t.Fatal(err)
		}
	})
	if s.Workers() != 6 {
		t.Errorf("Workers() = %d, want 6 (last alias use wins)", s.Workers())
	}
	if n := strings.Count(errOut, "deprecated"); n != 1 {
		t.Errorf("deprecation notice printed %d times, want once:\n%s", n, errOut)
	}
	if !strings.Contains(errOut, "use -workers") {
		t.Errorf("notice does not point at -workers: %q", errOut)
	}
}

// TestAliasWorkersSilentWhenUnused: registering the alias alone must not
// warn, and -workers itself never does.
func TestAliasWorkersSilentWhenUnused(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	s.AliasWorkers("parallel")
	errOut := capture(t, &os.Stderr, func() {
		if err := flag.CommandLine.Parse([]string{"-workers", "3"}); err != nil {
			t.Fatal(err)
		}
	})
	if s.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", s.Workers())
	}
	if errOut != "" {
		t.Errorf("unexpected stderr: %q", errOut)
	}
}

// TestMetricsJSONStdout pins "-metrics-json -": counters recorded into
// the shared registry are aggregated into one document on stdout.
func TestMetricsJSONStdout(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-metrics-json", "-"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Two recordings into the same counter must aggregate, as the fuzz
	// batches do.
	s.Metrics().Counter("test.checks").Add(2)
	s.Metrics().Counter("test.checks").Add(3)
	out := capture(t, &os.Stdout, func() {
		if err := s.Finish(0); err != nil {
			t.Fatal(err)
		}
	})
	var doc Report
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out)
	}
	if doc.Tool != "testtool" {
		t.Errorf("tool = %q", doc.Tool)
	}
	if got := doc.Metrics.Counters["test.checks"]; got != 5 {
		t.Errorf("test.checks = %d, want 5 (aggregated)", got)
	}
	if doc.Metrics.Schema != calgo.MetricsSchemaVersion {
		t.Errorf("schema = %q", doc.Metrics.Schema)
	}
}

// TestReportJSONAndMarkdown: -report writes a calgo.report/v1 document
// with the accumulated runs and the caller's exit code; a .md path
// renders Markdown instead.
func TestReportJSONAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "run.json")
	mdPath := filepath.Join(dir, "run.md")

	for _, path := range []string{jsonPath, mdPath} {
		resetFlags(t)
		s := Register("testtool")
		if err := flag.CommandLine.Parse([]string{"-report", path}); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if s.Metrics() == nil {
			t.Fatal("-report did not imply a metrics registry")
		}
		s.AddRun(calgo.RunReport{Name: "case-1", Verdict: "VIOLATION", Detail: "it broke"})
		s.AddNote("note %d", 7)
		if err := s.Finish(1); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}

	var doc calgo.Report
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != calgo.ReportSchemaVersion || doc.Exit != 1 || doc.Tool != "testtool" {
		t.Errorf("report header = %+v", doc)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Verdict != "VIOLATION" {
		t.Errorf("runs = %+v", doc.Runs)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "note 7" {
		t.Errorf("notes = %+v", doc.Notes)
	}
	if doc.Metrics == nil {
		t.Error("report missing metrics snapshot")
	}

	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# testtool run report", "VIOLATION", "it broke", "note 7"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

// TestDumpFlightIncludesSchedule: a violation schedule passed to
// DumpFlight is appended to the stderr dump.
func TestDumpFlightIncludesSchedule(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-report", filepath.Join(t.TempDir(), "r.json")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.flight.SearchStart(1)
	errOut := capture(t, &os.Stderr, func() {
		s.DumpFlight(calgo.ExploreStep{Thread: 2, Label: "XCHG"})
	})
	if !strings.Contains(errOut, "schedule to the violating state") || !strings.Contains(errOut, "t2:XCHG") {
		t.Errorf("flight dump missing schedule:\n%s", errOut)
	}
}

// TestWriteDOTOffIsNoop: without -dot, WriteDOT must do nothing.
func TestWriteDOTOffIsNoop(t *testing.T) {
	resetFlags(t)
	s := Register("testtool")
	if err := flag.CommandLine.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDOT("digraph g {}"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.dot")
	resetFlags(t)
	s = Register("testtool")
	if err := flag.CommandLine.Parse([]string{"-dot", path}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDOT("digraph g {}"); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != "digraph g {}" {
		t.Errorf("WriteDOT wrote %q, %v", b, err)
	}
}
