package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStartProgressReportsAndStops(t *testing.T) {
	var states atomic.Int64
	var mu sync.Mutex
	var got []Progress
	stop := StartProgress(5*time.Millisecond, 1000, states.Load, func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	states.Store(100)
	time.Sleep(30 * time.Millisecond)
	states.Store(200)
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("got %d reports, want at least a tick and the final", len(got))
	}
	last := got[len(got)-1]
	if !last.Final {
		t.Fatal("last report must be Final")
	}
	if last.States != 200 {
		t.Fatalf("final states = %d, want 200", last.States)
	}
	if last.Budget != 1000 {
		t.Fatalf("budget = %d, want 1000", last.Budget)
	}
	if last.Rate <= 0 {
		t.Fatalf("rate = %v, want > 0", last.Rate)
	}
	for _, p := range got[:len(got)-1] {
		if p.Final {
			t.Fatal("only the last report may be Final")
		}
	}
}

func TestStartProgressETA(t *testing.T) {
	// A mid-flight snapshot with a budget projects a positive ETA.
	var calls int
	var sawETA bool
	var mu sync.Mutex
	stop := StartProgress(2*time.Millisecond, 1_000_000_000, func() int64 { return 10 }, func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if !p.Final && p.ETA > 0 {
			sawETA = true
		}
	})
	time.Sleep(20 * time.Millisecond)
	stop()
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("no reports")
	}
	if !sawETA {
		t.Fatal("expected a positive ETA against the budget")
	}
}

func TestStartProgressDisabled(t *testing.T) {
	stop := StartProgress(0, 0, func() int64 { return 0 }, func(Progress) { t.Fatal("must not fire") })
	stop()
	stop = StartProgress(time.Millisecond, 0, nil, nil)
	stop()
}

// TestStartProgressNoETAWithoutBudget pins the zero/negative budget
// contract: an unbounded search never projects an ETA, and a negative
// budget is treated as unbounded rather than producing a negative one.
func TestStartProgressNoETAWithoutBudget(t *testing.T) {
	for _, budget := range []int64{0, -5} {
		var mu sync.Mutex
		var got []Progress
		stop := StartProgress(time.Millisecond, budget, func() int64 { return 42 }, func(p Progress) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
		})
		time.Sleep(10 * time.Millisecond)
		stop()
		mu.Lock()
		if len(got) == 0 {
			t.Fatalf("budget %d: no reports", budget)
		}
		for _, p := range got {
			if p.ETA != 0 {
				t.Fatalf("budget %d: ETA = %v, want 0", budget, p.ETA)
			}
		}
		mu.Unlock()
	}
}

// TestStartProgressCounterRegression simulates a parallel merge where the
// observed counter briefly moves backwards (workers flush per-worker
// deltas out of order). The reporter must keep running and never emit a
// negative rate or ETA.
func TestStartProgressCounterRegression(t *testing.T) {
	var n atomic.Int64
	n.Store(1000)
	var mu sync.Mutex
	var got []Progress
	stop := StartProgress(time.Millisecond, 2000, n.Load, func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	time.Sleep(5 * time.Millisecond)
	n.Store(400) // regression: a merge rewound the visible count
	time.Sleep(5 * time.Millisecond)
	n.Store(1500)
	stop()

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("got %d reports, want several across the regression", len(got))
	}
	for _, p := range got {
		if p.Rate < 0 {
			t.Fatalf("negative rate %v after counter regression", p.Rate)
		}
		if p.ETA < 0 {
			t.Fatalf("negative ETA %v after counter regression", p.ETA)
		}
	}
	if final := got[len(got)-1]; !final.Final || final.States != 1500 {
		t.Fatalf("final report = %+v, want Final with the recovered count", final)
	}
}

// TestStartProgressShutdownRace hammers start/stop with a callback that
// touches shared state: under -race this pins that fn is never invoked
// concurrently with (or after) stop returning.
func TestStartProgressShutdownRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		var n atomic.Int64
		shared := 0 // intentionally unsynchronized: the reporter must serialize with stop
		stop := StartProgress(time.Microsecond, 100, n.Load, func(p Progress) {
			shared++
		})
		n.Add(10)
		time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
		var wg sync.WaitGroup
		for j := 0; j < 3; j++ { // concurrent stops: idempotency under contention
			wg.Add(1)
			go func() {
				defer wg.Done()
				stop()
			}()
		}
		wg.Wait()
		if shared == 0 {
			t.Fatal("final report must have fired before stop returned")
		}
		shared++ // safe only if fn can no longer run
	}
}

func TestProgressPrinter(t *testing.T) {
	var buf bytes.Buffer
	fn := ProgressPrinter(&buf, "calcheck")
	fn(Progress{States: 500, Budget: 1000, Elapsed: 2 * time.Second, Rate: 250})
	out := buf.String()
	if !strings.HasPrefix(out, "calcheck: ") {
		t.Errorf("missing label: %q", out)
	}
	for _, want := range []string{"500 states", "250 states/s", "budget 1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q: %q", want, out)
		}
	}
	buf.Reset()
	fn(Progress{States: 1000, Elapsed: time.Second, Rate: 1000, Final: true})
	if !strings.Contains(buf.String(), "done") {
		t.Errorf("final report should say done: %q", buf.String())
	}
}
