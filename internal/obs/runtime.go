package obs

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeSampler launches a goroutine that samples runtime health
// into the registry every interval: a go.goroutines gauge, the
// SnapshotMemStats allocation gauges, and a go.gc_pause_ns histogram fed
// with every GC pause completed since the previous sample (MemStats
// keeps the last 256 pauses, so pauses are only lost if more than 256
// GCs complete between samples). The returned stop function takes one
// last sample, halts the goroutine, and is idempotent; it does not
// return until the goroutine has exited. A nil registry or non-positive
// interval disables the sampler.
func StartRuntimeSampler(m *Metrics, interval time.Duration) (stop func()) {
	if m == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastGC uint32
		sample := func() {
			m.Gauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			m.Gauge("go.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
			m.Gauge("go.total_alloc_bytes").Set(int64(ms.TotalAlloc))
			m.Gauge("go.heap_objects").Set(int64(ms.HeapObjects))
			m.Gauge("go.num_gc").Set(int64(ms.NumGC))
			h := m.Histogram("go.gc_pause_ns")
			ring := uint32(len(ms.PauseNs)) // 256: the runtime's pause ring
			n := ms.NumGC - lastGC
			if n > ring {
				n = ring
			}
			for i := uint32(0); i < n; i++ {
				// PauseNs[(NumGC+255)%256] holds the most recent pause.
				h.Observe(int64(ms.PauseNs[(ms.NumGC+ring-1-i)%ring]))
			}
			lastGC = ms.NumGC
		}
		sample()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				sample()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}
