// Package obs is the library's zero-dependency observability layer: a
// registry of atomic counters, gauges and histograms exportable as JSON
// and expvar (Metrics); span-style search tracing with a sampling
// structured-log tracer and a ring-buffer flight recorder (Tracer,
// LogTracer, FlightRecorder); and periodic progress reporting for
// long-running searches (Progress, StartProgress).
//
// The layer is built so that *disabled* observability costs nothing on
// the checker and explorer hot paths: every hook site is guarded by a
// nil check, instruments are plain atomics, and Event values are passed
// by value so a no-op tracer allocates nothing. Enabled instruments are
// safe for concurrent use — the parallel exploration engine hammers
// them from every worker.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SchemaVersion identifies the metrics JSON schema emitted by
// Metrics.Snapshot; bump it when the document shape changes. The schema
// is documented in EXPERIMENTS.md ("Metrics schema").
const SchemaVersion = "calgo.metrics/v1"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (useful for live in-flight counts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i>0 holds 2^(i-1) <= v < 2^i. 65 buckets cover every
// non-negative int64.
const histBuckets = 65

// Histogram is an atomic power-of-two-bucket histogram of non-negative
// observations. Negative observations are clamped to zero.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Value() }

// HistogramSnapshot is the exported form of a Histogram: count, sum,
// max, p50/p90/p99 estimates, and the non-empty power-of-two buckets in
// ascending order. The quantiles are linear interpolations within the
// power-of-two bucket containing the rank, so their error is bounded by
// the bucket width; the top bucket is clamped to Max.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	P50     float64       `json:"p50,omitempty"`
	P90     float64       `json:"p90,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// observations by linear interpolation within the power-of-two bucket
// containing rank q·Count. Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	lo := int64(0) // exclusive lower bound of the current bucket
	for _, b := range s.Buckets {
		if float64(cum+b.Count) >= rank {
			hi := b.Le
			if hi > s.Max {
				hi = s.Max // the top bucket extends only to the largest observation
			}
			if b.Le == 0 || hi <= lo {
				return float64(hi)
			}
			pos := (rank - float64(cum)) / float64(b.Count)
			// Round away float noise: the bucket interpolation error
			// dwarfs anything past the sixth decimal place.
			return math.Round((float64(lo)+pos*float64(hi-lo))*1e6) / 1e6
		}
		cum += b.Count
		lo = b.Le
	}
	return float64(s.Max)
}

// BucketCount is one non-empty histogram bucket: Count observations v
// with v <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			le := int64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: n})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Metrics is a registry of named counters, gauges and histograms.
// Instrument lookup takes a lock; the returned instruments are lock-free
// atomics, so callers cache them once and update them freely. The zero
// Metrics is ready to use; a nil *Metrics is a valid "disabled" sink for
// the Counter/Gauge/Histogram accessors (they return nil, and every
// update site nil-checks).
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counters == nil {
		m.counters = make(map[string]*Counter)
	}
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gauges == nil {
		m.gauges = make(map[string]*Gauge)
	}
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.histograms == nil {
		m.histograms = make(map[string]*Histogram)
	}
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered instrument,
// shaped for stable JSON export: map keys marshal in sorted order, so
// two snapshots of the same state render identically.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered instrument. Safe to call
// concurrently with updates; individual values are read atomically.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Schema:   SchemaVersion,
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	if len(m.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(m.histograms))
		for name, h := range m.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// MarshalJSON renders the registry as its Snapshot document.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// Names returns the sorted names of all registered instruments
// (counters, gauges and histograms interleaved).
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters)+len(m.gauges)+len(m.histograms))
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.gauges {
		names = append(names, n)
	}
	for n := range m.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildInfo resolves the process's build identity: the module version
// (VCS revision when stamped, else the module version, else "devel")
// and the Go runtime version. These are the label values of the
// build_info gauge and the /statusz version fields, letting fleet
// queries correlate regressions with daemon versions.
func BuildInfo() (version, goVersion string) {
	version = "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	return version, runtime.Version()
}

// SetBuildInfo registers the conventional build_info gauge — value 1,
// identity in the labels — under the labeled name
// `build_info{go_version="...",version="..."}`. The exposition layer
// keeps the label block intact, so /metrics serves
// calgo_build_info{...} 1. Safe on a nil registry.
func (m *Metrics) SetBuildInfo(version, goVersion string) {
	if m == nil {
		return
	}
	name := fmt.Sprintf("build_info{go_version=%s,version=%s}",
		quoteLabel(goVersion), quoteLabel(version))
	m.Gauge(name).Set(1)
}

// quoteLabel renders a Prometheus label value: double-quoted with \\,
// \" and \n escaped.
func quoteLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `"` + r.Replace(v) + `"`
}

// SnapshotMemStats records an allocation snapshot into the registry's
// gauges: heap bytes in use, cumulative allocated bytes, live heap
// objects and completed GC cycles, under the "go." prefix.
func (m *Metrics) SnapshotMemStats() {
	if m == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Gauge("go.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	m.Gauge("go.total_alloc_bytes").Set(int64(ms.TotalAlloc))
	m.Gauge("go.heap_objects").Set(int64(ms.HeapObjects))
	m.Gauge("go.num_gc").Set(int64(ms.NumGC))
}

// published tracks which registry owns each expvar name this package has
// published, making PublishExpvar idempotent per registry: expvar's own
// registry is global and write-once, but re-publishing the *same* name
// for the *same* registry (e.g. a CLI entry point invoked repeatedly in
// one process) is harmless and must not error.
var (
	publishMu sync.Mutex
	published = map[string]*Metrics{}
)

// PublishExpvar exposes the registry on the process-wide expvar page
// (and therefore on any -pprof or -serve debug server's /debug/vars)
// under the given name. Publishing the same name again for the same
// registry is a no-op; publishing it for a different registry — or a
// name some other package already took — is an error.
func (m *Metrics) PublishExpvar(name string) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if prev, ok := published[name]; ok {
		if prev == m {
			return nil
		}
		return fmt.Errorf("obs: expvar %q already published for a different registry", name)
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
	published[name] = m
	return nil
}
