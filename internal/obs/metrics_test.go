package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("x.count") != c {
		t.Fatal("Counter should return the same instrument for the same name")
	}
	g := m.Gauge("x.gauge")
	g.Set(7)
	g.SetMax(3) // lower: no effect
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Add(-1)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
}

func TestNilMetricsIsDisabledSink(t *testing.T) {
	var m *Metrics
	if m.Counter("a") != nil || m.Gauge("b") != nil || m.Histogram("c") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	m.SnapshotMemStats() // must not panic
	s := m.Snapshot()
	if s.Schema != SchemaVersion || len(s.Counters) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if m.Names() != nil {
		t.Fatal("nil registry has no names")
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("x.hist")
	for _, v := range []int64{0, 1, 1, 2, 3, 7, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 1014 { // -5 clamps to 0
		t.Fatalf("sum = %d, want 1014", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	snap := h.snapshot()
	// Buckets: le=0 {0, -5}, le=1 {1,1}, le=3 {2,3}, le=7 {7}, le=1023 {1000}.
	want := []BucketCount{{0, 2}, {1, 2}, {3, 2}, {7, 1}, {1023, 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
}

// TestSnapshotJSONGolden pins the metrics JSON schema: the exact
// document shape consumers of -metrics-json parse. Changing this golden
// requires bumping SchemaVersion and the EXPERIMENTS.md schema note.
func TestSnapshotJSONGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("check.states").Add(42)
	m.Counter("check.memo_hits").Add(7)
	m.Gauge("check.frontier_depth").Set(5)
	h := m.Histogram("check.element_size")
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)

	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"schema":"calgo.metrics/v1",` +
		`"counters":{"check.memo_hits":7,"check.states":42},` +
		`"gauges":{"check.frontier_depth":5},` +
		`"histograms":{"check.element_size":{"count":3,"sum":5,"max":2,` +
		`"p50":1.25,"p90":1.85,"p99":1.985,` +
		`"buckets":[{"le":1,"count":1},{"le":3,"count":2}]}}}`
	if string(got) != golden {
		t.Errorf("metrics JSON schema drifted:\n got: %s\nwant: %s", got, golden)
	}

	// The document must round-trip through the exported Snapshot type.
	var s Snapshot
	if err := json.Unmarshal(got, &s); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if s.Counters["check.states"] != 42 || s.Histograms["check.element_size"].Count != 3 {
		t.Fatalf("round-tripped snapshot = %+v", s)
	}
}

func TestSnapshotConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("c").Inc()
				m.Gauge("g").SetMax(int64(j))
				m.Histogram("h").Observe(int64(j))
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := m.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestNames(t *testing.T) {
	m := NewMetrics()
	m.Counter("b")
	m.Gauge("a")
	m.Histogram("c")
	got := m.Names()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestSnapshotMemStats(t *testing.T) {
	m := NewMetrics()
	m.SnapshotMemStats()
	if m.Gauge("go.heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap_alloc_bytes should be positive")
	}
}

func TestPublishExpvar(t *testing.T) {
	m := NewMetrics()
	m.Counter("x").Add(3)
	if err := m.PublishExpvar("calgo.test.metrics"); err != nil {
		t.Fatal(err)
	}
	v := expvar.Get("calgo.test.metrics")
	if v == nil {
		t.Fatal("metrics not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not the snapshot document: %v", err)
	}
	if s.Counters["x"] != 3 {
		t.Fatalf("expvar snapshot = %+v", s)
	}
	// Re-publishing the same registry under the same name is a no-op:
	// CLI entry points invoked repeatedly in one process must not error.
	if err := m.PublishExpvar("calgo.test.metrics"); err != nil {
		t.Fatalf("same-registry republish must be idempotent, got %v", err)
	}
	// A *different* registry claiming the name is still an error.
	if err := NewMetrics().PublishExpvar("calgo.test.metrics"); err == nil {
		t.Fatal("publishing a different registry under a taken name must fail")
	}
	// A name some other package claimed directly via expvar is an error.
	expvar.NewInt("calgo.test.metrics.foreign")
	if err := m.PublishExpvar("calgo.test.metrics.foreign"); err == nil {
		t.Fatal("publishing over a foreign expvar must fail")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	m := NewMetrics()
	h := m.Histogram("q")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	snap := h.snapshot()
	// Power-of-two buckets bound the error: each estimate must land in
	// the bucket holding the true quantile, and be ordered.
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"p50", snap.P50, 32, 64},  // true p50 = 50, bucket (31,63]
		{"p90", snap.P90, 64, 100}, // true p90 = 90, bucket (63,100]
		{"p99", snap.P99, 64, 100}, // true p99 = 99, same top bucket
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s = %v, want within [%v,%v]", c.name, c.got, c.lo, c.hi)
		}
	}
	if !(snap.P50 <= snap.P90 && snap.P90 <= snap.P99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", snap.P50, snap.P90, snap.P99)
	}
	if snap.P99 > float64(snap.Max) {
		t.Errorf("p99 %v exceeds max %d", snap.P99, snap.Max)
	}

	// All-zero observations: every quantile is exactly 0.
	hz := m.Histogram("zeros")
	hz.Observe(0)
	hz.Observe(0)
	zs := hz.snapshot()
	if zs.P50 != 0 || zs.P99 != 0 {
		t.Errorf("zero histogram quantiles = %v/%v, want 0", zs.P50, zs.P99)
	}

	// Single observation: quantiles collapse to (at most) that value.
	h1 := m.Histogram("one")
	h1.Observe(5)
	s1 := h1.snapshot()
	if s1.P99 > 5 || s1.P50 <= 0 {
		t.Errorf("single-obs quantiles = p50=%v p99=%v, want in (0,5]", s1.P50, s1.P99)
	}
}
