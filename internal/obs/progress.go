package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is one periodic snapshot of a running search, built by the
// reporter from a live state counter.
type Progress struct {
	// States is the number of search states expanded so far.
	States int64
	// Budget is the search's state budget (0 = unbounded).
	Budget int64
	// Elapsed is the time since the reporter started.
	Elapsed time.Duration
	// Rate is the average expansion rate in states/sec over Elapsed.
	Rate float64
	// ETA projects how much longer the search can run before exhausting
	// Budget at the current Rate; zero when Budget is 0 or Rate is 0.
	ETA time.Duration
	// Final marks the closing report emitted when the search ends.
	Final bool
}

// String renders the snapshot as one status line.
func (p Progress) String() string {
	s := fmt.Sprintf("%d states in %v (%.0f states/s", p.States, p.Elapsed.Round(time.Millisecond), p.Rate)
	if p.Budget > 0 {
		s += fmt.Sprintf(", budget %d", p.Budget)
		if p.ETA > 0 && !p.Final {
			s += fmt.Sprintf(", budget ETA %v", p.ETA.Round(time.Second))
		}
	}
	s += ")"
	if p.Final {
		s += " done"
	}
	return s
}

// StartProgress launches a goroutine that calls fn with a Progress
// snapshot every interval, reading the live state count from states
// (which must be safe to call concurrently). The returned stop function
// halts the reporter, emits one final snapshot (Final = true), and does
// not return until the goroutine has exited — after stop returns, fn is
// never called again. stop is idempotent.
func StartProgress(interval time.Duration, budget int64, states func() int64, fn func(Progress)) (stop func()) {
	if interval <= 0 || fn == nil || states == nil {
		return func() {}
	}
	start := time.Now()
	snap := func(final bool) Progress {
		p := Progress{
			States:  states(),
			Budget:  budget,
			Elapsed: time.Since(start),
			Final:   final,
		}
		if secs := p.Elapsed.Seconds(); secs > 0 {
			p.Rate = float64(p.States) / secs
		}
		if budget > 0 && p.Rate > 0 && p.States < budget {
			p.ETA = time.Duration(float64(budget-p.States) / p.Rate * float64(time.Second))
		}
		return p
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn(snap(false))
			case <-done:
				fn(snap(true))
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}

// ProgressPrinter returns a Progress callback that writes "label:
// <snapshot>" lines to w — the CLIs' -progress implementation.
func ProgressPrinter(w io.Writer, label string) func(Progress) {
	return func(p Progress) {
		fmt.Fprintf(w, "%s: %s\n", label, p)
	}
}
