package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// emit drives a tracer through a small, balanced search shape.
func emit(tr Tracer) {
	tr.SearchStart(4)
	tr.NodeExpand(0, 1)
	tr.ElementAdmit(0, 2)
	tr.NodeExpand(2, 2)
	tr.MemoHit(2)
	tr.Backtrack(0, 2)
	tr.SearchEnd("Unsat", 2)
}

func TestFlightRecorderRetainsAll(t *testing.T) {
	f := NewFlightRecorder(16)
	emit(f)
	events := f.Events()
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	if f.Total() != 7 {
		t.Fatalf("Total = %d, want 7", f.Total())
	}
	wantKinds := []EventKind{EvSearchStart, EvNodeExpand, EvElementAdmit, EvNodeExpand, EvMemoHit, EvBacktrack, EvSearchEnd}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, e.Kind, wantKinds[i])
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if events[6].Verdict != "Unsat" || events[6].Arg != 2 {
		t.Errorf("SearchEnd = %+v", events[6])
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.NodeExpand(i, int64(i))
	}
	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want capacity 4", len(events))
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	// The last 4 of 10 events, oldest first, with monotonic seq.
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if want := 6 + i; e.Depth != want {
			t.Errorf("event %d depth = %d, want %d", i, e.Depth, want)
		}
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(8)
	emit(f)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "last 7 of 7 events") {
		t.Errorf("missing header: %q", out)
	}
	for _, want := range []string{"SearchStart", "ElementAdmit", "Backtrack", "verdict=Unsat"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				f.NodeExpand(j, int64(j))
			}
		}()
	}
	wg.Wait()
	if f.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", f.Total())
	}
	events := f.Events()
	if len(events) != 32 {
		t.Fatalf("retained %d, want 32", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
}

func TestLogTracerSamples(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogTracer(&buf, 3)
	l.SearchStart(2) // always logged
	for i := 0; i < 9; i++ {
		l.NodeExpand(i, int64(i)) // every 3rd of these seqs logged
	}
	l.SearchEnd("Sat", 9) // always logged
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Seqs 1..11; sampled NodeExpands are seqs 3, 6, 9 → 3 lines, plus
	// SearchStart and SearchEnd.
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	var first struct {
		Ev  string `json:"ev"`
		Seq uint64 `json:"seq"`
		Arg int64  `json:"arg"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if first.Ev != "SearchStart" || first.Seq != 1 || first.Arg != 2 {
		t.Errorf("first line = %+v", first)
	}
	var last struct {
		Ev      string `json:"ev"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Ev != "SearchEnd" || last.Verdict != "Sat" {
		t.Errorf("last line = %+v", last)
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestLogTracerWriteErrorStops(t *testing.T) {
	w := &failingWriter{}
	l := NewLogTracer(w, 1)
	l.SearchStart(1)
	l.SearchEnd("Sat", 1)
	if l.Err() == nil {
		t.Fatal("expected write error")
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times, want 1 (drop after first failure)", w.n)
	}
}

func TestMultiTracer(t *testing.T) {
	a := NewFlightRecorder(8)
	b := NewFlightRecorder(8)
	m := MultiTracer(nil, a, nil, b)
	emit(m)
	if a.Total() != 7 || b.Total() != 7 {
		t.Fatalf("totals = %d, %d; want 7, 7", a.Total(), b.Total())
	}
	if got := MultiTracer(); got != nil {
		t.Fatal("empty MultiTracer should be nil")
	}
	if got := MultiTracer(nil, a); got != Tracer(a) {
		t.Fatal("single-entry MultiTracer should unwrap")
	}
}
