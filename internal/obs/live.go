package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// WorkerLive is one worker's live activity counters, updated lock-free
// from the worker goroutine and read by LiveRun.Status. The trailing pad
// keeps adjacent workers on separate cache lines so per-claim updates
// don't false-share.
type WorkerLive struct {
	// Claimed counts work items this worker has processed (states for
	// the explorer, histories for CheckMany).
	Claimed atomic.Int64
	// Steals counts work items taken from another worker's deque.
	Steals atomic.Int64
	_      [6]int64
}

// LiveRun is the pull-based live view of a running check or exploration:
// the search engine registers its state counter and per-worker counters
// here, and the ops server's /statusz handler asks for a Status snapshot
// whenever a client polls. A nil *LiveRun is a valid "detached" sink —
// every method is a no-op — so engines thread it unconditionally without
// branching beyond the usual nil guard.
type LiveRun struct {
	mu          sync.Mutex
	tool        string
	phase       string
	started     time.Time
	searchStart time.Time
	searchEnd   time.Time
	searching   bool
	budget      int64
	states      func() int64
	final       int64
	workers     []WorkerLive
}

// NewLiveRun returns a live view stamped with the owning tool's name.
func NewLiveRun(tool string) *LiveRun {
	return &LiveRun{tool: tool, started: time.Now(), phase: "idle"}
}

// SetPhase records a coarse lifecycle phase ("parse", "check", "render",
// ...) shown on /statusz between searches.
func (l *LiveRun) SetPhase(phase string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.phase = phase
	l.mu.Unlock()
}

// StartSearch attaches a running search: states must return the live
// count of expanded states (safe to call concurrently), budget is the
// state budget (0 = unbounded), and workers sizes the per-worker counter
// table. A second StartSearch replaces the first — engines run one
// search at a time.
func (l *LiveRun) StartSearch(phase string, budget int64, states func() int64, workers int) {
	if l == nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	l.mu.Lock()
	l.phase = phase
	l.searchStart = time.Now()
	l.searchEnd = time.Time{}
	l.searching = true
	l.budget = budget
	l.states = states
	l.final = 0
	l.workers = make([]WorkerLive, workers)
	l.mu.Unlock()
}

// EndSearch freezes the search view: the final state count is captured
// so Status keeps reporting it after the engine's counter goes away.
func (l *LiveRun) EndSearch() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.searching {
		if l.states != nil {
			l.final = l.states()
		}
		l.states = nil
		l.searching = false
		l.searchEnd = time.Now()
	}
	l.mu.Unlock()
}

// Worker returns worker i's live counters, or nil when detached or out
// of range; callers cache the pointer once per worker loop.
func (l *LiveRun) Worker(i int) *WorkerLive {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.workers) {
		return nil
	}
	return &l.workers[i]
}

// WorkerStatus is one worker's share of the run in a Status snapshot.
type WorkerStatus struct {
	ID      int   `json:"id"`
	Claimed int64 `json:"claimed"`
	Steals  int64 `json:"steals"`
	// Share is this worker's fraction of all claimed work, 0..1.
	Share float64 `json:"share"`
}

// LiveStatus is a point-in-time view of the run, shaped for the
// /statusz JSON document.
type LiveStatus struct {
	Tool         string         `json:"tool"`
	Phase        string         `json:"phase"`
	UptimeNS     int64          `json:"uptime_ns"`
	Searching    bool           `json:"searching"`
	SearchNS     int64          `json:"search_ns,omitempty"`
	States       int64          `json:"states"`
	Budget       int64          `json:"budget,omitempty"`
	StatesPerSec float64        `json:"states_per_sec,omitempty"`
	EtaNS        int64          `json:"eta_ns,omitempty"`
	Workers      []WorkerStatus `json:"workers,omitempty"`
}

// Status computes the current snapshot: states and per-worker counters
// are read live, rate and ETA are derived from the search clock. Safe to
// call concurrently with the engine; on a nil receiver it returns a zero
// snapshot with phase "detached".
func (l *LiveRun) Status() LiveStatus {
	if l == nil {
		return LiveStatus{Phase: "detached"}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LiveStatus{
		Tool:      l.tool,
		Phase:     l.phase,
		UptimeNS:  int64(time.Since(l.started)),
		Searching: l.searching,
		Budget:    l.budget,
		States:    l.final,
	}
	switch {
	case l.searching:
		if l.states != nil {
			s.States = l.states()
		}
		s.SearchNS = int64(time.Since(l.searchStart))
	case !l.searchEnd.IsZero():
		s.SearchNS = int64(l.searchEnd.Sub(l.searchStart))
	}
	if secs := time.Duration(s.SearchNS).Seconds(); secs > 0 {
		s.StatesPerSec = float64(s.States) / secs
	}
	if l.searching && s.Budget > 0 && s.StatesPerSec > 0 && s.States < s.Budget {
		s.EtaNS = int64(float64(s.Budget-s.States) / s.StatesPerSec * float64(time.Second))
	}
	if n := len(l.workers); n > 0 {
		s.Workers = make([]WorkerStatus, n)
		var total int64
		for i := range l.workers {
			c := l.workers[i].Claimed.Load()
			s.Workers[i] = WorkerStatus{ID: i, Claimed: c, Steals: l.workers[i].Steals.Load()}
			total += c
		}
		if total > 0 {
			for i := range s.Workers {
				s.Workers[i].Share = float64(s.Workers[i].Claimed) / float64(total)
			}
		}
	}
	return s
}
