package obs

import (
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLiveRunNilDetached(t *testing.T) {
	var l *LiveRun
	l.SetPhase("x") // must not panic
	l.StartSearch("y", 10, func() int64 { return 1 }, 4)
	l.EndSearch()
	if l.Worker(0) != nil {
		t.Fatal("nil LiveRun must hand out nil workers")
	}
	s := l.Status()
	if s.Phase != "detached" || s.States != 0 {
		t.Fatalf("nil status = %+v", s)
	}
}

func TestLiveRunLifecycle(t *testing.T) {
	l := NewLiveRun("caltest")
	if s := l.Status(); s.Tool != "caltest" || s.Phase != "idle" || s.Searching {
		t.Fatalf("initial status = %+v", s)
	}

	l.SetPhase("parse")
	if s := l.Status(); s.Phase != "parse" {
		t.Fatalf("phase = %q, want parse", s.Phase)
	}

	var n atomic.Int64
	l.StartSearch("explore", 1000, n.Load, 2)
	n.Store(250)
	l.Worker(0).Claimed.Add(200)
	l.Worker(0).Steals.Add(3)
	l.Worker(1).Claimed.Add(50)
	time.Sleep(2 * time.Millisecond) // let the search clock advance

	s := l.Status()
	if !s.Searching || s.Phase != "explore" {
		t.Fatalf("mid-search status = %+v", s)
	}
	if s.States != 250 || s.Budget != 1000 {
		t.Fatalf("states/budget = %d/%d, want 250/1000", s.States, s.Budget)
	}
	if s.StatesPerSec <= 0 || s.EtaNS <= 0 {
		t.Fatalf("rate/eta = %v/%v, want positive", s.StatesPerSec, s.EtaNS)
	}
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2 entries", s.Workers)
	}
	if s.Workers[0].Claimed != 200 || s.Workers[0].Steals != 3 || s.Workers[1].Claimed != 50 {
		t.Fatalf("worker counters = %+v", s.Workers)
	}
	if s.Workers[0].Share != 0.8 || s.Workers[1].Share != 0.2 {
		t.Fatalf("worker shares = %v/%v, want 0.8/0.2", s.Workers[0].Share, s.Workers[1].Share)
	}

	// Out-of-range workers are nil, not a panic.
	if l.Worker(-1) != nil || l.Worker(2) != nil {
		t.Fatal("out-of-range Worker must be nil")
	}

	n.Store(600)
	l.EndSearch()
	s = l.Status()
	if s.Searching {
		t.Fatal("ended search still reports searching")
	}
	if s.States != 600 {
		t.Fatalf("final states = %d, want the frozen 600", s.States)
	}
	if s.SearchNS <= 0 {
		t.Fatalf("search_ns = %d, want frozen positive duration", s.SearchNS)
	}
	if s.EtaNS != 0 {
		t.Fatalf("eta after end = %d, want 0", s.EtaNS)
	}
	frozen := s.SearchNS
	time.Sleep(2 * time.Millisecond)
	if again := l.Status().SearchNS; again != frozen {
		t.Fatalf("search_ns drifted after EndSearch: %d -> %d", frozen, again)
	}
	l.EndSearch() // idempotent
}

func TestLiveRunStatusJSONShape(t *testing.T) {
	l := NewLiveRun("caltest")
	l.StartSearch("check", 0, func() int64 { return 7 }, 1)
	b, err := json.Marshal(l.Status())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tool", "phase", "uptime_ns", "searching", "states"} {
		if _, ok := m[key]; !ok {
			t.Errorf("status JSON missing %q: %s", key, b)
		}
	}
	if _, ok := m["budget"]; ok {
		t.Errorf("unbounded run must omit budget: %s", b)
	}
}

func TestLiveRunConcurrent(t *testing.T) {
	l := NewLiveRun("caltest")
	var n atomic.Int64
	l.StartSearch("explore", 0, n.Load, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wl := l.Worker(id)
			for i := 0; i < 1000; i++ {
				n.Add(1)
				wl.Claimed.Add(1)
				if i%7 == 0 {
					wl.Steals.Add(1)
				}
			}
		}(w)
	}
	donePolling := make(chan struct{})
	go func() {
		defer close(donePolling)
		for i := 0; i < 200; i++ {
			_ = l.Status()
		}
	}()
	wg.Wait()
	<-donePolling
	l.EndSearch()
	s := l.Status()
	if s.States != 4000 {
		t.Fatalf("states = %d, want 4000", s.States)
	}
	var claimed int64
	for _, w := range s.Workers {
		claimed += w.Claimed
	}
	if claimed != 4000 {
		t.Fatalf("claimed sum = %d, want 4000", claimed)
	}
}

func TestStartRuntimeSampler(t *testing.T) {
	if stop := StartRuntimeSampler(nil, time.Millisecond); stop == nil {
		t.Fatal("nil registry must still return a stop func")
	} else {
		stop()
	}
	m := NewMetrics()
	stop := StartRuntimeSampler(m, time.Millisecond)
	// Force GC cycles so the pause histogram has observations.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	s := m.Snapshot()
	if s.Gauges["go.goroutines"] <= 0 {
		t.Fatalf("go.goroutines = %d, want positive", s.Gauges["go.goroutines"])
	}
	if s.Gauges["go.heap_alloc_bytes"] <= 0 {
		t.Fatal("heap gauge not sampled")
	}
	h := s.Histograms["go.gc_pause_ns"]
	if h.Count < 3 {
		t.Fatalf("gc pause observations = %d, want >= 3 forced GCs", h.Count)
	}
	if s.Gauges["go.num_gc"] < 3 {
		t.Fatalf("go.num_gc = %d, want >= 3", s.Gauges["go.num_gc"])
	}
}

func TestRuntimeSamplerNoDoubleCountGC(t *testing.T) {
	m := NewMetrics()
	stop := StartRuntimeSampler(m, time.Millisecond)
	runtime.GC()
	time.Sleep(10 * time.Millisecond) // several samples, one GC
	stop()
	snap := m.Snapshot()
	h := snap.Histograms["go.gc_pause_ns"]
	if h.Count > snap.Gauges["go.num_gc"] {
		t.Fatalf("pause observations %d exceed completed GCs %d: pauses double-counted",
			h.Count, snap.Gauges["go.num_gc"])
	}
}
