package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"calgo/internal/obs"
	"calgo/internal/render"
	"calgo/internal/runstore"
	"calgo/internal/sched"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return resp.StatusCode, b.String(), resp.Header
}

func TestIndex(t *testing.T) {
	ts := testServer(t, Config{Tool: "caltest"})
	code, body, _ := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("index status = %d", code)
	}
	for _, want := range []string{"caltest", "/metrics", "/statusz", "/flightz", "/runsz", "/debug/pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if code, _, _ := get(t, ts.URL+"/nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestStatuszJSON(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("check.memo_hits").Add(30)
	m.Counter("check.memo_misses").Add(10)
	l := obs.NewLiveRun("caltest")
	l.StartSearch("check", 100, func() int64 { return 42 }, 2)
	srv := New(Config{Tool: "caltest", Metrics: m, Live: l})
	srv.AddRun(render.Run{Name: "h1.txt", Verdict: "OK"})
	srv.AddNote("hello")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var doc Statusz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if doc.Schema != StatuszSchema || doc.Tool != "caltest" {
		t.Fatalf("schema/tool = %q/%q", doc.Schema, doc.Tool)
	}
	if !doc.Run.Searching || doc.Run.States != 42 || doc.Run.Budget != 100 {
		t.Fatalf("run = %+v", doc.Run)
	}
	if doc.Memo == nil || doc.Memo.Hits != 30 || doc.Memo.HitRate != 0.75 {
		t.Fatalf("memo = %+v", doc.Memo)
	}
	if doc.Runtime.Goroutines <= 0 || doc.Runtime.HeapAllocBytes == 0 {
		t.Fatalf("runtime = %+v", doc.Runtime)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Name != "h1.txt" || doc.Runs[0].Verdict != "OK" {
		t.Fatalf("runs = %+v", doc.Runs)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "hello" {
		t.Fatalf("notes = %+v", doc.Notes)
	}
}

func TestStatuszDetachedInstruments(t *testing.T) {
	// All-nil config: every section must degrade, not panic.
	ts := testServer(t, Config{Tool: "bare"})
	code, body, _ := get(t, ts.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz status = %d", code)
	}
	var doc Statusz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Memo != nil {
		t.Fatalf("memo without metrics = %+v", doc.Memo)
	}
	if doc.Run.Phase != "detached" {
		t.Fatalf("run.phase = %q, want detached", doc.Run.Phase)
	}
}

func TestStatuszHTML(t *testing.T) {
	ts := testServer(t, Config{Tool: "caltest"})
	for _, url := range []string{ts.URL + "/statusz?format=html"} {
		code, body, hdr := get(t, url)
		if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/html") {
			t.Fatalf("%s: status %d, content-type %q", url, code, hdr.Get("Content-Type"))
		}
		if !strings.Contains(body, "EventSource") {
			t.Errorf("%s: page has no live stream wiring", url)
		}
	}
	// An Accept: text/html request (a browser) also gets the page.
	req, _ := http.NewRequest("GET", ts.URL+"/statusz", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("browser Accept got %q", resp.Header.Get("Content-Type"))
	}
}

// exploreState is a synthetic 2^width-state transition system: threads
// set bits until all are set. Rich enough branching to keep a bounded
// exploration busy while the watch stream is observed.
type exploreState struct{ n, width int }

func (s exploreState) Key() string { return strconv.Itoa(s.n) }
func (s exploreState) Done() bool  { return s.n == 1<<s.width-1 }
func (s exploreState) Successors() []sched.Succ {
	var out []sched.Succ
	for i := 0; i < s.width; i++ {
		if s.n&(1<<i) == 0 {
			out = append(out, sched.Succ{Thread: i, Label: "set", Next: exploreState{s.n | 1<<i, s.width}})
		}
	}
	return out
}

// TestStatuszWatchSSE pins the acceptance criterion: during a bounded
// exploration, /statusz?watch=1 emits at least two SSE frames carrying
// the live run document.
func TestStatuszWatchSSE(t *testing.T) {
	live := obs.NewLiveRun("caltest")
	ts := testServer(t, Config{Tool: "caltest", Live: live})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Loop bounded explorations until the test is over, so the watch
		// stream observes a live search no matter how fast one pass is.
		for ctx.Err() == nil {
			sched.Explore(ctx, exploreState{width: 16}, //nolint:errcheck // ErrInterrupted expected at cancel
				sched.WithLive(live), sched.WithMaxStates(1<<17))
		}
	}()
	defer func() { cancel(); <-done }()

	resp, err := http.Get(ts.URL + "/statusz?watch=1&interval=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}

	frames := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for frames < 2 {
		select {
		case <-deadline:
			t.Fatalf("only %d SSE frames before deadline", frames)
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed after %d frames: %v", frames, sc.Err())
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var doc Statusz
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &doc); err != nil {
				t.Fatalf("frame %d is not a statusz document: %v\n%s", frames, err, line)
			}
			if doc.Schema != StatuszSchema {
				t.Fatalf("frame schema = %q", doc.Schema)
			}
			frames++
		}
	}
}

func TestStatuszWatchBadInterval(t *testing.T) {
	ts := testServer(t, Config{Tool: "caltest"})
	code, _, _ := get(t, ts.URL+"/statusz?watch=1&interval=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad interval status = %d, want 400", code)
	}
}

func TestFlightz(t *testing.T) {
	fl := obs.NewFlightRecorder(8)
	fl.SearchStart(3)
	fl.NodeExpand(1, 10)
	fl.SearchEnd("OK", 10)
	ts := testServer(t, Config{Tool: "caltest", Flight: fl})

	code, body, hdr := get(t, ts.URL+"/flightz")
	if code != http.StatusOK {
		t.Fatalf("flightz status = %d", code)
	}
	if got := hdr.Get("X-Calgo-Flight-Total"); got != "3" {
		t.Fatalf("flight total header = %q, want 3", got)
	}
	var events []obs.Event
	for i, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not an event: %v\n%s", i, err, line)
		}
		events = append(events, e)
	}
	if len(events) != 3 || events[0].Kind != obs.EvSearchStart || events[2].Verdict != "OK" {
		t.Fatalf("events = %+v", events)
	}

	// Without a recorder the endpoint 404s with advice.
	bare := testServer(t, Config{Tool: "caltest"})
	if code, _, _ := get(t, bare.URL+"/flightz"); code != http.StatusNotFound {
		t.Fatalf("detached flightz status = %d, want 404", code)
	}
}

func TestRunsz(t *testing.T) {
	srv := New(Config{Tool: "caltest"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Empty process: an empty JSON array, not an error.
	code, body, _ := get(t, ts.URL+"/runsz")
	if code != http.StatusOK {
		t.Fatalf("runsz status = %d", code)
	}
	var docs []*runstore.Record
	if err := json.Unmarshal([]byte(body), &docs); err != nil || len(docs) != 0 {
		t.Fatalf("empty runsz = %q (err %v)", body, err)
	}

	rep := render.NewReport("caltest", time.Unix(100, 0))
	rep.Exit = 1
	rep.Runs = []render.Run{{Name: "bad.txt", Verdict: "VIOLATION"}}
	srv.AddReport(rep)
	_, body, _ = get(t, ts.URL+"/runsz")
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Schema != runstore.RecordSchema || docs[0].Kind != runstore.KindReport {
		t.Fatalf("runsz docs = %+v", docs)
	}
	if docs[0].Verdict != "VIOLATION" || docs[0].Tool != "caltest" {
		t.Fatalf("record = %+v", docs[0])
	}
	if docs[0].Report == nil || docs[0].Report.Schema != render.ReportSchema || docs[0].Report.Exit != 1 {
		t.Fatalf("wrapped report = %+v", docs[0].Report)
	}
	if docs[0].Report.Runs[0].Verdict != "VIOLATION" {
		t.Fatalf("run = %+v", docs[0].Report.Runs[0])
	}

	// The filter vocabulary: a verdict nothing has yields an empty set,
	// the verdict the record has yields it back.
	_, body, _ = get(t, ts.URL+"/runsz?verdict=OK")
	if err := json.Unmarshal([]byte(body), &docs); err != nil || len(docs) != 0 {
		t.Fatalf("filtered runsz = %q (err %v)", body, err)
	}
	_, body, _ = get(t, ts.URL+"/runsz?verdict=VIOLATION&tool=caltest&limit=5")
	if err := json.Unmarshal([]byte(body), &docs); err != nil || len(docs) != 1 {
		t.Fatalf("filtered runsz = %q (err %v)", body, err)
	}
	if code, body, _ := get(t, ts.URL+"/runsz?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code %d body %q", code, body)
	}
}

func TestStartClose(t *testing.T) {
	srv := New(Config{Tool: "caltest", Metrics: obs.NewMetrics()})
	if srv.Addr() != nil {
		t.Fatal("Addr before Start must be nil")
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr().String() != addr.String() {
		t.Fatalf("Addr = %v, want %v", srv.Addr(), addr)
	}
	code, _, _ := get(t, fmt.Sprintf("http://%s/metrics", addr))
	if code != http.StatusOK {
		t.Fatalf("metrics over Start status = %d", code)
	}
	// /debug/ delegates to the process-wide mux (pprof, expvar).
	code, body, _ := get(t, fmt.Sprintf("http://%s/debug/vars", addr))
	if code != http.StatusOK || !strings.Contains(body, "cmdline") {
		t.Fatalf("debug/vars status = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal("nil Close must be a no-op")
	}
}

// TestMount pins that mounted handlers are served alongside the builtin
// routes — the hook cmd/cald uses to put the job API on the ops mux.
func TestMount(t *testing.T) {
	srv := New(Config{Tool: "caltest"})
	srv.Mount("/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "mounted")
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body, _ := get(t, ts.URL+"/jobs")
	if code != http.StatusOK || !strings.Contains(body, "mounted") {
		t.Fatalf("mounted route = %d %q", code, body)
	}
	if code, _, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("builtin route lost after Mount: %d", code)
	}
}

// TestShutdownDrainsSSE pins graceful stop: an open /statusz?watch=1
// stream receives a final frame plus a bye event and ends, and Shutdown
// returns instead of hanging on the streaming connection.
func TestShutdownDrainsSSE(t *testing.T) {
	srv := New(Config{Tool: "caltest", Live: obs.NewLiveRun("caltest")})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/statusz?watch=1&interval=10s", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	// Wait for the immediate first frame so the stream is established.
	deadline := time.After(10 * time.Second)
	for established := false; !established; {
		select {
		case <-deadline:
			t.Fatal("no first SSE frame")
		case line := <-lines:
			established = strings.HasPrefix(line, "data: ")
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	sawBye := false
	for line := range lines {
		if line == "event: bye" {
			sawBye = true
		}
	}
	if !sawBye {
		t.Error("watch stream ended without the bye event")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on the streaming connection")
	}

	// Idempotent, and nil-safe.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Fatal("nil Shutdown must be a no-op")
	}
}

func benchDoc(gen string, rate float64) *runstore.Bench {
	return &runstore.Bench{
		GOMAXPROCS: 4, Window: "60ms", Generated: gen,
		Tables: []runstore.BenchTable{{
			ID: "B1", Title: "stack", ColumnLabel: "goroutines", Columns: []int{1},
			Rows: []runstore.BenchRow{{Name: "treiber", OpsPerSec: []float64{rate}}},
		}},
	}
}

func TestQueryz(t *testing.T) {
	store := runstore.NewRing(16, nil)
	for i, gen := range []string{"2026-08-06T00:00:00Z", "2026-08-08T00:00:00Z"} {
		rec := runstore.BenchRecord(fmt.Sprintf("bench-%d", i), benchDoc(gen, float64(100+100*i)))
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	ts := testServer(t, Config{Tool: "caltest", Store: store})

	// Default mode lists records as a calgo.query/v1 document.
	code, body, hdr := get(t, ts.URL+"/queryz")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("queryz = %d %q", code, hdr.Get("Content-Type"))
	}
	var res runstore.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != runstore.QuerySchema || res.Mode != runstore.ModeRuns || res.Total != 2 {
		t.Fatalf("result = %+v", res)
	}

	// Regressions mode computes per-cell deltas: 200 vs 100 = +100%.
	_, body, _ = get(t, ts.URL+"/queryz?mode=regressions")
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.CurrentID != "bench-1" || res.BaselineID != "bench-0" {
		t.Fatalf("picked %s vs %s", res.CurrentID, res.BaselineID)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Pct != 100 {
		t.Fatalf("deltas = %+v", res.Deltas)
	}

	// HTML rendering.
	code, body, hdr = get(t, ts.URL+"/queryz?mode=regressions&format=html")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("html queryz = %d %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{"<table>", "treiber", "+100.0%", "bench-0"} {
		if !strings.Contains(body, want) {
			t.Errorf("html queryz missing %q", want)
		}
	}

	// A bad expression is the client's fault; an unanswerable query
	// (regressions with no baseline) is unprocessable, not a 500.
	if code, _, _ := get(t, ts.URL+"/queryz?mode=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad mode = %d", code)
	}
	empty := testServer(t, Config{Tool: "caltest"})
	if code, _, _ := get(t, empty.URL+"/queryz?mode=regressions"); code != http.StatusUnprocessableEntity {
		t.Errorf("empty regressions = %d", code)
	}
}

// TestRunszFSBackedRestart pins the daemon acceptance path: records
// published before a restart are served by the next server generation
// from the same store directory.
func TestRunszFSBackedRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.OpenFS(dir, runstore.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Tool: "cald", Store: store})
	rep := render.NewReport("cald", time.Unix(500, 0))
	rep.Runs = []render.Run{{Name: "job-1", Verdict: "OK"}}
	srv.AddRecord(&runstore.Record{
		Report: rep,
		Labels: map[string]string{"spec": "register", "mode": "cal"},
	})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same directory, a fresh server.
	store2, err := runstore.OpenFS(dir, runstore.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ts := httptest.NewServer(New(Config{Tool: "cald", Store: store2}).Handler())
	defer ts.Close()
	_, body, _ := get(t, ts.URL+"/runsz?tool=cald&label=spec:register")
	var recs []*runstore.Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Verdict != "OK" || recs[0].Labels["mode"] != "cal" {
		t.Fatalf("pre-restart records = %+v", recs)
	}
	if recs[0].Report == nil || recs[0].Report.Runs[0].Name != "job-1" {
		t.Fatalf("wrapped report = %+v", recs[0].Report)
	}
}

// TestRunszEvictionMetric pins the satellite: the default ring bounds
// the formerly unbounded report slice and counts evictions on
// /metrics as calgo_runstore_evicted_total.
func TestRunszEvictionMetric(t *testing.T) {
	m := obs.NewMetrics()
	store := runstore.NewRing(2, m)
	srv := New(Config{Tool: "caltest", Metrics: m, Store: store})
	for i := 0; i < 5; i++ {
		rep := render.NewReport("caltest", time.Unix(int64(600+i), 0))
		srv.AddReport(rep)
	}
	if store.Len() != 2 {
		t.Fatalf("store len = %d", store.Len())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "calgo_runstore_evicted_total 3") {
		t.Fatalf("metrics missing eviction counter:\n%s", body)
	}
}

// TestBuildInfoSurfaces pins the version-identity satellite: the same
// build identity appears as the labeled calgo_build_info gauge on
// /metrics and as version/go_version on /statusz.
func TestBuildInfoSurfaces(t *testing.T) {
	m := obs.NewMetrics()
	ts := testServer(t, Config{Tool: "caltest", Metrics: m})

	_, body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "calgo_build_info{") || !strings.Contains(body, `go_version="`+runtime.Version()+`"`) {
		t.Fatalf("metrics missing build_info gauge:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE calgo_build_info gauge") {
		t.Fatalf("build_info family untyped:\n%s", body)
	}

	_, body, _ = get(t, ts.URL+"/statusz")
	var doc Statusz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GoVersion != runtime.Version() || doc.Version == "" {
		t.Fatalf("statusz identity = %q/%q", doc.Version, doc.GoVersion)
	}
}

// TestRunszClampsResults pins the server-side bound: an unbounded
// /runsz request returns at most MaxResults records (newest kept).
func TestRunszClampsResults(t *testing.T) {
	store := runstore.NewRing(32, nil)
	for i := 0; i < 10; i++ {
		rec := &runstore.Record{Tool: "caltest", TimeNS: time.Unix(int64(700+i), 0).UnixNano(),
			Report: render.NewReport("caltest", time.Unix(int64(700+i), 0))}
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	ts := testServer(t, Config{Tool: "caltest", Store: store, MaxResults: 3})
	_, body, _ := get(t, ts.URL+"/runsz")
	var recs []*runstore.Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].TimeNS != time.Unix(709, 0).UnixNano() {
		t.Fatalf("clamped runsz = %d records (newest %v)", len(recs), recs)
	}
	// An explicit limit over the bound is clamped too; under it, honored.
	_, body, _ = get(t, ts.URL+"/runsz?limit=100")
	if err := json.Unmarshal([]byte(body), &recs); err != nil || len(recs) != 3 {
		t.Fatalf("limit=100 got %d records (err %v)", len(recs), err)
	}
	_, body, _ = get(t, ts.URL+"/runsz?limit=2")
	if err := json.Unmarshal([]byte(body), &recs); err != nil || len(recs) != 2 {
		t.Fatalf("limit=2 got %d records (err %v)", len(recs), err)
	}
}

// TestStoreAPIMountedOnOps pins the tentpole wiring: every ops server
// speaks calgo.storeapi/v1 under /storeapi/, so any serving tool is a
// federation backend.
func TestStoreAPIMountedOnOps(t *testing.T) {
	store := runstore.NewRing(8, nil)
	srv := New(Config{Tool: "caltest", Store: store})
	srv.AddReport(render.NewReport("caltest", time.Unix(800, 0)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remote, err := runstore.OpenRemote(ts.URL, runstore.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := remote.Len(); n != 1 {
		t.Fatalf("remote Len over ops mux = %d", n)
	}
	recs, err := remote.List(runstore.Filter{Tool: "caltest"})
	if err != nil || len(recs) != 1 {
		t.Fatalf("remote List over ops mux = %v (err %v)", recs, err)
	}
	rec := &runstore.Record{Tool: "calbench", Kind: runstore.KindBench,
		Bench: benchDoc("2026-08-08T00:00:00Z", 100)}
	if err := remote.Put(rec); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("backing store Len = %d after remote put", store.Len())
	}
}

// TestQueryzFleet pins /queryz?fleet=1: the query fans out over the
// configured federation, carries per-record origins, degrades honestly
// with a shard down, and 404s with advice when no fleet is configured.
func TestQueryzFleet(t *testing.T) {
	shardA := runstore.NewRing(8, nil)
	if err := shardA.Put(&runstore.Record{Tool: "cald", Verdict: "VIOLATION",
		TimeNS: time.Unix(900, 0).UnixNano(),
		Report: render.NewReport("cald", time.Unix(900, 0))}); err != nil {
		t.Fatal(err)
	}
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()
	dead, err := runstore.OpenRemote(deadURL, runstore.RemoteOptions{
		Retries: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fleet := runstore.NewFederated([]runstore.StoreTarget{
		{Name: "a", Store: shardA},
		{Name: "dead", Store: dead},
	}, runstore.FederatedOptions{})
	ts := testServer(t, Config{Tool: "cald", Fleet: fleet})

	code, body, _ := get(t, ts.URL+"/queryz?fleet=1")
	if code != http.StatusOK {
		t.Fatalf("fleet queryz = %d: %s", code, body)
	}
	var res runstore.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Targets) != 2 {
		t.Fatalf("fleet result = %+v", res)
	}
	if len(res.Runs) != 1 || res.Runs[0].Labels["origin"] != "a" {
		t.Fatalf("fleet rows = %+v", res.Runs)
	}

	// The HTML view carries the degraded banner and the target list.
	code, body, hdr := get(t, ts.URL+"/queryz?fleet=1&format=html")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("fleet html = %d %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{"DEGRADED", "dead", "ERROR"} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet html missing %q", want)
		}
	}

	// Without -fleet the parameter is advice, not a 500.
	bare := testServer(t, Config{Tool: "cald"})
	if code, body, _ := get(t, bare.URL+"/queryz?fleet=1"); code != http.StatusNotFound || !strings.Contains(body, "-fleet") {
		t.Fatalf("fleetless queryz = %d %q", code, body)
	}
}
