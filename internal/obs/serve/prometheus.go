package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/obs"
)

// promNamePrefix namespaces every exported metric; the registry's dotted
// names ("check.memo_hits") become Prometheus names
// ("calgo_check_memo_hits") under it.
const promNamePrefix = "calgo_"

// promName mangles a registry metric name into a legal Prometheus metric
// name: the calgo_ prefix plus the original name with every character
// outside [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamePrefix) + len(name))
	b.WriteString(promNamePrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// the power-of-two histograms as cumulative le-bucketed native
// Prometheus histograms. Families are emitted in sorted name order so
// two snapshots of the same state render identically.
func WritePrometheus(w io.Writer, s obs.Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s calgo counter %q\n# TYPE %s counter\n%s %d\n",
			p, n, p, p, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s calgo gauge %q\n# TYPE %s gauge\n%s %d\n",
			p, n, p, p, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s calgo histogram %q (power-of-two buckets)\n# TYPE %s histogram\n",
			p, n, p); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				p, strconv.FormatInt(b.Le, 10), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}
