package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"calgo/internal/obs"
)

// promNamePrefix namespaces every exported metric; the registry's dotted
// names ("check.memo_hits") become Prometheus names
// ("calgo_check_memo_hits") under it.
const promNamePrefix = "calgo_"

// promName mangles a registry metric name into a legal Prometheus metric
// name: the calgo_ prefix plus the original name with every character
// outside [a-zA-Z0-9_:] replaced by '_'. A label block — everything
// from the first '{' on, as written by obs.SetBuildInfo — passes
// through verbatim; only the name before it is mangled.
func promName(name string) string {
	base, labels, labeled := strings.Cut(name, "{")
	var b strings.Builder
	b.Grow(len(promNamePrefix) + len(name))
	b.WriteString(promNamePrefix)
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if labeled {
		b.WriteByte('{')
		b.WriteString(labels)
	}
	return b.String()
}

// promFamily splits an exposed name into its family (the HELP/TYPE
// name) and the label block ("" when unlabeled).
func promFamily(p string) (family, labels string) {
	if i := strings.IndexByte(p, '{'); i >= 0 {
		return p[:i], p[i:]
	}
	return p, ""
}

// promSuffix appends a family suffix ("_total") before any label block.
func promSuffix(p, suffix string) string {
	family, labels := promFamily(p)
	return family + suffix + labels
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// the power-of-two histograms as cumulative le-bucketed native
// Prometheus histograms. Families are emitted in sorted name order so
// two snapshots of the same state render identically.
func WritePrometheus(w io.Writer, s obs.Snapshot) error {
	seen := map[string]bool{} // families with HELP/TYPE already emitted
	header := func(family, kind, rawName string) error {
		if seen[family] {
			return nil
		}
		seen[family] = true
		base, _, _ := strings.Cut(rawName, "{")
		_, err := fmt.Fprintf(w, "# HELP %s calgo %s %q\n# TYPE %s %s\n",
			family, kind, base, family, kind)
		return err
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promSuffix(promName(n), "_total")
		family, _ := promFamily(p)
		if err := header(family, "counter", n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", p, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		family, _ := promFamily(p)
		if err := header(family, "gauge", n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", p, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s calgo histogram %q (power-of-two buckets)\n# TYPE %s histogram\n",
			p, n, p); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				p, strconv.FormatInt(b.Le, 10), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}
