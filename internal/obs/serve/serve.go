// Package serve is the library's embedded HTTP ops server: a
// zero-dependency live window into a running check or exploration. Any
// CLI or library caller attaches it to the process's obs instruments and
// gets
//
//	/metrics   Prometheus text exposition of the obs.Metrics registry
//	/statusz   live run status (JSON, HTML, or SSE with ?watch=1)
//	/flightz   the flight-recorder ring as JSON lines
//	/runsz     completed run records (calgo.run/v1) from the run-history
//	           store, filterable by ?tool=&verdict=&since=&limit=
//	/queryz    run-history queries (calgo.query/v1): record listings and
//	           per-cell bench regressions, as JSON or an HTML table
//	/debug/    the standard pprof and expvar handlers
//
// The server only reads the instruments it is given — the search hot
// paths stay untouched, so a detached server costs nothing and an
// attached one costs exactly what the instruments already cost.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	_ "net/http/pprof" // mount /debug/pprof on http.DefaultServeMux
	"runtime"
	"strings"
	"sync"
	"time"

	"calgo/internal/obs"
	"calgo/internal/render"
	"calgo/internal/runstore"
)

// StatuszSchema versions the /statusz JSON document; the shape is
// specified in EXPERIMENTS.md ("Live ops endpoints").
const StatuszSchema = "calgo.statusz/v1"

// Config wires a Server to the process's observability instruments. Any
// field may be nil/empty: the corresponding endpoint degrades gracefully
// (empty metrics page, detached status, 404 flight recorder).
type Config struct {
	// Tool is the owning CLI's name, stamped on /statusz.
	Tool string
	// Metrics backs /metrics and the memo/runtime sections of /statusz.
	Metrics *obs.Metrics
	// Flight backs /flightz.
	Flight *obs.FlightRecorder
	// Live backs the run section of /statusz.
	Live *obs.LiveRun
	// Store backs /runsz and /queryz. Nil gets a bounded in-memory ring
	// (runstore.DefaultRingCapacity records, evictions counted on
	// runstore.evicted), so a long-lived process can no longer grow its
	// report slice without limit; daemons pass a durable filesystem
	// store here to serve pre-restart history. The store is also served
	// over the calgo.storeapi/v1 protocol under /storeapi/, making the
	// process a remote backend for runstore.Remote clients.
	Store runstore.Store
	// Fleet, when set (cald -fleet), backs /queryz?fleet=1: the same
	// query evaluated across the federation, with the degraded-result
	// contract of EXPERIMENTS.md ("Fleet observability").
	Fleet runstore.Store
	// MaxResults clamps /runsz, /queryz and storeapi listings
	// server-side (default runstore.DefaultMaxList; < 0 disables), so
	// an unbounded query cannot wedge an ops goroutine serializing the
	// whole history.
	MaxResults int
}

// Server is the ops endpoint. Construct with New, mount Handler on any
// mux or call Start to listen. Shutdown stops a started listener
// gracefully — in-flight requests finish and SSE watchers are drained
// with a final frame — while Close severs everything at once.
type Server struct {
	cfg Config

	store              runstore.Store
	version, goVersion string

	mu     sync.Mutex
	runs   []render.Run
	notes  []string
	mounts map[string]http.Handler

	srv *http.Server
	ln  net.Listener

	// closing is closed by Shutdown/Close; long-lived handlers (the
	// /statusz SSE watchers) select on it so a graceful stop is not held
	// hostage by connected clients.
	closing   chan struct{}
	closeOnce sync.Once
}

// New returns an unstarted server over the given instruments. The
// registry (when present) gains the conventional build_info gauge, so
// /metrics and /statusz report the same version identity fleet-wide.
func New(cfg Config) *Server {
	st := cfg.Store
	if st == nil {
		st = runstore.NewRing(runstore.DefaultRingCapacity, cfg.Metrics)
	}
	if cfg.MaxResults == 0 {
		cfg.MaxResults = runstore.DefaultMaxList
	}
	version, goVersion := obs.BuildInfo()
	cfg.Metrics.SetBuildInfo(version, goVersion)
	return &Server{
		cfg: cfg, store: st, closing: make(chan struct{}),
		version: version, goVersion: goVersion,
	}
}

// Store returns the run-history store backing /runsz and /queryz.
func (s *Server) Store() runstore.Store {
	if s == nil {
		return nil
	}
	return s.store
}

// Mount registers an additional handler on the ops mux under the given
// pattern (http.ServeMux syntax), so subsystems like the cald job API
// share the ops surface (and its lifecycle) instead of running a second
// server. Call before Handler or Start.
func (s *Server) Mount(pattern string, h http.Handler) {
	if s == nil || h == nil {
		return
	}
	s.mu.Lock()
	if s.mounts == nil {
		s.mounts = make(map[string]http.Handler)
	}
	s.mounts[pattern] = h
	s.mu.Unlock()
}

// AddRun records a completed run summary, shown on /statusz.
func (s *Server) AddRun(r render.Run) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.runs = append(s.runs, r)
	s.mu.Unlock()
}

// AddNote records a free-form note, shown on /statusz.
func (s *Server) AddNote(note string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.notes = append(s.notes, note)
	s.mu.Unlock()
}

// AddReport publishes a completed calgo.report/v1 document on /runsz,
// wrapped as a run record in the backing store (which bounds or
// persists it according to the backend).
func (s *Server) AddReport(r *render.Report) {
	if s == nil || r == nil {
		return
	}
	s.AddRecord(&runstore.Record{Tool: r.Tool, Kind: runstore.KindReport, Report: r})
}

// AddRecord publishes a run record (with caller-chosen labels) on
// /runsz via the backing store.
func (s *Server) AddRecord(rec *runstore.Record) {
	if s == nil || rec == nil {
		return
	}
	_ = s.store.Put(rec) // the store logs/counts its own failures
}

// Handler returns the ops mux, mountable on any http server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/flightz", s.handleFlightz)
	mux.HandleFunc("/runsz", s.handleRunsz)
	mux.HandleFunc("/queryz", s.handleQueryz)
	// The run-history store doubles as a calgo.storeapi/v1 remote
	// backend: any process serving these endpoints can be a federation
	// target.
	mux.Handle(runstore.StoreAPIPrefix+"/", runstore.NewAPI(s.store, runstore.APIOptions{
		MaxList: s.cfg.MaxResults,
	}))
	// Delegate /debug/ to the process-wide mux: net/http/pprof and
	// expvar register there on import.
	mux.Handle("/debug/", http.DefaultServeMux)
	s.mu.Lock()
	for pattern, h := range s.mounts {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// the ops mux until Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := s.Handler() // before the lock: Handler snapshots mounts under s.mu
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	srv := s.srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve always returns non-nil on Close
	return ln.Addr(), nil
}

// Addr returns the bound address, or nil before Start.
func (s *Server) Addr() net.Addr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops a started server gracefully: new connections are
// refused, watch streams are drained with a final frame and a bye
// event, and in-flight requests get until ctx's deadline to complete
// before being severed. Safe to call on an unstarted or nil server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.closing) })
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		// The deadline expired with handlers still running; sever them.
		return srv.Close()
	}
	return nil
}

// Close stops a started server, severing open watch streams. Safe to
// call on an unstarted or nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.closing) })
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><title>calgo ops: %[1]s</title>
<h1>calgo ops — %[1]s</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/statusz">/statusz</a> — live run status (JSON; <a href="/statusz?format=html">HTML</a>, <a href="/statusz?watch=1">SSE</a>)</li>
<li><a href="/flightz">/flightz</a> — flight-recorder ring (JSON lines)</li>
<li><a href="/runsz">/runsz</a> — completed run records (?tool=&amp;verdict=&amp;since=&amp;limit=)</li>
<li><a href="/queryz">/queryz</a> — run-history queries (<a href="/queryz?mode=regressions&amp;format=html">regressions</a>; ?fleet=1 with -fleet)</li>
<li><a href="/storeapi/v1/records">/storeapi/v1/records</a> — calgo.storeapi/v1 remote-store protocol</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiles</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
</ul>
`, html.EscapeString(s.cfg.Tool))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.cfg.Metrics.Snapshot()) //nolint:errcheck // client gone
}

// MemoStatus summarizes memoization effectiveness for /statusz.
type MemoStatus struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// RuntimeStatus is the point-in-time runtime health section of /statusz.
type RuntimeStatus struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

// RunSummary is one completed run on /statusz (name + verdict only; the
// full evidence lives in the /runsz report).
type RunSummary struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
}

// Statusz is the /statusz JSON document.
type Statusz struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	// Version/GoVersion mirror the build_info gauge's labels, so fleet
	// tooling can correlate regressions with daemon versions from
	// either surface.
	Version   string         `json:"version,omitempty"`
	GoVersion string         `json:"go_version,omitempty"`
	Run       obs.LiveStatus `json:"run"`
	Memo      *MemoStatus    `json:"memo,omitempty"`
	Runtime   RuntimeStatus  `json:"runtime"`
	Runs      []RunSummary   `json:"runs,omitempty"`
	Notes     []string       `json:"notes,omitempty"`
}

// statusz assembles the current document.
func (s *Server) statusz() Statusz {
	doc := Statusz{
		Schema: StatuszSchema, Tool: s.cfg.Tool,
		Version: s.version, GoVersion: s.goVersion,
		Run: s.cfg.Live.Status(),
	}
	if doc.Run.Tool == "" {
		doc.Run.Tool = s.cfg.Tool
	}
	snap := s.cfg.Metrics.Snapshot()
	hits, misses := snap.Counters["check.memo_hits"], snap.Counters["check.memo_misses"]
	if hits+misses > 0 {
		doc.Memo = &MemoStatus{Hits: hits, Misses: misses,
			HitRate: float64(hits) / float64(hits+misses)}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	doc.Runtime = RuntimeStatus{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		NumGC:          ms.NumGC,
	}
	s.mu.Lock()
	for _, r := range s.runs {
		doc.Runs = append(doc.Runs, RunSummary{Name: r.Name, Verdict: r.Verdict, Detail: r.Detail})
	}
	doc.Notes = append(doc.Notes, s.notes...)
	s.mu.Unlock()
	return doc
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Query().Get("watch") != "":
		s.watchStatusz(w, r)
	case r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")):
		s.htmlStatusz(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.statusz()) //nolint:errcheck // client gone
	}
}

// watchInterval bounds the SSE frame rate: default 1s, floor 50ms so a
// hostile ?interval can't melt the process.
const (
	defaultWatchInterval = time.Second
	minWatchInterval     = 50 * time.Millisecond
)

// watchStatusz streams the statusz document over Server-Sent Events: an
// immediate frame, then one per interval until the client goes away or
// the server closes.
func (s *Server) watchStatusz(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	interval := defaultWatchInterval
	if iv := r.URL.Query().Get("interval"); iv != "" {
		d, err := time.ParseDuration(iv)
		if err != nil {
			http.Error(w, "bad interval: "+err.Error(), http.StatusBadRequest)
			return
		}
		interval = d
	}
	if interval < minWatchInterval {
		interval = minWatchInterval
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	emit := func() bool {
		b, err := json.Marshal(s.statusz())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit() {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Graceful stop: hand the watcher one last frame and an
			// explicit bye event, then end the stream so Shutdown's drain
			// completes instead of waiting on connected clients.
			emit()
			fmt.Fprint(w, "event: bye\ndata: {}\n\n")
			fl.Flush()
			return
		case <-t.C:
			if !emit() {
				return
			}
		}
	}
}

// htmlStatusz serves a self-contained page that renders the watch
// stream: a live-updating view with zero external assets.
func (s *Server) htmlStatusz(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><title>statusz: %[1]s</title>
<style>body{font-family:monospace;margin:2em}#s{white-space:pre}</style>
<h1>statusz — %[1]s</h1><div id="s">connecting…</div>
<script>
new EventSource("/statusz?watch=1&interval=1s").onmessage = function (e) {
  document.getElementById("s").textContent =
    JSON.stringify(JSON.parse(e.data), null, 2);
};
</script>
`, html.EscapeString(s.cfg.Tool))
}

func (s *Server) handleFlightz(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Flight == nil {
		http.Error(w, "no flight recorder attached (run with -trace or -report)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Calgo-Flight-Total", fmt.Sprint(s.cfg.Flight.Total()))
	enc := json.NewEncoder(w)
	for _, e := range s.cfg.Flight.Events() {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

// clampLimit applies the server-side result bound: unbounded (0) or
// over-bound requests are pulled down to MaxResults, so a slow or
// unbounded query cannot wedge an ops goroutine.
func (s *Server) clampLimit(requested int) int {
	if s.cfg.MaxResults < 0 {
		return requested
	}
	if requested == 0 || requested > s.cfg.MaxResults {
		return s.cfg.MaxResults
	}
	return requested
}

// handleRunsz serves the run records as a JSON array, filterable by
// ?tool=&verdict=&kind=&since=&until=&limit= (and repeatable
// ?label=key:value selectors), newest Limit kept — clamped at the
// server's MaxResults. The listing honors request cancellation: a
// client that goes away stops the scan.
func (s *Server) handleRunsz(w http.ResponseWriter, r *http.Request) {
	q, err := runstore.QueryFromValues(r.URL.Query(), time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f := q.Filter
	f.Limit = s.clampLimit(f.Limit)
	records, err := runstore.ListContext(r.Context(), s.store, f)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		http.Error(w, "runstore: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if records == nil {
		records = []*runstore.Record{} // an empty store is [], not null
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(records) //nolint:errcheck // client gone
}

// handleQueryz answers run-history queries (calgo.query/v1): record
// listings (?mode=runs, the default) and per-cell bench regressions
// (?mode=regressions&baseline=&table=&top=), as JSON or, with
// ?format=html, a self-contained HTML table. With ?fleet=1 (and a
// configured federation) the query runs across every fleet target
// instead of the local store, degrading honestly when shards are down.
// Limits are clamped at the server's MaxResults, and evaluation stops
// when the client goes away.
func (s *Server) handleQueryz(w http.ResponseWriter, r *http.Request) {
	q, err := runstore.QueryFromValues(r.URL.Query(), time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q.Limit = s.clampLimit(q.Limit)
	q.Top = s.clampLimit(q.Top)
	target := s.store
	if r.URL.Query().Get("fleet") != "" {
		if s.cfg.Fleet == nil {
			http.Error(w, "no fleet configured (start with -fleet)", http.StatusNotFound)
			return
		}
		target = s.cfg.Fleet
	}
	res, err := runstore.RunContext(r.Context(), target, q)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		http.Error(w, "runstore: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")) {
		s.htmlQueryz(w, res)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(res) //nolint:errcheck // client gone
}

// htmlQueryz renders a query result as a zero-asset HTML table.
func (s *Server) htmlQueryz(w http.ResponseWriter, res *runstore.Result) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><title>queryz: %[1]s</title>
<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}
td,th{border:1px solid #999;padding:.2em .6em;text-align:left}td.n{text-align:right}</style>
<h1>queryz — %[1]s (%[2]s)</h1>
`, html.EscapeString(s.cfg.Tool), html.EscapeString(res.Mode))
	if len(res.Targets) > 0 {
		if res.Degraded {
			fmt.Fprint(w, "<p><strong>DEGRADED</strong> — partial results; some fleet targets failed:</p>\n")
		} else {
			fmt.Fprintf(w, "<p>fleet query across %d target(s)</p>\n", len(res.Targets))
		}
		fmt.Fprint(w, "<ul>\n")
		for _, tr := range res.Targets {
			if tr.Error != "" {
				fmt.Fprintf(w, "<li><code>%s</code>: ERROR: %s</li>\n",
					html.EscapeString(tr.Target), html.EscapeString(tr.Error))
			} else {
				fmt.Fprintf(w, "<li><code>%s</code>: %d record(s)</li>\n",
					html.EscapeString(tr.Target), tr.Records)
			}
		}
		fmt.Fprint(w, "</ul>\n")
	}
	if res.Mode == runstore.ModeRegressions {
		if len(res.Targets) == 0 {
			fmt.Fprintf(w, "<p>current <code>%s</code> (%s) vs baseline <code>%s</code> (%s); %d comparable cells, %d skipped</p>\n",
				html.EscapeString(res.CurrentID), html.EscapeString(res.CurrentTime),
				html.EscapeString(res.BaselineID), html.EscapeString(res.BaselineTime),
				res.Total, res.Skipped)
		}
		fmt.Fprint(w, "<table><tr><th>table</th><th>row</th><th>column</th><th>base</th><th>current</th><th>delta</th><th>origin</th></tr>\n")
		for _, d := range res.Deltas {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td class=n>%d</td><td class=n>%.0f</td><td class=n>%.0f</td><td class=n>%+.1f%%</td><td>%s</td></tr>\n",
				html.EscapeString(d.Table), html.EscapeString(d.Row), d.Column, d.Base, d.Cur, d.Pct,
				html.EscapeString(d.Origin))
		}
		fmt.Fprint(w, "</table>\n")
		return
	}
	fmt.Fprintf(w, "<p>%d matching record(s)</p>\n<table><tr><th>id</th><th>time</th><th>tool</th><th>kind</th><th>verdict</th><th>detail</th></tr>\n", res.Total)
	for _, run := range res.Runs {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(run.ID), html.EscapeString(run.Time), html.EscapeString(run.Tool),
			html.EscapeString(run.Kind), html.EscapeString(run.Verdict), html.EscapeString(run.Detail))
	}
	fmt.Fprint(w, "</table>\n")
}
