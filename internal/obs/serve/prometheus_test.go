package serve

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"calgo/internal/obs"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"check.memo_hits":    "calgo_check_memo_hits",
		"sched.states":       "calgo_sched_states",
		"go.heap-alloc":      "calgo_go_heap_alloc",
		"weird name/§":       "calgo_weird_name__",
		"a:b":                "calgo_a:b",
		"check.element_size": "calgo_check_element_size",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// metricNameRe is the Prometheus metric-name grammar.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// sampleRe matches one exposition sample line: name, optional label
// block, value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+]+|\+Inf)$`)

// labelBlockRe validates a label block: comma-separated
// name="escaped-value" pairs.
var labelBlockRe = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$`)

// leRe extracts a histogram bucket's le value.
var leRe = regexp.MustCompile(`^\{le="([^"]+)"\}$`)

// parseExposition is a strict text-exposition v0.0.4 parser for the
// subset WritePrometheus emits. It fails the test on malformed lines,
// samples without a preceding TYPE, or non-cumulative histograms, and
// returns the parsed samples keyed by "name{le}".
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	types := map[string]string{} // family -> counter|gauge|histogram
	samples := map[string]float64{}
	lastBucket := map[string]float64{} // family -> last cumulative value

	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && types[f] == "histogram" {
				return f
			}
		}
		return name
	}

	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		lineno := i + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || !metricNameRe.MatchString(parts[2]) {
				t.Fatalf("line %d: malformed HELP: %q", lineno, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 || !metricNameRe.MatchString(parts[2]) {
				t.Fatalf("line %d: malformed TYPE: %q", lineno, line)
			}
			typ := parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", lineno, typ)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", lineno, parts[2])
			}
			types[parts[2]] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment form: %q", lineno, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", lineno, line)
			}
			name, block := m[1], m[2]
			if block != "" && !labelBlockRe.MatchString(block) {
				t.Fatalf("line %d: malformed label block %q", lineno, block)
			}
			le := ""
			if lm := leRe.FindStringSubmatch(block); lm != nil {
				le = lm[1]
			}
			fam := family(name)
			typ, ok := types[fam]
			if !ok {
				t.Fatalf("line %d: sample %q has no TYPE", lineno, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter %q without _total suffix", lineno, name)
			}
			var v float64
			if m[3] == "+Inf" {
				t.Fatalf("line %d: +Inf is a label value, not a sample value: %q", lineno, line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", lineno, m[3], err)
			}
			if strings.HasSuffix(name, "_bucket") && typ == "histogram" {
				if v < lastBucket[fam] {
					t.Fatalf("line %d: histogram %q buckets not cumulative: %v < %v",
						lineno, fam, v, lastBucket[fam])
				}
				lastBucket[fam] = v
			}
			key := name
			switch {
			case le != "":
				key = name + "{le=" + le + "}"
			case block != "":
				key = name + block
			}
			if _, dup := samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %q", lineno, key)
			}
			samples[key] = v
		}
	}
	return samples
}

// TestWritePrometheusValid pins the acceptance criterion: the /metrics
// payload is valid Prometheus text exposition, parsed by this test's
// strict reader.
func TestWritePrometheusValid(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("check.states").Add(42)
	m.Counter("check.memo_hits").Add(7)
	m.Gauge("check.frontier_depth").Set(5)
	m.Gauge("go.heap_alloc_bytes").Set(123456)
	h := m.Histogram("check.element_size")
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	h.Observe(100)

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseExposition(t, text)

	if got := samples["calgo_check_states_total"]; got != 42 {
		t.Errorf("states counter = %v, want 42", got)
	}
	if got := samples["calgo_check_frontier_depth"]; got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	// Histogram: buckets cumulative, +Inf == count, sum exact.
	if got := samples[`calgo_check_element_size_bucket{le=1}`]; got != 1 {
		t.Errorf("le=1 bucket = %v, want 1", got)
	}
	if got := samples[`calgo_check_element_size_bucket{le=3}`]; got != 3 {
		t.Errorf("le=3 bucket = %v, want cumulative 3", got)
	}
	if got := samples[`calgo_check_element_size_bucket{le=+Inf}`]; got != 4 {
		t.Errorf("+Inf bucket = %v, want 4", got)
	}
	if samples["calgo_check_element_size_sum"] != 105 || samples["calgo_check_element_size_count"] != 4 {
		t.Errorf("sum/count = %v/%v, want 105/4",
			samples["calgo_check_element_size_sum"], samples["calgo_check_element_size_count"])
	}

	// Deterministic: a second render of the same snapshot is identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("exposition not deterministic across renders")
	}
}

// TestWritePrometheusBuildInfo pins the labeled build_info gauge: the
// label block survives name mangling, the HELP/TYPE family is the bare
// name, and the sample still parses under the strict reader.
func TestWritePrometheusBuildInfo(t *testing.T) {
	m := obs.NewMetrics()
	m.SetBuildInfo("abc123def456", "go1.99.7")

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	key := `calgo_build_info{go_version="go1.99.7",version="abc123def456"}`
	if got := samples[key]; got != 1 {
		t.Fatalf("build_info sample = %v, want 1 (exposition:\n%s)", got, b.String())
	}
	if !strings.Contains(b.String(), "# TYPE calgo_build_info gauge") {
		t.Errorf("missing unlabeled TYPE family line:\n%s", b.String())
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, obs.NewMetrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty registry rendered %q", b.String())
	}
	// A nil registry's snapshot renders the same way.
	var nilReg *obs.Metrics
	if err := WritePrometheus(&b, nilReg.Snapshot()); err != nil || b.String() != "" {
		t.Fatalf("nil registry rendered %q (err %v)", b.String(), err)
	}
}

func ExampleWritePrometheus() {
	m := obs.NewMetrics()
	m.Counter("check.states").Add(3)
	var b strings.Builder
	WritePrometheus(&b, m.Snapshot())
	fmt.Print(b.String())
	// Output:
	// # HELP calgo_check_states_total calgo counter "check.states"
	// # TYPE calgo_check_states_total counter
	// calgo_check_states_total 3
}
