package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind names one search occurrence.
type EventKind uint8

const (
	// EvSearchStart opens a search; Arg is the problem size (operations
	// for the checker, client threads for the explorer).
	EvSearchStart EventKind = iota + 1
	// EvNodeExpand records one search node expanded; Depth is the
	// linearization depth (checker) or schedule depth (explorer), Arg the
	// running state count.
	EvNodeExpand
	// EvMemoHit records a node pruned by memoization; Depth as above.
	EvMemoHit
	// EvElementAdmit records a CA-element accepted by the specification;
	// Depth is the linearization depth before the element, Arg its size.
	EvElementAdmit
	// EvBacktrack records an admitted element being undone after its
	// subtree failed; Depth and Arg mirror the matching EvElementAdmit.
	EvBacktrack
	// EvSearchEnd closes a search; Arg is the total state count and Verdict
	// the outcome ("Sat", "Unsat", "Unknown" — or "ok"/"violation" for the
	// explorer).
	EvSearchEnd
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EvSearchStart:
		return "SearchStart"
	case EvNodeExpand:
		return "NodeExpand"
	case EvMemoHit:
		return "MemoHit"
	case EvElementAdmit:
		return "ElementAdmit"
	case EvBacktrack:
		return "Backtrack"
	case EvSearchEnd:
		return "SearchEnd"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one traced search occurrence. Events are small values passed
// by value: emitting one allocates nothing.
type Event struct {
	// Seq is the 1-based sequence number assigned by the receiving
	// tracer, totally ordering the events it retained.
	Seq uint64 `json:"seq"`
	// Kind is the occurrence type.
	Kind EventKind `json:"-"`
	// Depth is the search depth the event occurred at (see EventKind).
	Depth int `json:"depth"`
	// Arg is the kind-specific payload (see EventKind).
	Arg int64 `json:"arg"`
	// Verdict is set on EvSearchEnd only.
	Verdict string `json:"verdict,omitempty"`
}

// MarshalJSON renders the event with the kind spelled out.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event // avoid recursing into this method
	return json.Marshal(struct {
		Kind string `json:"ev"`
		alias
	}{Kind: e.Kind.String(), alias: alias(e)})
}

// UnmarshalJSON parses the wire form MarshalJSON produces, mapping the
// "ev" kind name back onto the EventKind. Unrecognized kind names decode
// to the zero kind rather than failing, so newer producers stay readable.
func (e *Event) UnmarshalJSON(b []byte) error {
	type alias Event
	var aux struct {
		Kind string `json:"ev"`
		alias
	}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	*e = Event(aux.alias)
	e.Kind = kindFromString(aux.Kind)
	return nil
}

func kindFromString(s string) EventKind {
	for k := EvSearchStart; k <= EvSearchEnd; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// String renders the event as one human-readable line.
func (e Event) String() string {
	switch e.Kind {
	case EvSearchEnd:
		return fmt.Sprintf("#%d %s depth=%d states=%d verdict=%s", e.Seq, e.Kind, e.Depth, e.Arg, e.Verdict)
	case EvElementAdmit, EvBacktrack:
		return fmt.Sprintf("#%d %s depth=%d size=%d", e.Seq, e.Kind, e.Depth, e.Arg)
	default:
		return fmt.Sprintf("#%d %s depth=%d arg=%d", e.Seq, e.Kind, e.Depth, e.Arg)
	}
}

// Tracer receives span-style hooks from a search. A search brackets its
// run in SearchStart/SearchEnd and reports node expansions, memoization
// hits, admitted CA-elements and backtracks in between; ElementAdmit and
// Backtrack calls are balanced for every element that does not end up on
// the accepting path. Implementations must be safe for concurrent use:
// the parallel explorer emits from every worker.
//
// Hot paths guard every hook site with a nil-interface check, so a nil
// Tracer (the default) costs one predictable branch and zero
// allocations.
type Tracer interface {
	SearchStart(size int)
	NodeExpand(depth int, states int64)
	MemoHit(depth int)
	ElementAdmit(depth, size int)
	Backtrack(depth, size int)
	SearchEnd(verdict string, states int64)
}

// FlightRecorder is a fixed-capacity ring buffer of the most recent
// search events — a post-mortem instrument: run the search with it
// attached, and when the verdict is surprising (Unsat, Unknown) dump the
// tail of the search that led there. Retaining only the last N events
// keeps memory constant no matter how large the search was.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64 // events ever emitted; ring holds the trailing len(ring)
}

// DefaultFlightEvents is the ring capacity used by the CLIs' -trace flag.
const DefaultFlightEvents = 256

// NewFlightRecorder returns a recorder retaining the last n events
// (n < 1 panics: a recorder that can hold nothing is a call-site bug).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		panic(fmt.Sprintf("obs: NewFlightRecorder capacity %d < 1", n))
	}
	return &FlightRecorder{ring: make([]Event, 0, n)}
}

func (f *FlightRecorder) record(e Event) {
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[(f.seq-1)%uint64(cap(f.ring))] = e
	}
	f.mu.Unlock()
}

// SearchStart implements Tracer.
func (f *FlightRecorder) SearchStart(size int) {
	f.record(Event{Kind: EvSearchStart, Arg: int64(size)})
}

// NodeExpand implements Tracer.
func (f *FlightRecorder) NodeExpand(depth int, states int64) {
	f.record(Event{Kind: EvNodeExpand, Depth: depth, Arg: states})
}

// MemoHit implements Tracer.
func (f *FlightRecorder) MemoHit(depth int) {
	f.record(Event{Kind: EvMemoHit, Depth: depth})
}

// ElementAdmit implements Tracer.
func (f *FlightRecorder) ElementAdmit(depth, size int) {
	f.record(Event{Kind: EvElementAdmit, Depth: depth, Arg: int64(size)})
}

// Backtrack implements Tracer.
func (f *FlightRecorder) Backtrack(depth, size int) {
	f.record(Event{Kind: EvBacktrack, Depth: depth, Arg: int64(size)})
}

// SearchEnd implements Tracer.
func (f *FlightRecorder) SearchEnd(verdict string, states int64) {
	f.record(Event{Kind: EvSearchEnd, Arg: states, Verdict: verdict})
}

// Total returns the number of events ever emitted into the recorder
// (>= len(Events()) once the ring has wrapped).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) || f.seq == 0 {
		return append(out, f.ring...)
	}
	// The ring wrapped: the oldest retained event sits right after the
	// newest slot.
	start := int(f.seq % uint64(cap(f.ring)))
	out = append(out, f.ring[start:]...)
	return append(out, f.ring[:start]...)
}

// Dump writes the retained events to w, oldest first, one line each,
// preceded by a header stating how many events were dropped.
func (f *FlightRecorder) Dump(w io.Writer) error {
	events := f.Events()
	total := f.Total()
	if _, err := fmt.Fprintf(w, "flight recorder: last %d of %d events\n", len(events), total); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
			return err
		}
	}
	return nil
}

// LogTracer writes sampled events to an io.Writer as JSON lines. Every
// SearchStart and SearchEnd is logged; of the high-frequency events
// (NodeExpand, MemoHit, ElementAdmit, Backtrack) only every sample-th is,
// so tracing a million-state search produces kilobytes, not gigabytes.
type LogTracer struct {
	mu     sync.Mutex
	w      io.Writer
	sample uint64
	seq    uint64
	err    error // first write error; subsequent events are dropped
}

// NewLogTracer returns a tracer logging to w, keeping one in sample
// high-frequency events (sample <= 1 logs everything).
func NewLogTracer(w io.Writer, sample int) *LogTracer {
	if sample < 1 {
		sample = 1
	}
	return &LogTracer{w: w, sample: uint64(sample)}
}

// Err returns the first write error, if any; the tracer drops events
// after a failed write rather than failing the search.
func (l *LogTracer) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *LogTracer) log(e Event, always bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if !always && l.seq%l.sample != 0 {
		return
	}
	if l.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.err = err
	}
}

// SearchStart implements Tracer.
func (l *LogTracer) SearchStart(size int) {
	l.log(Event{Kind: EvSearchStart, Arg: int64(size)}, true)
}

// NodeExpand implements Tracer.
func (l *LogTracer) NodeExpand(depth int, states int64) {
	l.log(Event{Kind: EvNodeExpand, Depth: depth, Arg: states}, false)
}

// MemoHit implements Tracer.
func (l *LogTracer) MemoHit(depth int) {
	l.log(Event{Kind: EvMemoHit, Depth: depth}, false)
}

// ElementAdmit implements Tracer.
func (l *LogTracer) ElementAdmit(depth, size int) {
	l.log(Event{Kind: EvElementAdmit, Depth: depth, Arg: int64(size)}, false)
}

// Backtrack implements Tracer.
func (l *LogTracer) Backtrack(depth, size int) {
	l.log(Event{Kind: EvBacktrack, Depth: depth, Arg: int64(size)}, false)
}

// SearchEnd implements Tracer.
func (l *LogTracer) SearchEnd(verdict string, states int64) {
	l.log(Event{Kind: EvSearchEnd, Arg: states, Verdict: verdict}, true)
}

// MultiTracer fans every hook out to each of ts, in order. Nil entries
// are skipped; a single non-nil entry is returned unwrapped.
func MultiTracer(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) SearchStart(size int) {
	for _, t := range m {
		t.SearchStart(size)
	}
}

func (m multiTracer) NodeExpand(depth int, states int64) {
	for _, t := range m {
		t.NodeExpand(depth, states)
	}
}

func (m multiTracer) MemoHit(depth int) {
	for _, t := range m {
		t.MemoHit(depth)
	}
}

func (m multiTracer) ElementAdmit(depth, size int) {
	for _, t := range m {
		t.ElementAdmit(depth, size)
	}
}

func (m multiTracer) Backtrack(depth, size int) {
	for _, t := range m {
		t.Backtrack(depth, size)
	}
}

func (m multiTracer) SearchEnd(verdict string, states int64) {
	for _, t := range m {
		t.SearchEnd(verdict, states)
	}
}
