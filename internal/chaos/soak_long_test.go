//go:build chaos

package chaos_test

import (
	"fmt"
	"testing"

	"calgo/internal/chaos"
)

// TestSoakLong is the extended chaos soak, gated behind `-tags chaos`
// (run via `make chaos`): the same policy x object matrix as the default
// soak, but iterated with rotating seeds so differently-aligned fault
// schedules are explored. Each round re-runs the full Definition 5/6
// verification battery; every failure reproduces from its printed seed.
func TestSoakLong(t *testing.T) {
	const rounds = 10
	cases := []soakCase{
		{"treiber", soakTreiber},
		{"msqueue", soakMSQueue},
		{"exchanger", soakExchanger},
		{"syncqueue", soakSyncQueue},
		{"dualstack", soakDualStack},
		{"dualqueue", soakDualQueue},
		{"elimstack", soakElimStack},
		{"snapshot", soakSnapshot},
	}
	for round := 0; round < rounds; round++ {
		for _, name := range chaos.PolicyNames() {
			name := name
			for i, c := range cases {
				i, c, round := i, c, round
				seed := int64(round*1_000_003 + i*101 + 1)
				t.Run(fmt.Sprintf("r%d/%s/%s", round, name, c.name), func(t *testing.T) {
					t.Parallel()
					inj := chaos.NewInjector(chaos.Named()[name], seed)
					c.run(t, inj)
					t.Logf("chaos stats: %v", inj.Stats())
				})
			}
		}
	}
}
