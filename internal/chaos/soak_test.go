package chaos_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"calgo/internal/chaos"
	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/objects/dualqueue"
	"calgo/internal/objects/dualstack"
	"calgo/internal/objects/elimstack"
	"calgo/internal/objects/exchanger"
	"calgo/internal/objects/msqueue"
	"calgo/internal/objects/snapshot"
	"calgo/internal/objects/syncqueue"
	"calgo/internal/objects/treiber"
	"calgo/internal/obs"
	"calgo/internal/obs/serve"
	"calgo/internal/recorder"
	"calgo/internal/spec"
	"calgo/internal/trace"
)

// soakOpts carries the CALGO_SOAK_SERVE observability into every CAL
// check the soak runs; empty when the env var is unset.
var soakOpts []check.Option

// TestMain starts the embedded ops endpoint when CALGO_SOAK_SERVE names
// a listen address (e.g. CALGO_SOAK_SERVE=127.0.0.1:9090 make chaos),
// so a long soak can be watched live on /statusz and scraped on
// /metrics for its whole duration.
func TestMain(m *testing.M) {
	code := func() int {
		if addr := os.Getenv("CALGO_SOAK_SERVE"); addr != "" {
			metrics := obs.NewMetrics()
			live := obs.NewLiveRun("chaos-soak")
			srv := serve.New(serve.Config{Tool: "chaos-soak", Metrics: metrics, Live: live})
			a, err := srv.Start(addr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaos soak: ops server:", err)
				return 1
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "chaos soak: ops server on http://%s/\n", a)
			stop := obs.StartRuntimeSampler(metrics, 5*time.Second)
			defer stop()
			soakOpts = []check.Option{check.WithMetrics(metrics), check.WithLive(live)}
		}
		return m.Run()
	}()
	os.Exit(code)
}

// The soak battery re-runs each object's runtime verification — recorded
// trace admitted by the spec, history agrees with the trace (Definition 5),
// history independently CA-linearizable (Definition 6) — under every named
// chaos policy. Delays, stalls, biased scheduling and forced CAS retries
// must never produce a history the checker rejects: the objects' safety
// arguments do not depend on timing, and the forced-failure sites were
// chosen so a forced loss is indistinguishable from losing a real race.

// soakRecorder returns a bounded recorder sized generously for the
// workload; the soak checks Err() afterwards, so a sizing bug surfaces as
// an explicit overflow failure rather than silent truncation.
func soakRecorder(capacity int) *recorder.Recorder {
	return recorder.NewBounded(capacity)
}

// verify runs the Definition 5/6 battery on a captured run.
func verify(t *testing.T, h history.History, tr trace.Trace, sp spec.Spec) {
	t.Helper()
	if !h.IsComplete() {
		t.Fatal("history must be complete after all workers returned")
	}
	if _, err := spec.Accepts(sp, tr); err != nil {
		t.Fatalf("recorded trace violates %s: %v", sp.Name(), err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with recorded trace: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r, err := check.CAL(ctx, h, sp, soakOpts...)
	if err != nil {
		t.Fatalf("CAL: %v", err)
	}
	switch r.Verdict {
	case check.Sat:
	case check.Unsat:
		t.Fatalf("history not CA-linearizable under chaos: %s", r.Reason)
	case check.Unknown:
		t.Fatalf("CAL gave up on a soak-sized history: %s (%s)",
			r.Unknown.Reason, r.Unknown.Frontier)
	}
}

func checkRecorder(t *testing.T, rec *recorder.Recorder) {
	t.Helper()
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder overflowed; the trace is not evidence: %v", err)
	}
}

type soakCase struct {
	name string
	run  func(t *testing.T, inj *chaos.Injector)
}

func soakTreiber(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "S"
	rec := soakRecorder(1 << 12)
	s := treiber.New(obj, treiber.WithRecorder(rec), treiber.WithChaos(inj))
	var cap history.Capture
	const workers, per = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, obj, spec.MethodPush, history.Int(v))
					ok := s.TryPush(tid, v)
					cap.Res(tid, obj, spec.MethodPush, history.Bool(ok))
				} else {
					cap.Inv(tid, obj, spec.MethodPop, history.Unit())
					ok, got := s.TryPop(tid)
					cap.Res(tid, obj, spec.MethodPop, history.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewCentralStack(obj))
}

func soakMSQueue(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "Q"
	rec := soakRecorder(1 << 12)
	q := msqueue.New(obj, msqueue.WithRecorder(rec), msqueue.WithChaos(inj))
	var cap history.Capture
	const workers, per = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				if i%2 == 0 {
					cap.Inv(tid, obj, spec.MethodEnq, history.Int(v))
					q.Enq(tid, v)
					cap.Res(tid, obj, spec.MethodEnq, history.Bool(true))
				} else {
					cap.Inv(tid, obj, spec.MethodDeq, history.Unit())
					ok, got := q.Deq(tid)
					cap.Res(tid, obj, spec.MethodDeq, history.Pair(ok, got))
				}
			}
		}(w)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewQueue(obj))
}

func soakExchanger(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "E"
	rec := soakRecorder(1 << 12)
	e := exchanger.New(obj, exchanger.WithRecorder(rec),
		exchanger.WithWaitPolicy(exchanger.Spin(64)), exchanger.WithChaos(inj))
	var cap history.Capture
	const workers, per = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w + 1)
			for i := 0; i < per; i++ {
				v := int64(w*10_000 + i)
				cap.Inv(tid, obj, spec.MethodExchange, history.Int(v))
				ok, out := e.Exchange(tid, v)
				cap.Res(tid, obj, spec.MethodExchange, history.Pair(ok, out))
			}
		}(w)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewExchanger(obj))
}

func soakSyncQueue(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "SQ"
	rec := soakRecorder(1 << 12)
	q := syncqueue.New(obj, syncqueue.WithRecorder(rec),
		syncqueue.WithWaitPolicy(exchanger.Spin(64)), syncqueue.WithChaos(inj))
	var cap history.Capture
	const pairs, per = 2, 8
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, obj, spec.MethodPut, history.Int(v))
				q.Put(tid, v)
				cap.Res(tid, obj, spec.MethodPut, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, obj, spec.MethodTake, history.Unit())
				v := q.Take(tid)
				cap.Res(tid, obj, spec.MethodTake, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewSyncQueue(obj))
}

func soakDualStack(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "DS"
	rec := soakRecorder(1 << 12)
	s := dualstack.New(obj, dualstack.WithRecorder(rec),
		dualstack.WithWaitPolicy(exchanger.Spin(1)), dualstack.WithChaos(inj))
	var cap history.Capture
	const pairs, per = 2, 8
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, obj, spec.MethodPush, history.Int(v))
				s.Push(tid, v)
				cap.Res(tid, obj, spec.MethodPush, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, obj, spec.MethodPop, history.Unit())
				v := s.Pop(tid)
				cap.Res(tid, obj, spec.MethodPop, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewDualStack(obj))
}

func soakDualQueue(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "DQ"
	rec := soakRecorder(1 << 12)
	q := dualqueue.New(obj, dualqueue.WithRecorder(rec),
		dualqueue.WithWaitPolicy(exchanger.Spin(1)), dualqueue.WithChaos(inj))
	var cap history.Capture
	const pairs, per = 2, 8
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, obj, spec.MethodEnq, history.Int(v))
				q.Enq(tid, v)
				cap.Res(tid, obj, spec.MethodEnq, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, obj, spec.MethodDeq, history.Unit())
				v := q.Deq(tid)
				cap.Res(tid, obj, spec.MethodDeq, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	checkRecorder(t, rec)
	verify(t, cap.History(), rec.View(obj), spec.NewDualQueue(obj))
}

func soakElimStack(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "ES"
	rec := soakRecorder(1 << 12)
	es, err := elimstack.New(obj, elimstack.WithRecorder(rec), elimstack.WithSlots(2),
		elimstack.WithWaitPolicy(exchanger.Spin(64)), elimstack.WithChaos(inj))
	if err != nil {
		t.Fatal(err)
	}
	var cap history.Capture
	const pairs, per = 2, 10
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 1)
			for i := 0; i < per; i++ {
				v := int64(p*10_000 + i)
				cap.Inv(tid, obj, spec.MethodPush, history.Int(v))
				if err := es.Push(tid, v); err != nil {
					t.Errorf("Push: %v", err)
				}
				cap.Res(tid, obj, spec.MethodPush, history.Bool(true))
			}
		}(p)
		go func(p int) {
			defer wg.Done()
			tid := history.ThreadID(2*p + 2)
			for i := 0; i < per; i++ {
				cap.Inv(tid, obj, spec.MethodPop, history.Unit())
				v := es.Pop(tid)
				cap.Res(tid, obj, spec.MethodPop, history.Pair(true, v))
			}
		}(p)
	}
	wg.Wait()
	checkRecorder(t, rec)
	h := cap.History()
	tr := rec.View(obj)
	if !h.IsComplete() {
		t.Fatal("history must be complete")
	}
	if _, err := spec.Accepts(spec.NewStack(obj), tr); err != nil {
		t.Fatalf("derived trace violates stack spec: %v", err)
	}
	if err := trace.Agrees(h, tr); err != nil {
		t.Fatalf("history does not agree with derived trace: %v", err)
	}
	r, err := check.Linearizable(context.Background(), h, spec.NewStack(obj), soakOpts...)
	if err != nil {
		t.Fatalf("Linearizable: %v", err)
	}
	if !r.OK {
		t.Fatalf("elimination stack history not linearizable under chaos: %s", r.Reason)
	}
}

func soakSnapshot(t *testing.T, inj *chaos.Injector) {
	const obj history.ObjectID = "IS"
	const n = 4
	for round := 0; round < 4; round++ {
		s, err := snapshot.New(obj, n, snapshot.WithChaos(inj))
		if err != nil {
			t.Fatal(err)
		}
		var cap history.Capture
		results := make([]snapshot.Result, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				tid := history.ThreadID(p + 1)
				v := int64(100 + p)
				cap.Inv(tid, obj, spec.MethodUpdate, history.Int(v))
				view, err := s.Update(p, tid, v)
				if err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				cap.Res(tid, obj, spec.MethodUpdate, history.Pair(true, int64(len(view))))
				results[p] = snapshot.Result{Thread: tid, Value: v, View: view}
			}(p)
		}
		wg.Wait()
		tr, err := snapshot.DeriveTrace(obj, results)
		if err != nil {
			t.Fatalf("round %d: DeriveTrace: %v", round, err)
		}
		verify(t, cap.History(), tr, spec.NewSnapshot(obj, n))
	}
}

// TestSoakAllPoliciesAllObjects is the chaos-soak matrix: every named
// policy against every instrumented object, each run re-verified by the
// checker. Seeds are fixed so failures replay.
func TestSoakAllPoliciesAllObjects(t *testing.T) {
	cases := []soakCase{
		{"treiber", soakTreiber},
		{"msqueue", soakMSQueue},
		{"exchanger", soakExchanger},
		{"syncqueue", soakSyncQueue},
		{"dualstack", soakDualStack},
		{"dualqueue", soakDualQueue},
		{"elimstack", soakElimStack},
		{"snapshot", soakSnapshot},
	}
	for _, name := range chaos.PolicyNames() {
		name := name
		for i, c := range cases {
			i, c := i, c
			t.Run(name+"/"+c.name, func(t *testing.T) {
				t.Parallel()
				// Fresh policy per injector: stateful policies (cas-storm)
				// must not be shared between concurrently running soaks.
				inj := chaos.NewInjector(chaos.Named()[name], int64(1000+i))
				c.run(t, inj)
				st := inj.Stats()
				if st.Points == 0 && name != "none" {
					t.Errorf("policy %s injected nothing (stats %+v)", name, st)
				}
				t.Logf("chaos stats: %+v", st)
			})
		}
	}
}

// TestSoakStatsAccumulate pins the observability contract: an aggressive
// policy must report delays and forced failures after a soak.
func TestSoakStatsAccumulate(t *testing.T) {
	inj := chaos.NewInjector(chaos.Named()["havoc"], 7)
	soakTreiber(t, inj)
	st := inj.Stats()
	if st.Points == 0 || st.Delays == 0 {
		t.Errorf("havoc soak recorded no faults: %+v", st)
	}
}
