// Package chaos is a fault-injection layer for the runtime objects under
// calgo/internal/objects. The paper's central claim is schedule-universal:
// a CA-object must be CA-linearizable under *every* interleaving, not just
// the benign ones the Go scheduler happens to produce on an idle test
// machine. This package manufactures hostile interleavings on real
// hardware: an Injector, threaded through an object via its WithChaos
// option, is consulted at every labeled synchronization point (pre/post
// CAS, partner waits, retry loops) and may delay the calling goroutine,
// stall it at specific labeled points, bias scheduling against chosen
// threads, or force a retryable CAS to report failure without being
// attempted — a CAS retry storm.
//
// Forced CAS failures are only installed at sites where losing is
// indistinguishable from losing a real race (pure retry loops and
// failure-reporting one-shot attempts); sites whose failure path *infers*
// facts about other threads (e.g. "my hole was filled, so a partner
// exists") are never forced, so every injected execution remains a
// legitimate execution of the protocol and the recorded CA-trace stays
// sound. Chaos therefore changes timing and contention, never semantics:
// any CAL violation observed under injection is a real violation.
//
// All decisions are made by a pluggable, seeded Policy, so a failing soak
// reproduces from its seed.
package chaos

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"calgo/internal/history"
)

// Site labels an injection point as "object-kind.operation.moment",
// e.g. "treiber.push.pre-cas" or "exchanger.xchg.cas".
type Site string

// Policy decides what happens at each injection point. Policy methods are
// always invoked under the owning Injector's lock, so a policy may keep
// unsynchronized internal state, provided the instance is not shared
// between injectors.
type Policy interface {
	// Name identifies the policy in logs and stats.
	Name() string
	// Delay returns how many scheduler yields the calling goroutine must
	// perform at site (0 = run through).
	Delay(r *rand.Rand, tid history.ThreadID, site Site) int
	// FailCAS reports whether the retryable CAS at site should be forced
	// to fail without being attempted.
	FailCAS(r *rand.Rand, tid history.ThreadID, site Site) bool
}

// Stats counts the faults an Injector has delivered.
type Stats struct {
	// Points is the number of injection points passed.
	Points int64
	// Delays is the number of points at which a nonzero delay was injected.
	Delays int64
	// Yields is the total number of scheduler yields performed.
	Yields int64
	// ForcedFails is the number of CAS attempts forced to fail.
	ForcedFails int64
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("points=%d delays=%d yields=%d forced-cas-fails=%d",
		s.Points, s.Delays, s.Yields, s.ForcedFails)
}

// Injector delivers policy-driven faults at labeled synchronization
// points. All methods are safe for concurrent use and safe on a nil
// receiver (a nil *Injector injects nothing), so instrumented objects call
// hooks unconditionally.
type Injector struct {
	mu     sync.Mutex
	policy Policy
	rng    *rand.Rand

	points      atomic.Int64
	delays      atomic.Int64
	yields      atomic.Int64
	forcedFails atomic.Int64
}

// NewInjector returns an injector driving policy p from the given seed.
// A nil policy injects nothing.
func NewInjector(p Policy, seed int64) *Injector {
	return &Injector{policy: p, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the injector's policy (nil for a nil injector).
func (in *Injector) Policy() Policy {
	if in == nil {
		return nil
	}
	return in.policy
}

// Pause is called by instrumented objects at a labeled synchronization
// point; it yields the processor as many times as the policy demands.
func (in *Injector) Pause(tid history.ThreadID, site Site) {
	if in == nil || in.policy == nil {
		return
	}
	in.points.Add(1)
	in.mu.Lock()
	n := in.policy.Delay(in.rng, tid, site)
	in.mu.Unlock()
	if n <= 0 {
		return
	}
	in.delays.Add(1)
	in.yields.Add(int64(n))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// FailCAS reports whether the retryable CAS at site should be forced to
// fail. Callers must consult it *instead of* attempting the CAS, taking
// their ordinary contention-failure path when it returns true.
func (in *Injector) FailCAS(tid history.ThreadID, site Site) bool {
	if in == nil || in.policy == nil {
		return false
	}
	in.points.Add(1)
	in.mu.Lock()
	fail := in.policy.FailCAS(in.rng, tid, site)
	in.mu.Unlock()
	if fail {
		in.forcedFails.Add(1)
	}
	return fail
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Points:      in.points.Load(),
		Delays:      in.delays.Load(),
		Yields:      in.yields.Load(),
		ForcedFails: in.forcedFails.Load(),
	}
}

// None injects nothing; the control policy of every soak matrix.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Delay implements Policy.
func (None) Delay(*rand.Rand, history.ThreadID, Site) int { return 0 }

// FailCAS implements Policy.
func (None) FailCAS(*rand.Rand, history.ThreadID, Site) bool { return false }

// YieldStorm delays every injection point with probability P by 1..Max
// scheduler yields, widening the windows between loads and CASes where
// racing threads can interpose.
type YieldStorm struct {
	// P is the per-point delay probability in [0,1].
	P float64
	// Max bounds the yields per delay (default 8).
	Max int
}

// Name implements Policy.
func (y YieldStorm) Name() string { return "yield-storm" }

// Delay implements Policy.
func (y YieldStorm) Delay(r *rand.Rand, _ history.ThreadID, _ Site) int {
	if r.Float64() >= y.P {
		return 0
	}
	max := y.Max
	if max < 1 {
		max = 8
	}
	return 1 + r.Intn(max)
}

// FailCAS implements Policy.
func (YieldStorm) FailCAS(*rand.Rand, history.ThreadID, Site) bool { return false }

// Stall parks goroutines for a long burst of yields at every site whose
// label contains Match, holding a thread inside a specific window (e.g.
// between an offer install and its withdrawal) while the rest of the
// system runs on.
type Stall struct {
	// Match selects sites by substring; empty matches every site.
	Match string
	// Yields is the stall length in scheduler yields (default 64).
	Yields int
	// P is the probability of stalling at a matching site (default 1).
	P float64
}

// Name implements Policy.
func (s Stall) Name() string {
	if s.Match == "" {
		return "stall"
	}
	return "stall:" + s.Match
}

// Delay implements Policy.
func (s Stall) Delay(r *rand.Rand, _ history.ThreadID, site Site) int {
	if s.Match != "" && !strings.Contains(string(site), s.Match) {
		return 0
	}
	if s.P > 0 && s.P < 1 && r.Float64() >= s.P {
		return 0
	}
	if s.Yields < 1 {
		return 64
	}
	return s.Yields
}

// FailCAS implements Policy.
func (Stall) FailCAS(*rand.Rand, history.ThreadID, Site) bool { return false }

// CASStorm forces retryable CASes to fail with probability P, bounded by
// Streak consecutive forced failures per thread so retry loops cannot be
// starved forever (the injected adversary is unfair, but not infinitely
// so — wait-freedom of the objects is preserved).
type CASStorm struct {
	// P is the per-attempt forced-failure probability in [0,1].
	P float64
	// Streak bounds consecutive forced failures per thread (default 4).
	Streak int

	streaks map[history.ThreadID]int
}

// NewCASStorm returns a CAS retry storm policy.
func NewCASStorm(p float64, streak int) *CASStorm {
	return &CASStorm{P: p, Streak: streak}
}

// Name implements Policy.
func (c *CASStorm) Name() string { return "cas-storm" }

// Delay implements Policy.
func (c *CASStorm) Delay(*rand.Rand, history.ThreadID, Site) int { return 0 }

// FailCAS implements Policy.
func (c *CASStorm) FailCAS(r *rand.Rand, tid history.ThreadID, _ Site) bool {
	streak := c.Streak
	if streak < 1 {
		streak = 4
	}
	if c.streaks == nil {
		c.streaks = make(map[history.ThreadID]int)
	}
	if c.streaks[tid] >= streak || r.Float64() >= c.P {
		c.streaks[tid] = 0
		return false
	}
	c.streaks[tid]++
	return true
}

// Bias starves a subset of threads: every thread whose id is congruent to
// Rem modulo Mod pays Yields scheduler yields at every injection point,
// letting the favored threads race far ahead — the software analogue of a
// core running hot interrupts.
type Bias struct {
	// Mod and Rem select the victims: tid % Mod == Rem (Mod default 2).
	Mod, Rem int
	// Yields is the per-point penalty (default 16).
	Yields int
}

// Name implements Policy.
func (Bias) Name() string { return "bias" }

// Delay implements Policy.
func (b Bias) Delay(_ *rand.Rand, tid history.ThreadID, _ Site) int {
	mod := b.Mod
	if mod < 2 {
		mod = 2
	}
	if int(tid)%mod != b.Rem {
		return 0
	}
	if b.Yields < 1 {
		return 16
	}
	return b.Yields
}

// FailCAS implements Policy.
func (Bias) FailCAS(*rand.Rand, history.ThreadID, Site) bool { return false }

// Combined composes policies: delays add, and a CAS fails if any member
// forces it.
type Combined struct {
	Policies []Policy
}

// Combine returns the composition of ps.
func Combine(ps ...Policy) Combined { return Combined{Policies: ps} }

// Name implements Policy.
func (c Combined) Name() string {
	names := make([]string, len(c.Policies))
	for i, p := range c.Policies {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Delay implements Policy.
func (c Combined) Delay(r *rand.Rand, tid history.ThreadID, site Site) int {
	n := 0
	for _, p := range c.Policies {
		n += p.Delay(r, tid, site)
	}
	return n
}

// FailCAS implements Policy.
func (c Combined) FailCAS(r *rand.Rand, tid history.ThreadID, site Site) bool {
	fail := false
	for _, p := range c.Policies {
		if p.FailCAS(r, tid, site) {
			fail = true
		}
	}
	return fail
}

// Named returns the standard policy suite keyed by name, freshly
// constructed (stateful policies must not be shared between injectors).
// The suite is the soak matrix run by the chaos tests and cmd/calfuzz.
func Named() map[string]Policy {
	return map[string]Policy{
		"none":        None{},
		"yield-storm": YieldStorm{P: 0.3, Max: 12},
		"stall":       Stall{Match: "pre-cas", Yields: 48, P: 0.2},
		"cas-storm":   NewCASStorm(0.4, 4),
		"bias":        Bias{Mod: 2, Rem: 1, Yields: 12},
		"havoc": Combine(
			YieldStorm{P: 0.2, Max: 8},
			NewCASStorm(0.25, 3),
			Bias{Mod: 3, Rem: 0, Yields: 8},
		),
	}
}

// PolicyNames returns the names of the standard suite in deterministic
// order, control policy first.
func PolicyNames() []string {
	return []string{"none", "yield-storm", "stall", "cas-storm", "bias", "havoc"}
}
