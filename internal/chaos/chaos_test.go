package chaos

import (
	"math/rand"
	"sync"
	"testing"

	"calgo/internal/history"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.Pause(1, "x.y.z") // must not panic
	if in.FailCAS(1, "x.y.z") {
		t.Error("nil injector forced a CAS failure")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}
	if in.Policy() != nil {
		t.Error("nil injector has a policy")
	}
}

func TestNonePolicyInjectsNothing(t *testing.T) {
	in := NewInjector(None{}, 1)
	for i := 0; i < 100; i++ {
		in.Pause(history.ThreadID(i), "treiber.push.pre-cas")
		if in.FailCAS(history.ThreadID(i), "treiber.push.cas") {
			t.Fatal("None forced a CAS failure")
		}
	}
	s := in.Stats()
	if s.Delays != 0 || s.Yields != 0 || s.ForcedFails != 0 {
		t.Errorf("stats = %+v, want no faults", s)
	}
	if s.Points != 200 {
		t.Errorf("points = %d, want 200", s.Points)
	}
}

func TestYieldStormDelays(t *testing.T) {
	in := NewInjector(YieldStorm{P: 1, Max: 4}, 42)
	for i := 0; i < 50; i++ {
		in.Pause(1, "site")
	}
	s := in.Stats()
	if s.Delays != 50 {
		t.Errorf("delays = %d, want 50", s.Delays)
	}
	if s.Yields < 50 || s.Yields > 200 {
		t.Errorf("yields = %d, want within [50,200]", s.Yields)
	}
}

func TestStallMatchesSites(t *testing.T) {
	p := Stall{Match: "pre-cas", Yields: 7}
	r := rand.New(rand.NewSource(1))
	if n := p.Delay(r, 1, "treiber.push.pre-cas"); n != 7 {
		t.Errorf("matching site delay = %d, want 7", n)
	}
	if n := p.Delay(r, 1, "treiber.push.post-cas"); n != 0 {
		t.Errorf("non-matching site delay = %d, want 0", n)
	}
}

func TestCASStormBoundsStreaks(t *testing.T) {
	p := NewCASStorm(1, 3) // always fail, streak cap 3
	r := rand.New(rand.NewSource(1))
	consecutive, maxConsecutive := 0, 0
	for i := 0; i < 100; i++ {
		if p.FailCAS(r, 7, "s") {
			consecutive++
			if consecutive > maxConsecutive {
				maxConsecutive = consecutive
			}
		} else {
			consecutive = 0
		}
	}
	if maxConsecutive != 3 {
		t.Errorf("max consecutive forced failures = %d, want 3", maxConsecutive)
	}
}

func TestCASStormStreaksPerThread(t *testing.T) {
	p := NewCASStorm(1, 2)
	r := rand.New(rand.NewSource(1))
	// Interleaving two threads must not share one streak budget.
	got := 0
	for i := 0; i < 2; i++ {
		if p.FailCAS(r, 1, "s") {
			got++
		}
		if p.FailCAS(r, 2, "s") {
			got++
		}
	}
	if got != 4 {
		t.Errorf("forced failures = %d, want 4 (2 per thread)", got)
	}
}

func TestBiasTargetsResidueClass(t *testing.T) {
	p := Bias{Mod: 3, Rem: 1, Yields: 5}
	r := rand.New(rand.NewSource(1))
	if n := p.Delay(r, 4, "s"); n != 5 { // 4 % 3 == 1
		t.Errorf("victim delay = %d, want 5", n)
	}
	if n := p.Delay(r, 3, "s"); n != 0 {
		t.Errorf("non-victim delay = %d, want 0", n)
	}
}

func TestCombineAddsDelaysAndOrsFailures(t *testing.T) {
	p := Combine(Stall{Yields: 2}, Stall{Yields: 3}, NewCASStorm(1, 1))
	r := rand.New(rand.NewSource(1))
	if n := p.Delay(r, 1, "s"); n != 5 {
		t.Errorf("combined delay = %d, want 5", n)
	}
	if !p.FailCAS(r, 1, "s") {
		t.Error("combined policy should force the first failure")
	}
}

func TestInjectorConcurrentUse(t *testing.T) {
	in := NewInjector(Combine(YieldStorm{P: 0.5, Max: 2}, NewCASStorm(0.5, 2)), 99)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := history.ThreadID(w)
			for i := 0; i < 200; i++ {
				in.Pause(tid, "a.b.pre-cas")
				in.FailCAS(tid, "a.b.cas")
			}
		}(w)
	}
	wg.Wait()
	if s := in.Stats(); s.Points != 8*200*2 {
		t.Errorf("points = %d, want %d", s.Points, 8*200*2)
	}
}

func TestNamedSuiteIsComplete(t *testing.T) {
	suite := Named()
	for _, name := range PolicyNames() {
		p, ok := suite[name]
		if !ok {
			t.Errorf("PolicyNames lists %q but Named() lacks it", name)
			continue
		}
		if name != "none" && name != p.Name() && p.Name() == "none" {
			t.Errorf("policy %q resolves to the control policy", name)
		}
	}
	if len(suite) != len(PolicyNames()) {
		t.Errorf("Named() has %d policies, PolicyNames %d", len(suite), len(PolicyNames()))
	}
}
