package runstore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fleetShard is one live test daemon: a ring store behind the storeapi
// handler, addressed through a Remote client — the exact production
// topology of a federated query, minus the process boundary.
type fleetShard struct {
	name    string
	backing *Ring
	srv     *httptest.Server
}

func newFleetShard(t *testing.T, name string) *fleetShard {
	t.Helper()
	backing := NewRing(64, nil)
	srv := httptest.NewServer(NewAPI(backing, APIOptions{}))
	t.Cleanup(srv.Close)
	return &fleetShard{name: name, backing: backing, srv: srv}
}

func (s *fleetShard) target(t *testing.T) StoreTarget {
	t.Helper()
	return StoreTarget{Name: s.name, Store: fastRemote(t, s.srv.URL, RemoteOptions{Retries: 1})}
}

// TestFederatedListMergesByTime: records from two shards interleave
// into one ascending-time view, every record stamped with its origin,
// and Limit keeps the newest across the whole fleet.
func TestFederatedListMergesByTime(t *testing.T) {
	a, b := NewRing(16, nil), NewRing(16, nil)
	for i, st := range []*Ring{a, b, a, b} {
		if err := st.Put(reportRecord("cald", "OK", time.Unix(int64(1000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	fed := NewFederated([]StoreTarget{{Name: "a", Store: a}, {Name: "b", Store: b}}, FederatedOptions{})
	recs, err := fed.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("merged %d records, want 4", len(recs))
	}
	wantOrigin := []string{"a", "b", "a", "b"}
	for i, rec := range recs {
		if rec.TimeNS != time.Unix(int64(1000+i), 0).UnixNano() {
			t.Fatalf("record %d out of time order: %d", i, rec.TimeNS)
		}
		if rec.Labels["origin"] != wantOrigin[i] {
			t.Fatalf("record %d origin = %q, want %q", i, rec.Labels["origin"], wantOrigin[i])
		}
	}
	// Origin stamping never mutates the member store's own records.
	own, _ := a.List(Filter{})
	if own[0].Labels["origin"] != "" {
		t.Fatal("origin label leaked into the member store")
	}
	// Fleet-wide limit keeps the newest two (one from each shard here).
	recs, err = fed.List(Filter{Limit: 2})
	if err != nil || len(recs) != 2 || recs[0].TimeNS != time.Unix(1002, 0).UnixNano() {
		t.Fatalf("limited merge = %v (err %v)", recs, err)
	}
	if fed.Len() != 4 {
		t.Fatalf("fleet Len = %d", fed.Len())
	}
	if err := fed.Put(&Record{}); err != ErrReadOnly {
		t.Fatalf("federated Put = %v, want ErrReadOnly", err)
	}
}

// TestFederatedRegressionsRollup: each shard computes its own deltas
// server-side; the fleet merge re-ranks them worst-first with an
// origin per cell and applies top-N after the merge.
func TestFederatedRegressionsRollup(t *testing.T) {
	a, b := newFleetShard(t, "a"), newFleetShard(t, "b")
	// Shard a regresses 50% (100 -> 50 would be -50; use rates so a is
	// worse), shard b improves.
	for i, rate := range []float64{100, 40} {
		gen := time.Unix(int64(2000+i), 0).UTC().Format(time.RFC3339)
		if err := a.backing.Put(BenchRecord("", benchAt(gen, rate))); err != nil {
			t.Fatal(err)
		}
	}
	for i, rate := range []float64{100, 150} {
		gen := time.Unix(int64(2000+i), 0).UTC().Format(time.RFC3339)
		if err := b.backing.Put(BenchRecord("", benchAt(gen, rate))); err != nil {
			t.Fatal(err)
		}
	}
	fed := NewFederated([]StoreTarget{a.target(t), b.target(t)}, FederatedOptions{})
	res, err := fed.QueryContext(context.Background(), Query{Mode: ModeRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.Targets) != 2 {
		t.Fatalf("healthy fleet result = %+v", res)
	}
	if len(res.Deltas) != 8 { // 4 cells per shard
		t.Fatalf("merged %d deltas, want 8", len(res.Deltas))
	}
	// Worst-first across shards: every a cell (-60%) before any b cell
	// (+50%), each attributed to its shard.
	for i, d := range res.Deltas {
		want := "a"
		if i >= 4 {
			want = "b"
		}
		if d.Origin != want {
			t.Fatalf("delta %d (%+.1f%%) origin = %q, want %q", i, d.Pct, d.Origin, want)
		}
		if i > 0 && d.Pct < res.Deltas[i-1].Pct {
			t.Fatalf("deltas not worst-first at %d", i)
		}
	}
	// top-N applies after the merge, so it picks the fleet-wide worst.
	res, err = fed.QueryContext(context.Background(), Query{Mode: ModeRegressions, Top: 2})
	if err != nil || len(res.Deltas) != 2 || res.Deltas[0].Origin != "a" {
		t.Fatalf("fleet top-2 = %+v (err %v)", res, err)
	}
	// The rendered rollup carries the fleet header and origin column.
	text := res.Text()
	if !strings.Contains(text, "fleet regressions: 2 target(s)") || !strings.Contains(text, "origin") {
		t.Fatalf("fleet text = %q", text)
	}
}

// TestFederatedShardDownDegrades kills one daemon and proves the
// honest-partial-results contract: degraded=true, the dead shard's
// error recorded against its name, and every surviving row attributed
// to the live shard — never a silent half-answer.
func TestFederatedShardDownDegrades(t *testing.T) {
	live := newFleetShard(t, "live")
	if err := live.backing.Put(reportRecord("cald", "VIOLATION", time.Unix(3000, 0))); err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the shard is down before the fan-out starts

	fed := NewFederated([]StoreTarget{
		live.target(t),
		{Name: "dead", Store: fastRemote(t, deadURL, RemoteOptions{Retries: 1})},
	}, FederatedOptions{})

	res, err := fed.QueryContext(context.Background(), Query{Mode: ModeRuns})
	if err != nil {
		t.Fatalf("degraded query must not fail outright: %v", err)
	}
	if !res.Degraded {
		t.Fatal("degraded flag not set with a shard down")
	}
	byName := map[string]TargetResult{}
	for _, tr := range res.Targets {
		byName[tr.Target] = tr
	}
	if byName["dead"].Error == "" || byName["live"].Error != "" {
		t.Fatalf("target attribution = %+v", res.Targets)
	}
	if len(res.Runs) != 1 || res.Runs[0].Labels["origin"] != "live" {
		t.Fatalf("surviving rows = %+v", res.Runs)
	}
	if !strings.Contains(res.Text(), "DEGRADED") {
		t.Fatalf("rendered degraded result hides it: %q", res.Text())
	}

	// List has no degraded channel: a down shard fails it, naming the
	// shard.
	if _, err := fed.List(Filter{}); err == nil || !strings.Contains(err.Error(), "dead") {
		t.Fatalf("federated list with dead shard = %v", err)
	}

	// All shards down is an error, not an empty success.
	allDead := NewFederated([]StoreTarget{
		{Name: "dead", Store: fastRemote(t, deadURL, RemoteOptions{Retries: 1})},
	}, FederatedOptions{})
	if _, err := allDead.QueryContext(context.Background(), Query{}); err == nil {
		t.Fatal("all-shards-down query succeeded")
	}
}

// TestFederatedSlowShardTimesOut: a shard that hangs past the
// per-target deadline degrades the answer instead of wedging the
// fleet, and the fast shard's rows arrive intact.
func TestFederatedSlowShardTimesOut(t *testing.T) {
	fast := newFleetShard(t, "fast")
	if err := fast.backing.Put(reportRecord("cald", "OK", time.Unix(3100, 0))); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request until the test is over
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(slow.Close)

	fed := NewFederated([]StoreTarget{
		fast.target(t),
		{Name: "slow", Store: fastRemote(t, slow.URL, RemoteOptions{Retries: 1, Timeout: -1})},
	}, FederatedOptions{PerTargetTimeout: 50 * time.Millisecond})

	start := time.Now()
	res, err := fed.QueryContext(context.Background(), Query{Mode: ModeRuns})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fleet query wedged for %v behind the slow shard", elapsed)
	}
	if !res.Degraded || len(res.Runs) != 1 || res.Runs[0].Labels["origin"] != "fast" {
		t.Fatalf("slow-shard result = %+v", res)
	}
	for _, tr := range res.Targets {
		if tr.Target == "slow" && !strings.Contains(tr.Error, "deadline") {
			t.Fatalf("slow shard error = %q, want a deadline", tr.Error)
		}
	}
}

// TestFederatedTornReplyDegrades: a shard answering garbage (a
// half-written or wrong-schema body) is a degraded target with the
// torn reply attributed, never a poisoned merge.
func TestFederatedTornReplyDegrades(t *testing.T) {
	good := newFleetShard(t, "good")
	if err := good.backing.Put(reportRecord("cald", "OK", time.Unix(3200, 0))); err != nil {
		t.Fatal(err)
	}
	torn := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"schema":"calgo.que`)) // crashed mid-encode
	}))
	t.Cleanup(torn.Close)

	fed := NewFederated([]StoreTarget{
		good.target(t),
		{Name: "torn", Store: fastRemote(t, torn.URL, RemoteOptions{Retries: 1})},
	}, FederatedOptions{})
	res, err := fed.QueryContext(context.Background(), Query{Mode: ModeRuns})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Runs) != 1 || res.Runs[0].Labels["origin"] != "good" {
		t.Fatalf("torn-shard result = %+v", res)
	}
	// A complete-but-wrong-schema reply is torn too.
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"schema":"calgo.nope/v9"}`))
	}))
	t.Cleanup(wrong.Close)
	fed2 := NewFederated([]StoreTarget{
		good.target(t),
		{Name: "wrong", Store: fastRemote(t, wrong.URL, RemoteOptions{Retries: 1})},
	}, FederatedOptions{})
	res2, err := fed2.QueryContext(context.Background(), Query{Mode: ModeRuns})
	if err != nil || !res2.Degraded {
		t.Fatalf("wrong-schema result = %+v (err %v)", res2, err)
	}
	for _, tr := range res2.Targets {
		if tr.Target == "wrong" && !strings.Contains(tr.Error, "torn query reply") {
			t.Fatalf("wrong-schema error = %q", tr.Error)
		}
	}
}

// TestFederatedGet answers "any shard's record with this ID",
// earliest target winning, with the origin stamped.
func TestFederatedGet(t *testing.T) {
	a, b := NewRing(8, nil), NewRing(8, nil)
	ra := reportRecord("cald", "OK", time.Unix(4000, 0))
	if err := a.Put(ra); err != nil {
		t.Fatal(err)
	}
	rb := reportRecord("calfuzz", "OK", time.Unix(4001, 0))
	rb.ID = ra.ID // same ID in another shard's namespace
	if err := b.Put(rb); err != nil {
		t.Fatal(err)
	}
	fed := NewFederated([]StoreTarget{{Name: "a", Store: a}, {Name: "b", Store: b}}, FederatedOptions{})
	got, ok, err := fed.Get(ra.ID)
	if err != nil || !ok || got.Labels["origin"] != "a" || got.Tool != "cald" {
		t.Fatalf("Get = %+v (ok %v err %v)", got, ok, err)
	}
	if _, ok, _ := fed.Get("absent"); ok {
		t.Fatal("absent ID found")
	}
}

// TestOpenStores covers the -store spec grammar: one directory opens
// the FS backend directly, one URL a Remote client, a comma list a
// federation named after its members.
func TestOpenStores(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStores(dir, FSOptions{}, FederatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*FS); !ok {
		t.Fatalf("single directory opened %T", st)
	}
	st.Close()

	st, err = OpenStores("http://127.0.0.1:1", FSOptions{}, FederatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Remote); !ok {
		t.Fatalf("single URL opened %T", st)
	}
	st.Close()

	st, err = OpenStores(dir+", http://127.0.0.1:1/", FSOptions{}, FederatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fed, ok := st.(*Federated)
	if !ok {
		t.Fatalf("comma list opened %T", st)
	}
	names := fed.Targets()
	if len(names) != 2 || names[0] != dir || names[1] != "127.0.0.1:1" {
		t.Fatalf("federation targets = %v", names)
	}
	st.Close()

	for _, bad := range []string{"", " , ", "ftp://nope"} {
		if _, err := OpenStores(bad, FSOptions{}, FederatedOptions{}); err == nil {
			t.Errorf("OpenStores(%q) accepted", bad)
		}
	}
}
