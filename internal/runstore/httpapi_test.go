package runstore

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// fastRemote opens a Remote against url with millisecond backoff, so
// retry-path tests stay quick.
func fastRemote(t *testing.T, url string, opts RemoteOptions) *Remote {
	t.Helper()
	if opts.BaseDelay == 0 {
		opts.BaseDelay = time.Millisecond
	}
	if opts.MaxDelay == 0 {
		opts.MaxDelay = 5 * time.Millisecond
	}
	c, err := OpenRemote(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStoreAPIRoundTrip drives the full calgo.storeapi/v1 surface
// through a Remote client against a live handler: put (with ID
// write-back), get, 404, filtered list, server-side query, len.
func TestStoreAPIRoundTrip(t *testing.T) {
	backing := NewRing(64, nil)
	srv := httptest.NewServer(NewAPI(backing, APIOptions{}))
	defer srv.Close()
	c := fastRemote(t, srv.URL, RemoteOptions{})

	rec := reportRecord("cald", "VIOLATION", time.Unix(4000, 0))
	rec.Labels = map[string]string{"spec": "queue"}
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" {
		t.Fatal("daemon-assigned ID not written back")
	}
	got, ok, err := c.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok %v, err %v", rec.ID, ok, err)
	}
	if got.Tool != "cald" || got.Labels["spec"] != "queue" || got.Report == nil {
		t.Fatalf("round-tripped record = %+v", got)
	}
	if _, ok, err := c.Get("no-such"); err != nil || ok {
		t.Fatalf("Get(absent) = ok %v, err %v; want false, nil", ok, err)
	}

	if err := c.Put(reportRecord("calcheck", "OK", time.Unix(4001, 0))); err != nil {
		t.Fatal(err)
	}
	recs, err := c.List(Filter{Verdict: "VIOLATION"})
	if err != nil || len(recs) != 1 || recs[0].ID != rec.ID {
		t.Fatalf("List(VIOLATION) = %v (err %v)", recs, err)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}

	// Server-side query evaluation: regressions resolve baselines in
	// the daemon's namespace, and the reply is a calgo.query/v1 doc.
	for i, rate := range []float64{100, 150} {
		if err := c.Put(BenchRecord("", benchAt(time.Unix(int64(5000+i), 0).UTC().Format(time.RFC3339), rate))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.QueryContext(context.Background(), Query{Mode: ModeRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != QuerySchema || len(res.Deltas) == 0 || res.Deltas[0].Pct != 50 {
		t.Fatalf("remote regressions = %+v", res)
	}
}

// TestStoreAPIClampsListing pins the server-side result bound: an
// unbounded listing comes back clamped to MaxList (newest kept), with
// the envelope carrying the honest pre-limit total and the clamped
// marker.
func TestStoreAPIClampsListing(t *testing.T) {
	backing := NewRing(64, nil)
	for i := 0; i < 10; i++ {
		if err := backing.Put(reportRecord("cald", "OK", time.Unix(int64(6000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewAPI(backing, APIOptions{MaxList: 3}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + StoreAPIPrefix + "/v1/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply StoreAPIList
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Schema != StoreAPISchema || reply.Total != 10 || !reply.Clamped {
		t.Fatalf("envelope = %+v", reply)
	}
	if len(reply.Records) != 3 || reply.Records[2].TimeNS != time.Unix(6009, 0).UnixNano() {
		t.Fatalf("clamped window = %d records, newest %v", len(reply.Records), reply.Records)
	}
	// A request under the bound is honoured and not marked clamped.
	resp2, err := http.Get(srv.URL + StoreAPIPrefix + "/v1/records?" + url.Values{"limit": {"2"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var reply2 StoreAPIList
	if err := json.NewDecoder(resp2.Body).Decode(&reply2); err != nil {
		t.Fatal(err)
	}
	if len(reply2.Records) != 2 || reply2.Clamped {
		t.Fatalf("limit=2 reply = %+v", reply2)
	}
}

// TestStoreAPIRejects pins the protocol's refusals: read-only daemons
// 403 upserts, tombstones never cross the wire, and both fail the
// client fast (no retry burn on permanent 4xx).
func TestStoreAPIRejects(t *testing.T) {
	ro := httptest.NewServer(NewAPI(NewRing(4, nil), APIOptions{ReadOnly: true}))
	defer ro.Close()
	c := fastRemote(t, ro.URL, RemoteOptions{})
	if err := c.Put(reportRecord("cald", "OK", time.Unix(1, 0))); err == nil {
		t.Fatal("read-only daemon accepted a put")
	}

	rw := httptest.NewServer(NewAPI(NewRing(4, nil), APIOptions{}))
	defer rw.Close()
	c2 := fastRemote(t, rw.URL, RemoteOptions{})
	if err := c2.Put(&Record{Schema: RecordSchema, ID: "r-1", Deleted: true}); err == nil {
		t.Fatal("tombstone accepted over the wire")
	}
}

// TestRemoteRetriesTransient proves the client's production manners:
// 503s are retried with backoff until the daemon recovers, and the
// operation then succeeds transparently.
func TestRemoteRetriesTransient(t *testing.T) {
	backing := NewRing(8, nil)
	api := NewAPI(backing, APIOptions{})
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		api.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := fastRemote(t, srv.URL, RemoteOptions{Retries: 4})
	if err := c.Put(reportRecord("cald", "OK", time.Unix(7000, 0))); err != nil {
		t.Fatalf("put through flaky daemon: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s then success)", got)
	}
	if backing.Len() != 1 {
		t.Fatalf("backing Len = %d", backing.Len())
	}
}

// TestRemotePermanentErrorFailsFast: a 4xx reply must not burn the
// retry budget.
func TestRemotePermanentErrorFailsFast(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such thing", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := fastRemote(t, srv.URL, RemoteOptions{Retries: 4})
	if _, err := c.List(Filter{}); err == nil {
		t.Fatal("4xx listing succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestRemoteUnreachable pins the degraded signals of a dead daemon:
// Len answers -1 (not "empty store"), and reads error rather than
// fabricate.
func TestRemoteUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	target := srv.URL
	srv.Close()
	c := fastRemote(t, target, RemoteOptions{Retries: 1})
	if n := c.Len(); n != -1 {
		t.Fatalf("Len of dead daemon = %d, want -1", n)
	}
	if _, err := c.List(Filter{}); err == nil {
		t.Fatal("listing a dead daemon succeeded")
	}
}

// TestOpenRemoteValidates rejects specs that cannot address a daemon.
func TestOpenRemoteValidates(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "http://", "not a url"} {
		if _, err := OpenRemote(bad, RemoteOptions{}); err == nil {
			t.Errorf("OpenRemote(%q) accepted", bad)
		}
	}
	c, err := OpenRemote("http://127.0.0.1:1/", RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != "http://127.0.0.1:1" {
		t.Fatalf("Base = %q (trailing slash kept?)", c.Base())
	}
}
