package runstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"calgo/internal/obs"
	"calgo/internal/render"
)

func reportRecord(tool, verdict string, t time.Time) *Record {
	rep := render.NewReport(tool, t)
	rep.Runs = []render.Run{{Name: "in.txt", Verdict: verdict}}
	return &Record{Tool: tool, TimeNS: t.UnixNano(), Report: rep}
}

func TestRingBoundsAndEviction(t *testing.T) {
	m := obs.NewMetrics()
	s := NewRing(3, m)
	for i := 0; i < 5; i++ {
		rec := reportRecord("caltest", "OK", time.Unix(int64(100+i), 0))
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := m.Counter("runstore.evicted").Value(); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	// The two oldest are gone, the three newest remain.
	if _, ok, _ := s.Get("r-1"); ok {
		t.Fatal("r-1 should have been evicted")
	}
	recs, err := s.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].ID != "r-3" || recs[2].ID != "r-5" {
		t.Fatalf("List = %+v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeNS < recs[i-1].TimeNS {
			t.Fatalf("List not ascending by time: %v", recs)
		}
	}
}

func TestRingUpsertAndNormalize(t *testing.T) {
	s := NewRing(0, nil) // nil metrics must be fine; 0 = default capacity
	rec := reportRecord("caltest", "VIOLATION", time.Unix(50, 0))
	rec.Tool = "" // derived from the wrapped report at Put time
	rec.ID = "fixed"
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get("fixed")
	if !ok {
		t.Fatal("missing fixed")
	}
	// normalize derives tool, verdict, kind and schema from the report.
	if got.Schema != RecordSchema || got.Kind != KindReport {
		t.Fatalf("normalized = %+v", got)
	}
	if got.Tool != "caltest" || got.Verdict != "VIOLATION" {
		t.Fatalf("derived tool/verdict = %q/%q", got.Tool, got.Verdict)
	}
	// Upsert replaces in place, not append.
	rec2 := reportRecord("caltest", "OK", time.Unix(60, 0))
	rec2.ID = "fixed"
	if err := s.Put(rec2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after upsert = %d", s.Len())
	}
	got, _, _ = s.Get("fixed")
	if got.Verdict != "OK" {
		t.Fatalf("upserted verdict = %q", got.Verdict)
	}
}

func TestRingFilters(t *testing.T) {
	s := NewRing(16, nil)
	base := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		verdict := "OK"
		if i%2 == 1 {
			verdict = "VIOLATION"
		}
		rec := reportRecord("calcheck", verdict, base.Add(time.Duration(i)*time.Minute))
		rec.Labels = map[string]string{"spec": fmt.Sprintf("s%d", i%3)}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		f    Filter
		want int
	}{
		{Filter{}, 6},
		{Filter{Verdict: "VIOLATION"}, 3},
		{Filter{Tool: "nope"}, 0},
		{Filter{Labels: map[string]string{"spec": "s0"}}, 2},
		{Filter{Since: base.Add(2 * time.Minute)}, 4},
		{Filter{Until: base.Add(2 * time.Minute)}, 2},
		{Filter{Since: base.Add(time.Minute), Until: base.Add(4 * time.Minute)}, 3},
		{Filter{Verdict: "OK", Limit: 2}, 2},
	}
	for i, c := range cases {
		recs, err := s.List(c.f)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != c.want {
			t.Errorf("case %d: %d matches, want %d (%+v)", i, len(recs), c.want, c.f)
		}
	}
	// Limit keeps the newest.
	recs, _ := s.List(Filter{Limit: 2})
	if len(recs) != 2 || recs[1].TimeNS != base.Add(5*time.Minute).UnixNano() {
		t.Fatalf("limited = %+v", recs)
	}
	// Latest returns the single newest match.
	rec, err := Latest(s, Filter{Verdict: "OK"})
	if err != nil || rec == nil || rec.TimeNS != base.Add(4*time.Minute).UnixNano() {
		t.Fatalf("Latest = %+v (err %v)", rec, err)
	}
	if rec, _ := Latest(s, Filter{Tool: "nope"}); rec != nil {
		t.Fatalf("Latest(no match) = %+v", rec)
	}
}

func TestRingConcurrent(t *testing.T) {
	s := NewRing(32, obs.NewMetrics())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.Put(reportRecord("caltest", "OK", time.Unix(int64(g*50+i), 0)))
				_, _ = s.List(Filter{Tool: "caltest", Limit: 5})
				_, _, _ = s.Get("r-1")
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
}
