package runstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"calgo/internal/obs"
)

// kindRecord is a reportRecord with its kind forced (the per-kind
// retention bound selects on it).
func kindRecord(kind string, at time.Time) *Record {
	rec := reportRecord("cald", "OK", at)
	if kind == KindBench {
		rec = BenchRecord("", benchAt(at.UTC().Format(time.RFC3339), 100))
	}
	return rec
}

func TestRetentionPolicyBounds(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	metas := []retMeta{
		{id: "old", kind: KindReport, timeNS: now.Add(-48 * time.Hour).UnixNano()},
		{id: "mid", kind: KindReport, timeNS: now.Add(-12 * time.Hour).UnixNano()},
		{id: "new", kind: KindReport, timeNS: now.Add(-time.Hour).UnixNano()},
	}
	asSet := func(ids []string) map[string]bool {
		set := make(map[string]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		return set
	}

	if got := (Retention{}).expire(metas, now); got != nil {
		t.Fatalf("empty policy expired %v", got)
	}
	if got := asSet((Retention{MaxAge: 24 * time.Hour}).expire(metas, now)); len(got) != 1 || !got["old"] {
		t.Fatalf("max-age expired %v", got)
	}
	if got := asSet((Retention{MaxRecords: 1}).expire(metas, now)); len(got) != 2 || got["new"] {
		t.Fatalf("max-records expired %v", got)
	}
	// Bounds AND together: the union of victims goes.
	both := Retention{MaxAge: 24 * time.Hour, MaxRecords: 2}
	if got := asSet(both.expire(metas, now)); len(got) != 1 || !got["old"] {
		t.Fatalf("combined policy expired %v", got)
	}

	// Per-kind keep-N only touches the listed kind.
	mixed := []retMeta{
		{id: "b1", kind: KindBench, timeNS: now.Add(-3 * time.Hour).UnixNano()},
		{id: "r1", kind: KindReport, timeNS: now.Add(-2 * time.Hour).UnixNano()},
		{id: "b2", kind: KindBench, timeNS: now.Add(-time.Hour).UnixNano()},
	}
	perKind := Retention{KeepPerKind: map[string]int{KindBench: 1}}
	if got := asSet(perKind.expire(mixed, now)); len(got) != 1 || !got["b1"] {
		t.Fatalf("keep-per-kind expired %v", got)
	}

	// Timestamp ties keep the later insertion — the record List would
	// also call newest.
	tied := []retMeta{
		{id: "first", kind: KindReport, timeNS: now.UnixNano()},
		{id: "second", kind: KindReport, timeNS: now.UnixNano()},
	}
	if got := asSet((Retention{MaxRecords: 1}).expire(tied, now)); len(got) != 1 || !got["first"] {
		t.Fatalf("tie-break expired %v", got)
	}

	if (Retention{MaxAge: time.Hour}).Empty() || !(Retention{}).Empty() {
		t.Fatal("Empty misreports")
	}
}

func TestRingRetain(t *testing.T) {
	m := obs.NewMetrics()
	s := NewRing(16, m)
	base := time.Unix(10000, 0)
	for i := 0; i < 6; i++ {
		if err := s.Put(reportRecord("cald", "OK", base.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Retain(Retention{MaxRecords: 2})
	if err != nil || n != 4 {
		t.Fatalf("Retain = %d (err %v), want 4", n, err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	recs, _ := s.List(Filter{})
	if recs[0].TimeNS != base.Add(4*time.Hour).UnixNano() {
		t.Fatalf("kept the wrong records: %v", recs)
	}
	if got := m.Counter("runstore.expired").Value(); got != 4 {
		t.Fatalf("expired counter = %d", got)
	}
}

// TestFSRetain drives a full durable sweep: tombstones land fsynced,
// the live set honours the policy across reopen, and the expired
// counter and retained gauge move.
func TestFSRetain(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	s := openTestFS(t, dir, FSOptions{Metrics: m})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return now }
	for i := 0; i < 8; i++ {
		at := now.Add(-time.Duration(8-i) * 24 * time.Hour)
		if err := s.Put(kindRecord(KindReport, at)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		at := now.Add(-time.Duration(3-i) * time.Hour)
		if err := s.Put(kindRecord(KindBench, at)); err != nil {
			t.Fatal(err)
		}
	}

	pol := Retention{MaxAge: 7 * 24 * time.Hour, KeepPerKind: map[string]int{KindBench: 2}}
	n, err := s.Retain(pol)
	if err != nil {
		t.Fatal(err)
	}
	// One report older than 7d, one bench beyond keep-2.
	if n != 2 {
		t.Fatalf("expired %d, want 2", n)
	}
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
	if got := m.Counter("runstore.expired").Value(); got != 2 {
		t.Fatalf("expired counter = %d", got)
	}
	if got := m.Gauge("runstore.retained").Value(); got != 9 {
		t.Fatalf("retained gauge = %d", got)
	}
	// An already-conformant store sweeps to zero, idempotently.
	if n, err := s.Retain(pol); err != nil || n != 0 {
		t.Fatalf("second sweep = %d (err %v)", n, err)
	}
	s.Close()

	// The sweep is durable: expired records stay dead across reopen.
	s2 := openTestFS(t, dir, FSOptions{})
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("reopened Len = %d, want 9", s2.Len())
	}
	if _, ok, _ := s2.Get("r-1"); ok {
		t.Fatal("expired record resurrected on reopen")
	}
	benches, _ := s2.List(Filter{Kind: KindBench})
	if len(benches) != 2 {
		t.Fatalf("bench keep-2 left %d", len(benches))
	}
}

// TestFSRetainCompactionCrash is the retention regression pin: force a
// sweep whose garbage triggers compaction, kill the store in the crash
// window between the compacted segment landing and the old segments'
// removal (via the test hook), and prove reopen neither loses live
// records nor resurrects expired ones — the tombstones in the
// not-yet-removed old segments keep the dead dead.
func TestFSRetainCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	base := time.Unix(20000, 0)
	// compactMinGarbage is the sweep's compaction floor; expire enough
	// records to clear it (each victim counts its copy plus tombstone)
	// while the survivors stay fewer than the garbage.
	victims := compactMinGarbage
	for i := 0; i < victims+2; i++ {
		if err := s.Put(reportRecord("cald", "OK", base.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}

	var snapshot string
	s.hookAfterCompactRename = func() {
		// The "crash": snapshot the directory exactly between rename and
		// removal, and replay it into a fresh store below.
		snap := t.TempDir()
		copyDir(t, dir, snap)
		snapshot = snap
	}
	n, err := s.Retain(Retention{MaxRecords: 2})
	if err != nil || n != victims {
		t.Fatalf("Retain = %d (err %v), want %d", n, err, victims)
	}
	if snapshot == "" {
		t.Fatal("sweep did not compact: the crash window was never open")
	}
	s.Close()

	for name, src := range map[string]string{"clean": dir, "crashed": snapshot} {
		re := openTestFS(t, src, FSOptions{})
		if re.Len() != 2 {
			t.Fatalf("%s reopen Len = %d, want 2", name, re.Len())
		}
		if _, ok, _ := re.Get("r-1"); ok {
			t.Fatalf("%s reopen resurrected an expired record", name)
		}
		recs, err := re.List(Filter{})
		if err != nil || len(recs) != 2 {
			t.Fatalf("%s reopen List = %v (err %v)", name, recs, err)
		}
		for _, rec := range recs {
			if rec.Report == nil {
				t.Fatalf("%s reopen survivor lost its body: %+v", name, rec)
			}
		}
		re.Close()
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
