package runstore

import (
	"context"
	"fmt"
	"log/slog"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federated is a read-only Store view over N targets (typically Remote
// clients, one per cald daemon): List and Query fan out concurrently
// under a per-target deadline and merge by time, stamping each record
// with its origin. Queries degrade honestly — when some targets fail,
// the result carries the surviving shards' rows plus `degraded: true`
// and the per-target error list, instead of failing the whole fleet
// question; only all targets failing is an error. The contract is
// specified in EXPERIMENTS.md ("Fleet observability").
type Federated struct {
	targets []StoreTarget
	opts    FederatedOptions
	log     *slog.Logger
}

// StoreTarget is one federation member.
type StoreTarget struct {
	// Name labels the target's records ("origin" label, delta origin
	// column). OpenTargets uses the URL's host:port.
	Name  string
	Store Store
}

// FederatedOptions tune NewFederated. The zero value is
// production-sane.
type FederatedOptions struct {
	// PerTargetTimeout bounds each target's answer (default 10s;
	// < 0 disables) — one slow shard delays, never wedges, the fleet.
	PerTargetTimeout time.Duration
	// Logger receives a structured line per degraded fan-out (nil =
	// silent).
	Logger *slog.Logger
}

// NewFederated returns a federated view over the targets. Close closes
// every target store.
func NewFederated(targets []StoreTarget, opts FederatedOptions) *Federated {
	log := opts.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	return &Federated{targets: targets, opts: opts, log: log}
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived
// after this module's Go floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Targets returns the member names in fan-out order.
func (s *Federated) Targets() []string {
	names := make([]string, len(s.targets))
	for i, t := range s.targets {
		names[i] = t.Name
	}
	return names
}

// Put fails: the federated view is read-only (write to one member).
func (s *Federated) Put(*Record) error { return ErrReadOnly }

// perTarget brackets one target call with the per-target deadline.
func (s *Federated) perTarget(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.PerTargetTimeout < 0 {
		return ctx, func() {}
	}
	d := s.opts.PerTargetTimeout
	if d == 0 {
		d = 10 * time.Second
	}
	return context.WithTimeout(ctx, d)
}

// Get fans out and returns the first record found (targets are
// separate namespaces — the same "r-1" can exist everywhere — so Get
// across a federation answers "any shard's record with this ID",
// earliest target winning for determinism).
func (s *Federated) Get(id string) (*Record, bool, error) {
	var firstErr error
	for _, t := range s.targets {
		rec, ok, err := t.Store.Get(id)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", t.Name, err)
			}
			continue
		}
		if ok {
			return withOrigin(rec, t.Name), true, nil
		}
	}
	return nil, false, firstErr
}

// withOrigin returns a shallow copy of rec whose Labels carry
// origin=target — a copy, so federation never mutates records shared
// with an in-process member store.
func withOrigin(rec *Record, target string) *Record {
	cp := *rec
	labels := make(map[string]string, len(rec.Labels)+1)
	for k, v := range rec.Labels {
		labels[k] = v
	}
	labels["origin"] = target
	cp.Labels = labels
	return &cp
}

// fanout runs fn once per target concurrently, each under the
// per-target deadline.
func (s *Federated) fanout(ctx context.Context, fn func(ctx context.Context, i int, t StoreTarget) error) []error {
	errs := make([]error, len(s.targets))
	var wg sync.WaitGroup
	for i, t := range s.targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tctx, cancel := s.perTarget(ctx)
			defer cancel()
			errs[i] = fn(tctx, i, t)
		}()
	}
	wg.Wait()
	return errs
}

// List fans the filter out to every target and merges by time. Unlike
// Query, List has no degraded channel, so any target failing fails the
// call; fleet questions that must survive a down shard go through
// QueryContext.
func (s *Federated) List(f Filter) ([]*Record, error) {
	return s.ListContext(context.Background(), f)
}

// ListContext is List carrying the caller's context.
func (s *Federated) ListContext(ctx context.Context, f Filter) ([]*Record, error) {
	perTarget := f
	perTarget.Limit = 0
	merged := make([][]*Record, len(s.targets))
	errs := s.fanout(ctx, func(tctx context.Context, i int, t StoreTarget) error {
		recs, err := ListContext(tctx, t.Store, perTarget)
		if err != nil {
			return err
		}
		for j, rec := range recs {
			recs[j] = withOrigin(rec, t.Name)
		}
		merged[i] = recs
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runstore: federated list: %s: %w", s.targets[i].Name, err)
		}
	}
	var out []*Record
	for _, recs := range merged {
		out = append(out, recs...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return applyLimit(out, f.Limit), nil
}

// QueryContext evaluates q on every target (server-side on Remote
// members) and merges: runs by time with origin labels, regression
// deltas worst-first with origin columns. Failed targets appear in the
// result's Targets list with Degraded set; only all targets failing is
// an error.
func (s *Federated) QueryContext(ctx context.Context, q Query) (*Result, error) {
	if len(s.targets) == 0 {
		return nil, fmt.Errorf("runstore: federated query: no targets")
	}
	perTarget := q
	perTarget.Limit = 0 // post-merge
	perTarget.Top = 0
	results := make([]*Result, len(s.targets))
	errs := s.fanout(ctx, func(tctx context.Context, i int, t StoreTarget) error {
		res, err := RunContext(tctx, t.Store, perTarget)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	out := &Result{Schema: QuerySchema, Mode: q.Mode}
	if out.Mode == "" {
		out.Mode = ModeRuns
	}
	answered := 0
	var lastErr error
	for i, t := range s.targets {
		tr := TargetResult{Target: t.Name}
		switch {
		case errs[i] != nil:
			tr.Error = errs[i].Error()
			out.Degraded = true
			lastErr = errs[i]
		case results[i] == nil:
			tr.Error = "no result"
			out.Degraded = true
		default:
			answered++
			res := results[i]
			out.Total += res.Total
			out.Skipped += res.Skipped
			switch out.Mode {
			case ModeRegressions:
				tr.Records = len(res.Deltas)
				tr.Baseline = res.BaselineID
				tr.Current = res.CurrentID
				for _, d := range res.Deltas {
					d.Origin = t.Name
					out.Deltas = append(out.Deltas, d)
				}
			default:
				tr.Records = len(res.Runs)
				for _, run := range res.Runs {
					labels := make(map[string]string, len(run.Labels)+1)
					for k, v := range run.Labels {
						labels[k] = v
					}
					labels["origin"] = t.Name
					run.Labels = labels
					out.Runs = append(out.Runs, run)
				}
			}
		}
		out.Targets = append(out.Targets, tr)
	}
	if answered == 0 {
		return nil, fmt.Errorf("runstore: federated query: all %d target(s) failed: %w", len(s.targets), lastErr)
	}
	switch out.Mode {
	case ModeRegressions:
		// Worst-first across the fleet; each shard's deltas arrive
		// pre-sorted, the merge re-establishes the global order.
		sort.SliceStable(out.Deltas, func(i, j int) bool { return out.Deltas[i].Pct < out.Deltas[j].Pct })
		if q.Top > 0 && len(out.Deltas) > q.Top {
			out.Deltas = out.Deltas[:q.Top]
		}
	default:
		sort.SliceStable(out.Runs, func(i, j int) bool { return out.Runs[i].Time < out.Runs[j].Time })
		if q.Limit > 0 && len(out.Runs) > q.Limit {
			out.Runs = out.Runs[len(out.Runs)-q.Limit:]
		}
	}
	if out.Degraded {
		var failed []string
		for _, tr := range out.Targets {
			if tr.Error != "" {
				failed = append(failed, tr.Target)
			}
		}
		s.log.Warn("runstore: degraded federated query",
			"mode", out.Mode, "targets", len(s.targets), "answered", answered,
			"failed", strings.Join(failed, ","))
	}
	return out, nil
}

// Len sums the members' live record counts, skipping unreachable ones
// (a Remote Len of -1).
func (s *Federated) Len() int {
	total := 0
	for _, t := range s.targets {
		if n := t.Store.Len(); n > 0 {
			total += n
		}
	}
	return total
}

// Close closes every member store (the federation owns the Remote
// clients built for it).
func (s *Federated) Close() error {
	var firstErr error
	for _, t := range s.targets {
		if err := t.Store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// IsStoreURL reports whether a -store spec element addresses a remote
// daemon rather than a local directory.
func IsStoreURL(spec string) bool {
	return strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://")
}

// OpenStores opens a -store spec: a filesystem directory, a daemon URL
// (http://host:port), or a comma-separated list of either, which opens
// as a federation (read-only, origin-labeled, degradable queries). One
// element returns that backend directly.
func OpenStores(spec string, fsOpts FSOptions, fedOpts FederatedOptions) (Store, error) {
	parts := strings.Split(spec, ",")
	targets := make([]StoreTarget, 0, len(parts))
	cleanup := func() {
		for _, t := range targets {
			t.Store.Close() //nolint:errcheck // best-effort unwind
		}
	}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		var (
			st   Store
			name string
			err  error
		)
		if strings.Contains(p, "://") && !IsStoreURL(p) {
			cleanup()
			return nil, fmt.Errorf("runstore: unsupported scheme in store spec %q (want http:// or https://)", p)
		}
		if IsStoreURL(p) {
			var rc *Remote
			rc, err = OpenRemote(p, RemoteOptions{})
			if err == nil {
				st = rc
				if u, uerr := url.Parse(p); uerr == nil && u.Host != "" {
					name = u.Host
				} else {
					name = p
				}
			}
		} else {
			st, err = OpenFS(p, fsOpts)
			name = p
		}
		if err != nil {
			cleanup()
			return nil, err
		}
		targets = append(targets, StoreTarget{Name: name, Store: st})
	}
	switch len(targets) {
	case 0:
		return nil, fmt.Errorf("runstore: empty -store spec")
	case 1:
		return targets[0].Store, nil
	}
	return NewFederated(targets, fedOpts), nil
}
