package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"calgo/internal/obs"
)

func openTestFS(t *testing.T, dir string, opts FSOptions) *FS {
	t.Helper()
	s, err := OpenFS(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFSPutGetListReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	base := time.Unix(2000, 0)
	for i := 0; i < 10; i++ {
		verdict := "OK"
		if i == 7 {
			verdict = "VIOLATION"
		}
		rec := reportRecord("cald", verdict, base.Add(time.Duration(i)*time.Second))
		rec.Labels = map[string]string{"spec": "register"}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Record{}); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	// Reopen: everything survives, filters work over the disk metadata.
	s2 := openTestFS(t, dir, FSOptions{})
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	recs, err := s2.List(Filter{Verdict: "VIOLATION"})
	if err != nil || len(recs) != 1 {
		t.Fatalf("List(VIOLATION) = %v (err %v)", recs, err)
	}
	if recs[0].Report == nil || recs[0].Report.Runs[0].Verdict != "VIOLATION" {
		t.Fatalf("materialized record = %+v", recs[0])
	}
	if recs[0].Labels["spec"] != "register" {
		t.Fatalf("labels = %v", recs[0].Labels)
	}
	// ID sequence continues past the replayed records.
	rec := reportRecord("cald", "OK", base.Add(time.Hour))
	if err := s2.Put(rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != "r-11" {
		t.Fatalf("next ID = %q, want r-11", rec.ID)
	}
}

// TestFSTornTail kills a store mid-append (simulated by truncating the
// last line in half) and proves reopen skips the torn line and keeps
// every acknowledged record before it.
func TestFSTornTail(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	s := openTestFS(t, dir, FSOptions{})
	for i := 0; i < 5; i++ {
		if err := s.Put(reportRecord("calcheck", "OK", time.Unix(int64(3000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close: the index sidecar is now stale (written at
	// open, before any put).
	seg := filepath.Join(dir, "run-000001.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half, as a crash mid-write would.
	lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(seg, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestFS(t, dir, FSOptions{Metrics: m})
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("Len after torn tail = %d, want 4", s2.Len())
	}
	if got := m.Counter("runstore.corrupt_skipped").Value(); got != 1 {
		t.Fatalf("corrupt_skipped = %d, want 1", got)
	}
	// The survivors are intact and the torn ID is re-assignable: the
	// next put must not collide with a live record.
	for i := 1; i <= 4; i++ {
		if _, ok, err := s2.Get(fmt.Sprintf("r-%d", i)); err != nil || !ok {
			t.Fatalf("r-%d lost (err %v)", i, err)
		}
	}
	rec := reportRecord("calcheck", "OK", time.Unix(4000, 0))
	if err := s2.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get(rec.ID); !ok {
		t.Fatalf("put after torn-tail reopen lost %q", rec.ID)
	}
}

// TestFSCorruptInteriorLine damages a middle line: replay must skip
// exactly that record and keep the rest.
func TestFSCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	for i := 0; i < 5; i++ {
		if err := s.Put(reportRecord("calcheck", "OK", time.Unix(int64(3000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	seg := filepath.Join(dir, "run-000001.jsonl")
	b, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(b), "\n")
	lines[2] = strings.Replace(lines[2], `"schema"`, `xxchemaxx`, 1) // break JSON
	os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644)
	// The sidecar still covers the old size; shrink-proof it by
	// deleting, forcing the full-rescan path over the damaged file.
	os.Remove(filepath.Join(dir, indexName))

	m := obs.NewMetrics()
	s2 := openTestFS(t, dir, FSOptions{Metrics: m})
	defer s2.Close()
	if s2.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s2.Len())
	}
	if _, ok, _ := s2.Get("r-3"); ok {
		t.Fatal("damaged record r-3 should be gone")
	}
	if got := m.Counter("runstore.corrupt_skipped").Value(); got != 1 {
		t.Fatalf("corrupt_skipped = %d", got)
	}
}

// TestFSStaleIndexRebuild shrinks a segment below what the sidecar
// claims: replay must distrust the sidecar, rescan, and count a
// rebuild.
func TestFSStaleIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	for i := 0; i < 4; i++ {
		if err := s.Put(reportRecord("calfuzz", "OK", time.Unix(int64(5000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // sidecar now covers all 4 records
	seg := filepath.Join(dir, "run-000001.jsonl")
	b, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(b), "\n")
	os.WriteFile(seg, []byte(strings.Join(lines[:3], "")), 0o644) // drop the last record

	m := obs.NewMetrics()
	s2 := openTestFS(t, dir, FSOptions{Metrics: m})
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s2.Len())
	}
	if got := m.Counter("runstore.index_rebuilds").Value(); got != 1 {
		t.Fatalf("index_rebuilds = %d", got)
	}
}

// TestFSIndexTailScan writes past the sidecar (as a crash between
// index flushes leaves things), reopens, and proves the covered prefix
// is trusted while the tail is scanned — no record lost either way.
func TestFSIndexTailScan(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	if err := s.Put(reportRecord("cald", "OK", time.Unix(6000, 0))); err != nil {
		t.Fatal(err)
	}
	s.Close() // index covers record 1
	s2 := openTestFS(t, dir, FSOptions{})
	for i := 0; i < 3; i++ { // below indexEvery: the sidecar stays stale
		if err := s2.Put(reportRecord("cald", "OK", time.Unix(int64(6001+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close. The sidecar covers 1 record, disk has 4.
	s3 := openTestFS(t, dir, FSOptions{})
	defer s3.Close()
	if s3.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s3.Len())
	}
}

// TestFSRotationAndCompaction drives segment rotation with a tiny
// bound, supersedes most records, and proves open-time compaction
// rewrites the store without losing the live set.
func TestFSRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	s := openTestFS(t, dir, FSOptions{SegmentBytes: 512, Metrics: m})
	// 12 distinct records across several tiny segments.
	for i := 0; i < 12; i++ {
		if err := s.Put(reportRecord("calbench", "OK", time.Unix(int64(7000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede 10 of them twice over: 20 garbage occurrences.
	for pass := 0; pass < 2; pass++ {
		for i := 1; i <= 10; i++ {
			rec := reportRecord("calbench", "OK", time.Unix(int64(7100+10*pass+i), 0))
			rec.ID = fmt.Sprintf("r-%d", i)
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	segs, _ := s.segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, segments = %v", segs)
	}
	s.Close()

	s2 := openTestFS(t, dir, FSOptions{SegmentBytes: 512, Metrics: m})
	defer s2.Close()
	if got := m.Counter("runstore.compactions").Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	if s2.Len() != 12 {
		t.Fatalf("Len after compaction = %d, want 12", s2.Len())
	}
	// Compaction kept the newest copy of each superseded record.
	rec, ok, err := s2.Get("r-1")
	if err != nil || !ok {
		t.Fatalf("r-1 missing after compaction (err %v)", err)
	}
	if rec.TimeNS != time.Unix(7111, 0).UnixNano() {
		t.Fatalf("r-1 time = %d, want the newest copy", rec.TimeNS)
	}
	// Old segments are gone; only the compacted one (plus a fresh
	// active, when rotation follows) remains.
	segs2, _ := s2.segments()
	for _, n := range segs2 {
		for _, old := range segs {
			if n == old {
				t.Fatalf("old segment %d survived compaction (have %v)", n, segs2)
			}
		}
	}
}

// TestFSCompactionCrashDuplicates simulates a crash after the
// compacted segment landed but before the old segments were removed:
// newest-occurrence-wins replay must keep exactly the live set.
func TestFSCompactionCrashDuplicates(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	for i := 0; i < 3; i++ {
		if err := s.Put(reportRecord("cald", "OK", time.Unix(int64(8000+i), 0))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Duplicate the whole segment as a higher-numbered one — exactly
	// what an interrupted compaction leaves behind.
	b, _ := os.ReadFile(filepath.Join(dir, "run-000001.jsonl"))
	os.WriteFile(filepath.Join(dir, "run-000002.jsonl"), b, 0o644)
	os.Remove(filepath.Join(dir, indexName))

	s2 := openTestFS(t, dir, FSOptions{})
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("Len with duplicate segment = %d, want 3", s2.Len())
	}
	recs, err := s2.List(Filter{})
	if err != nil || len(recs) != 3 {
		t.Fatalf("List = %v (err %v)", recs, err)
	}
}

func TestFSBenchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{})
	doc := &Bench{
		GOMAXPROCS: 8, Window: "500ms", Generated: "2026-08-08T10:00:00Z",
		Tables: []BenchTable{{
			ID: "B1", Title: "t", ColumnLabel: "goroutines", Columns: []int{1, 4},
			Rows: []BenchRow{{Name: "treiber", OpsPerSec: []float64{100, 400}}},
		}},
	}
	if err := s.Put(BenchRecord("bench-x", doc)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTestFS(t, dir, FSOptions{})
	defer s2.Close()
	rec, ok, err := s2.Get("bench-x")
	if err != nil || !ok || rec.Kind != KindBench || rec.Bench == nil {
		t.Fatalf("bench record = %+v (ok %v err %v)", rec, ok, err)
	}
	if rec.TimeNS != doc.GeneratedTime().UnixNano() {
		t.Fatalf("bench time = %d", rec.TimeNS)
	}
	if !jsonEqual(t, rec.Bench, doc) {
		t.Fatalf("bench doc mutated: %+v vs %+v", rec.Bench, doc)
	}
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

func TestFSIngestBenchDirIdempotent(t *testing.T) {
	dir := t.TempDir()
	doc := `{"gomaxprocs":4,"window":"60ms","generated":"2026-08-06T09:00:00Z",` +
		`"tables":[{"id":"B1","title":"x","column_label":"goroutines","columns":[1],` +
		`"rows":[{"name":"a","ops_per_sec":[10]}]}]}`
	os.WriteFile(filepath.Join(dir, "BENCH_2026-08-06.json"), []byte(doc), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_bogus.json"), []byte("{not json"), 0o644)
	os.WriteFile(filepath.Join(dir, "unrelated.json"), []byte("{}"), 0o644)

	s := openTestFS(t, filepath.Join(dir, "store"), FSOptions{})
	defer s.Close()
	n, err := IngestBenchDir(s, dir, nil)
	if err != nil || n != 1 {
		t.Fatalf("ingested %d (err %v), want 1", n, err)
	}
	if _, ok, _ := s.Get("bench-BENCH_2026-08-06"); !ok {
		t.Fatal("deterministic ingest ID missing")
	}
	// Second pass is a no-op.
	n, err = IngestBenchDir(s, dir, nil)
	if err != nil || n != 0 {
		t.Fatalf("re-ingested %d (err %v), want 0", n, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestFSConcurrent exercises the store under -race: concurrent puts,
// lists and gets against one FS instance.
func TestFSConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openTestFS(t, dir, FSOptions{SegmentBytes: 4096, Metrics: obs.NewMetrics()})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec := reportRecord("cald", "OK", time.Unix(int64(9000+g*25+i), 0))
				if err := s.Put(rec); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(rec.ID); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.List(Filter{Tool: "cald", Limit: 3}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	// And the whole thing replays.
	s.Close()
	s2 := openTestFS(t, dir, FSOptions{})
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("replayed Len = %d, want 100", s2.Len())
	}
}
