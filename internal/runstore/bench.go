package runstore

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Bench is the calbench perf-trajectory document (the BENCH_<date>.json
// schema of EXPERIMENTS.md "Performance trajectory"), stored whole in a
// KindBench record so the query layer can compute per-cell regressions
// between any two points of the trajectory.
type Bench struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Window     string       `json:"window"`
	Generated  string       `json:"generated"` // RFC 3339
	Tables     []BenchTable `json:"tables"`
}

// BenchTable is one sweep table: rates per row (implementation) and
// column (goroutine count, K, or event count — ColumnLabel says which).
type BenchTable struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	ColumnLabel string     `json:"column_label"`
	Columns     []int      `json:"columns"`
	Rows        []BenchRow `json:"rows"`
}

// BenchRow is one implementation's rates across the table's columns.
type BenchRow struct {
	Name      string    `json:"name"`
	OpsPerSec []float64 `json:"ops_per_sec"`
}

// GeneratedTime parses the document's generation timestamp (zero time
// when absent or malformed).
func (b *Bench) GeneratedTime() time.Time {
	t, err := time.Parse(time.RFC3339, b.Generated)
	if err != nil {
		return time.Time{}
	}
	return t
}

// BenchRecord wraps a bench document as a store record: tool calbench,
// kind bench, timestamped from the document's generation time. The ID
// is left for the store to assign (pass a deterministic one for
// idempotent ingestion).
func BenchRecord(id string, doc *Bench) *Record {
	rec := &Record{
		Schema: RecordSchema,
		ID:     id,
		Tool:   "calbench",
		Kind:   KindBench,
		Bench:  doc,
	}
	// An absent generation stamp falls through to Put's wall clock
	// rather than the zero time's enormous negative UnixNano.
	if t := doc.GeneratedTime(); !t.IsZero() {
		rec.TimeNS = t.UnixNano()
	}
	return rec
}

// IngestBenchDir imports every BENCH_*.json in dir into the store
// under the deterministic ID "bench-<basename>", skipping files whose
// ID is already present — so re-opening a store beside committed
// trajectory files preserves the history exactly once. Returns how
// many files were ingested. Unparsable files are skipped with a log
// line, never fatal: one corrupt artifact must not block the store.
func IngestBenchDir(st Store, dir string, log *slog.Logger) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("runstore: ingesting %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ingested := 0
	for _, name := range names {
		id := "bench-" + strings.TrimSuffix(name, ".json")
		if _, ok, err := st.Get(id); err != nil {
			return ingested, err
		} else if ok {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if log != nil {
				log.Warn("runstore: skipping unreadable trajectory file", "file", name, "err", err)
			}
			continue
		}
		var doc Bench
		if err := json.Unmarshal(b, &doc); err != nil || len(doc.Tables) == 0 {
			if log != nil {
				log.Warn("runstore: skipping unparsable trajectory file", "file", name, "err", err)
			}
			continue
		}
		if err := st.Put(BenchRecord(id, &doc)); err != nil {
			return ingested, err
		}
		ingested++
		if log != nil {
			log.Info("runstore: ingested trajectory file", "file", name, "id", id, "generated", doc.Generated)
		}
	}
	return ingested, nil
}

// CellDelta is one comparable cell of a regression query: the baseline
// and current rates and the percent delta (negative = regression,
// positive = faster than baseline).
type CellDelta struct {
	Table  string  `json:"table"`
	Row    string  `json:"row"`
	Column int     `json:"column"`
	Base   float64 `json:"base_ops_per_sec"`
	Cur    float64 `json:"cur_ops_per_sec"`
	Pct    float64 `json:"delta_pct"`
	// Origin names the federation target the delta came from; empty on
	// single-store queries.
	Origin string `json:"origin,omitempty"`
}

// Cell names the delta's cell for human output ("B3 \"row\" goroutines=8").
func (d CellDelta) Cell() string {
	return fmt.Sprintf("%s %q col=%d", d.Table, d.Row, d.Column)
}

// BenchDeltas computes the per-cell percent deltas of cur against
// base, matching cells by table ID, row name and column value — cells
// present on only one side, and zero-rate baseline cells (over-budget
// or not-attempted markers), are skipped and counted. table filters to
// one table ID ("" = all). Deltas are returned worst-first (most
// negative percent).
func BenchDeltas(base, cur *Bench, table string) (deltas []CellDelta, skipped int) {
	baseTables := make(map[string]BenchTable, len(base.Tables))
	for _, t := range base.Tables {
		baseTables[t.ID] = t
	}
	for _, ct := range cur.Tables {
		if table != "" && ct.ID != table {
			continue
		}
		bt, ok := baseTables[ct.ID]
		if !ok {
			skipped++
			continue
		}
		baseCols := make(map[int]int, len(bt.Columns))
		for i, c := range bt.Columns {
			baseCols[c] = i
		}
		baseRows := make(map[string][]float64, len(bt.Rows))
		for _, r := range bt.Rows {
			baseRows[r.Name] = r.OpsPerSec
		}
		for _, row := range ct.Rows {
			bvals, ok := baseRows[row.Name]
			if !ok {
				skipped++
				continue
			}
			for i, c := range ct.Columns {
				j, ok := baseCols[c]
				if !ok || j >= len(bvals) || i >= len(row.OpsPerSec) || bvals[j] <= 0 {
					skipped++
					continue
				}
				deltas = append(deltas, CellDelta{
					Table: ct.ID, Row: row.Name, Column: c,
					Base: bvals[j], Cur: row.OpsPerSec[i],
					Pct: (row.OpsPerSec[i] - bvals[j]) / bvals[j] * 100,
				})
			}
		}
	}
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].Pct < deltas[j].Pct })
	return deltas, skipped
}
