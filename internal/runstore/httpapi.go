package runstore

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// HTTP store protocol (calgo.storeapi/v1): any process serving it —
// every cald daemon does, beside /runsz — is a remote run-history
// backend for Remote clients and Federated fan-out queries. The wire
// contract is specified in EXPERIMENTS.md ("Fleet observability").
//
//	GET  /storeapi/v1/records/{id}   one record, 404 when absent
//	POST /storeapi/v1/records        upsert one record, returns its ID
//	GET  /storeapi/v1/records?...    filtered listing (Filter params),
//	                                 server-side limit clamp
//	GET  /storeapi/v1/query?...      query evaluation (Query params),
//	                                 calgo.query/v1 result
//	GET  /storeapi/v1/len            live record count
const (
	// StoreAPISchema versions the protocol's envelope documents.
	StoreAPISchema = "calgo.storeapi/v1"

	// StoreAPIPrefix is the path prefix every endpoint lives under;
	// mount the handler at this prefix (trailing slash added) on the
	// ops mux.
	StoreAPIPrefix = "/storeapi"

	// DefaultMaxList is the server-side result bound when APIOptions
	// does not choose: an unbounded (or absurd) client limit is clamped
	// here so one curl cannot make the daemon serialize its whole
	// history in one response.
	DefaultMaxList = 1000

	// maxPutBytes bounds an upserted record's body.
	maxPutBytes = 8 << 20
)

// StoreAPIList is the listing envelope: the matches (ascending time,
// newest Limit kept), the pre-limit total, and whether the server
// clamped an unbounded request.
type StoreAPIList struct {
	Schema  string    `json:"schema"`
	Total   int       `json:"total"`
	Clamped bool      `json:"clamped,omitempty"`
	Records []*Record `json:"records"`
}

// StoreAPIPut is the upsert reply.
type StoreAPIPut struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
}

// StoreAPILen is the record-count reply.
type StoreAPILen struct {
	Schema string `json:"schema"`
	Len    int    `json:"len"`
}

// APIOptions tune NewAPI. The zero value is production-sane.
type APIOptions struct {
	// MaxList clamps every listing and query to this many records /
	// delta cells (default DefaultMaxList; < 0 disables the clamp).
	MaxList int
	// ReadOnly rejects POSTs with 403 — for daemons that expose their
	// history without accepting foreign records.
	ReadOnly bool
	// Logger receives a structured line per upsert (nil = silent).
	Logger *slog.Logger
	// Now is the query clock (tests; nil = time.Now).
	Now func() time.Time
}

type storeAPI struct {
	st   Store
	opts APIOptions
	mux  *http.ServeMux
}

// NewAPI returns the calgo.storeapi/v1 handler over st, mountable on
// an ops mux at StoreAPIPrefix + "/".
func NewAPI(st Store, opts APIOptions) http.Handler {
	if opts.MaxList == 0 {
		opts.MaxList = DefaultMaxList
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	a := &storeAPI{st: st, opts: opts, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET "+StoreAPIPrefix+"/v1/records/{id}", a.handleGet)
	a.mux.HandleFunc("POST "+StoreAPIPrefix+"/v1/records", a.handlePut)
	a.mux.HandleFunc("GET "+StoreAPIPrefix+"/v1/records", a.handleList)
	a.mux.HandleFunc("GET "+StoreAPIPrefix+"/v1/query", a.handleQuery)
	a.mux.HandleFunc("GET "+StoreAPIPrefix+"/v1/len", a.handleLen)
	return a
}

func (a *storeAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func (a *storeAPI) reply(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client gone
}

func (a *storeAPI) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok, err := a.st.Get(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, fmt.Sprintf("runstore: no record %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	a.reply(w, rec)
}

func (a *storeAPI) handlePut(w http.ResponseWriter, r *http.Request) {
	if a.opts.ReadOnly {
		http.Error(w, "runstore: store is read-only", http.StatusForbidden)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPutBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxPutBytes {
		http.Error(w, "record too large", http.StatusRequestEntityTooLarge)
		return
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		http.Error(w, "decoding record: "+err.Error(), http.StatusBadRequest)
		return
	}
	if rec.Deleted {
		http.Error(w, "runstore: tombstones are not accepted over the wire", http.StatusBadRequest)
		return
	}
	if err := a.st.Put(&rec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if a.opts.Logger != nil {
		a.opts.Logger.Info("storeapi: put", "id", rec.ID, "tool", rec.Tool, "kind", rec.Kind)
	}
	a.reply(w, StoreAPIPut{Schema: StoreAPISchema, ID: rec.ID})
}

// clamp applies the server-side bound to a client-requested limit:
// unbounded (0) or over-bound requests are pulled down to MaxList.
func (a *storeAPI) clamp(requested int) (int, bool) {
	if a.opts.MaxList < 0 {
		return requested, false
	}
	if requested == 0 || requested > a.opts.MaxList {
		return a.opts.MaxList, true
	}
	return requested, false
}

func (a *storeAPI) handleList(w http.ResponseWriter, r *http.Request) {
	q, err := QueryFromValues(r.URL.Query(), a.opts.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f := q.Filter
	f.Limit = 0
	recs, err := ListContext(r.Context(), a.st, f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	eff, bounded := a.clamp(q.Limit)
	out := applyLimit(recs, eff)
	if out == nil {
		out = []*Record{}
	}
	a.reply(w, StoreAPIList{
		Schema:  StoreAPISchema,
		Total:   len(recs),
		Clamped: bounded && len(out) < len(recs),
		Records: out,
	})
}

func (a *storeAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := QueryFromValues(r.URL.Query(), a.opts.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q.Limit, _ = a.clamp(q.Limit)
	q.Top, _ = a.clamp(q.Top)
	res, err := RunContext(r.Context(), a.st, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	a.reply(w, res)
}

func (a *storeAPI) handleLen(w http.ResponseWriter, _ *http.Request) {
	a.reply(w, StoreAPILen{Schema: StoreAPISchema, Len: a.st.Len()})
}
