package runstore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Remote is a Store client over the calgo.storeapi/v1 protocol: any
// cald daemon (or anything else mounting NewAPI) is a backend. Reads
// and writes carry the caller's context deadline; transient failures
// (429/5xx/wire) are retried with jittered exponential backoff,
// honouring the server's Retry-After when it is the longer wait — the
// same production manners as the cald jobs client. 4xx request errors
// surface immediately.
type Remote struct {
	base string
	opts RemoteOptions
}

// RemoteOptions tune OpenRemote. The zero value is production-sane.
type RemoteOptions struct {
	// HTTP is the transport (default: a client with a 30s timeout).
	HTTP *http.Client
	// Retries bounds the attempts per operation (default 4).
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Timeout bounds each operation when the caller's context carries
	// no deadline of its own (default 10s; < 0 disables).
	Timeout time.Duration
}

// OpenRemote returns a Remote store client for the daemon at base
// (e.g. http://127.0.0.1:8419).
func OpenRemote(base string, opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("runstore: bad store URL %q (want http://host:port)", base)
	}
	return &Remote{base: strings.TrimRight(base, "/"), opts: opts}, nil
}

// Base returns the daemon's base URL.
func (c *Remote) Base() string { return c.base }

func (c *Remote) http() *http.Client {
	if c.opts.HTTP != nil {
		return c.opts.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Remote) retries() int {
	if c.opts.Retries > 0 {
		return c.opts.Retries
	}
	return 4
}

// withTimeout applies the client's default deadline when the caller
// brought none.
func (c *Remote) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.Timeout < 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := c.opts.Timeout
	if d == 0 {
		d = 10 * time.Second
	}
	return context.WithTimeout(ctx, d)
}

// backoff computes the attempt'th jittered exponential delay, raised
// to the server's Retry-After hint when that is longer. Full jitter on
// the halved window so synchronized clients desynchronize.
func (c *Remote) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, max := c.opts.BaseDelay, c.opts.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// remoteStatusError is a non-2xx reply.
type remoteStatusError struct {
	Code int
	Body string
}

func (e *remoteStatusError) Error() string {
	return fmt.Sprintf("storeapi: HTTP %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// do performs one retried request, decoding the 2xx JSON reply into
// out (skipped when out is nil).
func (c *Remote) do(ctx context.Context, method, path string, body []byte, out any) error {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt < c.retries(); attempt++ {
		retryAfter, err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if se, ok := err.(*remoteStatusError); ok &&
			se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests {
			return fmt.Errorf("runstore: remote %s: %w", c.base, err) // permanent
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("runstore: remote %s: %w", c.base, ctx.Err())
		case <-time.After(c.backoff(attempt, retryAfter)):
		}
	}
	return fmt.Errorf("runstore: remote %s: %w", c.base, lastErr)
}

func (c *Remote) once(ctx context.Context, method, path string, body []byte, out any) (time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		var retryAfter time.Duration
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			retryAfter = time.Duration(s) * time.Second
		}
		return retryAfter, &remoteStatusError{Code: resp.StatusCode, Body: string(b)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
		return 0, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return 0, fmt.Errorf("decoding %s reply: %w", path, err)
	}
	return 0, nil
}

// Put upserts rec on the daemon. The daemon assigns the ID when empty,
// and the assignment is written back into rec — same contract as the
// local backends.
func (c *Remote) Put(rec *Record) error {
	if rec == nil {
		return fmt.Errorf("runstore: nil record")
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: encoding record: %w", err)
	}
	var reply StoreAPIPut
	if err := c.do(context.Background(), http.MethodPost, StoreAPIPrefix+"/v1/records", body, &reply); err != nil {
		return err
	}
	if reply.ID != "" {
		rec.ID = reply.ID
	}
	return nil
}

// Get fetches a record by ID.
func (c *Remote) Get(id string) (*Record, bool, error) {
	var rec Record
	err := c.do(context.Background(), http.MethodGet,
		StoreAPIPrefix+"/v1/records/"+url.PathEscape(id), nil, &rec)
	if err != nil {
		var se *remoteStatusError
		if asRemoteStatus(err, &se) && se.Code == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return &rec, true, nil
}

func asRemoteStatus(err error, target **remoteStatusError) bool {
	for err != nil {
		if se, ok := err.(*remoteStatusError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// List returns the matching records. The server clamps unbounded
// requests at its own MaxList; the returned slice is the honest
// (possibly clamped) window, newest kept.
func (c *Remote) List(f Filter) ([]*Record, error) {
	return c.ListContext(context.Background(), f)
}

// ListContext is List carrying the caller's context.
func (c *Remote) ListContext(ctx context.Context, f Filter) ([]*Record, error) {
	q := Query{Mode: ModeRuns, Filter: f}
	var reply StoreAPIList
	path := StoreAPIPrefix + "/v1/records"
	if vals := q.Values(); len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &reply); err != nil {
		return nil, err
	}
	return reply.Records, nil
}

// QueryContext ships the query for server-side evaluation (the
// storeapi query endpoint), so regressions baselines resolve against
// the daemon's own namespace.
func (c *Remote) QueryContext(ctx context.Context, q Query) (*Result, error) {
	var res Result
	path := StoreAPIPrefix + "/v1/query"
	if vals := q.Values(); len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &res); err != nil {
		return nil, err
	}
	if res.Schema != QuerySchema {
		return nil, fmt.Errorf("runstore: remote %s: torn query reply (schema %q)", c.base, res.Schema)
	}
	return &res, nil
}

// Len is the daemon's live record count (-1 when unreachable: the
// Store interface has no error channel here, and 0 would read as an
// empty store).
func (c *Remote) Len() int {
	var reply StoreAPILen
	if err := c.do(context.Background(), http.MethodGet, StoreAPIPrefix+"/v1/len", nil, &reply); err != nil {
		return -1
	}
	return reply.Len
}

// Close is a no-op: the client holds no connection state beyond the
// transport's idle pool.
func (c *Remote) Close() error { return nil }
