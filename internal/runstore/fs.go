package runstore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"calgo/internal/obs"
)

// Filesystem store layout: DIR holds append-only JSON-lines segments
// (run-000001.jsonl, run-000002.jsonl, ...) plus an index sidecar
// (index.json). Every Put appends one record line to the active
// segment and fsyncs before returning, so an acknowledged record
// survives SIGKILL; the sidecar is advisory — it lets open skip
// re-scanning sealed segments, and a missing, corrupt or stale index
// is rebuilt by replaying the segments, skipping torn or corrupt lines
// exactly like the cald jobs journal.
const (
	segmentPrefix = "run-"
	segmentSuffix = ".jsonl"
	indexName     = "index.json"

	// IndexSchema versions the sidecar document.
	IndexSchema = "calgo.runstore-index/v1"

	// DefaultSegmentBytes rotates the active segment once it outgrows
	// this bound, keeping replay and compaction incremental.
	DefaultSegmentBytes = 4 << 20

	// indexEvery bounds sidecar staleness: the index is rewritten after
	// this many puts (and on rotation and Close).
	indexEvery = 64

	// compactMinGarbage is the floor below which open never compacts;
	// beyond it, compaction triggers when superseded records outnumber
	// live ones.
	compactMinGarbage = 8
)

// FSOptions tune OpenFS. The zero value is production-sane.
type FSOptions struct {
	// SegmentBytes rotates segments at this size (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// Metrics receives the runstore.* counters, gauges and histograms
	// (nil = unmetered).
	Metrics *obs.Metrics
	// Logger receives a structured line per write, replay and
	// compaction (nil = silent).
	Logger *slog.Logger
}

// FS is the durable filesystem Store.
type FS struct {
	dir  string
	opts FSOptions
	log  *slog.Logger
	now  func() time.Time

	mu     sync.Mutex
	closed bool
	active *os.File // append handle of the highest-numbered segment
	actSeg int      // its number
	actOff int64    // its current size

	byID       map[string]fsEntry
	order      []string // ids in first-put order
	superseded int      // overwritten entries still on disk
	seq        int      // highest numeric r-<n> id seen
	sincePut   int      // puts since the last index write

	// hookAfterCompactRename, when set (tests only), runs between the
	// compacted segment's rename and the old segments' removal — the
	// crash window the retention regression test snapshots.
	hookAfterCompactRename func()

	cPuts, cPutErrors, cReplayed     *obs.Counter
	cCorrupt, cIndexRebuilds         *obs.Counter
	cIndexWrites, cCompactions       *obs.Counter
	cExpired                         *obs.Counter
	hPutBytes, hPutNS                *obs.Histogram
	gRecords, gSegments, gSuperseded *obs.Gauge
	gRetained                        *obs.Gauge
}

// fsEntry locates one live record on disk plus the metadata the query
// layer filters on, so List never parses records that cannot match.
type fsEntry struct {
	Seg     int               `json:"seg"`
	Off     int64             `json:"off"`
	Len     int64             `json:"len"`
	Tool    string            `json:"tool,omitempty"`
	Kind    string            `json:"kind,omitempty"`
	Verdict string            `json:"verdict,omitempty"`
	TimeNS  int64             `json:"time_unix_ns"`
	Labels  map[string]string `json:"labels,omitempty"`
}

func (e fsEntry) match(id string, f Filter) bool {
	if f.ID != "" && id != f.ID {
		return false
	}
	if f.Tool != "" && e.Tool != f.Tool {
		return false
	}
	if f.Verdict != "" && e.Verdict != f.Verdict {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	for k, v := range f.Labels {
		if e.Labels[k] != v {
			return false
		}
	}
	if !f.Since.IsZero() && e.TimeNS < f.Since.UnixNano() {
		return false
	}
	if !f.Until.IsZero() && e.TimeNS >= f.Until.UnixNano() {
		return false
	}
	return true
}

// fsIndex is the sidecar document: per segment, the byte size the
// entries cover and every record's location. A segment whose on-disk
// size differs is re-scanned (from the covered size when it merely
// grew — the active segment between index writes — or from scratch
// when it shrank or the sidecar is unreadable).
type fsIndex struct {
	Schema   string           `json:"schema"`
	Segments []fsIndexSegment `json:"segments"`
}

type fsIndexSegment struct {
	Name    string            `json:"name"`
	Size    int64             `json:"size"`
	Entries []fsIndexSegEntry `json:"entries"`
}

type fsIndexSegEntry struct {
	ID string `json:"id"`
	fsEntry
}

// OpenFS opens (creating if absent) the store directory, replays the
// segments — via the index sidecar where it is fresh, by scanning
// where it is missing, stale or corrupt — and compacts when superseded
// records outnumber live ones. The returned store is ready for Put.
func OpenFS(dir string, opts FSOptions) (*FS, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := opts.Metrics
	if m == nil {
		m = obs.NewMetrics() // private registry: instruments stay non-nil
	}
	s := &FS{
		dir: dir, opts: opts, log: log, now: time.Now,
		byID: make(map[string]fsEntry),

		cPuts:          m.Counter("runstore.puts"),
		cPutErrors:     m.Counter("runstore.put_errors"),
		cReplayed:      m.Counter("runstore.replayed"),
		cCorrupt:       m.Counter("runstore.corrupt_skipped"),
		cIndexRebuilds: m.Counter("runstore.index_rebuilds"),
		cIndexWrites:   m.Counter("runstore.index_writes"),
		cCompactions:   m.Counter("runstore.compactions"),
		cExpired:       m.Counter("runstore.expired"),
		hPutBytes:      m.Histogram("runstore.put_bytes"),
		hPutNS:         m.Histogram("runstore.put_ns"),
		gRecords:       m.Gauge("runstore.records"),
		gSegments:      m.Gauge("runstore.segments"),
		gSuperseded:    m.Gauge("runstore.superseded"),
		gRetained:      m.Gauge("runstore.retained"),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	if s.superseded >= compactMinGarbage && s.superseded > len(s.byID) {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	s.writeIndexLocked()
	s.gaugesLocked()
	return s, nil
}

// segments lists the segment numbers present in the directory,
// ascending.
func (s *FS) segments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		if _, err := fmt.Sscanf(name, segmentPrefix+"%d"+segmentSuffix, &n); err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

func (s *FS) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, n, segmentSuffix))
}

// replay rebuilds the in-memory map from the segments, trusting the
// index sidecar for byte ranges it provably covers and scanning the
// rest. Newest occurrence of an ID wins, exactly as compaction and
// upsert-by-append require.
func (s *FS) replay() error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	idx := s.loadIndex()
	indexed := make(map[int]fsIndexSegment)
	if idx != nil {
		for _, seg := range idx.Segments {
			var n int
			if _, err := fmt.Sscanf(seg.Name, segmentPrefix+"%d"+segmentSuffix, &n); err == nil {
				indexed[n] = seg
			}
		}
	}
	start := s.now()
	scanned, fromIndex := 0, 0
	for _, n := range segs {
		size := int64(0)
		if fi, err := os.Stat(s.segPath(n)); err == nil {
			size = fi.Size()
		}
		seg, ok := indexed[n]
		switch {
		case ok && seg.Size == size:
			// Fresh: trust the sidecar, no scan.
			for _, e := range seg.Entries {
				s.admit(e.ID, e.fsEntry)
				fromIndex++
			}
			continue
		case ok && seg.Size < size:
			// The segment grew past the sidecar (puts since the last index
			// write): trust the covered prefix, scan the tail.
			for _, e := range seg.Entries {
				s.admit(e.ID, e.fsEntry)
				fromIndex++
			}
			sc, err := s.scanSegment(n, seg.Size)
			if err != nil {
				return err
			}
			scanned += sc
		default:
			// Unindexed, shrunk, or unreadable sidecar: full rescan.
			if ok {
				s.cIndexRebuilds.Inc()
				s.log.Warn("runstore: index stale for segment, rescanning",
					"segment", s.segPath(n), "indexed_bytes", seg.Size, "actual_bytes", size)
			}
			sc, err := s.scanSegment(n, 0)
			if err != nil {
				return err
			}
			scanned += sc
		}
	}
	if idx == nil && len(segs) > 0 {
		s.cIndexRebuilds.Inc()
	}
	if n := int64(len(s.byID)); n > 0 || scanned > 0 {
		s.cReplayed.Add(n)
		s.log.Info("runstore: replayed",
			"dir", s.dir, "records", len(s.byID), "superseded", s.superseded,
			"segments", len(segs), "scanned", scanned, "from_index", fromIndex,
			"dur", s.now().Sub(start))
	}
	return nil
}

// admit folds one on-disk occurrence into the live map: later
// occurrences (higher segment, then offset) supersede earlier ones.
func (s *FS) admit(id string, e fsEntry) {
	if id == "" {
		return
	}
	if old, ok := s.byID[id]; ok {
		if e.Seg < old.Seg || (e.Seg == old.Seg && e.Off < old.Off) {
			s.superseded++ // e is the older copy
			return
		}
		s.superseded++
	} else {
		s.order = append(s.order, id)
	}
	s.byID[id] = e
	s.bumpSeq(id)
}

// admitTombstone folds one on-disk tombstone into the live map: the
// record (when present) dies, and both its last copy and the tombstone
// line itself become compactable garbage.
func (s *FS) admitTombstone(id string) {
	if id == "" {
		return
	}
	if _, ok := s.byID[id]; ok {
		delete(s.byID, id)
		s.dropFromOrder(map[string]bool{id: true})
		s.superseded += 2
	} else {
		s.superseded++ // orphan tombstone (its record was already compacted away)
	}
	// Keep the ID sequence monotonic past dead records so a later Put
	// never reuses a tombstoned "r-<n>".
	s.bumpSeq(id)
}

func (s *FS) bumpSeq(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "r-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
}

// dropFromOrder removes the given ids from the first-put order slice,
// so a future Put of a dead id re-appends exactly once.
func (s *FS) dropFromOrder(dead map[string]bool) {
	kept := s.order[:0]
	for _, id := range s.order {
		if !dead[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// scanSegment replays segment n from byte offset off, skipping corrupt
// lines (the torn tail of a crash, or an interior line damaged on
// disk) — a line either parses or contributes nothing.
func (s *FS) scanSegment(n int, off int64) (int, error) {
	f, err := os.Open(s.segPath(n))
	if err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	if off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return 0, fmt.Errorf("runstore: %w", err)
		}
	}
	admitted := 0
	r := bufio.NewReaderSize(f, 64<<10)
	pos := off
	for {
		line, err := r.ReadBytes('\n')
		n0 := int64(len(line))
		if len(line) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.ID == "" {
				s.cCorrupt.Inc()
				s.log.Warn("runstore: skipping corrupt line",
					"segment", s.segPath(n), "offset", pos, "bytes", n0)
			} else if rec.Deleted {
				s.admitTombstone(rec.ID)
			} else {
				s.admit(rec.ID, fsEntry{
					Seg: n, Off: pos, Len: n0,
					Tool: rec.Tool, Kind: rec.Kind, Verdict: rec.Verdict,
					TimeNS: rec.TimeNS, Labels: rec.Labels,
				})
				admitted++
			}
		}
		pos += n0
		if err == io.EOF {
			return admitted, nil
		}
		if err != nil {
			return admitted, fmt.Errorf("runstore: %w", err)
		}
	}
}

// loadIndex reads the sidecar; nil when missing or unusable.
func (s *FS) loadIndex() *fsIndex {
	b, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return nil
	}
	var idx fsIndex
	if err := json.Unmarshal(b, &idx); err != nil || idx.Schema != IndexSchema {
		s.log.Warn("runstore: unreadable index sidecar, will rebuild", "err", err)
		return nil
	}
	return &idx
}

// openActive opens (creating if needed) the highest-numbered segment
// for appending.
func (s *FS) openActive() error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	n := 1
	if len(segs) > 0 {
		n = segs[len(segs)-1]
	}
	f, err := os.OpenFile(s.segPath(n), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	s.active, s.actSeg, s.actOff = f, n, off
	return nil
}

// Put upserts rec durably: one JSON line appended to the active
// segment and fsynced before returning. An empty ID gets the next
// "r-<n>"; an existing ID is superseded (replay keeps the newest
// occurrence).
func (s *FS) Put(rec *Record) error {
	if rec == nil {
		return fmt.Errorf("runstore: nil record")
	}
	start := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if rec.ID == "" {
		s.seq++
		rec.ID = fmt.Sprintf("r-%d", s.seq)
	}
	rec.normalize(s.now)
	line, err := json.Marshal(rec)
	if err != nil {
		s.cPutErrors.Inc()
		return fmt.Errorf("runstore: encoding record: %w", err)
	}
	line = append(line, '\n')
	if s.actOff > 0 && s.actOff+int64(len(line)) > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.cPutErrors.Inc()
			return err
		}
	}
	if _, err := s.active.Write(line); err != nil {
		s.cPutErrors.Inc()
		return fmt.Errorf("runstore: appending record: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		s.cPutErrors.Inc()
		return fmt.Errorf("runstore: syncing segment: %w", err)
	}
	s.admit(rec.ID, fsEntry{
		Seg: s.actSeg, Off: s.actOff, Len: int64(len(line)),
		Tool: rec.Tool, Kind: rec.Kind, Verdict: rec.Verdict,
		TimeNS: rec.TimeNS, Labels: rec.Labels,
	})
	s.actOff += int64(len(line))
	s.sincePut++
	if s.sincePut >= indexEvery {
		s.writeIndexLocked()
	}
	s.gaugesLocked()
	dur := s.now().Sub(start)
	s.cPuts.Inc()
	if s.hPutBytes != nil {
		s.hPutBytes.Observe(int64(len(line)))
	}
	if s.hPutNS != nil {
		s.hPutNS.Observe(dur.Nanoseconds())
	}
	s.log.Info("runstore: put",
		"id", rec.ID, "tool", rec.Tool, "kind", rec.Kind, "verdict", rec.Verdict,
		"bytes", len(line), "segment", s.actSeg, "dur", dur)
	return nil
}

// rotateLocked seals the active segment (flushing the sidecar so the
// sealed segment is never re-scanned) and starts the next one.
func (s *FS) rotateLocked() error {
	s.writeIndexLocked()
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("runstore: sealing segment: %w", err)
	}
	n := s.actSeg + 1
	f, err := os.OpenFile(s.segPath(n), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: opening segment: %w", err)
	}
	s.active, s.actSeg, s.actOff = f, n, 0
	s.log.Info("runstore: rotated segment", "segment", n)
	return nil
}

// writeIndexLocked rewrites the sidecar atomically (tmp + rename). A
// failure is logged, never fatal: the sidecar is an optimization, the
// segments are the truth.
func (s *FS) writeIndexLocked() {
	bySeg := make(map[int]*fsIndexSegment)
	var segNums []int
	for _, id := range s.order {
		e, ok := s.byID[id]
		if !ok {
			continue
		}
		seg := bySeg[e.Seg]
		if seg == nil {
			seg = &fsIndexSegment{Name: filepath.Base(s.segPath(e.Seg))}
			bySeg[e.Seg] = seg
			segNums = append(segNums, e.Seg)
		}
		seg.Entries = append(seg.Entries, fsIndexSegEntry{ID: id, fsEntry: e})
	}
	// The covered size is the actual on-disk size, so replay can trust
	// an unchanged segment wholesale (superseded and corrupt bytes
	// included — they contribute nothing on a re-scan anyway).
	for _, n := range segNums {
		if fi, err := os.Stat(s.segPath(n)); err == nil {
			size := fi.Size()
			if n == s.actSeg {
				size = s.actOff
			}
			bySeg[n].Size = size
		}
	}
	sort.Ints(segNums)
	idx := fsIndex{Schema: IndexSchema}
	for _, n := range segNums {
		idx.Segments = append(idx.Segments, *bySeg[n])
	}
	b, err := json.Marshal(idx)
	if err != nil {
		s.log.Warn("runstore: encoding index", "err", err)
		return
	}
	tmp := filepath.Join(s.dir, indexName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		s.log.Warn("runstore: writing index", "err", err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexName)); err != nil {
		s.log.Warn("runstore: publishing index", "err", err)
		return
	}
	s.sincePut = 0
	s.cIndexWrites.Inc()
}

// compactLocked rewrites every live record into a fresh segment
// numbered past all existing ones, then removes the old segments (and
// with them every superseded copy and tombstone). Crash-safe by
// ordering: the compacted segment is completed and fsynced before any
// old segment is removed; replay's newest-occurrence-wins rule means a
// crash between those steps merely leaves harmless duplicates, and
// tombstoned records stay dead because their tombstones still sit in
// the not-yet-removed old segments while the compacted segment simply
// omits them. The active append handle is sealed first and reopened on
// the compacted segment, so runtime sweeps (Retain) can compact too.
func (s *FS) compactLocked() error {
	start := s.now()
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("runstore: sealing segment for compaction: %w", err)
		}
		s.active = nil
	}
	segs, err := s.segments()
	if err != nil {
		return err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	tmp := s.segPath(next) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: compacting: %w", err)
	}
	var (
		off     int64
		rewrote = make(map[string]fsEntry, len(s.byID))
		bytes   int64
	)
	for _, id := range s.order {
		e, ok := s.byID[id]
		if !ok {
			continue
		}
		line, err := s.readAt(e)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("runstore: compacting: %w", err)
		}
		e2 := e
		e2.Seg, e2.Off, e2.Len = next, off, int64(len(line))
		rewrote[id] = e2
		off += int64(len(line))
		bytes += int64(len(line))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("runstore: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: compacting: %w", err)
	}
	if err := os.Rename(tmp, s.segPath(next)); err != nil {
		return fmt.Errorf("runstore: compacting: %w", err)
	}
	if s.hookAfterCompactRename != nil {
		s.hookAfterCompactRename()
	}
	for _, n := range segs {
		_ = os.Remove(s.segPath(n))
	}
	for id, e := range rewrote {
		s.byID[id] = e
	}
	dropped := s.superseded
	s.superseded = 0
	s.cCompactions.Inc()
	s.log.Info("runstore: compacted",
		"dir", s.dir, "records", len(s.byID), "dropped", dropped,
		"bytes", bytes, "dur", s.now().Sub(start))
	return s.openActive()
}

// readAt fetches one record's raw line.
func (s *FS) readAt(e fsEntry) ([]byte, error) {
	f, err := os.Open(s.segPath(e.Seg))
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	buf := make([]byte, e.Len)
	if _, err := f.ReadAt(buf, e.Off); err != nil {
		return nil, fmt.Errorf("runstore: reading record: %w", err)
	}
	return buf, nil
}

// Get fetches a record by ID from disk.
func (s *FS) Get(id string) (*Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, ok := s.byID[id]
	if !ok {
		return nil, false, nil
	}
	rec, err := s.materializeLocked(e)
	if err != nil {
		return nil, false, err
	}
	return rec, true, nil
}

func (s *FS) materializeLocked(e fsEntry) (*Record, error) {
	line, err := s.readAt(e)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("runstore: decoding record: %w", err)
	}
	return &rec, nil
}

// List returns the matching records in ascending time order, newest
// Limit kept. Filtering runs on the in-memory metadata; only the
// matches are read from disk.
func (s *FS) List(f Filter) ([]*Record, error) {
	return s.ListContext(context.Background(), f)
}

// ListContext is List honoring cancellation: the context is checked
// between disk reads, so a cancelled ops request stops paying I/O for
// an answer nobody will read.
func (s *FS) ListContext(ctx context.Context, f Filter) ([]*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type cand struct {
		id string
		e  fsEntry
	}
	var matched []cand
	for _, id := range s.order {
		e, ok := s.byID[id]
		if !ok || !e.match(id, f) {
			continue
		}
		matched = append(matched, cand{id, e})
	}
	sort.SliceStable(matched, func(i, j int) bool { return matched[i].e.TimeNS < matched[j].e.TimeNS })
	if f.Limit > 0 && len(matched) > f.Limit {
		matched = matched[len(matched)-f.Limit:]
	}
	out := make([]*Record, 0, len(matched))
	for i, c := range matched {
		if i%32 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rec, err := s.materializeLocked(c.e)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Retain applies a retention policy: expired records get fsynced
// tombstone lines (one batch, one sync — an acknowledged sweep survives
// SIGKILL), and when the resulting garbage dominates the live set the
// store compacts. Returns how many records the sweep expired.
func (s *FS) Retain(pol Retention) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	metas := make([]retMeta, 0, len(s.byID))
	for _, id := range s.order {
		if e, ok := s.byID[id]; ok {
			metas = append(metas, retMeta{id: id, kind: e.Kind, timeNS: e.TimeNS})
		}
	}
	victims := pol.expire(metas, s.now())
	if len(victims) == 0 {
		if s.gRetained != nil {
			s.gRetained.Set(int64(len(s.byID)))
		}
		return 0, nil
	}
	var buf []byte
	dead := make(map[string]bool, len(victims))
	for _, id := range victims {
		line, err := json.Marshal(Record{Schema: RecordSchema, ID: id, Deleted: true})
		if err != nil {
			return 0, fmt.Errorf("runstore: encoding tombstone: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		dead[id] = true
	}
	if _, err := s.active.Write(buf); err != nil {
		return 0, fmt.Errorf("runstore: appending tombstones: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		return 0, fmt.Errorf("runstore: syncing tombstones: %w", err)
	}
	s.actOff += int64(len(buf))
	for _, id := range victims {
		delete(s.byID, id)
	}
	s.dropFromOrder(dead)
	s.superseded += 2 * len(victims) // each dead copy plus its tombstone
	if s.cExpired != nil {
		s.cExpired.Add(int64(len(victims)))
	}
	if s.superseded >= compactMinGarbage && s.superseded > len(s.byID) {
		if err := s.compactLocked(); err != nil {
			return len(victims), err
		}
	}
	s.writeIndexLocked()
	s.gaugesLocked()
	if s.gRetained != nil {
		s.gRetained.Set(int64(len(s.byID)))
	}
	s.log.Info("runstore: retention sweep",
		"dir", s.dir, "expired", len(victims), "retained", len(s.byID), "policy", pol.String())
	return len(victims), nil
}

// Len is the number of live records.
func (s *FS) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Close flushes the index sidecar and releases the active segment.
func (s *FS) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.writeIndexLocked()
	if s.active != nil {
		err := s.active.Close()
		s.active = nil
		return err
	}
	return nil
}

// gaugesLocked refreshes the store-health gauges.
func (s *FS) gaugesLocked() {
	if s.gRecords != nil {
		s.gRecords.Set(int64(len(s.byID)))
	}
	if s.gSegments != nil {
		s.gSegments.Set(int64(s.actSeg))
	}
	if s.gSuperseded != nil {
		s.gSuperseded.Set(int64(s.superseded))
	}
}

// Dir returns the store's directory.
func (s *FS) Dir() string { return s.dir }
