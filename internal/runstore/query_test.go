package runstore

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"
)

func TestParseQuery(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	q, err := ParseQuery("runs tool=cald verdict=UNKNOWN since=24h limit=20 spec=register", now)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ModeRuns || q.Tool != "cald" || q.Verdict != "UNKNOWN" || q.Limit != 20 {
		t.Fatalf("parsed = %+v", q)
	}
	if !q.Since.Equal(now.Add(-24 * time.Hour)) {
		t.Fatalf("since = %v", q.Since)
	}
	if q.Labels["spec"] != "register" {
		t.Fatalf("labels = %v", q.Labels)
	}

	q, err = ParseQuery("regressions table=B3 top=5 baseline=bench-a current=bench-b", now)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ModeRegressions || q.Table != "B3" || q.Top != 5 ||
		q.Baseline != "bench-a" || q.Current != "bench-b" {
		t.Fatalf("parsed = %+v", q)
	}

	// Bare key=value terms default to runs mode; "deltas" aliases
	// regressions; dates parse as instants.
	if q, err := ParseQuery("tool=calbench", now); err != nil || q.Mode != ModeRuns {
		t.Fatalf("bare terms: %+v (err %v)", q, err)
	}
	if q, err := ParseQuery("deltas", now); err != nil || q.Mode != ModeRegressions {
		t.Fatalf("deltas alias: %+v (err %v)", q, err)
	}
	q, err = ParseQuery("runs since=2026-08-07 until=2026-08-08T06:00:00Z", now)
	if err != nil {
		t.Fatal(err)
	}
	if q.Since != time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC) ||
		q.Until != time.Date(2026, 8, 8, 6, 0, 0, 0, time.UTC) {
		t.Fatalf("instants = %v / %v", q.Since, q.Until)
	}

	for _, bad := range []string{"frobnicate tool=x", "runs tool", "runs limit=-1", "runs since=whenever", "runs top=x"} {
		if _, err := ParseQuery(bad, now); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestQueryFromValues(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	vals := url.Values{
		"mode":   {"regressions"},
		"table":  {"B1"},
		"top":    {"3"},
		"format": {"html"}, // presentation key, not a term
		"label":  {"spec:register", "engine:dfs"},
		"since":  {"720h"},
	}
	q, err := QueryFromValues(vals, now)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ModeRegressions || q.Table != "B1" || q.Top != 3 {
		t.Fatalf("query = %+v", q)
	}
	if q.Labels["spec"] != "register" || q.Labels["engine"] != "dfs" {
		t.Fatalf("labels = %v", q.Labels)
	}
	if !q.Since.Equal(now.Add(-720 * time.Hour)) {
		t.Fatalf("since = %v", q.Since)
	}
	if _, err := QueryFromValues(url.Values{"mode": {"nope"}}, now); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := QueryFromValues(url.Values{"label": {"noseparator"}}, now); err == nil {
		t.Error("bad label accepted")
	}
}

func benchAt(gen string, rate float64) *Bench {
	return &Bench{
		GOMAXPROCS: 4, Window: "60ms", Generated: gen,
		Tables: []BenchTable{{
			ID: "B1", Title: "stack", ColumnLabel: "goroutines", Columns: []int{1, 4},
			Rows: []BenchRow{
				{Name: "treiber", OpsPerSec: []float64{rate, rate * 2}},
				{Name: "mutex", OpsPerSec: []float64{rate / 2, rate}},
			},
		}},
	}
}

func TestRunQueries(t *testing.T) {
	s := NewRing(64, nil)
	// Three trajectory points plus report noise.
	for i, gen := range []string{"2026-08-01T00:00:00Z", "2026-08-04T00:00:00Z", "2026-08-08T00:00:00Z"} {
		doc := benchAt(gen, float64(100*(i+1)))
		if err := s.Put(BenchRecord("", doc)); err != nil {
			t.Fatal(err)
		}
	}
	viol := reportRecord("cald", "VIOLATION", time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC))
	viol.Labels = map[string]string{"spec": "queue"}
	if err := s.Put(viol); err != nil {
		t.Fatal(err)
	}

	// Runs mode: Total counts before Limit; summaries carry the labels.
	res, err := Run(s, Query{Mode: ModeRuns, Filter: Filter{Limit: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != QuerySchema || res.Total != 4 || len(res.Runs) != 2 {
		t.Fatalf("runs result = %+v", res)
	}
	res, _ = Run(s, Query{Filter: Filter{Verdict: "VIOLATION"}})
	if len(res.Runs) != 1 || res.Runs[0].Labels["spec"] != "queue" {
		t.Fatalf("violation query = %+v", res)
	}

	// Regressions default to newest vs newest-older bench records,
	// ignoring the interleaved report record.
	res, err = Run(s, Query{Mode: ModeRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if res.CurrentTime != "2026-08-08T00:00:00Z" || res.BaselineTime != "2026-08-04T00:00:00Z" {
		t.Fatalf("picked %s vs %s", res.CurrentTime, res.BaselineTime)
	}
	if res.Total != 4 || len(res.Deltas) != 4 {
		t.Fatalf("deltas = %+v", res.Deltas)
	}
	// 300 vs 200 = +50% everywhere in this synthetic trajectory.
	for _, d := range res.Deltas {
		if d.Pct != 50 {
			t.Fatalf("delta = %+v", d)
		}
	}

	// Explicit baseline pinning and top-N.
	res, err = Run(s, Query{Mode: ModeRegressions, Baseline: "r-1", Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineID != "r-1" || res.Total != 4 || len(res.Deltas) != 2 {
		t.Fatalf("pinned = %+v", res)
	}
	// 300 vs 100 = +200%.
	if res.Deltas[0].Pct != 200 {
		t.Fatalf("pinned delta = %+v", res.Deltas[0])
	}

	// Same-second trajectory points (RFC 3339 is second-granular, and CI
	// records two -auto runs back to back): the default baseline is the
	// record immediately preceding the current one in insertion order,
	// not "strictly older by timestamp" (which would find nothing).
	tied := NewRing(8, nil)
	for i, rate := range []float64{100, 200} {
		doc := benchAt("2026-08-08T00:00:00Z", rate)
		if err := tied.Put(BenchRecord(fmt.Sprintf("tied-%d", i), doc)); err != nil {
			t.Fatal(err)
		}
	}
	tiedRes, err := Run(tied, Query{Mode: ModeRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if tiedRes.CurrentID != "tied-1" || tiedRes.BaselineID != "tied-0" {
		t.Fatalf("same-second picked %s vs %s", tiedRes.CurrentID, tiedRes.BaselineID)
	}

	// Errors: no bench records at all; only one point.
	empty := NewRing(4, nil)
	if _, err := Run(empty, Query{Mode: ModeRegressions}); err == nil {
		t.Error("regressions over empty store accepted")
	}
	one := NewRing(4, nil)
	one.Put(BenchRecord("", benchAt("2026-08-08T00:00:00Z", 100)))
	if _, err := Run(one, Query{Mode: ModeRegressions}); err == nil {
		t.Error("regressions over single point accepted")
	}

	// Renderers cover both modes without panicking and carry the data.
	text := res.Text()
	if !strings.Contains(text, "r-1") || !strings.Contains(text, "+200.0%") {
		t.Fatalf("text = %q", text)
	}
	md := res.Markdown()
	if !strings.Contains(md, "| B1 |") {
		t.Fatalf("markdown = %q", md)
	}
	runsRes, _ := Run(s, Query{})
	if !strings.Contains(runsRes.Text(), "VIOLATION") {
		t.Fatalf("runs text = %q", runsRes.Text())
	}
}

func TestBenchDeltasSkipsUnmatchedCells(t *testing.T) {
	base := benchAt("2026-08-01T00:00:00Z", 100)
	cur := benchAt("2026-08-02T00:00:00Z", 90)
	// A column only the current side has, a zero baseline cell, and a
	// row only the current side has.
	cur.Tables[0].Columns = []int{1, 8}
	base.Tables[0].Rows[0].OpsPerSec[0] = 0
	cur.Tables[0].Rows = append(cur.Tables[0].Rows, BenchRow{Name: "new", OpsPerSec: []float64{1, 2}})

	deltas, skipped := BenchDeltas(base, cur, "")
	// Comparable: only ("mutex", col 1). Skipped: treiber col 1 (zero
	// base), cols 8 x2 (no base column), row "new" (1 skip).
	if len(deltas) != 1 || deltas[0].Row != "mutex" || deltas[0].Column != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Pct != -10 {
		t.Fatalf("pct = %v", deltas[0].Pct)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
	// Table filter.
	if d, _ := BenchDeltas(base, cur, "nope"); len(d) != 0 {
		t.Fatalf("filtered deltas = %+v", d)
	}
}

// TestCommittedTrajectoryDeltas is the acceptance pin: ingest the two
// committed BENCH_*.json trajectories from the repo root and prove the
// regression query returns the per-cell deltas those files imply.
func TestCommittedTrajectoryDeltas(t *testing.T) {
	load := func(path string) *Bench {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Skipf("committed trajectory missing: %v", err)
		}
		var doc Bench
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatal(err)
		}
		return &doc
	}
	older := load("../../BENCH_2026-08-06.json")
	newer := load("../../BENCH_2026-08-08.json")
	if !older.GeneratedTime().Before(newer.GeneratedTime()) {
		t.Fatalf("trajectory order: %s !< %s", older.Generated, newer.Generated)
	}

	s := openTestFS(t, t.TempDir(), FSOptions{})
	defer s.Close()
	// Ingest out of lexical order to prove selection is by timestamp.
	if err := s.Put(BenchRecord("bench-new", newer)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(BenchRecord("bench-old", older)); err != nil {
		t.Fatal(err)
	}

	res, err := Run(s, Query{Mode: ModeRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if res.CurrentID != "bench-new" || res.BaselineID != "bench-old" {
		t.Fatalf("picked %s vs %s, want newest-by-timestamp", res.CurrentID, res.BaselineID)
	}

	// Recompute every comparable cell straight from the parsed files
	// and require exact agreement.
	want := map[string]float64{}
	wantDeltas, _ := BenchDeltas(older, newer, "")
	for _, d := range wantDeltas {
		want[d.Cell()] = d.Pct
	}
	if len(res.Deltas) == 0 || len(res.Deltas) != len(wantDeltas) {
		t.Fatalf("deltas = %d, want %d", len(res.Deltas), len(wantDeltas))
	}
	for _, d := range res.Deltas {
		exp, ok := want[d.Cell()]
		if !ok || d.Pct != exp {
			t.Fatalf("cell %s: pct %v, want %v", d.Cell(), d.Pct, exp)
		}
		// And the percent is what the raw rates imply.
		if got := (d.Cur - d.Base) / d.Base * 100; got != d.Pct {
			t.Fatalf("cell %s: pct %v inconsistent with rates (%v)", d.Cell(), d.Pct, got)
		}
	}
	// Worst-first ordering.
	for i := 1; i < len(res.Deltas); i++ {
		if res.Deltas[i].Pct < res.Deltas[i-1].Pct {
			t.Fatalf("deltas not worst-first at %d", i)
		}
	}
	// Table restriction and top-N against the same ground truth.
	resB1, err := Run(s, Query{Mode: ModeRegressions, Table: "B1", Top: 1})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := BenchDeltas(older, newer, "B1")
	if resB1.Total != len(b1) || len(resB1.Deltas) != 1 || resB1.Deltas[0].Pct != b1[0].Pct {
		t.Fatalf("B1 top-1 = %+v, want %+v", resB1.Deltas, b1[0])
	}
}
