package runstore

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// QuerySchema versions the query-result JSON document served by
// /queryz and `calreport -query -o *.json`; the shape is specified in
// EXPERIMENTS.md ("Run-history store").
const QuerySchema = "calgo.query/v1"

// Query modes: runs lists matching run records, regressions computes
// per-cell deltas between two bench records of the trajectory.
const (
	ModeRuns        = "runs"
	ModeRegressions = "regressions"
)

// Query is one question against a Store, parsed from a `calreport
// -query` expression or /queryz URL parameters.
type Query struct {
	// Mode is ModeRuns (default) or ModeRegressions.
	Mode string
	// Filter selects the records considered (runs mode: the result set;
	// regressions mode: the bench records eligible as baseline/current).
	Filter
	// Baseline / Current pick the two compared records by ID in
	// regressions mode; empty defaults to the newest matching bench
	// record (Current) and the newest one before it (Baseline).
	Baseline string
	Current  string
	// Table restricts regressions to one bench table ID ("" = all).
	Table string
	// Top keeps only the N worst deltas (0 = all).
	Top int
}

// Result is the calgo.query/v1 document.
type Result struct {
	Schema string `json:"schema"`
	Mode   string `json:"mode"`
	// Total is the number of matches before Limit (runs mode) or the
	// number of comparable cells before Top (regressions mode).
	Total int `json:"total"`
	// Runs summarizes the matching records, ascending by time.
	Runs []Summary `json:"runs,omitempty"`
	// Regression fields: the compared record IDs, the (top) deltas
	// worst-first, and how many cells only one side had.
	BaselineID   string      `json:"baseline_id,omitempty"`
	BaselineTime string      `json:"baseline_time,omitempty"`
	CurrentID    string      `json:"current_id,omitempty"`
	CurrentTime  string      `json:"current_time,omitempty"`
	Deltas       []CellDelta `json:"deltas,omitempty"`
	Skipped      int         `json:"skipped_cells,omitempty"`

	// Federation fields, set only by fleet (fan-out) queries. Degraded
	// reports that at least one target failed and the result is an
	// honest partial answer; Targets lists every target with its error
	// (empty = the target answered). The contract is specified in
	// EXPERIMENTS.md ("Fleet observability").
	Degraded bool           `json:"degraded,omitempty"`
	Targets  []TargetResult `json:"targets,omitempty"`
}

// TargetResult is one federation target's contribution to a fleet
// query result.
type TargetResult struct {
	// Target is the origin label records from this target carry.
	Target string `json:"target"`
	// Error is the target's failure ("" = it answered).
	Error string `json:"error,omitempty"`
	// Records is how many runs (runs mode) or delta cells (regressions
	// mode) the target contributed before the post-merge limit.
	Records int `json:"records,omitempty"`
	// Baseline/Current are the per-target compared record IDs
	// (regressions mode).
	Baseline string `json:"baseline,omitempty"`
	Current  string `json:"current,omitempty"`
}

// Summary is one run record without its wrapped document — enough to
// answer "what fraction of cald jobs ended UNKNOWN last week" without
// shipping every report body.
type Summary struct {
	ID      string            `json:"id"`
	Tool    string            `json:"tool,omitempty"`
	Kind    string            `json:"kind"`
	Verdict string            `json:"verdict,omitempty"`
	Time    string            `json:"time"` // RFC 3339
	Labels  map[string]string `json:"labels,omitempty"`
	// Detail is the first run's detail line for report records, the
	// table count for bench records.
	Detail string `json:"detail,omitempty"`
}

func summarize(r *Record) Summary {
	s := Summary{
		ID: r.ID, Tool: r.Tool, Kind: r.Kind, Verdict: r.Verdict,
		Time: r.Time().UTC().Format(time.RFC3339), Labels: r.Labels,
	}
	switch {
	case r.Report != nil && len(r.Report.Runs) > 0:
		s.Detail = r.Report.Runs[0].Name
		if d := r.Report.Runs[0].Detail; d != "" {
			s.Detail += ": " + d
		}
	case r.Bench != nil:
		s.Detail = fmt.Sprintf("%d tables, window %s", len(r.Bench.Tables), r.Bench.Window)
	}
	return s
}

// ParseQuery parses a -query expression: an optional leading verb
// ("runs" or "regressions") followed by space-separated key=value
// terms. Reserved keys — tool, verdict, kind, id, since, until, limit,
// baseline, current, table, top — fill the query; every other key is a
// label selector. since/until accept either a Go duration back from
// now ("720h") or an RFC 3339 / YYYY-MM-DD instant.
//
//	runs tool=cald verdict=UNKNOWN since=168h limit=20
//	regressions table=B3 top=5
func ParseQuery(expr string, now time.Time) (Query, error) {
	q := Query{Mode: ModeRuns}
	fields := strings.Fields(expr)
	for i, f := range fields {
		if i == 0 && !strings.Contains(f, "=") {
			switch f {
			case ModeRuns:
			case ModeRegressions, "deltas":
				q.Mode = ModeRegressions
			default:
				return q, fmt.Errorf("runstore: unknown query verb %q (want runs or regressions)", f)
			}
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return q, fmt.Errorf("runstore: bad query term %q (want key=value)", f)
		}
		if err := q.setTerm(k, v, now); err != nil {
			return q, err
		}
	}
	return q, nil
}

// QueryFromValues builds the same query from /queryz URL parameters:
// ?mode=, plus one parameter per ParseQuery key; unrecognized keys are
// rejected (labels go in ?label=k:v, repeatable).
func QueryFromValues(vals url.Values, now time.Time) (Query, error) {
	q := Query{Mode: ModeRuns}
	if m := vals.Get("mode"); m != "" {
		switch m {
		case ModeRuns:
		case ModeRegressions, "deltas":
			q.Mode = ModeRegressions
		default:
			return q, fmt.Errorf("runstore: unknown mode %q (want runs or regressions)", m)
		}
	}
	for k, vs := range vals {
		if k == "mode" || k == "format" || k == "fleet" || len(vs) == 0 {
			continue
		}
		if k == "label" {
			for _, v := range vs {
				lk, lv, ok := strings.Cut(v, ":")
				if !ok {
					return q, fmt.Errorf("runstore: bad label %q (want key:value)", v)
				}
				if q.Labels == nil {
					q.Labels = map[string]string{}
				}
				q.Labels[lk] = lv
			}
			continue
		}
		if err := q.setTerm(k, vs[0], now); err != nil {
			return q, err
		}
	}
	return q, nil
}

// Values encodes the query as /queryz / storeapi URL parameters — the
// inverse of QueryFromValues, used by the remote client to ship a
// query for server-side evaluation.
func (q Query) Values() url.Values {
	vals := url.Values{}
	set := func(k, v string) {
		if v != "" {
			vals.Set(k, v)
		}
	}
	if q.Mode != "" && q.Mode != ModeRuns {
		vals.Set("mode", q.Mode)
	}
	set("tool", q.Tool)
	set("verdict", q.Verdict)
	set("kind", q.Kind)
	set("id", q.ID)
	set("baseline", q.Baseline)
	set("current", q.Current)
	set("table", q.Table)
	if !q.Since.IsZero() {
		vals.Set("since", q.Since.UTC().Format(time.RFC3339))
	}
	if !q.Until.IsZero() {
		vals.Set("until", q.Until.UTC().Format(time.RFC3339))
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Top > 0 {
		vals.Set("top", strconv.Itoa(q.Top))
	}
	keys := make([]string, 0, len(q.Labels))
	for k := range q.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals.Add("label", k+":"+q.Labels[k])
	}
	return vals
}

// setTerm applies one key=value term.
func (q *Query) setTerm(k, v string, now time.Time) error {
	switch k {
	case "tool":
		q.Tool = v
	case "verdict":
		q.Verdict = v
	case "kind":
		q.Kind = v
	case "id":
		q.ID = v
	case "baseline":
		q.Baseline = v
	case "current":
		q.Current = v
	case "table":
		q.Table = v
	case "since":
		t, err := parseInstant(v, now)
		if err != nil {
			return fmt.Errorf("runstore: bad since=%q: %w", v, err)
		}
		q.Since = t
	case "until":
		t, err := parseInstant(v, now)
		if err != nil {
			return fmt.Errorf("runstore: bad until=%q: %w", v, err)
		}
		q.Until = t
	case "limit":
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("runstore: bad limit=%q", v)
		}
		q.Limit = n
	case "top":
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("runstore: bad top=%q", v)
		}
		q.Top = n
	default:
		if q.Labels == nil {
			q.Labels = map[string]string{}
		}
		q.Labels[k] = v
	}
	return nil
}

// parseInstant accepts a duration back from now, an RFC 3339 instant,
// or a bare date.
func parseInstant(v string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(v); err == nil {
		return now.Add(-d), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	if t, err := time.Parse("2006-01-02", v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("want a duration (720h), RFC 3339 instant, or YYYY-MM-DD date")
}

// ContextQuerier is optionally implemented by stores that evaluate
// whole queries themselves — the remote client (server-side
// evaluation) and the federated store (per-shard evaluation with a
// degraded merge). RunContext prefers it over local List-based
// evaluation, which matters wherever record IDs are only unique per
// shard.
type ContextQuerier interface {
	QueryContext(context.Context, Query) (*Result, error)
}

// Run executes q against the store.
func Run(st Store, q Query) (*Result, error) {
	return RunContext(context.Background(), st, q)
}

// RunContext executes q against the store, honoring cancellation and
// delegating to the store's own query engine when it has one.
func RunContext(ctx context.Context, st Store, q Query) (*Result, error) {
	if cq, ok := st.(ContextQuerier); ok {
		return cq.QueryContext(ctx, q)
	}
	switch q.Mode {
	case "", ModeRuns:
		return runRuns(ctx, st, q)
	case ModeRegressions:
		return runRegressions(ctx, st, q)
	}
	return nil, fmt.Errorf("runstore: unknown query mode %q", q.Mode)
}

func runRuns(ctx context.Context, st Store, q Query) (*Result, error) {
	unlimited := q.Filter
	unlimited.Limit = 0
	recs, err := ListContext(ctx, st, unlimited)
	if err != nil {
		return nil, err
	}
	res := &Result{Schema: QuerySchema, Mode: ModeRuns, Total: len(recs)}
	for _, r := range applyLimit(recs, q.Limit) {
		res.Runs = append(res.Runs, summarize(r))
	}
	return res, nil
}

func runRegressions(ctx context.Context, st Store, q Query) (*Result, error) {
	f := q.Filter
	f.Kind = KindBench
	f.Limit = 0
	cur, err := pickRecord(ctx, st, q.Current, f, nil)
	if err != nil {
		return nil, err
	}
	if cur == nil {
		return nil, fmt.Errorf("runstore: no bench records match (need a calbench trajectory in the store)")
	}
	base, err := pickRecord(ctx, st, q.Baseline, f, cur)
	if err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("runstore: no baseline bench record older than %s (need at least two trajectory points)", cur.ID)
	}
	if base.Bench == nil || cur.Bench == nil {
		return nil, fmt.Errorf("runstore: record %s/%s is not a bench record", base.ID, cur.ID)
	}
	deltas, skipped := BenchDeltas(base.Bench, cur.Bench, q.Table)
	res := &Result{
		Schema: QuerySchema, Mode: ModeRegressions,
		Total:        len(deltas),
		BaselineID:   base.ID,
		BaselineTime: base.Time().UTC().Format(time.RFC3339),
		CurrentID:    cur.ID,
		CurrentTime:  cur.Time().UTC().Format(time.RFC3339),
		Skipped:      skipped,
	}
	if q.Top > 0 && len(deltas) > q.Top {
		deltas = deltas[:q.Top]
	}
	res.Deltas = deltas
	return res, nil
}

// pickRecord resolves an explicit record ID, or the newest match — or,
// when the `before` anchor is given, the record immediately preceding
// it in the store's ascending time order. Ties on the (second-granular
// RFC 3339) timestamp break by insertion order, so two trajectory
// points recorded within the same second still compare.
func pickRecord(ctx context.Context, st Store, id string, f Filter, before *Record) (*Record, error) {
	if id != "" {
		rec, ok, err := st.Get(id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("runstore: no record %q", id)
		}
		return rec, nil
	}
	if before == nil {
		return latestContext(ctx, st, f)
	}
	f.Limit = 0
	recs, err := ListContext(ctx, st, f)
	if err != nil {
		return nil, err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].ID == before.ID {
			if i > 0 {
				return recs[i-1], nil
			}
			return nil, nil
		}
	}
	// `before` was named by explicit ID and doesn't match the filter;
	// fall back to the newest record strictly older than it.
	f.Until = before.Time()
	rec, err := latestContext(ctx, st, f)
	if err != nil || rec == nil || rec.ID != before.ID {
		return rec, err
	}
	return nil, nil
}

// Text renders the result as an aligned human-readable table — the
// `calreport -query` stdout form.
func (r *Result) Text() string {
	var b strings.Builder
	switch r.Mode {
	case ModeRegressions:
		if len(r.Targets) > 0 {
			fmt.Fprintf(&b, "fleet regressions: %d target(s)", len(r.Targets))
			if r.Degraded {
				b.WriteString(", DEGRADED (partial results)")
			}
			b.WriteString("\n")
			for _, t := range r.Targets {
				if t.Error != "" {
					fmt.Fprintf(&b, "  %s: ERROR: %s\n", t.Target, t.Error)
				} else {
					fmt.Fprintf(&b, "  %s: %s vs baseline %s (%d cells)\n",
						t.Target, t.Current, t.Baseline, t.Records)
				}
			}
		} else {
			fmt.Fprintf(&b, "regressions: %s (%s) vs baseline %s (%s)\n",
				r.CurrentID, r.CurrentTime, r.BaselineID, r.BaselineTime)
		}
		origin := ""
		for _, d := range r.Deltas {
			if d.Origin != "" {
				origin = "origin"
				break
			}
		}
		fmt.Fprintf(&b, "%-6s %-28s %8s %14s %14s %9s", "table", "row", "column", "base", "current", "delta")
		if origin != "" {
			fmt.Fprintf(&b, "  %s", origin)
		}
		b.WriteString("\n")
		for _, d := range r.Deltas {
			fmt.Fprintf(&b, "%-6s %-28s %8d %14.0f %14.0f %+8.1f%%",
				d.Table, d.Row, d.Column, d.Base, d.Cur, d.Pct)
			if origin != "" {
				fmt.Fprintf(&b, "  %s", d.Origin)
			}
			b.WriteString("\n")
		}
		if len(r.Deltas) < r.Total {
			fmt.Fprintf(&b, "(%d of %d cells shown; raise top=)\n", len(r.Deltas), r.Total)
		}
		if r.Skipped > 0 {
			fmt.Fprintf(&b, "%d cell(s) present on only one side were not compared\n", r.Skipped)
		}
	default:
		if len(r.Targets) > 0 {
			fmt.Fprintf(&b, "fleet runs: %d target(s)", len(r.Targets))
			if r.Degraded {
				b.WriteString(", DEGRADED (partial results)")
			}
			b.WriteString("\n")
			for _, t := range r.Targets {
				if t.Error != "" {
					fmt.Fprintf(&b, "  %s: ERROR: %s\n", t.Target, t.Error)
				} else {
					fmt.Fprintf(&b, "  %s: %d record(s)\n", t.Target, t.Records)
				}
			}
		}
		fmt.Fprintf(&b, "%-10s %-20s %-10s %-6s %-9s %s\n", "id", "time", "tool", "kind", "verdict", "detail")
		for _, s := range r.Runs {
			detail := s.Detail
			if len(s.Labels) > 0 {
				detail = labelString(s.Labels) + " " + detail
			}
			fmt.Fprintf(&b, "%-10s %-20s %-10s %-6s %-9s %s\n",
				s.ID, s.Time, s.Tool, s.Kind, s.Verdict, strings.TrimSpace(detail))
		}
		if len(r.Runs) < r.Total {
			fmt.Fprintf(&b, "(%d of %d records shown; raise limit=)\n", len(r.Runs), r.Total)
		}
	}
	return b.String()
}

// Markdown renders the result as a Markdown table — the `calreport
// -query -o *.md` form.
func (r *Result) Markdown() string {
	var b strings.Builder
	switch r.Mode {
	case ModeRegressions:
		if len(r.Targets) > 0 {
			fmt.Fprintf(&b, "# Fleet regression query\n\n%d target(s)", len(r.Targets))
			if r.Degraded {
				b.WriteString(" — **DEGRADED** (partial results)")
			}
			b.WriteString("\n\n")
			for _, t := range r.Targets {
				if t.Error != "" {
					fmt.Fprintf(&b, "- `%s`: ERROR: %s\n", t.Target, t.Error)
				} else {
					fmt.Fprintf(&b, "- `%s`: `%s` vs baseline `%s` (%d cells)\n",
						t.Target, t.Current, t.Baseline, t.Records)
				}
			}
			b.WriteString("\n| table | row | column | base | current | delta | origin |\n|---|---|---:|---:|---:|---:|---|\n")
			for _, d := range r.Deltas {
				fmt.Fprintf(&b, "| %s | %s | %d | %.0f | %.0f | %+.1f%% | %s |\n",
					d.Table, d.Row, d.Column, d.Base, d.Cur, d.Pct, d.Origin)
			}
			if r.Skipped > 0 {
				fmt.Fprintf(&b, "\n%d cell(s) present on only one side were not compared.\n", r.Skipped)
			}
			return b.String()
		}
		fmt.Fprintf(&b, "# Regression query\n\ncurrent `%s` (%s) vs baseline `%s` (%s)\n\n",
			r.CurrentID, r.CurrentTime, r.BaselineID, r.BaselineTime)
		b.WriteString("| table | row | column | base | current | delta |\n|---|---|---:|---:|---:|---:|\n")
		for _, d := range r.Deltas {
			fmt.Fprintf(&b, "| %s | %s | %d | %.0f | %.0f | %+.1f%% |\n",
				d.Table, d.Row, d.Column, d.Base, d.Cur, d.Pct)
		}
		if r.Skipped > 0 {
			fmt.Fprintf(&b, "\n%d cell(s) present on only one side were not compared.\n", r.Skipped)
		}
	default:
		b.WriteString("# Run-history query\n\n| id | time | tool | kind | verdict | detail |\n|---|---|---|---|---|---|\n")
		for _, s := range r.Runs {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
				s.ID, s.Time, s.Tool, s.Kind, s.Verdict, s.Detail)
		}
	}
	return b.String()
}

func labelString(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}
