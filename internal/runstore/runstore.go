// Package runstore is the persistent run-history store behind the obs
// stack: one queryable substrate for every completed run record the
// tools produce — calgo.report/v1 documents from checks, explorations
// and cald jobs, and calbench perf-trajectory tables — replacing the
// loose BENCH_*.json files and the in-process /runsz slices that used
// to vanish on exit.
//
// The package has two layers:
//
//   - Store: a Put/Get/List interface over run records, with two
//     backends — an in-memory bounded Ring (the default behind every
//     /runsz endpoint) and a durable filesystem store (append-only
//     JSON-lines segments with an index sidecar, fsynced writes and
//     corrupt-line-skipping replay, in the style of the cald jobs
//     journal).
//   - Query: label selectors, time ranges and per-cell regression
//     deltas against a chosen baseline record, serving `calreport
//     -query`, the /queryz endpoint and `calbench -auto` baseline
//     selection.
//
// Fleet-wide questions like "which B3 cell regressed >5% in 30 days"
// or "what fraction of cald jobs ended UNKNOWN last week" become one
// query each; see EXPERIMENTS.md ("Run-history store").
package runstore

import (
	"fmt"
	"time"

	"calgo/internal/render"
)

// RecordSchema versions the run-record JSON document stored in the
// filesystem segments and served by /runsz; the shape is specified in
// EXPERIMENTS.md ("Run-history store").
const RecordSchema = "calgo.run/v1"

// Record kinds: a report record wraps a calgo.report/v1 document (one
// check/exploration/job/stream verdict), a bench record wraps one
// calbench trajectory document (the former BENCH_<date>.json).
const (
	KindReport = "report"
	KindBench  = "bench"
)

// Record is one completed run in the store: the wrapped document plus
// the labels the query layer selects on. Tool, Kind, Verdict and the
// timestamp are first-class; everything run-specific (spec, mode,
// engine, object, client, ...) goes in Labels. The label vocabulary is
// pinned in EXPERIMENTS.md.
type Record struct {
	Schema string `json:"schema"`
	// ID is unique within a store. Put assigns "r-<n>" when empty;
	// putting an existing ID replaces that record (newest wins on
	// filesystem replay).
	ID   string `json:"id"`
	Tool string `json:"tool,omitempty"`
	// Kind is KindReport or KindBench.
	Kind string `json:"kind"`
	// Verdict is the CLI vocabulary (OK, VIOLATION, UNKNOWN) — the worst
	// verdict of the wrapped report's runs; empty for bench records.
	Verdict string `json:"verdict,omitempty"`
	// TimeNS is the record's event time (completion for reports,
	// generation for bench tables). Put stamps the wall clock when zero.
	TimeNS int64             `json:"time_unix_ns"`
	Labels map[string]string `json:"labels,omitempty"`

	// Report is the wrapped calgo.report/v1 document (KindReport).
	Report *render.Report `json:"report,omitempty"`
	// Bench is the wrapped perf-trajectory document (KindBench).
	Bench *Bench `json:"bench,omitempty"`
}

// Time returns the record's event time.
func (r *Record) Time() time.Time { return time.Unix(0, r.TimeNS) }

// normalize stamps defaults onto a record at Put time.
func (r *Record) normalize(now func() time.Time) {
	if r.Schema == "" {
		r.Schema = RecordSchema
	}
	if r.Kind == "" {
		if r.Bench != nil {
			r.Kind = KindBench
		} else {
			r.Kind = KindReport
		}
	}
	if r.TimeNS == 0 {
		r.TimeNS = now().UnixNano()
	}
	if r.Tool == "" && r.Report != nil {
		r.Tool = r.Report.Tool
	}
	if r.Verdict == "" && r.Report != nil {
		r.Verdict = worstVerdict(r.Report)
	}
}

// worstVerdict folds a report's per-run verdicts into one word:
// VIOLATION beats UNKNOWN beats OK; a runless report falls back to the
// exit-code legend.
func worstVerdict(rep *render.Report) string {
	worst := ""
	rank := map[string]int{"OK": 1, "UNKNOWN": 2, "VIOLATION": 3}
	for _, run := range rep.Runs {
		if rank[run.Verdict] > rank[worst] {
			worst = run.Verdict
		}
	}
	if worst != "" {
		return worst
	}
	switch rep.Exit {
	case 0:
		return "OK"
	case 1:
		return "VIOLATION"
	case 3:
		return "UNKNOWN"
	}
	return ""
}

// Filter selects records. Zero fields match everything; all set fields
// must match (AND). Label selectors match against the record's Labels
// map only; Tool/Verdict/Kind/ID match the first-class fields.
type Filter struct {
	ID      string
	Tool    string
	Verdict string
	Kind    string
	Labels  map[string]string
	// Since/Until bound the record time: Since <= t < Until (zero = open).
	Since time.Time
	Until time.Time
	// Limit keeps only the newest Limit matches (0 = all).
	Limit int
}

// Match reports whether r passes the filter (ignoring Limit, which is
// applied across the result set).
func (f Filter) Match(r *Record) bool {
	if r == nil {
		return false
	}
	if f.ID != "" && r.ID != f.ID {
		return false
	}
	if f.Tool != "" && r.Tool != f.Tool {
		return false
	}
	if f.Verdict != "" && r.Verdict != f.Verdict {
		return false
	}
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	for k, v := range f.Labels {
		if r.Labels[k] != v {
			return false
		}
	}
	if !f.Since.IsZero() && r.TimeNS < f.Since.UnixNano() {
		return false
	}
	if !f.Until.IsZero() && r.TimeNS >= f.Until.UnixNano() {
		return false
	}
	return true
}

// Store is the run-history store: Put upserts by record ID (assigning
// an ID when empty), Get fetches one record, List returns matches in
// ascending time order (ties by insertion order), applying
// Filter.Limit to keep the newest. Implementations are safe for
// concurrent use.
type Store interface {
	Put(*Record) error
	Get(id string) (*Record, bool, error)
	List(Filter) ([]*Record, error)
	// Len is the number of live records.
	Len() int
	Close() error
}

// Latest returns the newest record matching f, or nil when none match.
func Latest(st Store, f Filter) (*Record, error) {
	f.Limit = 1
	recs, err := st.List(f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	return recs[len(recs)-1], nil
}

// applyLimit keeps the newest limit records of an ascending-time
// slice (0 = all).
func applyLimit(recs []*Record, limit int) []*Record {
	if limit > 0 && len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	return recs
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = fmt.Errorf("runstore: store closed")
