// Package runstore is the persistent run-history store behind the obs
// stack: one queryable substrate for every completed run record the
// tools produce — calgo.report/v1 documents from checks, explorations
// and cald jobs, and calbench perf-trajectory tables — replacing the
// loose BENCH_*.json files and the in-process /runsz slices that used
// to vanish on exit.
//
// The package has two layers:
//
//   - Store: a Put/Get/List interface over run records, with two
//     backends — an in-memory bounded Ring (the default behind every
//     /runsz endpoint) and a durable filesystem store (append-only
//     JSON-lines segments with an index sidecar, fsynced writes and
//     corrupt-line-skipping replay, in the style of the cald jobs
//     journal).
//   - Query: label selectors, time ranges and per-cell regression
//     deltas against a chosen baseline record, serving `calreport
//     -query`, the /queryz endpoint and `calbench -auto` baseline
//     selection.
//
// Fleet-wide questions like "which B3 cell regressed >5% in 30 days"
// or "what fraction of cald jobs ended UNKNOWN last week" become one
// query each; see EXPERIMENTS.md ("Run-history store").
package runstore

import (
	"context"
	"fmt"
	"time"

	"calgo/internal/render"
)

// RecordSchema versions the run-record JSON document stored in the
// filesystem segments and served by /runsz; the shape is specified in
// EXPERIMENTS.md ("Run-history store").
const RecordSchema = "calgo.run/v1"

// Record kinds: a report record wraps a calgo.report/v1 document (one
// check/exploration/job/stream verdict), a bench record wraps one
// calbench trajectory document (the former BENCH_<date>.json).
const (
	KindReport = "report"
	KindBench  = "bench"
)

// Record is one completed run in the store: the wrapped document plus
// the labels the query layer selects on. Tool, Kind, Verdict and the
// timestamp are first-class; everything run-specific (spec, mode,
// engine, object, client, ...) goes in Labels. The label vocabulary is
// pinned in EXPERIMENTS.md.
type Record struct {
	Schema string `json:"schema"`
	// ID is unique within a store. Put assigns "r-<n>" when empty;
	// putting an existing ID replaces that record (newest wins on
	// filesystem replay).
	ID   string `json:"id"`
	Tool string `json:"tool,omitempty"`
	// Kind is KindReport or KindBench.
	Kind string `json:"kind"`
	// Verdict is the CLI vocabulary (OK, VIOLATION, UNKNOWN) — the worst
	// verdict of the wrapped report's runs; empty for bench records.
	Verdict string `json:"verdict,omitempty"`
	// TimeNS is the record's event time (completion for reports,
	// generation for bench tables). Put stamps the wall clock when zero.
	TimeNS int64             `json:"time_unix_ns"`
	Labels map[string]string `json:"labels,omitempty"`

	// Deleted marks a tombstone line in the filesystem segments: the
	// newest occurrence of an ID being a tombstone means the record is
	// gone (retention wrote it), surviving crash-replay by the same
	// newest-occurrence-wins rule as upserts. Tombstones never surface
	// from Get/List.
	Deleted bool `json:"deleted,omitempty"`

	// Report is the wrapped calgo.report/v1 document (KindReport).
	Report *render.Report `json:"report,omitempty"`
	// Bench is the wrapped perf-trajectory document (KindBench).
	Bench *Bench `json:"bench,omitempty"`
}

// Time returns the record's event time.
func (r *Record) Time() time.Time { return time.Unix(0, r.TimeNS) }

// normalize stamps defaults onto a record at Put time.
func (r *Record) normalize(now func() time.Time) {
	if r.Schema == "" {
		r.Schema = RecordSchema
	}
	if r.Kind == "" {
		if r.Bench != nil {
			r.Kind = KindBench
		} else {
			r.Kind = KindReport
		}
	}
	if r.TimeNS == 0 {
		r.TimeNS = now().UnixNano()
	}
	if r.Tool == "" && r.Report != nil {
		r.Tool = r.Report.Tool
	}
	if r.Verdict == "" && r.Report != nil {
		r.Verdict = worstVerdict(r.Report)
	}
}

// worstVerdict folds a report's per-run verdicts into one word:
// VIOLATION beats UNKNOWN beats OK; a runless report falls back to the
// exit-code legend.
func worstVerdict(rep *render.Report) string {
	worst := ""
	rank := map[string]int{"OK": 1, "UNKNOWN": 2, "VIOLATION": 3}
	for _, run := range rep.Runs {
		if rank[run.Verdict] > rank[worst] {
			worst = run.Verdict
		}
	}
	if worst != "" {
		return worst
	}
	switch rep.Exit {
	case 0:
		return "OK"
	case 1:
		return "VIOLATION"
	case 3:
		return "UNKNOWN"
	}
	return ""
}

// Filter selects records. Zero fields match everything; all set fields
// must match (AND). Label selectors match against the record's Labels
// map only; Tool/Verdict/Kind/ID match the first-class fields.
type Filter struct {
	ID      string
	Tool    string
	Verdict string
	Kind    string
	Labels  map[string]string
	// Since/Until bound the record time: Since <= t < Until (zero = open).
	Since time.Time
	Until time.Time
	// Limit keeps only the newest Limit matches (0 = all).
	Limit int
}

// Match reports whether r passes the filter (ignoring Limit, which is
// applied across the result set).
func (f Filter) Match(r *Record) bool {
	if r == nil {
		return false
	}
	if f.ID != "" && r.ID != f.ID {
		return false
	}
	if f.Tool != "" && r.Tool != f.Tool {
		return false
	}
	if f.Verdict != "" && r.Verdict != f.Verdict {
		return false
	}
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	for k, v := range f.Labels {
		if r.Labels[k] != v {
			return false
		}
	}
	if !f.Since.IsZero() && r.TimeNS < f.Since.UnixNano() {
		return false
	}
	if !f.Until.IsZero() && r.TimeNS >= f.Until.UnixNano() {
		return false
	}
	return true
}

// Store is the run-history store: Put upserts by record ID (assigning
// an ID when empty), Get fetches one record, List returns matches in
// ascending time order (ties by insertion order), applying
// Filter.Limit to keep the newest. Implementations are safe for
// concurrent use.
type Store interface {
	Put(*Record) error
	Get(id string) (*Record, bool, error)
	List(Filter) ([]*Record, error)
	// Len is the number of live records.
	Len() int
	Close() error
}

// ContextLister is optionally implemented by stores whose List can
// honor cancellation mid-scan — the remote client (the HTTP request
// carries the context), the federated store (the fan-out deadline) and
// the filesystem backend (checked between disk reads). ListContext is
// the uniform entry point.
type ContextLister interface {
	ListContext(context.Context, Filter) ([]*Record, error)
}

// ListContext lists via the store's context-aware path when it has
// one, and otherwise brackets the plain List with cancellation checks,
// so an ops handler serving a cancelled request never starts (or keeps
// serving) a doomed scan.
func ListContext(ctx context.Context, st Store, f Filter) ([]*Record, error) {
	if cl, ok := st.(ContextLister); ok {
		return cl.ListContext(ctx, f)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs, err := st.List(f)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Retention is a store retention policy beyond superseded-record GC.
// Zero fields are unbounded; set fields AND together — a record
// survives only if it passes every bound.
type Retention struct {
	// MaxAge expires records older than now-MaxAge (0 = no age bound).
	MaxAge time.Duration
	// MaxRecords keeps only the newest MaxRecords records overall
	// (0 = unbounded).
	MaxRecords int
	// KeepPerKind keeps only the newest N records of each listed kind
	// (kinds not listed are unaffected by this bound).
	KeepPerKind map[string]int
}

// Empty reports whether the policy bounds nothing.
func (p Retention) Empty() bool {
	return p.MaxAge <= 0 && p.MaxRecords <= 0 && len(p.KeepPerKind) == 0
}

func (p Retention) String() string {
	if p.Empty() {
		return "unbounded"
	}
	s := ""
	if p.MaxAge > 0 {
		s += fmt.Sprintf("max-age=%s ", p.MaxAge)
	}
	if p.MaxRecords > 0 {
		s += fmt.Sprintf("max-records=%d ", p.MaxRecords)
	}
	for k, n := range p.KeepPerKind {
		s += fmt.Sprintf("keep-%s=%d ", k, n)
	}
	return s[:len(s)-1]
}

// retMeta is the slice element expire selects over: just enough of a
// record to apply the policy without materializing bodies.
type retMeta struct {
	id     string
	kind   string
	timeNS int64
}

// expire returns the IDs a policy drops from metas at time now,
// applying every set bound. Ties on the timestamp keep the later slice
// element (insertion order), matching List's ordering.
func (p Retention) expire(metas []retMeta, now time.Time) []string {
	if p.Empty() || len(metas) == 0 {
		return nil
	}
	// Newest-first by time, later insertion winning ties.
	ordered := make([]retMeta, len(metas))
	copy(ordered, metas)
	for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
		ordered[i], ordered[j] = ordered[j], ordered[i]
	}
	stableSortBy(ordered, func(a, b retMeta) bool { return a.timeNS > b.timeNS })
	cutoff := int64(0)
	if p.MaxAge > 0 {
		cutoff = now.Add(-p.MaxAge).UnixNano()
	}
	var victims []string
	perKind := make(map[string]int)
	for rank, m := range ordered {
		perKind[m.kind]++
		switch {
		case cutoff != 0 && m.timeNS < cutoff:
			victims = append(victims, m.id)
		case p.MaxRecords > 0 && rank >= p.MaxRecords:
			victims = append(victims, m.id)
		default:
			if n, ok := p.KeepPerKind[m.kind]; ok && perKind[m.kind] > n {
				victims = append(victims, m.id)
			}
		}
	}
	return victims
}

// stableSortBy is sort.SliceStable without the reflection-heavy
// closure signature at every call site.
func stableSortBy[T any](s []T, less func(a, b T) bool) {
	// Insertion sort: retention sweeps run on metadata slices whose
	// order is already nearly time-ascending, where this is O(n).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Retainer is implemented by backends that can apply a retention
// policy; Retain returns how many records the sweep expired.
type Retainer interface {
	Retain(Retention) (int, error)
}

// ErrReadOnly is returned by Put on read-only store views (the
// federated fan-out store).
var ErrReadOnly = fmt.Errorf("runstore: store is read-only")

// Latest returns the newest record matching f, or nil when none match.
func Latest(st Store, f Filter) (*Record, error) {
	return latestContext(context.Background(), st, f)
}

func latestContext(ctx context.Context, st Store, f Filter) (*Record, error) {
	f.Limit = 1
	recs, err := ListContext(ctx, st, f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	return recs[len(recs)-1], nil
}

// applyLimit keeps the newest limit records of an ascending-time
// slice (0 = all).
func applyLimit(recs []*Record, limit int) []*Record {
	if limit > 0 && len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	return recs
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = fmt.Errorf("runstore: store closed")
