package runstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"calgo/internal/obs"
)

// DefaultRingCapacity bounds the in-process /runsz store when the
// caller does not choose: enough history for a long fuzz or bench
// session, small enough that a chatty daemon cannot grow without
// limit.
const DefaultRingCapacity = 256

// Ring is the in-memory Store: a bounded record ring ordered by
// insertion. When full, Put evicts the oldest record and counts it on
// runstore.evicted (calgo_runstore_evicted_total on /metrics) — the
// fix for the formerly unbounded per-process report slice.
type Ring struct {
	mu      sync.Mutex
	cap     int
	seq     int
	records []*Record // insertion order

	evicted *obs.Counter
	expired *obs.Counter
	now     func() time.Time
}

// NewRing returns a ring store bounded at capacity records (<= 0 uses
// DefaultRingCapacity). The registry may be nil; when set it receives
// the runstore.evicted and runstore.expired counters.
func NewRing(capacity int, m *obs.Metrics) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{
		cap: capacity, now: time.Now,
		evicted: m.Counter("runstore.evicted"),
		expired: m.Counter("runstore.expired"),
	}
}

// Put upserts rec: an existing ID is replaced in place, a new one is
// appended, evicting the oldest record once the ring is full.
func (s *Ring) Put(rec *Record) error {
	if rec == nil {
		return fmt.Errorf("runstore: nil record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.ID == "" {
		s.seq++
		rec.ID = fmt.Sprintf("r-%d", s.seq)
	}
	rec.normalize(s.now)
	for i, old := range s.records {
		if old.ID == rec.ID {
			s.records[i] = rec
			return nil
		}
	}
	s.records = append(s.records, rec)
	for len(s.records) > s.cap {
		s.records = append(s.records[:0:0], s.records[1:]...)
		if s.evicted != nil {
			s.evicted.Inc()
		}
	}
	return nil
}

// Get fetches a record by ID.
func (s *Ring) Get(id string) (*Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.records {
		if r.ID == id {
			return r, true, nil
		}
	}
	return nil, false, nil
}

// List returns the matching records in ascending time order (insertion
// order breaking ties), newest Limit kept.
func (s *Ring) List(f Filter) ([]*Record, error) {
	s.mu.Lock()
	var out []*Record
	for _, r := range s.records {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return applyLimit(out, f.Limit), nil
}

// Retain applies a retention policy, dropping expired records in
// place. Returns how many records the sweep expired.
func (s *Ring) Retain(pol Retention) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	metas := make([]retMeta, 0, len(s.records))
	for _, r := range s.records {
		metas = append(metas, retMeta{id: r.ID, kind: r.Kind, timeNS: r.TimeNS})
	}
	victims := pol.expire(metas, s.now())
	if len(victims) == 0 {
		return 0, nil
	}
	dead := make(map[string]bool, len(victims))
	for _, id := range victims {
		dead[id] = true
	}
	kept := s.records[:0]
	for _, r := range s.records {
		if !dead[r.ID] {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(s.records); i++ {
		s.records[i] = nil
	}
	s.records = kept
	if s.expired != nil {
		s.expired.Add(int64(len(victims)))
	}
	return len(victims), nil
}

// Len is the number of records currently held.
func (s *Ring) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Close is a no-op: the ring has nothing to release.
func (s *Ring) Close() error { return nil }
