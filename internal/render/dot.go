package render

import (
	"fmt"
	"strings"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/sched"
)

// DOT renders the explanation as a Graphviz digraph: one node per
// operation, grouped into cluster subgraphs by the CA-element of the
// witness that absorbed them (the matched partition of H ⊑CAL T on Sat,
// the partial witness on Unsat/Unknown), with edges for the transitive
// reduction of the real-time order ≺H. Operations outside the witness are
// highlighted: the first blocked operation filled red, other blocked
// operations outlined red, dropped pending invocations gray and dashed.
func DOT(ex *check.Explanation) string {
	var b strings.Builder
	b.WriteString("digraph cal {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  label=%s;\n", dotQuote(fmt.Sprintf("verdict: %s", ex.Verdict)))

	elemOps := ex.ElementOps()
	inElem := make(map[int]bool)
	for k, idx := range elemOps {
		fmt.Fprintf(&b, "  subgraph cluster_e%d {\n", k)
		fmt.Fprintf(&b, "    label=%s;\n", dotQuote(fmt.Sprintf("element #%d: %s", k, ex.Witness[k].Object)))
		b.WriteString("    style=rounded;\n")
		for _, i := range idx {
			inElem[i] = true
			fmt.Fprintf(&b, "    op%d [label=%s];\n", i, dotQuote(ex.Ops[i].String()))
		}
		b.WriteString("  }\n")
	}

	first := ex.FirstBlocked()
	for i, op := range ex.Ops {
		if inElem[i] {
			continue
		}
		attrs := []string{"label=" + dotQuote(op.String())}
		switch {
		case op.Pending:
			attrs = append(attrs, `color=gray`, `fontcolor=gray`, `style=dashed`)
		case i == first:
			attrs = append(attrs, `color=red`, `style=filled`, `fillcolor="#ffdddd"`)
		default:
			attrs = append(attrs, `color=red`)
		}
		fmt.Fprintf(&b, "  op%d [%s];\n", i, strings.Join(attrs, ", "))
	}

	// Real-time order ≺H, transitively reduced so the picture stays a
	// Hasse diagram rather than a clique chain.
	rt := history.RTOrder(ex.Ops)
	n := len(ex.Ops)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !rt[i][j] {
				continue
			}
			covered := false
			for k := 0; k < n && !covered; k++ {
				covered = rt[i][k] && rt[k][j]
			}
			if !covered {
				fmt.Fprintf(&b, "  op%d -> op%d;\n", i, j)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ScheduleDOT renders an explorer counterexample schedule as a linear
// Graphviz chain from the initial state to the violating one, each edge
// labelled with the thread and transition that took it.
func ScheduleDOT(steps []sched.Step) string {
	var b strings.Builder
	b.WriteString("digraph schedule {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, label=\"\", width=0.2];\n")
	fmt.Fprintf(&b, "  s%d [shape=doublecircle, color=red];\n", len(steps))
	for k, s := range steps {
		fmt.Fprintf(&b, "  s%d -> s%d [label=%s];\n", k, k+1, dotQuote(s.String()))
	}
	b.WriteString("}\n")
	return b.String()
}

// dotQuote renders s as a double-quoted DOT string literal.
func dotQuote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// ValidateDOT syntactically checks a DOT document without invoking
// graphviz: the document must open with graph/digraph, every quoted
// string must close on its line of use, braces and brackets must balance
// and never go negative, and the top-level braces must close by the end.
// It is a structural smoke test, not a full parser — it accepts every
// document this package emits and rejects truncation, unbalanced quoting
// and stray closers.
func ValidateDOT(s string) error {
	trimmed := strings.TrimSpace(s)
	if !strings.HasPrefix(trimmed, "digraph") && !strings.HasPrefix(trimmed, "graph") &&
		!strings.HasPrefix(trimmed, "strict ") {
		return fmt.Errorf("render: DOT must start with graph/digraph, got %.20q", trimmed)
	}
	var braces, brackets int
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '{':
			braces++
		case '}':
			braces--
			if braces < 0 {
				return fmt.Errorf("render: DOT has unmatched '}' at byte %d", i)
			}
		case '[':
			brackets++
		case ']':
			brackets--
			if brackets < 0 {
				return fmt.Errorf("render: DOT has unmatched ']' at byte %d", i)
			}
		}
	}
	if inQuote {
		return fmt.Errorf("render: DOT ends inside a quoted string")
	}
	if braces != 0 {
		return fmt.Errorf("render: DOT has %d unclosed brace(s)", braces)
	}
	if brackets != 0 {
		return fmt.Errorf("render: DOT has %d unclosed bracket(s)", brackets)
	}
	if !strings.Contains(trimmed, "{") {
		return fmt.Errorf("render: DOT has no graph body")
	}
	return nil
}
