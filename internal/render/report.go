package render

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"calgo/internal/check"
	"calgo/internal/obs"
	"calgo/internal/sched"
)

// ReportSchema versions the run-report document. Consumers must check it:
// fields may be added within v1, but existing fields keep their meaning.
const ReportSchema = "calgo.report/v1"

// Report is a self-contained record of one CLI run: what was checked,
// what the verdicts were and the evidence behind them, plus the metrics
// snapshot and the flight-recorder tail of the search that produced them.
// It marshals as the calgo.report/v1 JSON document and renders as a
// standalone Markdown page.
type Report struct {
	Schema    string `json:"schema"`
	Tool      string `json:"tool"`
	Generated string `json:"generated,omitempty"` // RFC 3339
	ElapsedNS int64  `json:"elapsed_ns"`
	// Exit is the process exit code under the shared legend:
	// 0 OK, 1 VIOLATION, 2 usage error, 3 UNKNOWN.
	Exit int   `json:"exit"`
	Runs []Run `json:"runs,omitempty"`
	// Metrics is the final snapshot of the run's metrics registry.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Flight is the flight-recorder tail (oldest first) and FlightTotal
	// the number of events ever recorded (>= len(Flight) once wrapped).
	Flight      []obs.Event `json:"flight,omitempty"`
	FlightTotal uint64      `json:"flight_total,omitempty"`
	Notes       []string    `json:"notes,omitempty"`
}

// Run is one checked input within a report: a history checked for CAL, an
// explored model, or one fuzz batch.
type Run struct {
	Name string `json:"name"`
	// Verdict uses the CLI vocabulary: OK, VIOLATION or UNKNOWN.
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
	// Timeline is the rendered per-thread timeline (Timeline or
	// ScheduleTimeline output).
	Timeline string `json:"timeline,omitempty"`
	// DOT is the Graphviz rendering of the run's evidence.
	DOT string `json:"dot,omitempty"`
	// Schedule is the explorer counterexample, when the run has one.
	Schedule []sched.Step `json:"schedule,omitempty"`
}

// VerdictWord maps a checker verdict to the report (and exit-legend)
// vocabulary: Sat→OK, Unsat→VIOLATION, Unknown→UNKNOWN.
func VerdictWord(v check.Verdict) string {
	switch v {
	case check.Sat:
		return "OK"
	case check.Unsat:
		return "VIOLATION"
	default:
		return "UNKNOWN"
	}
}

// NewReport returns a report skeleton for the named tool with the schema
// and generation time stamped.
func NewReport(tool string, now time.Time) *Report {
	return &Report{Schema: ReportSchema, Tool: tool, Generated: now.UTC().Format(time.RFC3339)}
}

// WriteJSON writes the report as indented calgo.report/v1 JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Markdown renders the report as a self-contained Markdown document:
// verdict summary, per-run evidence (timeline, DOT, schedule), the
// metrics snapshot and the flight-recorder tail.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s run report\n\n", r.Tool)
	fmt.Fprintf(&b, "- schema: `%s`\n", r.Schema)
	if r.Generated != "" {
		fmt.Fprintf(&b, "- generated: %s\n", r.Generated)
	}
	if r.ElapsedNS > 0 {
		fmt.Fprintf(&b, "- elapsed: %s\n", time.Duration(r.ElapsedNS))
	}
	fmt.Fprintf(&b, "- exit: %d (%s)\n", r.Exit, exitWord(r.Exit))

	if len(r.Runs) > 0 {
		b.WriteString("\n## Runs\n")
		for _, run := range r.Runs {
			fmt.Fprintf(&b, "\n### %s — %s\n", run.Name, run.Verdict)
			if run.Detail != "" {
				fmt.Fprintf(&b, "\n%s\n", run.Detail)
			}
			if run.Timeline != "" {
				fmt.Fprintf(&b, "\n```text\n%s```\n", ensureNL(run.Timeline))
			}
			if len(run.Schedule) > 0 {
				steps := make([]string, len(run.Schedule))
				for i, s := range run.Schedule {
					steps[i] = s.String()
				}
				fmt.Fprintf(&b, "\nschedule: `%s`\n", strings.Join(steps, " · "))
			}
			if run.DOT != "" {
				fmt.Fprintf(&b, "\n```dot\n%s```\n", ensureNL(run.DOT))
			}
		}
	}

	if r.Metrics != nil {
		b.WriteString("\n## Metrics\n\n")
		fmt.Fprintf(&b, "schema `%s`\n", r.Metrics.Schema)
		writeKV(&b, "counter", r.Metrics.Counters)
		writeKV(&b, "gauge", r.Metrics.Gauges)
		if len(r.Metrics.Histograms) > 0 {
			names := make([]string, 0, len(r.Metrics.Histograms))
			for n := range r.Metrics.Histograms {
				names = append(names, n)
			}
			sort.Strings(names)
			b.WriteString("\n| histogram | count | sum | max | p50 | p90 | p99 |\n|---|---:|---:|---:|---:|---:|---:|\n")
			for _, n := range names {
				h := r.Metrics.Histograms[n]
				fmt.Fprintf(&b, "| `%s` | %d | %d | %d | %s | %s | %s |\n",
					n, h.Count, h.Sum, h.Max, quantileCell(h.P50), quantileCell(h.P90), quantileCell(h.P99))
			}
		}
	}

	if len(r.Flight) > 0 {
		fmt.Fprintf(&b, "\n## Flight recorder\n\nlast %d of %d events:\n\n```text\n", len(r.Flight), r.FlightTotal)
		for _, e := range r.Flight {
			fmt.Fprintf(&b, "%s\n", e)
		}
		b.WriteString("```\n")
	}

	if len(r.Notes) > 0 {
		b.WriteString("\n## Notes\n\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// quantileCell renders one histogram quantile estimate for the Markdown
// table, trimming the trailing zeros %f would leave.
func quantileCell(q float64) string {
	return strconv.FormatFloat(q, 'g', 6, 64)
}

func exitWord(code int) string {
	switch code {
	case 0:
		return "OK"
	case 1:
		return "VIOLATION"
	case 2:
		return "usage error"
	case 3:
		return "UNKNOWN"
	}
	return "?"
}

func writeKV(b *strings.Builder, kind string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "\n| %s | value |\n|---|---:|\n", kind)
	for _, n := range names {
		fmt.Fprintf(b, "| `%s` | %d |\n", n, m[n])
	}
}

func ensureNL(s string) string {
	if strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}
