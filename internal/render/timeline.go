// Package render turns the checker's structured artifacts — histories,
// explanations, schedules, metrics — into human- and tool-facing views:
// per-thread timelines (ASCII or Unicode), Graphviz DOT of the real-time
// order and the matched CA-element partition, and self-contained run
// reports (calgo.report/v1 JSON and Markdown). It is a pure formatting
// layer: it never runs a search and never mutates its inputs.
package render

import (
	"fmt"
	"strings"

	"calgo/internal/check"
	"calgo/internal/history"
	"calgo/internal/sched"
)

// glyphs is one drawing charset for timelines.
type glyphs struct {
	open  byte // invocation edge
	close byte // response edge
	span  byte // in-flight interior
	pend  byte // pending tail (no response)
	conc  byte // concurrency marker
}

var (
	asciiGlyphs   = glyphs{open: '[', close: ']', span: '-', pend: '.', conc: '#'}
	unicodeGlyphs = glyphs{} // sentinel: multi-byte runes, handled in cell()
)

// TimelineOptions configures Timeline.
type TimelineOptions struct {
	// ASCII selects the pure-ASCII charset ([--] and #) instead of the
	// default Unicode box drawing (├──┤ and ▒).
	ASCII bool
}

func (o TimelineOptions) cell(g byte) string {
	if o.ASCII {
		switch g {
		case asciiGlyphs.open, asciiGlyphs.close, asciiGlyphs.span, asciiGlyphs.pend, asciiGlyphs.conc:
			return string(g)
		}
		return " "
	}
	switch g {
	case asciiGlyphs.open:
		return "├"
	case asciiGlyphs.close:
		return "┤"
	case asciiGlyphs.span:
		return "─"
	case asciiGlyphs.pend:
		return "┄"
	case asciiGlyphs.conc:
		return "▒"
	}
	return " "
}

// colWidth is the number of timeline cells per history event: one for the
// mark, one of breathing room so adjacent operations stay distinguishable.
const colWidth = 2

// Timeline renders the explanation as per-thread lanes over the history's
// event axis. Each operation is drawn as an interval from its invocation
// to its response (pending operations trail off), one lane per thread; a
// final lane marks the events during which two or more operations were
// in flight — exactly the concurrency windows the CA-elements may absorb.
// An operation legend follows, mapping each operation to the witness
// element that absorbed it, or flagging it as blocked or dropped.
func Timeline(ex *check.Explanation, opt TimelineOptions) string {
	var b strings.Builder
	threads := threadsOf(ex.Ops)
	n := ex.NumEvents()
	fmt.Fprintf(&b, "timeline: %d events, %d operations, %d threads — verdict %s\n",
		n, len(ex.Ops), len(threads), ex.Verdict)
	if n == 0 {
		b.WriteString("  (empty history)\n")
		return b.String()
	}

	gutter := 0
	for _, t := range threads {
		if w := len(t.String()); w > gutter {
			gutter = w
		}
	}
	if gutter < len("concurrent") {
		gutter = len("concurrent")
	}

	// Ruler: the last digit of each event index at its column.
	var ruler strings.Builder
	fmt.Fprintf(&ruler, "  %-*s ", gutter, "event")
	for e := 0; e < n; e++ {
		fmt.Fprintf(&ruler, "%-*d", colWidth, e%10)
	}
	b.WriteString(strings.TrimRight(ruler.String(), " "))
	b.WriteByte('\n')

	// One lane per thread. A thread's operations are sequential, so its
	// intervals never overlap within the lane.
	for _, t := range threads {
		row := make([]byte, n*colWidth)
		for i := range row {
			row[i] = ' '
		}
		for _, op := range ex.Ops {
			if op.Thread != t {
				continue
			}
			a := op.InvIndex * colWidth
			if op.Pending {
				row[a] = asciiGlyphs.open
				for p := a + 1; p < len(row); p++ {
					row[p] = asciiGlyphs.pend
				}
				continue
			}
			z := op.ResIndex * colWidth
			row[a] = asciiGlyphs.open
			row[z] = asciiGlyphs.close
			for p := a + 1; p < z; p++ {
				row[p] = asciiGlyphs.span
			}
		}
		fmt.Fprintf(&b, "  %-*s %s\n", gutter, t, opt.render(row))
	}

	// Concurrency lane: events with >= 2 operations in flight.
	inFlight := make([]int, n)
	for _, op := range ex.Ops {
		last := n - 1
		if !op.Pending {
			last = op.ResIndex
		}
		for e := op.InvIndex; e <= last; e++ {
			inFlight[e]++
		}
	}
	conc := make([]byte, n*colWidth)
	any := false
	for i := range conc {
		conc[i] = ' '
	}
	for e := 0; e < n; e++ {
		if inFlight[e] >= 2 {
			any = true
			for p := e * colWidth; p < (e+1)*colWidth && p < len(conc); p++ {
				conc[p] = asciiGlyphs.conc
			}
		}
	}
	if any {
		fmt.Fprintf(&b, "  %-*s %s\n", gutter, "concurrent", opt.render(conc))
	}

	// Operation legend: span and fate of every operation.
	b.WriteString("operations:\n")
	elemOf := ex.ElementOf()
	first := ex.FirstBlocked()
	for i, op := range ex.Ops {
		span := fmt.Sprintf("[%d,%d]", op.InvIndex, op.ResIndex)
		if op.Pending {
			span = fmt.Sprintf("[%d,?]", op.InvIndex)
		}
		fate := ""
		switch {
		case elemOf[i] >= 0:
			fate = fmt.Sprintf("→ element #%d", elemOf[i])
		case i == first:
			fate = "✗ BLOCKED (first)"
		case op.Pending:
			fate = "dropped (pending)"
		default:
			fate = "✗ blocked"
		}
		if opt.ASCII {
			fate = strings.ReplaceAll(fate, "✗", "x")
			fate = strings.ReplaceAll(fate, "→", "->")
		}
		fmt.Fprintf(&b, "  op%-2d %-8s %s  %s\n", i, span, op, fate)
	}
	return b.String()
}

// render maps a byte-glyph row to the configured charset.
func (o TimelineOptions) render(row []byte) string {
	row = trimRight(row)
	var b strings.Builder
	for _, g := range row {
		b.WriteString(o.cell(g))
	}
	return b.String()
}

func trimRight(row []byte) []byte {
	end := len(row)
	for end > 0 && row[end-1] == ' ' {
		end--
	}
	return row[:end]
}

func threadsOf(ops []history.Op) []history.ThreadID {
	seen := make(map[history.ThreadID]bool)
	var out []history.ThreadID
	for _, op := range ops {
		if !seen[op.Thread] {
			seen[op.Thread] = true
			out = append(out, op.Thread)
		}
	}
	return out
}

// ScheduleTimeline renders an explorer counterexample schedule as
// per-thread lanes over the step axis: step k of the schedule appears in
// the lane of the thread that took it, labelled with its transition.
func ScheduleTimeline(steps []sched.Step) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %d steps\n", len(steps))
	if len(steps) == 0 {
		return b.String()
	}
	threads := make(map[int]bool)
	var order []int
	width := 0
	for _, s := range steps {
		if !threads[s.Thread] {
			threads[s.Thread] = true
			order = append(order, s.Thread)
		}
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	width++ // one space between columns
	gutter := len("step")
	for _, t := range order {
		if w := len(fmt.Sprintf("t%d", t)); w > gutter {
			gutter = w
		}
	}
	var ruler strings.Builder
	fmt.Fprintf(&ruler, "  %-*s ", gutter, "step")
	for k := range steps {
		fmt.Fprintf(&ruler, "%-*d", width, k)
	}
	b.WriteString(strings.TrimRight(ruler.String(), " "))
	b.WriteByte('\n')
	for _, t := range order {
		var lane strings.Builder
		fmt.Fprintf(&lane, "  %-*s ", gutter, fmt.Sprintf("t%d", t))
		for _, s := range steps {
			if s.Thread == t {
				fmt.Fprintf(&lane, "%-*s", width, s.Label)
			} else {
				fmt.Fprintf(&lane, "%-*s", width, "")
			}
		}
		b.WriteString(strings.TrimRight(lane.String(), " "))
		b.WriteByte('\n')
	}
	return b.String()
}
